// vwcap-match: match data frames across two vw.trace.v1 capture points and
// report the per-hop latency/loss distribution (the exact-pcap-match
// equivalent). Frames pair by (flow, seq, payload length), retransmissions
// in FIFO order; latency is NIC-departure at A to NIC-delivery at B, so on
// an idle path it equals propagation + downstream serialization.
//
//   $ vwcap-match from.vwtrace to.vwtrace [--csv FILE] [--expect-min-us N]
//
// --expect-min-us asserts the minimum observed latency is at least N
// microseconds (CI uses it to pin capture timestamps against configured
// link propagation delays). Exit status: 0 on success (and assertion pass),
// 1 on failure or when no frame matched.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "wren/offline.hpp"

using namespace vw;

int main(int argc, char** argv) {
  std::string from_path;
  std::string to_path;
  std::string csv_path;
  double expect_min_us = -1;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires an argument\n";
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = need_value(i++);
    } else if (std::strcmp(argv[i], "--expect-min-us") == 0) {
      expect_min_us = std::stod(need_value(i++));
    } else if (argv[i][0] == '-') {
      std::cerr << "usage: " << argv[0]
                << " from.vwtrace to.vwtrace [--csv FILE] [--expect-min-us N]\n";
      return 2;
    } else if (from_path.empty()) {
      from_path = argv[i];
    } else if (to_path.empty()) {
      to_path = argv[i];
    } else {
      std::cerr << "exactly two input traces are required\n";
      return 2;
    }
  }
  if (to_path.empty()) {
    std::cerr << "usage: " << argv[0]
              << " from.vwtrace to.vwtrace [--csv FILE] [--expect-min-us N]\n";
    return 2;
  }

  try {
    const wren::BinaryTrace from = wren::read_trace_binary_file(from_path);
    const wren::BinaryTrace to = wren::read_trace_binary_file(to_path);
    const wren::MatchResult result = wren::match_traces(from.records, to.records);

    std::cout << "from: " << from_path << " (host " << from.header.host << ", "
              << from.records.size() << " records)\n"
              << "to:   " << to_path << " (host " << to.header.host << ", "
              << to.records.size() << " records)\n"
              << "matched frames:   " << result.matched.size() << "\n"
              << "lost (from-only): " << result.unmatched_from << "\n"
              << "to-only frames:   " << result.unmatched_to << "\n";
    if (result.matched.empty()) {
      std::cerr << "vwcap-match: no frame matched between the two capture points\n";
      return 1;
    }
    auto us = [](SimTime t) { return static_cast<double>(t) / 1e3; };
    std::cout << "latency us: min " << us(result.min_latency()) << "  mean "
              << result.mean_latency_ns() / 1e3 << "  p50 " << us(result.latency_quantile(0.5))
              << "  p99 " << us(result.latency_quantile(0.99)) << "  max "
              << us(result.max_latency()) << "\n";

    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot open " << csv_path << "\n";
        return 1;
      }
      csv << "src,src_port,dst,dst_port,seq,payload_bytes,sent_s,latency_us\n";
      for (const wren::MatchedFrame& m : result.matched) {
        csv << m.flow.src << ',' << m.flow.src_port << ',' << m.flow.dst << ','
            << m.flow.dst_port << ',' << m.seq << ',' << m.payload_bytes << ','
            << to_seconds(m.sent_at) << ',' << us(m.latency()) << '\n';
      }
      std::cerr << "wrote " << csv_path << "\n";
    }

    if (expect_min_us >= 0 && us(result.min_latency()) < expect_min_us) {
      std::cerr << "vwcap-match: min latency " << us(result.min_latency())
                << " us below expected " << expect_min_us << " us\n";
      return 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "vwcap-match: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
