#!/usr/bin/env python3
"""Run the micro_vadapt_incremental benchmark and emit BENCH_vadapt.json.

Wraps the google-benchmark binary's JSON reporter and derives the numbers
the PR's acceptance criterion is stated in: SA-iteration throughput
(items_per_second) for the full-rescore and incremental evaluation
backends at n_hosts=32 / n_vms=8, and their ratio. Both variants drive the
annealer with the identical RNG stream and make bit-identical decisions
(tests/vadapt_incremental_test.cpp proves this), so the ratio is a pure
cost-structure speedup.

Usage:
    tools/bench_to_json.py [--build-dir build] [--output BENCH_vadapt.json]
                           [--quick]

Only the standard library is used.
"""

import argparse
import json
import os
import subprocess
import sys


def run_benchmark(binary: str, quick: bool) -> dict:
    cmd = [binary, "--benchmark_format=json"]
    if quick:
        cmd.append("--benchmark_min_time=0.05")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=True,
        )
        return out.stdout.decode().strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def items_per_second(benchmarks: list, name: str) -> float:
    for b in benchmarks:
        if b.get("name") == name and b.get("run_type", "iteration") == "iteration":
            return float(b.get("items_per_second", 0.0))
    raise KeyError(f"benchmark {name!r} not found in report")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--output", default="BENCH_vadapt.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short timing windows (CI smoke); numbers are noisier",
    )
    args = parser.parse_args()

    binary = os.path.join(args.build_dir, "bench", "micro_vadapt_incremental")
    if not os.path.exists(binary):
        print(f"error: {binary} not found (build the repo first)", file=sys.stderr)
        return 1

    report = run_benchmark(binary, args.quick)
    benchmarks = report.get("benchmarks", [])

    def variant(prefix: str) -> dict:
        full = items_per_second(benchmarks, f"{prefix}/full")
        incremental = items_per_second(benchmarks, f"{prefix}/incremental")
        return {
            "full_rescore_iters_per_sec": full,
            "incremental_iters_per_sec": incremental,
            "speedup": incremental / full if full > 0 else None,
        }

    result = {
        "bench": "micro_vadapt_incremental",
        "git_revision": git_revision(),
        "quick": args.quick,
        "problem": {"n_hosts": 32, "n_vms": 8, "demands": "8-VM ring @ 20 Mb/s"},
        "sa_iteration_throughput": {
            "residual_bw_eq1": variant("BM_AnnealingIteration"),
            "residual_bw_latency_eq3": variant("BM_AnnealingIterationEq3"),
        },
        "context": report.get("context", {}),
        "benchmarks": benchmarks,
    }

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    for key, v in result["sa_iteration_throughput"].items():
        speedup = v["speedup"]
        print(
            f"{key}: full={v['full_rescore_iters_per_sec']:.3g} it/s, "
            f"incremental={v['incremental_iters_per_sec']:.3g} it/s, "
            f"speedup={speedup:.2f}x"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
