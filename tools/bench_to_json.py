#!/usr/bin/env python3
"""Run a micro-benchmark suite and emit its BENCH_*.json summary.

Two suites:

  * ``vadapt`` (default) — wraps ``micro_vadapt_incremental`` into
    BENCH_vadapt.json: SA-iteration throughput (items_per_second) for the
    full-rescore and incremental evaluation backends at n_hosts=32 /
    n_vms=8, and their ratio. Both variants drive the annealer with the
    identical RNG stream and make bit-identical decisions
    (tests/vadapt_incremental_test.cpp proves this), so the ratio is a pure
    cost-structure speedup.

  * ``datapath`` — wraps ``micro_datapath`` into BENCH_datapath.json:
    scheduler ops/sec on the churn workload for the pre-overhaul baseline
    replica (std::function + hash-set cancellation, compiled into the same
    binary) and the slot-arena engine, their speedup, and end-to-end star
    packets/sec. ``--gate`` (default 3.0 for this suite) makes the script
    exit nonzero when the scheduler speedup falls below the acceptance
    criterion, which is how CI enforces the perf gate.

  * ``parallel_sim`` — wraps ``micro_parallel_sim`` into
    BENCH_parallel_sim.json: sharded-engine event throughput on the 32-host
    star ping-pong workload at 1/2/4/8 conservative shards, and the
    4-shard / 1-shard speedup. The 1-shard row is the serial oracle, and
    tests/sharded_sim_test.cpp proves the shard counts produce bit-identical
    results, so the ratio is a pure parallelism speedup. The gate (default
    2.5 at 4 shards) is enforced only when the benchmark ran with >= 4 CPUs
    — on smaller machines the JSON records ``gate_skipped_reason`` instead,
    because conservative windows cannot beat serial without real cores.

  * ``vadapt_warm`` — wraps ``micro_vadapt_warm`` into
    BENCH_vadapt_warm.json: warm-start single-link re-adaptation time vs
    the from-scratch multi-start solve (the system's default cold
    configuration, serial) on BRITE overlays at 256 and 1024 daemons, plus
    a delta-size sweep (1/4/16/64 changed pairs at 1024). Two gates: the
    1024-VM single-link speedup must clear ``--gate`` (default 10.0), and
    the warm 1024/256 time ratio must stay below the cold ratio — the
    O(delta)-not-O(problem) scaling check.

Usage:
    tools/bench_to_json.py [--suite vadapt|datapath|parallel_sim|vadapt_warm]
                           [--build-dir build] [--output FILE] [--quick]
                           [--gate X]

Only the standard library is used.
"""

import argparse
import json
import os
import subprocess
import sys


def run_benchmark(binary: str, quick: bool) -> dict:
    cmd = [binary, "--benchmark_format=json"]
    if quick:
        cmd.append("--benchmark_min_time=0.05")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=True,
        )
        return out.stdout.decode().strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def items_per_second(benchmarks: list, name: str) -> float:
    for b in benchmarks:
        if b.get("name") == name and b.get("run_type", "iteration") == "iteration":
            return float(b.get("items_per_second", 0.0))
    raise KeyError(f"benchmark {name!r} not found in report")


def vadapt_summary(benchmarks: list) -> dict:
    def variant(prefix: str) -> dict:
        full = items_per_second(benchmarks, f"{prefix}/full")
        incremental = items_per_second(benchmarks, f"{prefix}/incremental")
        return {
            "full_rescore_iters_per_sec": full,
            "incremental_iters_per_sec": incremental,
            "speedup": incremental / full if full > 0 else None,
        }

    return {
        "problem": {"n_hosts": 32, "n_vms": 8, "demands": "8-VM ring @ 20 Mb/s"},
        "sa_iteration_throughput": {
            "residual_bw_eq1": variant("BM_AnnealingIteration"),
            "residual_bw_latency_eq3": variant("BM_AnnealingIterationEq3"),
        },
    }


def datapath_summary(benchmarks: list) -> dict:
    baseline = items_per_second(benchmarks, "BM_SchedulerChurn_baseline")
    arena = items_per_second(benchmarks, "BM_SchedulerChurn_arena")
    return {
        "workload": {
            "scheduler_churn": "1024-timer batches, 2/3 cancelled before firing, "
            "Packet-sized (96 B) captures",
            "star_forwarding": "fig4-style star, UDP ring traffic, "
            "packets delivered end to end",
        },
        "scheduler_churn": {
            # `baseline` replicates the pre-overhaul engine (std::function
            # events + pending/cancelled hash sets) inside the same binary,
            # so the speedup is a same-compiler same-machine comparison.
            "baseline_ops_per_sec": baseline,
            "arena_ops_per_sec": arena,
            "speedup": arena / baseline if baseline > 0 else None,
        },
        "star_forwarding_packets_per_sec": {
            "hosts_8": items_per_second(benchmarks, "BM_StarForwarding/8"),
            "hosts_32": items_per_second(benchmarks, "BM_StarForwarding/32"),
        },
    }


def parallel_sim_summary(benchmarks: list) -> dict:
    ips = {
        n: items_per_second(benchmarks, f"BM_ShardedStar/{n}/real_time")
        for n in (1, 2, 4, 8)
    }
    return {
        "workload": {
            "sharded_star": "32-host star, 1 Gb/s links, 50 us propagation "
            "(= lookahead), 1000 B ping-pong datagrams, 32 in flight per "
            "pair; items = simulator events executed",
        },
        "sharded_star_events_per_sec": {f"shards_{n}": v for n, v in ips.items()},
        "speedup_4_shards": ips[4] / ips[1] if ips[1] > 0 else None,
        "speedup_8_shards": ips[8] / ips[1] if ips[1] > 0 else None,
    }


def real_time_seconds(benchmarks: list, name: str) -> float:
    for b in benchmarks:
        if b.get("name") == name and b.get("run_type", "iteration") == "iteration":
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
            return float(b.get("real_time", 0.0)) * scale
    raise KeyError(f"benchmark {name!r} not found in report")


def vadapt_warm_summary(benchmarks: list) -> dict:
    cold = {n: real_time_seconds(benchmarks, f"BM_ColdFromScratch/{n}") for n in (256, 1024)}
    warm = {n: real_time_seconds(benchmarks, f"BM_WarmSingleLink/{n}") for n in (256, 1024)}
    sweep = {k: real_time_seconds(benchmarks, f"BM_WarmDeltaSize/{k}") for k in (1, 4, 16, 64)}
    return {
        "problem": {
            "topology": "BRITE Waxman overlay (complete daemon graph)",
            "demands": "n-VM ring @ 20 Mb/s, n_vms = n_hosts",
            "cold": "multi-start SA, system default params (4 chains x 5000 "
            "iters), serial, no trace",
            "warm": "WarmStartOptimizer.adapt, one changed directed pair per "
            "re-adaptation (delta-size sweep: 1/4/16/64 pairs)",
        },
        "adapt_time_seconds": {
            "cold_from_scratch": {f"hosts_{n}": t for n, t in cold.items()},
            "warm_single_link": {f"hosts_{n}": t for n, t in warm.items()},
            "warm_delta_sweep_1024": {f"pairs_{k}": t for k, t in sweep.items()},
        },
        "speedup_single_link_1024": cold[1024] / warm[1024] if warm[1024] > 0 else None,
        "speedup_single_link_256": cold[256] / warm[256] if warm[256] > 0 else None,
        # O(delta) scaling: growing the problem 4x must hurt the warm path
        # less than it hurts the from-scratch solve.
        "scaling_ratio_warm_1024_over_256": warm[1024] / warm[256] if warm[256] > 0 else None,
        "scaling_ratio_cold_1024_over_256": cold[1024] / cold[256] if cold[256] > 0 else None,
    }


SUITES = {
    "vadapt": {
        "binary": "micro_vadapt_incremental",
        "output": "BENCH_vadapt.json",
        "summarize": vadapt_summary,
        "default_gate": None,
    },
    "datapath": {
        "binary": "micro_datapath",
        "output": "BENCH_datapath.json",
        "summarize": datapath_summary,
        "default_gate": 3.0,
    },
    "parallel_sim": {
        "binary": "micro_parallel_sim",
        "output": "BENCH_parallel_sim.json",
        "summarize": parallel_sim_summary,
        "default_gate": 2.5,
    },
    "vadapt_warm": {
        "binary": "micro_vadapt_warm",
        "output": "BENCH_vadapt_warm.json",
        "summarize": vadapt_warm_summary,
        "default_gate": 10.0,
    },
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=sorted(SUITES), default="vadapt")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--output", default=None,
                        help="defaults to the suite's BENCH_*.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short timing windows (CI smoke); numbers are noisier",
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="minimum required speedup; exit 1 below it "
        "(datapath default: 3.0, vadapt default: off)",
    )
    args = parser.parse_args()

    suite = SUITES[args.suite]
    output = args.output or suite["output"]
    binary = os.path.join(args.build_dir, "bench", suite["binary"])
    if not os.path.exists(binary):
        print(f"error: {binary} not found (build the repo first)", file=sys.stderr)
        return 1

    report = run_benchmark(binary, args.quick)
    benchmarks = report.get("benchmarks", [])

    result = {
        "bench": suite["binary"],
        "git_revision": git_revision(),
        "quick": args.quick,
        **suite["summarize"](benchmarks),
        "context": report.get("context", {}),
        "benchmarks": benchmarks,
    }

    gate = args.gate if args.gate is not None else suite["default_gate"]
    gate_failures = []
    if args.suite == "parallel_sim":
        ips = result["sharded_star_events_per_sec"]
        speedup = result["speedup_4_shards"]
        print(
            f"sharded_star: 1 shard={ips['shards_1']:.3g} ev/s, "
            f"2={ips['shards_2']:.3g}, 4={ips['shards_4']:.3g}, "
            f"8={ips['shards_8']:.3g}; 4-shard speedup={speedup:.2f}x"
        )
        num_cpus = int(result["context"].get("num_cpus", 0))
        if gate is not None and num_cpus < 4:
            result["gate_skipped_reason"] = (
                f"machine has {num_cpus} CPUs; the {gate:g}x @ 4 shards gate "
                "needs >= 4 (conservative windows cannot beat serial without "
                "real cores)"
            )
            print(f"gate skipped: {result['gate_skipped_reason']}")
        elif gate is not None and (speedup is None or speedup < gate):
            gate_failures.append(f"sharded_star: {speedup:.2f}x < {gate:g}x at 4 shards")
    elif args.suite == "vadapt_warm":
        times = result["adapt_time_seconds"]
        speedup = result["speedup_single_link_1024"]
        warm_ratio = result["scaling_ratio_warm_1024_over_256"]
        cold_ratio = result["scaling_ratio_cold_1024_over_256"]
        print(
            f"vadapt_warm: cold@1024={times['cold_from_scratch']['hosts_1024']:.3g} s, "
            f"warm@1024={times['warm_single_link']['hosts_1024']:.3g} s, "
            f"speedup={speedup:.1f}x; scaling 1024/256 warm={warm_ratio:.2f} "
            f"cold={cold_ratio:.2f}"
        )
        if gate is not None and (speedup is None or speedup < gate):
            gate_failures.append(
                f"warm single-link @1024: {speedup:.1f}x < {gate:g}x vs from-scratch"
            )
        if gate is not None and warm_ratio >= cold_ratio:
            gate_failures.append(
                f"O(delta) scaling: warm 1024/256 ratio {warm_ratio:.2f} >= "
                f"cold ratio {cold_ratio:.2f}"
            )
    elif args.suite == "vadapt":
        for key, v in result["sa_iteration_throughput"].items():
            speedup = v["speedup"]
            print(
                f"{key}: full={v['full_rescore_iters_per_sec']:.3g} it/s, "
                f"incremental={v['incremental_iters_per_sec']:.3g} it/s, "
                f"speedup={speedup:.2f}x"
            )
            if gate is not None and (speedup is None or speedup < gate):
                gate_failures.append(f"{key}: {speedup:.2f}x < {gate:g}x")
    else:
        churn = result["scheduler_churn"]
        speedup = churn["speedup"]
        print(
            f"scheduler_churn: baseline={churn['baseline_ops_per_sec']:.3g} ops/s, "
            f"arena={churn['arena_ops_per_sec']:.3g} ops/s, "
            f"speedup={speedup:.2f}x"
        )
        star = result["star_forwarding_packets_per_sec"]
        print(
            f"star_forwarding: 8 hosts={star['hosts_8']:.3g} pkt/s, "
            f"32 hosts={star['hosts_32']:.3g} pkt/s"
        )
        if gate is not None and (speedup is None or speedup < gate):
            gate_failures.append(f"scheduler_churn: {speedup:.2f}x < {gate:g}x")

    with open(output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    print(f"wrote {output}")
    if gate_failures:
        for failure in gate_failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
