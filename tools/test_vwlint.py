#!/usr/bin/env python3
"""Tests for tools/vwlint.py against tests/lint_fixtures/.

pytest-style test_* functions, but self-running (`python3 tools/test_vwlint.py`)
so the container needs no pytest install; pytest picks the same functions up
when it is available. Each rule R1-R5 has a minimal bad fixture that must be
flagged and a good fixture that must pass, so rule regressions are caught
without compiling the C++ tree.
"""

from __future__ import annotations

import io
import json
import sys
import tempfile
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import vwlint  # noqa: E402

FIXTURES = vwlint.REPO / "tests" / "lint_fixtures"


def run(argv: list[str]) -> tuple[int, str]:
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = vwlint.main(argv)
    return code, buf.getvalue()


def check_fixture(rule: str, name: str, *, clean: bool,
                  expect_findings: int | None = None,
                  expect_substr: str | None = None) -> None:
    code, out = run(["--rules", rule, str(FIXTURES / name)])
    if clean:
        assert code == 0, f"{name} should be clean under {rule}:\n{out}"
    else:
        assert code == 1, f"{name} should be flagged under {rule}:\n{out}"
        if expect_findings is not None:
            got = out.count(f"[{rule}]")
            assert got == expect_findings, (
                f"{name}: expected {expect_findings} {rule} findings, got {got}:\n{out}")
        if expect_substr is not None:
            assert expect_substr in out, f"{name}: missing '{expect_substr}' in:\n{out}"


# --- R1 virtual-clock purity -------------------------------------------------

def test_r1_bad_flags_every_wallclock_source() -> None:
    # steady/system/high_resolution ::now + time(nullptr) + clock().
    check_fixture("R1", "r1_bad.cpp", clean=False, expect_findings=5,
                  expect_substr="wall clock")


def test_r1_good_ignores_simtime_and_lookalike_names() -> None:
    check_fixture("R1", "r1_good.cpp", clean=True)


# --- R2 seeded randomness ----------------------------------------------------

def test_r2_bad_flags_ambient_randomness() -> None:
    # random_device + two default-constructed mt19937 + srand + rand.
    check_fixture("R2", "r2_bad.cpp", clean=False, expect_findings=5,
                  expect_substr="RngService")


def test_r2_good_accepts_explicit_seeds() -> None:
    check_fixture("R2", "r2_good.cpp", clean=True)


# --- R3 ordered iteration ----------------------------------------------------

def test_r3_bad_flags_range_for_and_iterator_loops() -> None:
    check_fixture("R3", "r3_bad.cpp", clean=False, expect_findings=2,
                  expect_substr="unordered container")


def test_r3_good_accepts_sorted_copy_and_waiver() -> None:
    check_fixture("R3", "r3_good.cpp", clean=True)


# --- R4 hot-path allocation hygiene ------------------------------------------

def test_r4_bad_flags_std_function_and_byval_shared_ptr() -> None:
    check_fixture("R4", "r4_bad.hpp", clean=False, expect_findings=2)


def test_r4_good_accepts_smallfn_and_const_ref() -> None:
    check_fixture("R4", "r4_good.hpp", clean=True)


def test_r4_scope_covers_capture_datapath_headers() -> None:
    # The capture datapath runs per packet despite living outside sim/net:
    # HOT_PATH_EXTRA must pull these headers into R4 scope.
    for rel in sorted(vwlint.HOT_PATH_EXTRA):
        path = vwlint.SRC / rel
        assert path.exists(), f"HOT_PATH_EXTRA names a missing header: {rel}"
        assert vwlint.make_context(path).hot_path_header, rel
    # Controls: cold wren headers stay out of scope, exemptions stay exempt.
    assert not vwlint.make_context(vwlint.SRC / "wren/offline.hpp").hot_path_header
    assert not vwlint.make_context(vwlint.SRC / "net/fault.hpp").hot_path_header
    assert vwlint.make_context(vwlint.SRC / "net/packet.hpp").hot_path_header


# --- R5 contract coverage ----------------------------------------------------

def r5_context() -> vwlint.FileContext:
    ctx = vwlint.make_context(FIXTURES / "r5_contracts.hpp")
    ctx.is_src = True
    ctx.is_header = True
    ctx.rel_src = "fixtures/r5_contracts.hpp"
    return ctx


def test_r5_counts_contract_macros() -> None:
    counts = vwlint.contract_counts([r5_context()])
    assert counts == {"src/fixtures/r5_contracts.hpp": 2}, counts


def test_r5_flags_coverage_regression_and_passes_at_baseline() -> None:
    ctx = r5_context()
    with tempfile.TemporaryDirectory() as tmp:
        baseline = Path(tmp) / "baseline.json"
        baseline.write_text(json.dumps(
            {"contracts": {"src/fixtures/r5_contracts.hpp": 3}}))
        regress = vwlint.check_r5_contracts([ctx], baseline)
        assert len(regress) == 1 and "regressed: 2 < baseline 3" in regress[0].message

        baseline.write_text(json.dumps(
            {"contracts": {"src/fixtures/r5_contracts.hpp": 2}}))
        assert vwlint.check_r5_contracts([ctx], baseline) == []

        # A header that vanished without --update-baseline is a finding too.
        baseline.write_text(json.dumps({"contracts": {"src/gone.hpp": 1}}))
        gone = vwlint.check_r5_contracts([ctx], baseline)
        assert len(gone) == 1 and "no longer exists" in gone[0].message


def test_r5_missing_baseline_is_a_finding() -> None:
    missing = vwlint.check_r5_contracts([r5_context()], Path("/nonexistent/base.json"))
    assert len(missing) == 1 and "baseline missing" in missing[0].message


# --- waivers -----------------------------------------------------------------

def test_waiver_grammar_and_audit_table() -> None:
    code, out = run(["--list-waivers", str(FIXTURES / "r3_good.cpp")])
    assert code == 0
    assert "unordered-ok" in out and "order normalized" in out


def test_waiver_only_suppresses_matching_tag() -> None:
    # An unordered-ok waiver must not silence R1/R2 findings on the same line.
    ctx_text = ("#include <ctime>\n"
                "// vwlint: unordered-ok(wrong tag for this rule)\n"
                "long long t() { return time(nullptr); }\n")
    with tempfile.TemporaryDirectory() as tmp:
        p = Path(tmp) / "wrong_tag.cpp"
        p.write_text(ctx_text)
        code, out = run(["--rules", "R1", str(p)])
        assert code == 1 and "[R1]" in out, out


def test_empty_waiver_reason_is_a_hygiene_finding() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        p = Path(tmp) / "empty_reason.cpp"
        p.write_text("// vwlint: wallclock-ok()\nint x = 0;\n")
        code, out = run(["--rules", "hygiene", str(p)])
        assert code == 1 and "empty reason" in out, out


# --- raw string literals -----------------------------------------------------

def test_strip_comments_handles_raw_string_literals() -> None:
    text = 'auto a = u8R"x(one\ntwo " three)x";\nint b = 0;\n'
    code = vwlint.strip_comments(text)
    assert code.count("\n") == text.count("\n"), "line numbers must survive"
    assert "three" not in code, "raw string body must be blanked"
    assert code.splitlines()[2].strip() == "int b = 0;", code


def test_r1_raw_string_does_not_desync_scan() -> None:
    # An embedded quote in a raw string must not swallow the code after it:
    # the time() text inside the literal stays unflagged, the real call on
    # line 3 is flagged at the right line.
    src = ('#include <ctime>\n'
           'const char* kDoc = R"(call time(nullptr) " quote)";\n'
           'long long t() { return time(nullptr); }\n')
    with tempfile.TemporaryDirectory() as tmp:
        p = Path(tmp) / "raw.cpp"
        p.write_text(src)
        code, out = run(["--rules", "R1", str(p)])
        assert code == 1 and out.count("[R1]") == 1, out
        assert "raw.cpp:3:" in out, out


# --- semantic-mode coverage --------------------------------------------------

def test_semantic_mode_token_checks_uncovered_files() -> None:
    # A successful semantic pass covers only the parsed TUs; headers (no
    # compile commands) and unparsed files must still get token-level R1-R3.
    with tempfile.TemporaryDirectory() as tmp:
        cov = (Path(tmp) / "covered.cpp").resolve()
        cov.write_text("int main() { return 0; }\n")
        hdr = Path(tmp) / "clocky.hpp"
        hdr.write_text("#pragma once\n#include <ctime>\n"
                       "inline long long t() { return time(nullptr); }\n")
        orig = vwlint.try_semantic
        vwlint.try_semantic = lambda files, cc, rules: ([], {cov})
        try:
            code, out = run(["--semantic", "--rules", "R1", str(cov), str(hdr)])
        finally:
            vwlint.try_semantic = orig
        assert code == 1 and "[R1]" in out and "clocky.hpp" in out, out


def test_clean_compile_args_strips_c_o_and_source() -> None:
    args = ["clang++", "-std=c++20", "-Isrc", "-c", "src/sim/engine.cxx",
            "-o", "CMakeFiles/engine.dir/engine.cxx.o", "-DFOO=1"]
    cleaned = vwlint.clean_compile_args(args, "src/sim/engine.cxx")
    assert cleaned == ["-std=c++20", "-Isrc", "-DFOO=1"], cleaned


# --- whole-tree invariants ---------------------------------------------------

def test_tree_runs_clean() -> None:
    code, out = run([])
    assert code == 0, f"vwlint must be clean on the committed tree:\n{out}"


def test_baseline_matches_tree() -> None:
    """The committed R5 baseline must be exactly the current tree's coverage,
    so any contract removal fails CI until --update-baseline is rerun."""
    files = [vwlint.make_context(p) for p in vwlint.collect_tree_files()]
    current = vwlint.contract_counts(files)
    committed = json.loads(vwlint.BASELINE.read_text())["contracts"]
    assert committed == current, (
        "tools/vwlint_baseline.json is stale; rerun tools/vwlint.py --update-baseline")


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"  PASS {name}")
        except AssertionError as exc:
            failures += 1
            print(f"  FAIL {name}: {exc}")
    print(f"test_vwlint: {len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
