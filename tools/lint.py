#!/usr/bin/env python3
"""Header-hygiene and banned-pattern checker for the Virtuoso/Wren tree.

Checks (all cheap text scans; no compiler needed):
  * every header under src/ starts with `#pragma once`
  * no `using namespace` at namespace scope in headers
  * no raw `assert(` in src/ (contracts go through util/check.hpp macros)
  * no `std::cout` / `printf(` in src/ (library code logs via util/log.hpp)
  * no tab characters or trailing whitespace in tracked C++ sources
  * include order: the matching first-party header comes first in its .cpp
  * metric-name literals passed to counter("...")/gauge("...")/histogram("...")
    in src/ follow the dotted-lowercase grammar the obs registry enforces at
    runtime (catch bad names at lint time, not first telemetry-enabled run)
  * no `std::function` in the packet-datapath hot-path headers (src/sim/ and
    src/net/): per-event/per-hop callbacks must use vw::SmallFn so the steady
    state never heap-allocates (src/net/fault.hpp is exempt — FaultPlan is a
    cold construction-time scripting API, never on the per-packet path)

Exit status 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
TESTS = REPO / "tests"

HEADER_EXTS = {".hpp", ".h"}
SOURCE_EXTS = {".cpp", ".cc", ".cxx"}

# assert( preceded by start-of-line or non-identifier char, not static_assert.
RAW_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s", re.MULTILINE)
BANNED_IO = re.compile(r"(?<![\w_])(std::cout|std::cerr|printf\s*\()")

# Literal instrument names at resolution sites. Matches the grammar in
# obs::valid_metric_name: dot-separated non-empty runs of [a-z0-9_].
METRIC_CALL = re.compile(r'(?<![\w_])(?:counter|gauge|histogram)\s*\(\s*"([^"]*)"')
METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

# The event-engine/datapath hot path: headers here define the per-event and
# per-hop callback types, which must be SmallFn (zero steady-state
# allocation), never std::function. fault.hpp is cold-path fault scripting.
STD_FUNCTION = re.compile(r"(?<![\w_])std::function\b")
HOT_PATH_DIRS = ("sim", "net")
HOT_PATH_EXEMPT = {"net/fault.hpp"}


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments and string literals so patterns only
    match real code."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            # Keep newlines so line numbers survive.
            chunk = text[i : n if j == -1 else j + 2]
            out.append("\n" * chunk.count("\n"))
            i = n if j == -1 else j + 2
        elif ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append('""')
            i = min(j + 1, n)
        elif ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append("''")
            i = min(j + 1, n)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def main() -> int:
    findings: list[str] = []

    def report(path: Path, line: int, msg: str) -> None:
        findings.append(f"{path.relative_to(REPO)}:{line}: {msg}")

    cpp_files = sorted(
        p
        for root in (SRC, TESTS)
        for p in root.rglob("*")
        if p.suffix in HEADER_EXTS | SOURCE_EXTS
    )

    for path in cpp_files:
        raw = path.read_text(encoding="utf-8")
        code = strip_comments(raw)
        in_src = SRC in path.parents

        if "\t" in raw:
            report(path, line_of(raw, raw.index("\t")), "tab character")
        for i, line in enumerate(raw.splitlines(), start=1):
            if line != line.rstrip():
                report(path, i, "trailing whitespace")

        if (
            in_src
            and path.suffix in HEADER_EXTS
            and path.relative_to(SRC).parts[0] in HOT_PATH_DIRS
            and str(path.relative_to(SRC)) not in HOT_PATH_EXEMPT
        ):
            m = STD_FUNCTION.search(code)
            if m:
                report(path, line_of(code, m.start()),
                       "std::function in a hot-path header; use vw::SmallFn "
                       "(util/small_fn.hpp) so the datapath never allocates per event")

        if path.suffix in HEADER_EXTS:
            first_directive = next(
                (l.strip() for l in raw.splitlines() if l.strip() and not l.strip().startswith("//")),
                "",
            )
            if first_directive != "#pragma once":
                report(path, 1, "header does not start with #pragma once")
            m = USING_NAMESPACE.search(code)
            if m:
                report(path, line_of(code, m.start()), "`using namespace` in header")

        if in_src:
            m = RAW_ASSERT.search(code)
            if m:
                report(path, line_of(code, m.start()),
                       "raw assert(); use VW_REQUIRE/VW_ASSERT from util/check.hpp")
            m = BANNED_IO.search(code)
            if m:
                report(path, line_of(code, m.start()),
                       f"banned IO `{m.group(1)}` in library code; use util/log.hpp")
            # Raw text, not `code`: strip_comments blanks string literals.
            for m in METRIC_CALL.finditer(raw):
                if not METRIC_NAME.match(m.group(1)):
                    report(path, line_of(raw, m.start()),
                           f'invalid metric name literal "{m.group(1)}" '
                           "(want dotted lowercase, e.g. wren.trains.extracted)")

        if in_src and path.suffix in SOURCE_EXTS:
            # First include of a .cpp should be its own header (self-containment check).
            own = path.with_suffix(".hpp")
            if own.exists():
                includes = re.findall(r'#include\s+"([^"]+)"', code)
                expect = str(own.relative_to(SRC))
                if includes and includes[0] != expect:
                    report(path, 1, f'first #include should be "{expect}"')

    if findings:
        print(f"lint.py: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        return 1
    print(f"lint.py: OK ({len(cpp_files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
