#!/usr/bin/env python3
"""Validate telemetry artifacts exported by examples/adaptive_cluster.

Checks a "vw.metrics.v1" metrics JSON document (structure, name grammar,
kind-specific fields, per-kind invariants) and optionally a Chrome
trace_event JSON file. With --require-nonzero, asserts that at least one
counter under each named subsystem prefix has a nonzero value — the CI
smoke proof that instrumentation is actually wired through the stack, not
merely registered.

With --require-present, asserts that each exact metric name exists
regardless of kind or value — used for gauges (e.g. wren.trace.writer.ring)
and for counters that may legitimately be zero (wren.trace.writer.dropped).
A name ending in ".*" is a prefix glob: at least one metric under that
prefix must exist (e.g. wren.federation.* for the whole federation tier).

Usage:
    tools/check_metrics.py metrics.json [--trace trace.json]
                           [--require-nonzero wren,transport,vnet]
                           [--require-present wren.trace.writer.ring,...]

Only the standard library is used. Exit code 0 = all checks passed.
"""

import argparse
import json
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
KINDS = {"counter", "gauge", "histogram"}


class CheckFailure(Exception):
    pass


def fail(message: str) -> None:
    raise CheckFailure(message)


def check_histogram(name: str, m: dict) -> None:
    for field in ("count", "sum", "min", "max", "mean", "p50", "p90", "p99", "buckets"):
        if field not in m:
            fail(f"{name}: histogram missing field {field!r}")
    count = m["count"]
    if not isinstance(count, int) or count < 0:
        fail(f"{name}: histogram count must be a non-negative integer")
    buckets = m["buckets"]
    if not isinstance(buckets, list):
        fail(f"{name}: buckets must be a list")
    bucket_total = 0
    prev_le = None
    for b in buckets:
        if not isinstance(b, dict) or "le" not in b or "count" not in b:
            fail(f"{name}: malformed bucket entry {b!r}")
        if prev_le is not None and b["le"] <= prev_le:
            fail(f"{name}: bucket upper bounds must be strictly increasing")
        prev_le = b["le"]
        bucket_total += b["count"]
    if bucket_total != count:
        fail(f"{name}: bucket counts sum to {bucket_total}, expected {count}")
    if count == 0:
        for field in ("min", "max"):
            if m[field] is not None:
                fail(f"{name}: empty histogram must export {field}=null")
    else:
        if m["min"] is None or m["max"] is None:
            fail(f"{name}: populated histogram must export numeric min/max")
        if m["min"] > m["max"]:
            fail(f"{name}: min {m['min']} > max {m['max']}")
        for q in ("p50", "p90", "p99"):
            if m[q] is None:
                fail(f"{name}: populated histogram must export numeric {q}")
            if not (m["min"] <= m[q] <= m["max"]):
                fail(f"{name}: {q}={m[q]} outside [min, max]")


def check_metrics(doc: dict) -> dict:
    """Validate the document; return {name: metric} for further checks."""
    if doc.get("schema") != "vw.metrics.v1":
        fail(f"unexpected schema: {doc.get('schema')!r}")
    if not isinstance(doc.get("taken_at_s"), (int, float)):
        fail("taken_at_s must be a number")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail("metrics must be a non-empty list")

    by_name = {}
    names = []
    for m in metrics:
        name = m.get("name")
        if not isinstance(name, str) or not METRIC_NAME_RE.match(name):
            fail(f"invalid metric name: {name!r}")
        if name in by_name:
            fail(f"duplicate metric name: {name}")
        kind = m.get("kind")
        if kind not in KINDS:
            fail(f"{name}: unknown kind {kind!r}")
        if kind == "counter":
            if not isinstance(m.get("value"), int) or m["value"] < 0:
                fail(f"{name}: counter value must be a non-negative integer")
        elif kind == "gauge":
            if not isinstance(m.get("value"), (int, float)) and m.get("value") is not None:
                fail(f"{name}: gauge value must be numeric or null")
        else:
            check_histogram(name, m)
        by_name[name] = m
        names.append(name)
    if names != sorted(names):
        fail("metrics are not sorted by name")
    return by_name


def check_nonzero_prefixes(by_name: dict, prefixes: list) -> None:
    for prefix in prefixes:
        hits = [
            m
            for name, m in by_name.items()
            if (name == prefix or name.startswith(prefix + "."))
            and m["kind"] == "counter"
            and m["value"] > 0
        ]
        if not hits:
            fail(f"no nonzero counter under prefix {prefix!r}")
        print(f"  {prefix}: {len(hits)} nonzero counter(s)")


def check_present_names(by_name: dict, names: list) -> None:
    for name in names:
        if name.endswith(".*"):
            prefix = name[:-2]
            hits = [
                n for n in by_name if n == prefix or n.startswith(prefix + ".")
            ]
            if not hits:
                fail(f"no metric under required prefix {prefix!r}")
            print(f"  {name}: {len(hits)} metric(s) present")
            continue
        m = by_name.get(name)
        if m is None:
            fail(f"required metric {name!r} is absent")
        print(f"  {name}: present ({m['kind']})")


def check_trace(doc: dict) -> int:
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")
    for ev in events:
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in ev:
                fail(f"trace event missing field {field!r}: {ev!r}")
        if ev["ph"] not in ("X", "i"):
            fail(f"unexpected trace phase {ev['ph']!r}")
        if ev["ph"] == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                fail(f"complete event needs a non-negative dur: {ev!r}")
        if ev["ts"] < 0:
            fail(f"negative timestamp: {ev!r}")
    return len(events)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="metrics JSON file (vw.metrics.v1)")
    parser.add_argument("--trace", help="Chrome trace_event JSON file to validate")
    parser.add_argument(
        "--require-nonzero",
        default="",
        help="comma-separated subsystem prefixes that must each have a nonzero counter",
    )
    parser.add_argument(
        "--require-present",
        default="",
        help="comma-separated exact metric names that must exist (any kind/value)",
    )
    args = parser.parse_args()

    try:
        with open(args.metrics, encoding="utf-8") as fh:
            by_name = check_metrics(json.load(fh))
        print(f"{args.metrics}: {len(by_name)} metrics, schema OK")

        prefixes = [p for p in args.require_nonzero.split(",") if p]
        if prefixes:
            check_nonzero_prefixes(by_name, prefixes)

        required = [n for n in args.require_present.split(",") if n]
        if required:
            check_present_names(by_name, required)

        if args.trace:
            with open(args.trace, encoding="utf-8") as fh:
                n_events = check_trace(json.load(fh))
            print(f"{args.trace}: {n_events} trace events, structure OK")
    except CheckFailure as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    print("all telemetry checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
