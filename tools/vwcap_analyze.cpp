// vwcap-analyze: per-flow rate/throughput/inter-arrival statistics for a
// vw.trace.v1 capture file, with CSV and Chrome-trace exports (the
// exact-pcap-analyze equivalent — a sanity check on a capture corpus before
// deeper analysis).
//
//   $ vwcap-analyze trace.vwtrace [--csv FILE] [--chrome FILE] [--interval SEC]
//
// The console report and --csv list, per (flow, direction):
//   packets, data packets, acks, payload bytes, wire bytes, duration,
//   mean goodput / wire throughput (Mbps), inter-arrival min/mean/p99 (us).
// --chrome emits trace_event counter samples ("rate_mbps" per flow per
// --interval bucket, default 100 ms) loadable in chrome://tracing / Perfetto.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "wren/offline.hpp"

using namespace vw;

namespace {

struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t acks = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  SimTime first = 0;
  SimTime last = 0;
  std::vector<SimTime> interarrival;  // ns gaps between consecutive records
  SimTime prev = -1;

  void add(const wren::PacketRecord& r) {
    if (packets == 0) first = r.timestamp;
    last = r.timestamp;
    if (prev >= 0) interarrival.push_back(r.timestamp - prev);
    prev = r.timestamp;
    ++packets;
    if (r.is_ack) ++acks;
    if (r.payload_bytes > 0 && !r.is_ack) ++data_packets;
    payload_bytes += r.payload_bytes;
    wire_bytes += r.wire_bytes;
  }

  double duration_s() const { return to_seconds(last - first); }
  double goodput_mbps() const {
    const double d = duration_s();
    return d > 0 ? static_cast<double>(payload_bytes) * 8.0 / d / 1e6 : 0.0;
  }
  double wire_mbps() const {
    const double d = duration_s();
    return d > 0 ? static_cast<double>(wire_bytes) * 8.0 / d / 1e6 : 0.0;
  }
  SimTime ia_quantile(double q) const {
    if (interarrival.empty()) return 0;
    std::vector<SimTime> s = interarrival;
    std::sort(s.begin(), s.end());
    const std::size_t idx =
        std::min(s.size() - 1, static_cast<std::size_t>(q * static_cast<double>(s.size() - 1)));
    return s[idx];
  }
  double ia_mean_us() const {
    if (interarrival.empty()) return 0.0;
    double sum = 0;
    for (SimTime t : interarrival) sum += static_cast<double>(t);
    return sum / static_cast<double>(interarrival.size()) / 1e3;
  }
};

struct GroupKey {
  net::FlowKey flow;
  net::TapDirection dir;
  friend auto operator<=>(const GroupKey&, const GroupKey&) = default;
};

std::string flow_name(const net::FlowKey& f, net::TapDirection dir) {
  return std::to_string(f.src) + ":" + std::to_string(f.src_port) + "->" +
         std::to_string(f.dst) + ":" + std::to_string(f.dst_port) +
         (dir == net::TapDirection::kOutgoing ? " out" : " in");
}

// Minimal JSON string escaping for flow names (digits, :, ->, space only —
// but stay correct if the format ever grows).
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string csv_path;
  std::string chrome_path;
  double interval_s = 0.1;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires an argument\n";
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = need_value(i++);
    } else if (std::strcmp(argv[i], "--chrome") == 0) {
      chrome_path = need_value(i++);
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      interval_s = std::stod(need_value(i++));
    } else if (argv[i][0] == '-') {
      std::cerr << "usage: " << argv[0]
                << " trace.vwtrace [--csv FILE] [--chrome FILE] [--interval SEC]\n";
      return 2;
    } else if (input.empty()) {
      input = argv[i];
    } else {
      std::cerr << "only one input trace is accepted\n";
      return 2;
    }
  }
  if (input.empty() || interval_s <= 0) {
    std::cerr << "usage: " << argv[0]
              << " trace.vwtrace [--csv FILE] [--chrome FILE] [--interval SEC]\n";
    return 2;
  }

  try {
    const wren::BinaryTrace trace = wren::read_trace_binary_file(input);
    std::map<GroupKey, FlowStats> flows;
    for (const wren::PacketRecord& r : trace.records) {
      flows[GroupKey{r.flow, r.direction}].add(r);
    }

    std::cout << "# " << input << ": " << trace.records.size() << " records, "
              << flows.size() << " flow-direction group(s), host " << trace.header.host
              << " shard " << trace.header.shard << ", " << trace.header.dropped
              << " dropped at capture\n";
    std::cout << "flow                          pkts    data    acks   payload_mb  goodput_mbps"
                 "  wire_mbps  ia_mean_us  ia_p99_us\n";
    for (const auto& [key, st] : flows) {
      std::string name = flow_name(key.flow, key.dir);
      name.resize(std::max<std::size_t>(name.size(), 28), ' ');
      std::printf("%s %7llu %7llu %7llu %12.3f %13.3f %10.3f %11.1f %10.1f\n", name.c_str(),
                  static_cast<unsigned long long>(st.packets),
                  static_cast<unsigned long long>(st.data_packets),
                  static_cast<unsigned long long>(st.acks),
                  static_cast<double>(st.payload_bytes) / 1e6, st.goodput_mbps(), st.wire_mbps(),
                  st.ia_mean_us(), static_cast<double>(st.ia_quantile(0.99)) / 1e3);
    }

    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot open " << csv_path << "\n";
        return 1;
      }
      csv << "src,src_port,dst,dst_port,direction,packets,data_packets,acks,payload_bytes,"
             "wire_bytes,duration_s,goodput_mbps,wire_mbps,ia_mean_us,ia_p50_us,ia_p99_us\n";
      for (const auto& [key, st] : flows) {
        csv << key.flow.src << ',' << key.flow.src_port << ',' << key.flow.dst << ','
            << key.flow.dst_port << ','
            << (key.dir == net::TapDirection::kOutgoing ? "out" : "in") << ',' << st.packets
            << ',' << st.data_packets << ',' << st.acks << ',' << st.payload_bytes << ','
            << st.wire_bytes << ',' << st.duration_s() << ',' << st.goodput_mbps() << ','
            << st.wire_mbps() << ',' << st.ia_mean_us() << ','
            << static_cast<double>(st.ia_quantile(0.5)) / 1e3 << ','
            << static_cast<double>(st.ia_quantile(0.99)) / 1e3 << '\n';
      }
      std::cerr << "wrote " << csv_path << "\n";
    }

    if (!chrome_path.empty()) {
      // Counter samples: wire rate per flow per interval bucket. ts/dur are
      // microseconds in the trace_event format.
      const SimTime bucket_ns = seconds(interval_s);
      std::map<GroupKey, std::map<SimTime, std::uint64_t>> buckets;
      for (const wren::PacketRecord& r : trace.records) {
        buckets[GroupKey{r.flow, r.direction}][r.timestamp / bucket_ns] += r.wire_bytes;
      }
      std::ofstream ch(chrome_path);
      if (!ch) {
        std::cerr << "cannot open " << chrome_path << "\n";
        return 1;
      }
      ch << "{\"traceEvents\":[";
      bool first = true;
      for (const auto& [key, series] : buckets) {
        const std::string name = json_escape(flow_name(key.flow, key.dir));
        for (const auto& [bucket, bytes] : series) {
          const double mbps =
              static_cast<double>(bytes) * 8.0 / to_seconds(bucket_ns) / 1e6;
          if (!first) ch << ',';
          first = false;
          ch << "{\"name\":\"" << name << "\",\"cat\":\"capture\",\"ph\":\"C\",\"ts\":"
             << (bucket * bucket_ns) / 1000 << ",\"pid\":1,\"tid\":1,\"args\":{\"rate_mbps\":"
             << mbps << "}}";
        }
      }
      ch << "]}\n";
      std::cerr << "wrote " << chrome_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "vwcap-analyze: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
