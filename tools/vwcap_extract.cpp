// vwcap-extract: merge vw.trace.v1 capture shards into one time-ordered
// trace, optionally filtering by flow endpoints / ports / time window, in
// binary or text output format (the exact-pcap-extract equivalent).
//
//   $ vwcap-extract [options] shard.vwtrace [shard2.vwtrace ...]
//     -o FILE          output path (default: merged.vwtrace)
//     --text           write the text archive format instead of binary
//     --src N          keep records with FlowKey.src == N
//     --dst N          keep records with FlowKey.dst == N
//     --src-port N     keep records with FlowKey.src_port == N
//     --dst-port N     keep records with FlowKey.dst_port == N
//     --from SEC       keep records with timestamp >= SEC (seconds)
//     --to SEC         keep records with timestamp <= SEC (seconds)
//     --useful         keep only analysis-relevant records (outgoing data +
//                      incoming pure ACKs), like wren::filter_useful
//
// The merged header carries host = 0xffffffff (multi-host corpus), shard 0,
// and the summed capture drop counts of the inputs. Exit status: 0 on
// success, 1 on any I/O or parse failure, 2 on usage errors.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "wren/offline.hpp"

using namespace vw;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [-o FILE] [--text] [--src N] [--dst N] [--src-port N] [--dst-port N]\n"
               "       [--from SEC] [--to SEC] [--useful] shard.vwtrace [...]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "merged.vwtrace";
  bool text = false;
  wren::TraceFilter filter;
  std::vector<std::string> inputs;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires an argument\n";
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      out_path = need_value(i++);
    } else if (std::strcmp(argv[i], "--text") == 0) {
      text = true;
    } else if (std::strcmp(argv[i], "--src") == 0) {
      filter.src = static_cast<net::NodeId>(std::stoul(need_value(i++)));
    } else if (std::strcmp(argv[i], "--dst") == 0) {
      filter.dst = static_cast<net::NodeId>(std::stoul(need_value(i++)));
    } else if (std::strcmp(argv[i], "--src-port") == 0) {
      filter.src_port = static_cast<std::uint16_t>(std::stoul(need_value(i++)));
    } else if (std::strcmp(argv[i], "--dst-port") == 0) {
      filter.dst_port = static_cast<std::uint16_t>(std::stoul(need_value(i++)));
    } else if (std::strcmp(argv[i], "--from") == 0) {
      filter.from = seconds(std::stod(need_value(i++)));
    } else if (std::strcmp(argv[i], "--to") == 0) {
      filter.to = seconds(std::stod(need_value(i++)));
    } else if (std::strcmp(argv[i], "--useful") == 0) {
      filter.useful_only = true;
    } else if (argv[i][0] == '-') {
      std::cerr << "unknown option: " << argv[i] << "\n";
      usage(argv[0]);
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) usage(argv[0]);

  try {
    std::vector<std::vector<wren::PacketRecord>> shards;
    std::uint64_t dropped = 0;
    std::uint64_t total_in = 0;
    for (const std::string& path : inputs) {
      wren::BinaryTrace trace = wren::read_trace_binary_file(path);
      dropped += trace.header.dropped;
      total_in += trace.records.size();
      std::cerr << path << ": host " << trace.header.host << " shard " << trace.header.shard
                << ", " << trace.records.size() << " records, " << trace.header.dropped
                << " dropped at capture\n";
      shards.push_back(std::move(trace.records));
    }

    std::vector<wren::PacketRecord> merged =
        wren::apply_filter(wren::merge_traces(shards), filter);

    std::ofstream out(out_path, text ? std::ios::out : std::ios::out | std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    if (text) {
      wren::write_trace(out, merged);
    } else {
      wren::TraceFileHeader header;
      header.host = net::kInvalidNode;  // multi-host corpus
      header.dropped = dropped;
      wren::write_trace_binary(out, header, merged);
    }
    std::cerr << "merged " << total_in << " records from " << inputs.size() << " shard(s) -> "
              << merged.size() << " after filtering -> " << out_path
              << (text ? " (text)" : " (vw.trace.v1)") << "\n";
  } catch (const std::exception& e) {
    std::cerr << "vwcap-extract: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
