#!/usr/bin/env python3
"""vwlint — semantic determinism / hygiene analyzer for the Virtuoso/Wren tree.

Subsumes the old regex lint.py (one entry point, same exit-code contract:
0 clean, 1 findings) and adds the semantic rule set that guards the
reproduction's core claim — bit-identical runs per seed — before the sharded
multi-core engine multiplies the concurrency surface:

  R1 virtual-clock purity    no wall-clock sources (std::chrono::*_clock::now,
                             time(), clock(), gettimeofday, clock_gettime) in
                             src/ outside the whitelist (util/time.hpp).
  R2 seeded randomness only  no std::random_device, rand()/srand(), or
                             default-constructed std::mt19937[_64] outside
                             util/rng.{hpp,cpp}; all draws flow from
                             RngService's named streams.
  R3 ordered iteration       no range-for / .begin() iteration over
                             std::unordered_map/set in ordering-sensitive
                             modules (sim, net, vadapt, wren, vnet) without a
                             `// vwlint: unordered-ok(<reason>)` waiver —
                             hash order must never feed event order, float
                             accumulation, or trace/signature output.
  R4 hot-path allocation     no std::function in src/sim+src/net headers
                             (net/fault.hpp exempt) and no by-value
                             std::shared_ptr parameters there: per-packet
                             signatures must not churn refcounts.
  R5 contract coverage       VW_REQUIRE/VW_ENSURE count per public header must
                             not regress vs tools/vwlint_baseline.json.

  hygiene                    the legacy checks: #pragma once, no `using
                             namespace` in headers, no raw assert(), no
                             std::cout/printf in src/, tabs/trailing
                             whitespace, include order, metric-name grammar.

Waiver grammar (audited by --list-waivers): a finding on line N is suppressed
when line N or line N-1 carries `// vwlint: <tag>(<reason>)` with the tag
matching the rule (wallclock-ok for R1, rand-ok for R2, unordered-ok for R3,
alloc-ok for R4). The reason is mandatory; an empty reason is itself a
finding.

Analysis modes: `--semantic` parses every .cpp TU with libclang over
compile_commands.json (cursor-level resolution, no false positives from
strings/macros); headers and any TU that fails to parse are still covered by
the token-level scanner in the same run, so both modes see the whole tree.
When the libclang python bindings are unavailable the analyzer degrades to
the token-level scanner everywhere, which is tuned to produce the same
verdicts on this tree; CI runs the semantic mode on the clang job.

Usage:
  vwlint.py                      # token-level scan of src/ + tests/
  vwlint.py --semantic           # libclang scan (token fallback)
  vwlint.py --rules R1,R3        # subset of rules
  vwlint.py --list-waivers       # audit table of every waiver, exit 0
  vwlint.py --update-baseline    # rewrite the R5 contract-coverage baseline
  vwlint.py FILE...              # scan explicit files (fixture/test mode:
                                 # treated as src/ files in a sensitive module)
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
TESTS = REPO / "tests"
FIXTURES = TESTS / "lint_fixtures"  # intentionally-bad inputs; never scanned
BASELINE = REPO / "tools" / "vwlint_baseline.json"

HEADER_EXTS = {".hpp", ".h"}
SOURCE_EXTS = {".cpp", ".cc", ".cxx"}

# Modules where iteration order can feed event order, float accumulation, or
# trace/signature bytes — R3's scope.
ORDER_SENSITIVE_MODULES = {"sim", "net", "vadapt", "wren", "vnet"}

# R1 whitelist: files allowed to touch the wall clock (the virtual-time shim
# layer itself). Everything else in src/ must take a ClockFn / SimTime.
WALLCLOCK_WHITELIST = {"util/time.hpp"}

# R2 home: the deterministic randomness service.
RNG_HOME = {"util/rng.hpp", "util/rng.cpp"}

# R4 scope: the event-engine / datapath hot path.
HOT_PATH_DIRS = ("sim", "net")
HOT_PATH_EXEMPT = {"net/fault.hpp"}  # cold construction-time scripting API
# Headers outside the hot-path dirs whose code still runs per packet: the
# capture datapath (tap callback -> lock-free ring -> writer thread).
HOT_PATH_EXTRA = {
    "util/spsc_ring.hpp",
    "wren/trace_writer.hpp",
    "wren/capture.hpp",
}

ALL_RULES = ("hygiene", "R1", "R2", "R3", "R4", "R5")

WAIVER_TAGS = {
    "R1": "wallclock-ok",
    "R2": "rand-ok",
    "R3": "unordered-ok",
    "R4": "alloc-ok",
}

WAIVER_RE = re.compile(r"//\s*vwlint:\s*([a-z-]+)\(([^)]*)\)")

# --- R1 patterns -------------------------------------------------------------
WALLCLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
     "std::chrono::{0} wall clock"),
    (re.compile(r"(?<![\w_.:])(gettimeofday|clock_gettime|timespec_get)\s*\("),
     "{0}() wall clock"),
    (re.compile(r"(?<![\w_.:~])(time|clock)\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "C {0}() wall clock"),
]

# --- R2 patterns -------------------------------------------------------------
RANDOM_PATTERNS = [
    (re.compile(r"std::random_device"), "std::random_device (non-deterministic seed source)"),
    (re.compile(r"(?<![\w_.:])s?rand\s*\("), "C rand()/srand() (global hidden state)"),
    (re.compile(r"std::mt19937(?:_64)?\s+\w+\s*;"),
     "default-constructed std::mt19937 (fixed implicit seed, bypasses RngService)"),
    (re.compile(r"std::mt19937(?:_64)?\s*(?:\(\s*\)|\{\s*\})"),
     "default-constructed std::mt19937 (fixed implicit seed, bypasses RngService)"),
]

# --- R3 patterns -------------------------------------------------------------
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}()]*>\s+(\w+)\s*(?:;|=|\{)")
RANGE_FOR = re.compile(r"for\s*\([^;()]*?:\s*(?:this->)?([\w.>-]+)\s*\)")
BEGIN_CALL = re.compile(r"(?<![\w_])(\w+)\s*\.\s*c?begin\s*\(")

# --- R4 patterns -------------------------------------------------------------
STD_FUNCTION = re.compile(r"(?<![\w_])std::function\b")
# A shared_ptr followed by a parameter name and `,` or `)` is a by-value
# parameter; members/locals end in `;`, `=` or `{`.
SHARED_PTR_BYVAL = re.compile(
    r"std::shared_ptr\s*<[^<>;]*(?:<[^<>]*>)?[^<>;]*>\s+\w+\s*[,)]")

# --- R5 patterns -------------------------------------------------------------
CONTRACT_MACRO = re.compile(r"(?<![\w_])VW_(?:REQUIRE|ENSURE)\s*\(")

# --- legacy hygiene patterns -------------------------------------------------
RAW_ASSERT = re.compile(r"(?<![\w_])assert\s*\(")
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s", re.MULTILINE)
BANNED_IO = re.compile(r"(?<![\w_])(std::cout|std::cerr|printf\s*\()")
METRIC_CALL = re.compile(r'(?<![\w_])(?:counter|gauge|histogram)\s*\(\s*"([^"]*)"')
METRIC_NAME = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


@dataclass
class Finding:
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        try:
            rel = self.path.relative_to(REPO)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Waiver:
    path: Path
    line: int
    tag: str
    reason: str
    used: bool = False


@dataclass
class FileContext:
    """Where a file sits in the tree, which decides which rules apply."""

    path: Path
    raw: str
    code: str  # comments and string/char literals stripped, newlines kept
    lines: list[str] = field(default_factory=list)
    is_src: bool = False
    is_header: bool = False
    rel_src: str = ""  # path relative to src/ ("" outside src/)
    module: str = ""   # first directory under src/ ("" outside src/)
    order_sensitive: bool = False
    hot_path_header: bool = False
    waivers: list[Waiver] = field(default_factory=list)


# R"delim( at the opening quote of a raw string literal; the delimiter is at
# most 16 chars and cannot contain space, parens, backslash, or newline.
RAW_STRING_OPEN = re.compile(r'"([^ ()\\\t\v\f\r\n]{0,16})\(')


def _raw_string_end(text: str, i: int) -> int | None:
    """`i` points at the opening quote of a raw string literal (an `R` prefix
    precedes it). Returns the offset just past the closing quote, or None if
    the literal is malformed/unterminated."""
    m = RAW_STRING_OPEN.match(text, i)
    if m is None:
        return None
    close = ")" + m.group(1) + '"'
    j = text.find(close, m.end())
    return None if j == -1 else j + len(close)


def _is_raw_string_quote(text: str, i: int) -> bool:
    """True when the quote at `i` is opened by a raw-string prefix
    (R, uR, u8R, UR, LR) rather than being an ordinary string literal."""
    j = i - 1
    if j < 0 or text[j] != "R":
        return False
    j -= 1
    if j >= 1 and text[j] == "8" and text[j - 1] == "u":
        j -= 2
    elif j >= 0 and text[j] in "uUL":
        j -= 1
    # The prefix must not be the tail of a longer identifier (e.g. `FooR"x"`).
    return j < 0 or not (text[j].isalnum() or text[j] == "_")


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments and string literals so patterns only
    match real code. Newlines are preserved so line numbers survive. Raw
    string literals (R"delim(...)delim") are recognized so embedded quotes
    and backslashes cannot desync the scan."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            chunk = text[i : n if j == -1 else j + 2]
            out.append("\n" * chunk.count("\n"))
            i = n if j == -1 else j + 2
        elif ch == '"' and _is_raw_string_quote(text, i):
            end = _raw_string_end(text, i)
            if end is None:  # malformed: blank the rest, keep line numbers
                out.append('""' + "\n" * text.count("\n", i))
                i = n
            else:
                out.append('""' + "\n" * text.count("\n", i, end))
                i = end
        elif ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append('""')
            i = min(j + 1, n)
        elif ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append("''")
            i = min(j + 1, n)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def make_context(path: Path, *, fixture_mode: bool = False) -> FileContext:
    raw = path.read_text(encoding="utf-8")
    ctx = FileContext(path=path, raw=raw, code=strip_comments(raw))
    ctx.lines = raw.splitlines()
    ctx.is_header = path.suffix in HEADER_EXTS
    if fixture_mode:
        # Explicit file arguments (fixtures under test) are analyzed as if
        # they lived in an ordering-sensitive src/ module.
        ctx.is_src = True
        ctx.order_sensitive = True
        ctx.hot_path_header = ctx.is_header
        ctx.rel_src = path.name
    elif SRC in path.parents:
        ctx.is_src = True
        ctx.rel_src = str(path.relative_to(SRC))
        ctx.module = path.relative_to(SRC).parts[0]
        ctx.order_sensitive = ctx.module in ORDER_SENSITIVE_MODULES
        ctx.hot_path_header = ctx.is_header and (
            (ctx.module in HOT_PATH_DIRS and ctx.rel_src not in HOT_PATH_EXEMPT)
            or ctx.rel_src in HOT_PATH_EXTRA
        )
    for m in WAIVER_RE.finditer(raw):
        ctx.waivers.append(
            Waiver(path=path, line=line_of(raw, m.start()),
                   tag=m.group(1), reason=m.group(2).strip()))
    return ctx


def waived(ctx: FileContext, rule: str, line: int) -> bool:
    """A finding is waived by a matching tag on its own line or the line
    above. Marks the waiver used for the audit table."""
    tag = WAIVER_TAGS.get(rule)
    if tag is None:
        return False
    hit = False
    for w in ctx.waivers:
        if w.tag == tag and w.line in (line, line - 1):
            w.used = True
            hit = True
    return hit


# --- rule implementations (token level) --------------------------------------


def check_r1_wallclock(ctx: FileContext) -> list[Finding]:
    if not ctx.is_src or ctx.rel_src in WALLCLOCK_WHITELIST:
        return []
    out = []
    for pattern, msg in WALLCLOCK_PATTERNS:
        for m in pattern.finditer(ctx.code):
            line = line_of(ctx.code, m.start())
            if waived(ctx, "R1", line):
                continue
            out.append(Finding(ctx.path, line, "R1",
                               msg.format(m.group(1)) +
                               "; simulated code takes virtual time (util/time.hpp SimTime "
                               "/ ClockFn), or add `// vwlint: wallclock-ok(<reason>)`"))
    return out


def check_r2_random(ctx: FileContext) -> list[Finding]:
    if not ctx.is_src or ctx.rel_src in RNG_HOME:
        return []
    out = []
    for pattern, msg in RANDOM_PATTERNS:
        for m in pattern.finditer(ctx.code):
            line = line_of(ctx.code, m.start())
            if waived(ctx, "R2", line):
                continue
            out.append(Finding(ctx.path, line, "R2",
                               msg + "; draw from a named RngService stream "
                               "(util/rng.hpp), or add `// vwlint: rand-ok(<reason>)`"))
    return out


def unordered_names(code: str) -> set[str]:
    """Identifiers declared in this file with an unordered container type
    (members, locals, params — anywhere the declaration regex can see)."""
    return {m.group(1) for m in UNORDERED_DECL.finditer(code)}


def check_r3_unordered(ctx: FileContext) -> list[Finding]:
    if not (ctx.is_src and ctx.order_sensitive):
        return []
    names = unordered_names(ctx.code)
    # Members declared in the matching header are iterated from the .cpp.
    if ctx.path.suffix in SOURCE_EXTS:
        own = ctx.path.with_suffix(".hpp")
        if own.exists():
            names |= unordered_names(strip_comments(own.read_text(encoding="utf-8")))
    if not names:
        return []
    out = []
    seen: set[tuple[int, str]] = set()

    def flag(line: int, name: str, how: str) -> None:
        if (line, name) in seen or waived(ctx, "R3", line):
            return
        seen.add((line, name))
        out.append(Finding(ctx.path, line, "R3",
                           f"{how} over unordered container `{name}` in "
                           f"ordering-sensitive module; hash order must not feed "
                           f"event order / float accumulation / signatures — iterate "
                           f"a sorted copy or add `// vwlint: unordered-ok(<reason>)`"))

    for m in RANGE_FOR.finditer(ctx.code):
        expr = m.group(1)
        leaf = re.split(r"[.>-]", expr)[-1] or expr
        if leaf in names:
            flag(line_of(ctx.code, m.start()), leaf, "range-for")
    for m in BEGIN_CALL.finditer(ctx.code):
        if m.group(1) in names:
            flag(line_of(ctx.code, m.start()), m.group(1), "iterator loop")
    return out


def check_r4_alloc(ctx: FileContext) -> list[Finding]:
    if not ctx.hot_path_header:
        return []
    out = []
    for m in STD_FUNCTION.finditer(ctx.code):
        line = line_of(ctx.code, m.start())
        if waived(ctx, "R4", line):
            continue
        out.append(Finding(ctx.path, line, "R4",
                           "std::function in a hot-path header; use vw::SmallFn "
                           "(util/small_fn.hpp) so the datapath never allocates per event"))
    for m in SHARED_PTR_BYVAL.finditer(ctx.code):
        line = line_of(ctx.code, m.start())
        if waived(ctx, "R4", line):
            continue
        out.append(Finding(ctx.path, line, "R4",
                           "by-value std::shared_ptr parameter in a hot-path header; "
                           "pass const& (or move) so per-packet calls never touch the "
                           "refcount, or add `// vwlint: alloc-ok(<reason>)`"))
    return out


def contract_counts(files: list[FileContext]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ctx in files:
        if ctx.is_src and ctx.is_header and ctx.rel_src:
            # Skip #define lines so util/check.hpp's own macro definitions
            # don't count as call sites.
            code = "\n".join(l for l in ctx.code.splitlines()
                             if not l.lstrip().startswith("#define"))
            counts[f"src/{ctx.rel_src}"] = len(CONTRACT_MACRO.findall(code))
    return dict(sorted(counts.items()))


def check_r5_contracts(files: list[FileContext], baseline_path: Path) -> list[Finding]:
    if not baseline_path.exists():
        return [Finding(baseline_path, 1, "R5",
                        "contract-coverage baseline missing; run "
                        "`tools/vwlint.py --update-baseline` and commit it")]
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    expected: dict[str, int] = baseline.get("contracts", {})
    current = contract_counts(files)
    out = []
    for rel, want in sorted(expected.items()):
        have = current.get(rel)
        if have is None:
            out.append(Finding(baseline_path, 1, "R5",
                               f"{rel} is in the baseline but no longer exists; "
                               f"run --update-baseline if the removal is intentional"))
        elif have < want:
            out.append(Finding(REPO / rel, 1, "R5",
                               f"VW_REQUIRE/VW_ENSURE coverage regressed: {have} < "
                               f"baseline {want}; restore the contracts or justify via "
                               f"--update-baseline in the same change"))
    return out


def check_hygiene(ctx: FileContext) -> list[Finding]:
    out = []
    path, raw, code = ctx.path, ctx.raw, ctx.code

    if "\t" in raw:
        out.append(Finding(path, line_of(raw, raw.index("\t")), "hygiene", "tab character"))
    for i, line in enumerate(ctx.lines, start=1):
        if line != line.rstrip():
            out.append(Finding(path, i, "hygiene", "trailing whitespace"))

    if ctx.is_header:
        first_directive = next(
            (l.strip() for l in ctx.lines if l.strip() and not l.strip().startswith("//")),
            "",
        )
        if first_directive != "#pragma once":
            out.append(Finding(path, 1, "hygiene", "header does not start with #pragma once"))
        m = USING_NAMESPACE.search(code)
        if m:
            out.append(Finding(path, line_of(code, m.start()), "hygiene",
                               "`using namespace` in header"))

    if ctx.is_src:
        m = RAW_ASSERT.search(code)
        if m:
            out.append(Finding(path, line_of(code, m.start()), "hygiene",
                               "raw assert(); use VW_REQUIRE/VW_ASSERT from util/check.hpp"))
        m = BANNED_IO.search(code)
        if m:
            out.append(Finding(path, line_of(code, m.start()), "hygiene",
                               f"banned IO `{m.group(1)}` in library code; use util/log.hpp"))
        # Raw text, not `code`: strip_comments blanks string literals.
        for m in METRIC_CALL.finditer(raw):
            if not METRIC_NAME.match(m.group(1)):
                out.append(Finding(path, line_of(raw, m.start()), "hygiene",
                                   f'invalid metric name literal "{m.group(1)}" '
                                   "(want dotted lowercase, e.g. wren.trains.extracted)"))

    if ctx.is_src and path.suffix in SOURCE_EXTS:
        own = path.with_suffix(".hpp")
        if own.exists():
            includes = re.findall(r'#include\s+"([^"]+)"', code)
            expect = ctx.rel_src[: -len(path.suffix)] + ".hpp"
            if includes and includes[0] != expect:
                out.append(Finding(path, 1, "hygiene",
                                   f'first #include should be "{expect}"'))

    # Waivers with an empty reason defeat the audit trail.
    for w in ctx.waivers:
        if not w.reason:
            out.append(Finding(path, w.line, "hygiene",
                               f"vwlint waiver `{w.tag}` has an empty reason"))
    return out


# --- semantic (libclang) layer ----------------------------------------------

# Wall-clock callees by qualified name, for cursor-level resolution.
SEMANTIC_WALLCLOCK_CALLEES = {
    "std::chrono::system_clock::now", "std::chrono::steady_clock::now",
    "std::chrono::high_resolution_clock::now",
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
}
SEMANTIC_RANDOM_TYPES = {"std::random_device"}
SEMANTIC_RANDOM_CALLEES = {"rand", "srand"}


def clean_compile_args(arguments: list[str], filename: str) -> list[str]:
    """Strip a compile-command argv down to the flags index.parse accepts:
    one pass dropping -c (a bare flag), -o plus its operand, and the source
    file itself (matched against the database's record of it, so .cxx and
    relative/absolute spellings are handled). The compiler binary is
    arguments[0] and is skipped."""
    src_name = Path(filename).name
    cleaned: list[str] = []
    args_iter = iter(arguments[1:])
    for a in args_iter:
        if a == "-c":
            continue
        if a == "-o":
            next(args_iter, None)
            continue
        if a == filename or (
                Path(a).suffix in SOURCE_EXTS and Path(a).name == src_name):
            continue
        cleaned.append(a)
    return cleaned


def try_semantic(files: list[FileContext], compile_commands: Path,
                 rules: set[str]) -> tuple[list[Finding], set[Path]] | None:
    """libclang pass over the compilation database. Returns the semantic
    findings plus the set of files actually covered by a parsed TU; the
    caller runs the token-level rules on everything else (headers have no
    compile commands, and a TU can fail to parse). Returns None when the
    bindings (or the database) are unavailable — then the token-level
    verdicts cover the whole tree."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        db = cindex.CompilationDatabase.fromDirectory(str(compile_commands.parent))
    except Exception:
        return None

    findings: list[Finding] = []
    index = cindex.Index.create()

    def qualified(cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def visit(cursor, ctx: FileContext) -> None:
        loc = cursor.location
        if loc.file is None or str(loc.file) != str(ctx.path):
            for child in cursor.get_children():
                visit(child, ctx)
            return
        if "R1" in rules and cursor.kind == cindex.CursorKind.CALL_EXPR:
            callee = cursor.referenced
            if callee is not None and qualified(callee) in SEMANTIC_WALLCLOCK_CALLEES:
                if ctx.rel_src not in WALLCLOCK_WHITELIST and not waived(ctx, "R1", loc.line):
                    findings.append(Finding(ctx.path, loc.line, "R1",
                                            f"call to wall clock `{qualified(callee)}`"))
        if "R2" in rules:
            if cursor.kind == cindex.CursorKind.CALL_EXPR:
                callee = cursor.referenced
                if callee is not None and qualified(callee) in SEMANTIC_RANDOM_CALLEES:
                    if ctx.rel_src not in RNG_HOME and not waived(ctx, "R2", loc.line):
                        findings.append(Finding(ctx.path, loc.line, "R2",
                                                f"call to `{qualified(callee)}`"))
            if cursor.kind == cindex.CursorKind.VAR_DECL:
                spelling = cursor.type.get_canonical().spelling
                if ("random_device" in spelling or
                        ("mersenne_twister" in spelling and
                         not any(ch.kind == cindex.CursorKind.CALL_EXPR or
                                 ch.kind == cindex.CursorKind.UNEXPOSED_EXPR
                                 for ch in cursor.get_children()))):
                    if ctx.rel_src not in RNG_HOME and not waived(ctx, "R2", loc.line):
                        findings.append(Finding(ctx.path, loc.line, "R2",
                                                f"non-deterministic RNG `{spelling}`"))
        if ("R3" in rules and ctx.order_sensitive and
                cursor.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT):
            children = list(cursor.get_children())
            if children:
                range_t = children[-2].type.get_canonical().spelling if len(children) >= 2 else ""
                if "unordered_map" in range_t or "unordered_set" in range_t:
                    if not waived(ctx, "R3", loc.line):
                        findings.append(Finding(ctx.path, loc.line, "R3",
                                                f"range-for over `{range_t}`"))
        for child in cursor.get_children():
            visit(child, ctx)

    covered: set[Path] = set()
    for ctx in files:
        if ctx.path.suffix not in SOURCE_EXTS or not ctx.is_src:
            continue
        cmds = db.getCompileCommands(str(ctx.path))
        if not cmds:
            continue
        cmd = cmds[0]
        cleaned = clean_compile_args(list(cmd.arguments), cmd.filename)
        try:
            tu = index.parse(str(ctx.path), args=cleaned)
            fatal = any(d.severity >= cindex.Diagnostic.Fatal
                        for d in tu.diagnostics)
        except Exception as exc:
            tu, fatal = None, True
            print(f"vwlint: semantic parse failed for "
                  f"{ctx.path.relative_to(REPO)}: {exc}")
        if tu is None or fatal:
            print(f"vwlint: token-level fallback for "
                  f"{ctx.path.relative_to(REPO)} (TU did not parse cleanly)")
            continue
        covered.add(ctx.path)
        visit(tu.cursor, ctx)

    return (findings, covered) if covered else None


# --- driver ------------------------------------------------------------------


def collect_tree_files() -> list[Path]:
    return sorted(
        p
        for root in (SRC, TESTS)
        for p in root.rglob("*")
        if p.suffix in HEADER_EXTS | SOURCE_EXTS and FIXTURES not in p.parents
    )


def list_waivers(files: list[FileContext]) -> None:
    rows = [w for ctx in files for w in ctx.waivers]
    if not rows:
        print("vwlint: no waivers in the tree")
        return
    width = max(len(f"{w.path.relative_to(REPO)}:{w.line}") for w in rows)
    print(f"vwlint: {len(rows)} waiver(s)")
    for w in sorted(rows, key=lambda w: (str(w.path), w.line)):
        where = f"{w.path.relative_to(REPO)}:{w.line}"
        print(f"  {where:<{width}}  {w.tag:<14} {w.reason or '<EMPTY REASON>'}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--semantic", action="store_true",
                    help="use libclang over compile_commands.json when available")
    ap.add_argument("--rules", default="all",
                    help="comma list from {hygiene,R1,R2,R3,R4,R5} or 'all'")
    ap.add_argument("--list-waivers", action="store_true",
                    help="print every waiver with its reason and exit 0")
    ap.add_argument("--compile-commands", type=Path,
                    default=REPO / "build" / "compile_commands.json",
                    help="compilation database for --semantic")
    ap.add_argument("--baseline", type=Path, default=BASELINE,
                    help="R5 contract-coverage baseline json")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the R5 baseline from the current tree and exit")
    ap.add_argument("paths", nargs="*", type=Path,
                    help="explicit files to scan (fixture mode: treated as "
                         "src/ files in an ordering-sensitive module)")
    opts = ap.parse_args(argv)

    if opts.rules == "all":
        rules = set(ALL_RULES)
    else:
        rules = {r.strip() for r in opts.rules.split(",") if r.strip()}
        unknown = rules - set(ALL_RULES)
        if unknown:
            ap.error(f"unknown rules: {sorted(unknown)} (choose from {ALL_RULES})")

    fixture_mode = bool(opts.paths)
    paths = [p.resolve() for p in opts.paths] if fixture_mode else collect_tree_files()
    files = [make_context(p, fixture_mode=fixture_mode) for p in paths]

    if opts.list_waivers:
        list_waivers(files)
        return 0

    if opts.update_baseline:
        counts = contract_counts(files)
        opts.baseline.write_text(json.dumps(
            {"comment": "VW_REQUIRE/VW_ENSURE count per public header; vwlint R5 "
                        "fails when a header drops below its baseline. Regenerate "
                        "with tools/vwlint.py --update-baseline.",
             "contracts": counts}, indent=2) + "\n", encoding="utf-8")
        print(f"vwlint: baseline updated ({len(counts)} headers) -> "
              f"{opts.baseline.relative_to(REPO)}")
        return 0

    findings: list[Finding] = []

    semantic_findings: list[Finding] | None = None
    semantic_covered: set[Path] = set()
    if opts.semantic:
        result = try_semantic(files, opts.compile_commands,
                              rules & {"R1", "R2", "R3"})
        if result is None:
            print("vwlint: libclang unavailable; token-level fallback "
                  "(same verdict set on this tree)")
        else:
            semantic_findings, semantic_covered = result

    for ctx in files:
        if "hygiene" in rules:
            findings.extend(check_hygiene(ctx))
        # Token-level R1-R3 still cover every file the semantic pass did not
        # parse as a TU — all headers (which have no compile commands) and
        # any .cpp whose TU failed — so a wall-clock call in a src/ header
        # cannot slip through --semantic.
        if ctx.path not in semantic_covered:
            if "R1" in rules:
                findings.extend(check_r1_wallclock(ctx))
            if "R2" in rules:
                findings.extend(check_r2_random(ctx))
            if "R3" in rules:
                findings.extend(check_r3_unordered(ctx))
        if "R4" in rules:
            findings.extend(check_r4_alloc(ctx))
    if semantic_findings is not None:
        findings.extend(semantic_findings)

    if "R5" in rules and not fixture_mode:
        findings.extend(check_r5_contracts(files, opts.baseline))

    if findings:
        print(f"vwlint: {len(findings)} finding(s)")
        for f in sorted(findings, key=lambda f: (str(f.path), f.line)):
            print(f"  {f.render()}")
        return 1

    n_waivers = sum(len(ctx.waivers) for ctx in files)
    mode = ("semantic+token-headers" if (opts.semantic and semantic_findings is not None)
            else "token")
    print(f"vwlint: OK ({len(files)} files clean, {mode} mode, "
          f"rules={','.join(sorted(rules))}, {n_waivers} waiver(s) — "
          f"audit with --list-waivers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
