// Figure 8 reproduction: adaptation performance while mapping a 4-VM
// all-to-all application onto the NWU / W&M testbed.
//
// The capacity graph is the measured TTCP matrix of Figure 6. The solution
// space (4 VMs onto 4 hosts) is small enough to enumerate, giving the true
// optimum. We plot, per SA iteration: SA from a random start, SA seeded
// with the greedy heuristic (SA+GH), the best-so-far of the seeded run
// (SA+GH+B), plus the two flat reference lines (GH and optimal).
//
// Output: CSV iteration, sa, sa_gh, sa_gh_best, gh, optimal (cost = Eq. 1,
// in Mb/s of residual bottleneck capacity).

#include <iostream>

#include "topo/testbed.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/enumerate.hpp"
#include "vadapt/greedy.hpp"

using namespace vw;
using namespace vw::vadapt;

int main() {
  const CapacityGraph graph = topo::nwu_wm_capacity_graph();
  // 4-VM all-to-all; intensity chosen so cross-site paths are stressed but
  // feasible (the thin Abilene share is ~10 Mb/s).
  std::vector<Demand> demands;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) demands.push_back({i, j, 1.5e6});
    }
  }
  const std::size_t n_vms = 4;
  const Objective objective{};

  const GreedyResult gh = greedy_heuristic(graph, demands, n_vms, objective);
  const ExhaustiveResult opt = exhaustive_search(graph, demands, n_vms, objective);

  AnnealingParams params;
  params.iterations = 3000;
  RngService rngs(7);

  Rng rng_sa = rngs.stream("fig8.sa");
  const AnnealingResult sa = simulated_annealing(graph, demands, n_vms, objective, params,
                                                 rng_sa);
  Rng rng_sagh = rngs.stream("fig8.sa+gh");
  const AnnealingResult sa_gh = simulated_annealing(graph, demands, n_vms, objective, params,
                                                    rng_sagh, gh.configuration);

  std::cout << "# Figure 8: adaptation of a 4-VM all-to-all onto the NWU/W&M testbed\n";
  std::cout << "# costs in Mb/s (Eq.1 total residual bottleneck capacity)\n";
  std::cout << "# optimal_mapping = exhaustive over all 24 mappings with greedy widest-path\n";
  std::cout << "# routing (SA can slightly exceed it by finding better multi-hop paths)\n";
  CsvWriter csv(std::cout, {"iteration", "sa", "sa_gh", "sa_gh_best", "gh", "optimal_mapping"});
  for (std::size_t i = 0; i < sa.trace.size(); i += 25) {
    csv.row({static_cast<double>(sa.trace[i].iteration), sa.trace[i].current_cost / 1e6,
             sa_gh.trace[i].current_cost / 1e6, sa_gh.trace[i].best_cost / 1e6,
             gh.evaluation.cost / 1e6, opt.best_evaluation.cost / 1e6});
  }

  std::cerr << "fig8: optimal=" << opt.best_evaluation.cost / 1e6
            << " Mb/s over " << opt.mappings_examined << " mappings; GH="
            << gh.evaluation.cost / 1e6 << "; SA best=" << sa.best_evaluation.cost / 1e6
            << "; SA+GH best=" << sa_gh.best_evaluation.cost / 1e6 << "\n";
  std::cerr << "fig8: optimal mapping:";
  for (std::size_t vm = 0; vm < n_vms; ++vm) {
    std::cerr << " VM" << vm + 1 << "->host" << opt.best.mapping[vm] + 1;
  }
  std::cerr << "\n";
  return 0;
}
