// §3.4 overheads, as google-benchmark micro benchmarks.
//
// The paper reports: Wren's kernel-level processing has no distinguishable
// effect on throughput or latency; VTTIF affects throughput by ~1% and
// latency not at all; local processing cost is tiny. These benchmarks
// measure our equivalents: the per-packet cost of the forwarding path with
// and without the Wren tap and with VTTIF frame accounting, plus the cost
// of Wren's user-level analysis pass.

#include <benchmark/benchmark.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "vnet/overlay.hpp"
#include "vttif/local.hpp"
#include "wren/analyzer.hpp"
#include "wren/trace.hpp"

namespace {

using namespace vw;

struct PathEnv {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId a, b;

  PathEnv() {
    a = net.add_host("a");
    b = net.add_host("b");
    net::LinkConfig cfg;
    cfg.bits_per_sec = 1e9;
    cfg.prop_delay = vw::micros(10);
    net.add_link(a, b, cfg);
    net.compute_routes();
  }

  void pump(int packets) {
    for (int i = 0; i < packets; ++i) {
      net::Packet p;
      p.flow = net::FlowKey{a, b, 1, 2, net::Protocol::kTcp};
      p.payload_bytes = 1460;
      p.seq = static_cast<std::uint64_t>(i) * 1460;
      net.send(std::move(p));
    }
    // Bounded run: periodic measurement tasks never drain the event queue.
    sim.run_until(sim.now() + seconds(1.0));
  }
};

/// Baseline: packet delivery with no measurement infrastructure.
void BM_PacketPathBaseline(benchmark::State& state) {
  PathEnv env;
  for (auto _ : state) env.pump(static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketPathBaseline)->Arg(1000);

/// Same path with the Wren kernel trace tap capturing every packet.
void BM_PacketPathWithWrenTap(benchmark::State& state) {
  PathEnv env;
  wren::TraceFacility trace(env.net, env.a);
  for (auto _ : state) {
    env.pump(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(trace.collect());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketPathWithWrenTap)->Arg(1000);

/// Same path with the full online analyzer (trace + trains + SIC).
void BM_PacketPathWithOnlineAnalysis(benchmark::State& state) {
  PathEnv env;
  wren::OnlineAnalyzer analyzer(env.net, env.a);
  for (auto _ : state) {
    env.pump(static_cast<int>(state.range(0)));
    analyzer.analyze_now();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PacketPathWithOnlineAnalysis)->Arg(1000);

/// VTTIF's per-frame accounting cost (the only cost on the VM data path).
void BM_VttifFrameAccounting(benchmark::State& state) {
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId h = net.add_host("h");
  const net::NodeId o = net.add_host("o");
  net.add_link(h, o, {});
  net.compute_routes();
  transport::TransportStack stack(net);
  vnet::Overlay overlay(stack);
  vnet::VnetDaemon& daemon = overlay.create_daemon(h, "d", true);
  daemon.attach_vm(2, [](vnet::FramePtr) {});
  vttif::LocalVttif local(sim, daemon, vw::seconds(1.0),
                          [](net::NodeId, const vttif::TrafficMatrix&) {});
  vnet::EthernetFrame frame;
  frame.src_mac = 1;
  frame.dst_mac = 2;
  frame.payload_bytes = 1460;
  for (auto _ : state) {
    daemon.inject_from_vm(frame);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VttifFrameAccounting);

/// The same injection without a VTTIF observer, for the delta.
void BM_FrameInjectionBaseline(benchmark::State& state) {
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId h = net.add_host("h");
  const net::NodeId o = net.add_host("o");
  net.add_link(h, o, {});
  net.compute_routes();
  transport::TransportStack stack(net);
  vnet::Overlay overlay(stack);
  vnet::VnetDaemon& daemon = overlay.create_daemon(h, "d", true);
  daemon.attach_vm(2, [](vnet::FramePtr) {});
  vnet::EthernetFrame frame;
  frame.src_mac = 1;
  frame.dst_mac = 2;
  frame.payload_bytes = 1460;
  for (auto _ : state) {
    daemon.inject_from_vm(frame);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameInjectionBaseline);

}  // namespace
