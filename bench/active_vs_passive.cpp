// Free vs. active measurement — the paper's core motivation, quantified.
//
// On the controlled 100 Mbps LAN with stepped CBR cross traffic, compares:
//  * Wren (passive): mines the monitored application's own traffic;
//    injects ZERO probe bytes.
//  * An active SIC prober (pathload-style binary search, the family of
//    tools the paper cites as [11,12]): accurate, but pays for it in
//    injected probe traffic that competes with the very applications it
//    measures.
//
// Output: per cross-traffic level, each tool's estimate, error, and probe
// bytes injected.

#include <iostream>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "util/csv.hpp"
#include "wren/active.hpp"
#include "wren/analyzer.hpp"

using namespace vw;

namespace {

struct ToolResult {
  double estimate_mbps = 0;
  double probe_mb = 0;
  bool ok = false;
};

struct LanEnv {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId sender, receiver, cross, sw;
  std::unique_ptr<transport::TransportStack> stack;

  LanEnv() {
    sender = net.add_host("s");
    receiver = net.add_host("r");
    cross = net.add_host("c");
    sw = net.add_router("sw");
    net::LinkConfig cfg;
    cfg.bits_per_sec = 100e6;
    cfg.prop_delay = micros(50);
    net.add_link(sender, sw, cfg);
    net.add_link(cross, sw, cfg);
    net.add_link(sw, receiver, cfg);
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
  }
};

ToolResult run_passive(double cross_rate) {
  LanEnv env;
  wren::OnlineAnalyzer analyzer(env.net, env.sender);
  transport::CbrUdpSource cbr(*env.stack, env.cross, env.receiver, 7000, cross_rate, 1000);
  if (cross_rate > 0) cbr.start();
  std::vector<transport::MessagePhase> phases{
      {.count = 120, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(12.0));
  ToolResult r;
  if (auto bw = analyzer.available_bandwidth_bps(env.receiver)) {
    r.estimate_mbps = *bw / 1e6;
    r.ok = true;
  }
  r.probe_mb = 0;  // free by construction
  return r;
}

ToolResult run_active(double cross_rate) {
  LanEnv env;
  transport::CbrUdpSource cbr(*env.stack, env.cross, env.receiver, 7000, cross_rate, 1000);
  if (cross_rate > 0) cbr.start();
  wren::ActiveProbeParams params;
  params.max_rate_bps = 100e6;
  wren::ActiveProber prober(*env.stack, env.sender, env.receiver, 8800, params);
  ToolResult r;
  prober.start([&](double bps) {
    r.estimate_mbps = bps / 1e6;
    r.ok = true;
  });
  env.sim.run_until(seconds(20.0));
  r.probe_mb = static_cast<double>(prober.bytes_injected()) / 1e6;
  return r;
}

}  // namespace

int main() {
  std::cout << "# Free (Wren, passive) vs active SIC probing on a 100 Mbps LAN\n";
  std::cout << "# Wren mines existing application traffic; the active tool injects probes\n";
  CsvWriter csv(std::cout, {"cross_mbps", "truth_mbps", "wren_mbps", "wren_err", "wren_probe_mb",
                            "active_mbps", "active_err", "active_probe_mb"});
  for (double cross : {0.0, 20e6, 40e6, 60e6}) {
    const double truth = (100e6 - cross) / 1e6;
    const ToolResult passive = run_passive(cross);
    const ToolResult active = run_active(cross);
    csv.row({cross / 1e6, truth, passive.estimate_mbps,
             passive.ok ? (passive.estimate_mbps - truth) / truth : -1, passive.probe_mb,
             active.estimate_mbps, active.ok ? (active.estimate_mbps - truth) / truth : -1,
             active.probe_mb});
  }
  return 0;
}
