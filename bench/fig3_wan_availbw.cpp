// Figure 3 reproduction: Wren measurements from monitoring an application on
// a simulated WAN accurately detect changes in available bandwidth.
//
// Setup (paper §2.2): NistNet-style latency emulation raises the monitored
// path's RTT to ~50 ms; on/off TCP generators (each behind an emulated
// latency of its own) congest the shared bottleneck; SNMP polls the
// congested link for the true available bandwidth. The monitored
// application sends 70 KB messages at 0.1 s spacing.
//
// Output: CSV series time_s, availbw_mbps (SNMP), app_tput_mbps, wren_bw_mbps.

#include <iostream>

#include "net/probe.hpp"
#include "topo/testbed.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "util/csv.hpp"
#include "wren/analyzer.hpp"

using namespace vw;

int main() {
  sim::Simulator sim;
  const double bottleneck = 30e6;
  topo::WanTestbed tb = topo::make_wan_testbed(sim, bottleneck, millis(25), /*cross_pairs=*/3);
  transport::TransportStack stack(*tb.network);

  // On/off TCP cross traffic: peak rates within the paper's 3..25 Mbps band.
  RngService rngs(2026);
  std::vector<std::unique_ptr<transport::OnOffTcpSource>> cross;
  const double peaks[] = {4e6, 8e6, 14e6};
  for (std::size_t i = 0; i < tb.cross_sources.size(); ++i) {
    cross.push_back(std::make_unique<transport::OnOffTcpSource>(
        stack, tb.cross_sources[i], tb.cross_sinks[i], static_cast<std::uint16_t>(7100 + i),
        peaks[i], seconds(4.0), seconds(7.0), rngs.stream("onoff" + std::to_string(i))));
    cross.back()->start();
  }

  // The monitored application: 70 KB messages at 0.1 s spacing.
  std::vector<transport::MessagePhase> phases{
      {.count = 1000, .message_bytes = 70'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(stack, tb.sender, tb.receiver, 9000, phases);
  app.start();

  wren::OnlineAnalyzer analyzer(*tb.network, tb.sender);
  net::LinkProbe snmp(sim, tb.network->channel(tb.router_a, tb.router_b), millis(500));

  struct Sample {
    double t, wren;
  };
  std::vector<Sample> samples;
  sim::PeriodicTask sampler(sim, millis(500), [&] {
    const auto bw = analyzer.available_bandwidth_bps(tb.receiver);
    samples.push_back(Sample{to_seconds(sim.now()), bw.value_or(0) / 1e6});
  });

  sim.run_until(seconds(100.0));
  sampler.stop();

  const auto tput = app.sink().meter().series(millis(500));

  std::cout << "# Figure 3: Wren on an emulated WAN (50 ms RTT) with on/off TCP cross traffic\n";
  std::cout << "# bottleneck " << bottleneck / 1e6 << " Mbps; SNMP = link byte counters\n";
  CsvWriter csv(std::cout, {"time_s", "availbw_mbps", "app_tput_mbps", "wren_bw_mbps"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double truth = i < snmp.samples().size()
                             ? snmp.samples()[i].available_bps / 1e6
                             : bottleneck / 1e6;
    double app_mbps = 0;
    if (i > 0 && i - 1 < tput.size()) app_mbps = tput[i - 1].bps / 1e6;
    csv.row({samples[i].t, truth, app_mbps, samples[i].wren});
  }

  std::cerr << "fig3: " << analyzer.observations_total() << " observations, app delivered "
            << app.sink().bytes_received() / 1e6 << " MB\n";
  return 0;
}
