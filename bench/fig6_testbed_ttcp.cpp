// Figure 6 reproduction (table): pairwise TTCP throughputs on the
// Northwestern / William & Mary testbed.
//
// For each ordered host pair, a ttcp-style bulk TCP transfer runs for 10 s
// on a fresh instance of the testbed (as the paper measured pairs
// independently); the steady-state goodput is reported in Mb/s next to the
// numbers printed in the paper's figure.

#include <iostream>
#include <map>

#include "topo/testbed.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "util/csv.hpp"

using namespace vw;

namespace {

double measure_pair(int src_idx, int dst_idx) {
  sim::Simulator sim;
  topo::NwuWmTestbed tb = topo::make_nwu_wm_network(sim);
  const std::vector<net::NodeId> hosts = tb.hosts();
  transport::TransportStack stack(*tb.network);
  transport::BulkTcpSource bulk(stack, hosts[static_cast<std::size_t>(src_idx)],
                                hosts[static_cast<std::size_t>(dst_idx)], 5001);
  bulk.start();
  sim.run_until(seconds(12.0));
  bulk.stop();
  // Steady-state window: skip the first 2 s of slow start.
  return bulk.throughput_bps(seconds(2.0), seconds(12.0)) / 1e6;
}

}  // namespace

int main() {
  const char* names[] = {"minet-1.cs.northwestern.edu", "minet-2.cs.northwestern.edu",
                         "lr3.cs.wm.edu", "lr4.cs.wm.edu"};
  // The paper's measured values (Mb/s) for comparison, indexed [src][dst].
  const std::map<std::pair<int, int>, double> paper{
      {{0, 1}, 91.6}, {{1, 0}, 89.8}, {{2, 3}, 74.2}, {{3, 2}, 75.4},
      {{0, 2}, 9.2},  {{2, 0}, 10.1}, {{0, 3}, 9.6},  {{3, 0}, 10.0},
      {{1, 2}, 10.2}, {{2, 1}, 10.4}, {{1, 3}, 10.6}, {{3, 1}, 10.8},
  };

  std::cout << "# Figure 6 (table): pairwise ttcp throughput on the NWU / W&M testbed\n";
  CsvWriter csv(std::cout, {"src", "dst", "measured_mbps", "paper_mbps"});
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      const double measured = measure_pair(s, d);
      const auto it = paper.find({s, d});
      csv.text_row({names[s], names[d], std::to_string(measured),
                    it != paper.end() ? std::to_string(it->second) : ""});
    }
  }
  return 0;
}
