// Figure 2 reproduction: Wren measurements reflect changes in available
// bandwidth even when the monitored application's throughput does not
// consume all of the available bandwidth.
//
// Setup (paper §2.2): a controlled-load 100 Mbps LAN. iperf-style CBR cross
// traffic regulates the available bandwidth, changing at t=20 s and stopping
// at t=40 s. The monitored application sends three tiers of messages
// (2 KB x200, 50 KB x100, 4 MB x10, 0.1 s spacing, 2 s pauses), the pattern
// repeated twice, followed by 500 KB messages at random spacings.
//
// Output: CSV series time_s, app_tput_mbps, wren_bw_mbps, actual_availbw_mbps
// — the same four curves the paper plots (throughput, wren bw, availbw).

#include <iostream>

#include "net/probe.hpp"
#include "topo/testbed.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "util/csv.hpp"
#include "wren/analyzer.hpp"

using namespace vw;

int main() {
  sim::Simulator sim;
  topo::LanTestbed tb = topo::make_lan_testbed(sim, 100e6);
  transport::TransportStack stack(*tb.network);

  // Cross traffic: 25 Mbps initially, 60 Mbps at t=20 s, off at t=40 s.
  transport::CbrUdpSource cross(stack, tb.cross_source, tb.receiver, 7000, 25e6, 1000);
  cross.start();
  sim.schedule_at(seconds(20.0), [&cross] { cross.set_rate_bps(60e6); });
  sim.schedule_at(seconds(40.0), [&cross] { cross.set_rate_bps(0); });

  // The monitored application (sizes per the paper's script).
  std::vector<transport::MessagePhase> phases{
      {.count = 200, .message_bytes = 2'000, .spacing = millis(100), .pause_after = seconds(2.0)},
      {.count = 100, .message_bytes = 50'000, .spacing = millis(100), .pause_after = seconds(2.0)},
      {.count = 10, .message_bytes = 4'000'000, .spacing = millis(100),
       .pause_after = seconds(2.0)},
  };
  // Pattern repeated twice, then 500 KB messages with random spacings.
  transport::MessageSource app(stack, tb.sender, tb.receiver, 9000, phases, /*repeat=*/2,
                               Rng(1234));
  app.start();

  wren::OnlineAnalyzer analyzer(*tb.network, tb.sender);

  // Ground truth from the switch -> receiver bottleneck (SNMP-style).
  auto cross_rate_at = [](SimTime t) {
    if (t < seconds(20.0)) return 25e6;
    if (t < seconds(40.0)) return 60e6;
    return 0.0;
  };

  struct Sample {
    double t, wren, truth;
  };
  std::vector<Sample> samples;
  sim::PeriodicTask sampler(sim, millis(500), [&] {
    const auto bw = analyzer.available_bandwidth_bps(tb.receiver);
    samples.push_back(Sample{to_seconds(sim.now()), bw.value_or(0) / 1e6,
                             (100e6 - cross_rate_at(sim.now())) / 1e6});
  });

  const SimTime horizon = seconds(70.0);
  sim.run_until(horizon);
  sampler.stop();

  // Application throughput series from the sink meter.
  const auto tput = app.sink().meter().series(millis(500));

  std::cout << "# Figure 2: Wren online available-bandwidth measurement on a 100 Mbps LAN\n";
  std::cout << "# cross traffic: 25 Mbps (0-20s), 60 Mbps (20-40s), off (40s+)\n";
  CsvWriter csv(std::cout, {"time_s", "app_tput_mbps", "wren_bw_mbps", "actual_availbw_mbps"});
  for (const Sample& s : samples) {
    double app_mbps = 0;
    const auto idx = static_cast<std::size_t>(s.t / 0.5);
    if (idx > 0 && idx - 1 < tput.size()) app_mbps = tput[idx - 1].bps / 1e6;
    csv.row({s.t, app_mbps, s.wren, s.truth});
  }

  std::cerr << "fig2: " << samples.size() << " samples, app delivered "
            << app.sink().bytes_received() / 1e6 << " MB, trains observed -> "
            << analyzer.observations_total() << " observations\n";
  return 0;
}
