// Ablation: simulated-annealing design choices (paper §4.3).
//
// On the challenge scenario (small, known optimum) and the BRITE overlay
// (large), sweeps:
//  * the mapping-perturbation probability (the paper perturbs mappings
//    "with a lower probability" — how much lower matters),
//  * the cooling rate,
//  * greedy seeding (SA vs SA+GH).
//
// Reports the best objective value reached within a fixed iteration budget,
// normalized to the greedy heuristic.

#include <iostream>

#include "topo/brite.hpp"
#include "topo/testbed.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/multistart.hpp"

using namespace vw;
using namespace vw::vadapt;

namespace {

struct Scenario {
  std::string name;
  CapacityGraph graph;
  std::vector<Demand> demands;
  std::size_t n_vms;
};

void sweep(const Scenario& sc, CsvWriter& csv) {
  const Objective objective{};
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms, objective);
  RngService rngs(31);

  auto run = [&](const std::string& variant, const AnnealingParams& params, bool seed_gh) {
    Rng rng = rngs.stream(sc.name + "." + variant);
    const AnnealingResult result = simulated_annealing(
        sc.graph, sc.demands, sc.n_vms, objective, params, rng,
        seed_gh ? std::optional<Configuration>(gh.configuration) : std::nullopt);
    csv.text_row({sc.name, variant, std::to_string(result.best_evaluation.cost / 1e6),
                  std::to_string(result.best_evaluation.cost / gh.evaluation.cost)});
  };

  AnnealingParams base;
  base.iterations = 20'000;
  base.trace_stride = base.iterations;

  run("baseline(p_map=0.05,cool=0.999)", base, false);
  run("baseline+GH", base, true);

  for (double p : {0.0, 0.01, 0.2, 0.5}) {
    AnnealingParams params = base;
    params.mapping_perturb_prob = p;
    run("p_map=" + std::to_string(p), params, false);
  }

  for (double cool : {0.9, 0.99, 0.9999}) {
    AnnealingParams params = base;
    params.cooling = cool;
    run("cooling=" + std::to_string(cool), params, false);
  }

  // Multi-start: K chains share the 20k-iteration budget (so the total move
  // count matches the single-chain rows) vs. K full-budget chains.
  for (std::size_t chains : {std::size_t{4}, std::size_t{8}}) {
    for (bool split_budget : {true, false}) {
      MultiStartParams ms;
      ms.chains = chains;
      ms.annealing = base;
      if (split_budget) ms.annealing.iterations = base.iterations / chains;
      ms.annealing.trace_stride = ms.annealing.iterations;
      ms.seed = rngs.seed_for(sc.name + ".multistart." + std::to_string(chains) +
                              (split_budget ? ".split" : ".full"));
      const MultiStartResult result = multi_start_annealing(
          sc.graph, sc.demands, sc.n_vms, objective, ms, gh.configuration);
      csv.text_row({sc.name,
                    "multistart(K=" + std::to_string(chains) +
                        (split_budget ? ",split)" : ",full)") + "+GH",
                    std::to_string(result.best.best_evaluation.cost / 1e6),
                    std::to_string(result.best.best_evaluation.cost / gh.evaluation.cost)});
    }
  }
}

}  // namespace

int main() {
  std::cout << "# SA ablation: best Eq.1 cost within 20k iterations, normalized to GH\n";
  CsvWriter csv(std::cout, {"scenario", "variant", "best_cost_mbps", "vs_gh"});

  topo::ChallengeScenario challenge = topo::make_challenge_scenario();
  sweep(Scenario{"challenge", challenge.graph, challenge.demands, challenge.n_vms}, csv);

  topo::BriteParams bp;
  bp.nodes = 256;
  RngService rngs(99);
  Rng gen = rngs.stream("brite");
  topo::BriteTopology brite(bp, gen);
  Rng pick = rngs.stream("hosts");
  std::vector<Demand> ring;
  for (std::size_t i = 0; i < 8; ++i) ring.push_back({i, (i + 1) % 8, 20e6});
  sweep(Scenario{"brite256", brite.overlay_capacity_graph(32, pick), ring, 8}, csv);

  return 0;
}
