// Datapath micro benchmarks (this PR's acceptance gate): event-scheduler
// throughput on a TCP-timer-style churn workload, and end-to-end simulated
// packet throughput on a fig4-style star topology.
//
// The scheduler is benchmarked twice over the identical workload:
//   * `baseline` — a line-for-line replica of the pre-overhaul engine
//     (std::function callbacks, pending/cancelled unordered_sets, the
//     callback living inside the heap entry), compiled into this binary so
//     the comparison shares compiler, flags, and machine;
//   * `arena` — the real sim::Simulator (SmallFn callbacks + the
//     generation-stamped slot arena).
// Both run the same churn: schedule a batch of timers whose captures match
// the real datapath's (a Packet-sized payload), cancel two thirds of them
// before they fire (what TCP retransmission timers do), run the rest.
// items_per_second = scheduler ops (schedule + cancel + fire); the
// acceptance criterion is arena >= 3x baseline.
//
// tools/bench_to_json.py --suite datapath wraps this binary into
// BENCH_datapath.json and enforces the gate.
//
// Custom main: runtime audits (VW_AUDIT) are disabled so contract checks in
// hot loops don't pollute the timing.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/stack.hpp"
#include "transport/udp.hpp"
#include "util/check.hpp"

namespace {

using namespace vw;

// --- the pre-overhaul scheduler, replicated ----------------------------------
// Kept byte-for-byte faithful to the old sim::Simulator's cost structure
// (see git history): heap entries carry the std::function, live ids sit in
// one hash set, cancelled ids in another.
namespace baseline {

class Scheduler {
 public:
  using Callback = std::function<void()>;
  using Handle = std::uint64_t;

  SimTime now() const { return now_; }

  Handle schedule_at(SimTime at, Callback cb) {
    const std::uint64_t id = next_id_++;
    queue_.push(Event{at, next_seq_++, id, std::move(cb)});
    pending_ids_.insert(id);
    return id;
  }

  bool cancel(Handle id) {
    auto it = pending_ids_.find(id);
    if (it == pending_ids_.end()) return false;
    pending_ids_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  void run() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      pending_ids_.erase(ev.id);
      now_ = ev.at;
      ev.cb();
    }
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace baseline

// The capture the real datapath schedules: a channel continuation holding
// roughly a Packet by value (~96 bytes). Forces the cost structure the old
// engine actually paid (std::function heap-allocates this; SmallFn holds it
// inline).
struct PacketSizedCapture {
  std::uint64_t words[12];
};

// One churn round on either scheduler: `kBatch` timers land in a 1 ms
// window, two thirds are cancelled before firing (TCP retransmission-timer
// behavior), the rest run. Returns the op count (schedule + cancel + fire).
template <class SchedulerT, class HandleT>
std::uint64_t churn_round(SchedulerT& sched, std::vector<HandleT>& handles,
                          std::uint64_t* sink) {
  constexpr int kBatch = 1'024;
  handles.clear();
  const SimTime base = sched.now();
  PacketSizedCapture cap{};
  for (int i = 0; i < kBatch; ++i) {
    cap.words[0] = static_cast<std::uint64_t>(i);
    // Deterministic pseudo-random spread within the window, like RTO timers.
    const SimTime at = base + (static_cast<SimTime>(i) * 7919) % 1'000'000;
    handles.push_back(sched.schedule_at(at, [cap, sink] { *sink += cap.words[0]; }));
  }
  int attempts = 0;
  int cancelled = 0;
  for (int i = 0; i < kBatch; ++i) {
    if (i % 3 == 0) continue;
    ++attempts;
    if (sched.cancel(handles[static_cast<std::size_t>(i)])) ++cancelled;
  }
  sched.run();
  return static_cast<std::uint64_t>(kBatch + attempts + (kBatch - cancelled));
}

void BM_SchedulerChurn_baseline(benchmark::State& state) {
  baseline::Scheduler sched;
  std::vector<baseline::Scheduler::Handle> handles;
  std::uint64_t sink = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    ops += churn_round(sched, handles, &sink);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_SchedulerChurn_baseline);

void BM_SchedulerChurn_arena(benchmark::State& state) {
  sim::Simulator sched;
  std::vector<sim::EventHandle> handles;
  std::uint64_t sink = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    ops += churn_round(sched, handles, &sink);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_SchedulerChurn_arena);

// --- packet datapath: fig4-style star ----------------------------------------
// The BSP-transfer shape of fig4: N hosts on a switch, every host streams
// UDP datagrams to its ring neighbor through the full network datapath
// (routing, per-hop channel resolution, serialization/propagation events,
// taps off). items_per_second = packets delivered end to end (each crosses
// two channels: host -> switch -> host).
void BM_StarForwarding(benchmark::State& state) {
  const int n_hosts = static_cast<int>(state.range(0));
  sim::Simulator sim;
  net::Network network(sim);
  const net::NodeId sw = network.add_router("switch");
  std::vector<net::NodeId> hosts;
  net::LinkConfig link;
  link.bits_per_sec = 1e9;
  link.prop_delay = micros(5);
  for (int i = 0; i < n_hosts; ++i) {
    hosts.push_back(network.add_host("host-" + std::to_string(i)));
    network.add_link(hosts.back(), sw, link);
  }
  network.compute_routes();

  transport::TransportStack stack(network);
  std::vector<std::shared_ptr<transport::UdpSocket>> socks;
  std::uint64_t received = 0;
  for (int i = 0; i < n_hosts; ++i) {
    socks.push_back(stack.udp_bind(hosts[static_cast<std::size_t>(i)], 4000));
    socks.back()->set_on_receive([&received](net::Packet&&) { ++received; });
  }

  constexpr int kPacketsPerHostPerRound = 64;
  std::uint64_t sent = 0;
  for (auto _ : state) {
    for (int i = 0; i < n_hosts; ++i) {
      const auto dst = static_cast<std::size_t>((i + 1) % n_hosts);
      for (int k = 0; k < kPacketsPerHostPerRound; ++k) {
        // 1.2 us apart: the senders interleave, so the switch's per-hop
        // forwarding path (channel resolution + enqueue) stays hot.
        sim.schedule_at(sim.now() + static_cast<SimTime>(k) * 1'200,
                        [&socks, i, dst] {
                          socks[static_cast<std::size_t>(i)]->send_to(
                              socks[dst]->host(), 4000, 1'000);
                        });
      }
    }
    sent += static_cast<std::uint64_t>(n_hosts) * kPacketsPerHostPerRound;
    sim.run();
  }
  VW_REQUIRE(received == sent, "star forwarding lost packets (", received, " of ", sent, ")");
  state.SetItemsProcessed(static_cast<std::int64_t>(received));
}
BENCHMARK(BM_StarForwarding)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  vw::contracts::set_audit_enabled(false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
