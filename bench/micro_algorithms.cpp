// Algorithm-cost micro benchmarks: the adapted widest-path Dijkstra, the
// greedy heuristic, simulated-annealing iterations, train extraction and
// the SOAP XML round trip — the costs behind §4's "GH completes almost
// instantaneously" / "SA takes much longer" observations.

#include <benchmark/benchmark.h>

#include "soap/xml.hpp"
#include "topo/brite.hpp"
#include "util/rng.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/widest_path.hpp"
#include "wren/train.hpp"

namespace {

using namespace vw;
using namespace vw::vadapt;

CapacityGraph random_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<net::NodeId> hosts(n);
  for (std::size_t i = 0; i < n; ++i) hosts[i] = static_cast<net::NodeId>(i);
  CapacityGraph g(hosts);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      g.set_bandwidth(i, j, rng.uniform(10e6, 1000e6));
      g.set_latency(i, j, rng.uniform(0.0001, 0.05));
    }
  }
  return g;
}

std::vector<Demand> ring_demands(std::size_t n_vms, double rate) {
  std::vector<Demand> d;
  for (std::size_t i = 0; i < n_vms; ++i) d.push_back({i, (i + 1) % n_vms, rate});
  return d;
}

void BM_WidestPaths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = random_graph(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(widest_paths(g.bandwidth_matrix(), 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WidestPaths)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_GreedyHeuristic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = random_graph(n, 2);
  const auto demands = ring_demands(8, 20e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_heuristic(g, demands, 8));
  }
}
BENCHMARK(BM_GreedyHeuristic)->Arg(8)->Arg(16)->Arg(32);

void BM_AnnealingIterations(benchmark::State& state) {
  const CapacityGraph g = random_graph(32, 3);
  const auto demands = ring_demands(8, 20e6);
  AnnealingParams params;
  params.iterations = static_cast<std::size_t>(state.range(0));
  params.trace_stride = params.iterations;  // no trace overhead
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulated_annealing(g, demands, 8, Objective{}, params, Rng(seed++)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AnnealingIterations)->Arg(100)->Arg(1000);

void BM_TrainExtraction(benchmark::State& state) {
  const net::FlowKey flow{0, 1, 10, 20, net::Protocol::kTcp};
  // A realistic trace chunk: 1000 records in window bursts of 16.
  std::vector<wren::PacketRecord> records;
  SimTime t = 0;
  std::uint64_t seq = 0;
  for (int burst = 0; burst < 64; ++burst) {
    for (int i = 0; i < 16; ++i) {
      wren::PacketRecord r;
      r.timestamp = t;
      r.flow = flow;
      r.payload_bytes = 1460;
      r.wire_bytes = 1500;
      r.seq = seq;
      records.push_back(r);
      t += micros(120);
      seq += 1460;
    }
    t += millis(30);
  }
  std::uint64_t trains = 0;
  for (auto _ : state) {
    wren::TrainExtractor ex(flow, wren::TrainParams{},
                            [&](const wren::Train&) { ++trains; });
    for (const auto& r : records) ex.add(r);
    ex.flush();
  }
  benchmark::DoNotOptimize(trains);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_TrainExtraction);

void BM_SoapXmlRoundTrip(benchmark::State& state) {
  soap::XmlNode body;
  body.name = "GetObservationsResponse";
  for (int i = 0; i < 32; ++i) {
    soap::XmlNode& o = body.add_child("observation");
    o.add_text_child("id", std::to_string(i));
    o.add_text_child("isr_bps", "94000000.5");
    o.add_text_child("congested", "1");
  }
  for (auto _ : state) {
    const std::string doc = soap::to_xml(soap::make_envelope(body));
    benchmark::DoNotOptimize(soap::extract_body(soap::parse_xml(doc)));
  }
}
BENCHMARK(BM_SoapXmlRoundTrip);

}  // namespace
