// Figure 4 reproduction: Wren observing a neighbor communication pattern
// sending 200 KB messages within VNET.
//
// Setup (paper §2.3): a BSP-style neighbor pattern runs inside VMs on the
// NWU/W&M testbed; the VM traffic is carried by VNET TCP connections, and
// Wren on a W&M host mines exactly that encapsulated traffic. Although the
// application never achieves significant throughput (it is synchronization-
// bound across the WAN), Wren still measures the available bandwidth of the
// wide-area path.
//
// Output: CSV series time_s, app_tput_mbps, wren_availbw_mbps over the
// W&M -> NWU path carrying the VNET star traffic.
//
//   $ fig4_vnet_bsp [--capture DIR]   # DIR gets one vw.trace.v1 shard per host

#include <cstring>
#include <iostream>

#include "topo/testbed.hpp"
#include "util/csv.hpp"
#include "virtuoso/system.hpp"
#include "vm/apps.hpp"

using namespace vw;

int main(int argc, char** argv) {
  std::string capture_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--capture") == 0 && i + 1 < argc) {
      capture_dir = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--capture DIR]\n";
      return 2;
    }
  }

  sim::Simulator sim;
  topo::NwuWmTestbed tb = topo::make_nwu_wm_network(sim);

  virtuoso::SystemConfig config;
  config.capture_dir = capture_dir;
  virtuoso::VirtuosoSystem system(sim, *tb.network, config);
  // Proxy at NWU (minet-1), daemons everywhere.
  system.add_daemon(tb.minet1, "minet-1", /*is_proxy=*/true);
  system.add_daemon(tb.minet2, "minet-2");
  system.add_daemon(tb.lr3, "lr3");
  system.add_daemon(tb.lr4, "lr4");
  system.bootstrap(vnet::LinkProtocol::kTcp);  // TCP star: Wren's raw material

  // 4 VMs, one per host, running the BSP neighbor pattern with 200 KB msgs.
  std::vector<vm::VirtualMachine*> vms;
  vms.push_back(&system.create_vm("vm-0", tb.minet1));
  vms.push_back(&system.create_vm("vm-1", tb.minet2));
  vms.push_back(&system.create_vm("vm-2", tb.lr3));
  vms.push_back(&system.create_vm("vm-3", tb.lr4));
  vm::apps::BspNeighborApp app(sim, vms, vm::apps::BspNeighborApp::ring_neighbors(4), 200'000,
                               millis(20));
  // Start after the star's TCP links establish (VNET precedes the VMs).
  sim.schedule_at(seconds(0.5), [&app] { app.start(); });

  wren::OnlineAnalyzer& wm_wren = system.wren_on(tb.lr3);

  // Application throughput: delivered VM bytes, differenced per interval.
  struct Sample {
    double t, app_tput, wren;
  };
  std::vector<Sample> samples;
  std::uint64_t last_bytes = 0;
  sim::PeriodicTask sampler(sim, millis(500), [&] {
    std::uint64_t total = 0;
    for (vm::VirtualMachine* machine : vms) total += machine->bytes_received();
    const double tput_mbps = static_cast<double>(total - last_bytes) * 8.0 / 0.5 / 1e6;
    last_bytes = total;
    const auto bw = wm_wren.available_bandwidth_bps(tb.minet1);
    samples.push_back(Sample{to_seconds(sim.now()), tput_mbps, bw.value_or(0) / 1e6});
  });

  sim.run_until(seconds(60.0));
  sampler.stop();

  // Throughput of the lr3 daemon's encapsulated traffic (what the paper's
  // "application throughput" curve shows for the monitored host).
  const auto& trace = wm_wren.trace();

  std::cout << "# Figure 4: Wren observing a 4-VM BSP neighbor pattern (200 KB messages) in "
               "VNET\n";
  std::cout << "# monitored path: lr3 (W&M) -> minet-1 (NWU proxy), WAN-limited\n";
  CsvWriter csv(std::cout, {"time_s", "app_tput_mbps", "wren_availbw_mbps"});
  for (const Sample& s : samples) csv.row({s.t, s.app_tput, s.wren});

  std::cerr << "fig4: supersteps=" << app.supersteps_completed()
            << " records_captured=" << trace.records_captured()
            << " observations=" << wm_wren.observations_total() << "\n";
  system.finish_capture();
  if (wren::CaptureSession* capture = system.capture()) {
    std::cerr << "fig4 capture: " << capture->writers().size() << " shard(s) in "
              << capture->dir() << ", " << capture->records_captured() << " records, "
              << capture->records_dropped() << " dropped\n";
  }
  return 0;
}
