// Ablation: which design choices make Wren's free measurement accurate?
//
// Sweeps, on the controlled 100 Mbps LAN with known cross traffic:
//  * minimum train length (short trains = more samples, noisier decisions)
//  * spacing tolerance (how aggressively runs are glued into maximal trains)
//  * fusion window length
//  * per-segment vs delayed-ACK receivers (feedback density)
//
// For each variant the harness reports the relative error of the converged
// estimate against the true residual bandwidth at three cross-traffic
// levels. Regenerates the evidence behind DESIGN.md's parameter choices.

#include <iomanip>
#include <iostream>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "util/csv.hpp"
#include "wren/analyzer.hpp"

using namespace vw;

namespace {

struct CaseResult {
  double estimate_mbps = 0;
  double truth_mbps = 0;
  bool has_estimate = false;
};

CaseResult run_case(double cross_bps, const wren::WrenParams& params, bool delayed_ack) {
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId sender = net.add_host("s");
  const net::NodeId receiver = net.add_host("r");
  const net::NodeId cross = net.add_host("c");
  const net::NodeId sw = net.add_router("sw");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 100e6;
  cfg.prop_delay = micros(50);
  net.add_link(sender, sw, cfg);
  net.add_link(cross, sw, cfg);
  net.add_link(sw, receiver, cfg);
  net.compute_routes();
  transport::TransportStack stack(net);
  transport::TcpParams tcp;
  tcp.delayed_ack = delayed_ack;
  stack.set_default_tcp_params(tcp);

  wren::OnlineAnalyzer analyzer(net, sender, params);
  transport::CbrUdpSource cbr(stack, cross, receiver, 7000, cross_bps, 1000);
  if (cross_bps > 0) cbr.start();
  std::vector<transport::MessagePhase> phases{
      {.count = 150, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(stack, sender, receiver, 9000, phases);
  app.start();
  sim.run_until(seconds(12.0));

  CaseResult result;
  result.truth_mbps = (100e6 - cross_bps) / 1e6;
  if (auto bw = analyzer.available_bandwidth_bps(receiver)) {
    result.estimate_mbps = *bw / 1e6;
    result.has_estimate = true;
  }
  return result;
}

void emit(CsvWriter& csv, const std::string& variant, const wren::WrenParams& params,
          bool delayed_ack) {
  for (double cross : {0.0, 25e6, 50e6}) {
    const CaseResult r = run_case(cross, params, delayed_ack);
    const double rel_err =
        r.has_estimate ? (r.estimate_mbps - r.truth_mbps) / r.truth_mbps : -1.0;
    csv.text_row({variant, std::to_string(cross / 1e6), std::to_string(r.truth_mbps),
                  r.has_estimate ? std::to_string(r.estimate_mbps) : "none",
                  std::to_string(rel_err)});
  }
}

}  // namespace

int main() {
  std::cout << "# Wren ablation: estimate accuracy vs design parameters (100 Mbps LAN)\n";
  CsvWriter csv(std::cout,
                {"variant", "cross_mbps", "truth_mbps", "estimate_mbps", "rel_error"});

  emit(csv, "baseline", wren::WrenParams{}, false);

  for (std::size_t min_len : {3u, 8u, 16u}) {
    wren::WrenParams p;
    p.train.min_length = min_len;
    emit(csv, "min_train_len=" + std::to_string(min_len), p, false);
  }

  for (double tol : {1.5, 2.0, 8.0}) {
    wren::WrenParams p;
    p.train.spacing_tolerance = tol;
    emit(csv, "spacing_tol=" + std::to_string(tol), p, false);
  }

  for (std::size_t window : {5u, 50u}) {
    wren::WrenParams p;
    p.sic.window_observations = window;
    emit(csv, "fusion_window=" + std::to_string(window), p, false);
  }

  emit(csv, "delayed_ack_receiver", wren::WrenParams{}, true);

  return 0;
}
