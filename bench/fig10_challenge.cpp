// Figure 10 reproduction: adaptation performance on the "challenge"
// scenario of Figure 9 — two tightly coupled clusters (100 Mbps and
// 1000 Mbps internally) joined by a 10 Mbps link; VMs 1-3 communicate
// heavily, VM 4 lightly. The physical and application topologies are
// constructed so only one placement family is good: the heavy trio on the
// fast cluster.
//
// (a) residual-bandwidth objective (Eq. 1);
// (b) combined bandwidth + latency objective (Eq. 3).
//
// Output: two CSV sections: objective, iteration, sa, sa_gh, sa_gh_best,
// gh, optimal.

#include <iostream>

#include "topo/testbed.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/enumerate.hpp"
#include "vadapt/greedy.hpp"

using namespace vw;
using namespace vw::vadapt;

namespace {

void run_objective(const topo::ChallengeScenario& sc, const Objective& objective,
                   const char* label, CsvWriter& csv) {
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms, objective);
  const ExhaustiveResult opt = exhaustive_search(sc.graph, sc.demands, sc.n_vms, objective);

  AnnealingParams params;
  params.iterations = 4000;
  RngService rngs(11);
  Rng r1 = rngs.stream(std::string("fig10.sa.") + label);
  const AnnealingResult sa =
      simulated_annealing(sc.graph, sc.demands, sc.n_vms, objective, params, r1);
  Rng r2 = rngs.stream(std::string("fig10.sagh.") + label);
  const AnnealingResult sa_gh = simulated_annealing(sc.graph, sc.demands, sc.n_vms, objective,
                                                    params, r2, gh.configuration);

  for (std::size_t i = 0; i < sa.trace.size(); i += 40) {
    csv.text_row({label, std::to_string(sa.trace[i].iteration),
                  std::to_string(sa.trace[i].current_cost / 1e6),
                  std::to_string(sa_gh.trace[i].current_cost / 1e6),
                  std::to_string(sa_gh.trace[i].best_cost / 1e6),
                  std::to_string(gh.evaluation.cost / 1e6),
                  std::to_string(opt.best_evaluation.cost / 1e6)});
  }

  std::cerr << "fig10 [" << label << "]: GH=" << gh.evaluation.cost / 1e6
            << " optimal=" << opt.best_evaluation.cost / 1e6
            << " SA_best=" << sa.best_evaluation.cost / 1e6
            << " SA+GH_best=" << sa_gh.best_evaluation.cost / 1e6 << " (Mb/s-equivalent)\n";
  std::cerr << "fig10 [" << label << "]: GH mapping:";
  for (std::size_t vm = 0; vm < sc.n_vms; ++vm) {
    std::cerr << " VM" << vm + 1 << "->host" << gh.configuration.mapping[vm] + 1;
  }
  std::cerr << " | optimal mapping:";
  for (std::size_t vm = 0; vm < sc.n_vms; ++vm) {
    std::cerr << " VM" << vm + 1 << "->host" << opt.best.mapping[vm] + 1;
  }
  std::cerr << "\n";
}

}  // namespace

int main() {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();

  std::cout << "# Figure 10: challenge scenario (Fig. 9) adaptation; hosts 1-3 = 100 Mbps "
               "domain, hosts 4-6 = 1000 Mbps domain, 10 Mbps inter-domain\n";
  CsvWriter csv(std::cout,
                {"objective", "iteration", "sa", "sa_gh", "sa_gh_best", "gh", "optimal"});

  Objective residual;  // Eq. 1
  run_objective(sc, residual, "residual_bw", csv);

  Objective combined;  // Eq. 3
  combined.kind = ObjectiveKind::kResidualBandwidthLatency;
  combined.latency_weight = 1e4;  // c: 1 ms of path latency ~ 10 Mb/s-equivalent
  run_objective(sc, combined, "residual_bw_latency", csv);

  return 0;
}
