// Federation-scale gate (ISSUE 9 / ROADMAP item 3): the fleet-scale
// federated measurement plane on a BRITE physical topology, up to 1000
// VNET daemons.
//
// For each fleet size n the scenario runs twice on identical report
// streams — once with the flat single-Proxy plane (every daemon's
// WrenReport lands on the root control plane) and once federated (reports
// land on per-region control planes; regional proxies export summarized
// vw.fedsum.v1 matrices upward). Each daemon reports k ground-truth path
// readings (BRITE routed-path bottleneck/latency) every report period; the
// 32-host candidate pool additionally reports all pool peers, and the
// planner's demand hints are pushed down so the hot pairs survive top-k
// selection — the SONoMA/WLCG story this PR implements.
//
// Enforced gates (exit nonzero on violation), emitted as
// BENCH_federation.json:
//   * ratio: root view-update bytes (federated summaries / flat reports)
//     <= kRatioMax at every n — the constant-factor reduction.
//   * scaling: exponent of federated root bytes across the n range
//     <= kExponentMax < 2 — sublinear in n^2.
//   * convergence: greedy placement planned on the federated view, scored
//     under ground truth, within kGapMax of the flat-plane placement.
//   * serial oracle: region=1 + sampling off reproduces the flat
//     GlobalNetworkView bit-identically through the full
//     proxy -> codec -> root path.
//
// --metrics-json FILE additionally dumps the n=1000 federated run's
// telemetry snapshot (vw.metrics.v1) for tools/check_metrics.py
// --require-present 'wren.federation.*'.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "topo/brite.hpp"
#include "util/rng.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/problem.hpp"
#include "virtuoso/system.hpp"
#include "wren/federation.hpp"
#include "wren/view.hpp"

using namespace vw;

namespace {

constexpr double kRatioMax = 0.5;
constexpr double kExponentMax = 1.5;
constexpr double kGapMax = 0.15;
constexpr std::size_t kPoolSize = 32;   ///< candidate hosts for the 8-VM ring
constexpr std::size_t kPeersPerHost = 8;
constexpr std::size_t kRingVms = 8;
const SimTime kReportPeriod = seconds(2.0);
const SimTime kRunFor = seconds(21.0);

struct RunResult {
  std::size_t n = 0;
  std::size_t regions = 1;
  std::uint64_t root_view_bytes = 0;       ///< view-update traffic at the root
  std::uint64_t regional_report_bytes = 0; ///< report traffic absorbed per tier
  std::size_t root_view_pairs = 0;
  double coverage = 1.0;
  std::uint64_t seq_gaps = 0;
  double cost = 0;  ///< greedy placement scored under ground truth
  bool feasible = false;
  std::string metrics_json;
};

std::vector<std::size_t> pool_indices() {
  // Hosts 8..39: attachment routers are rng-chosen so these are random
  // placements, round-robin region assignment spreads them evenly across
  // regions (kPoolSize / regions demand sources each), and the skipped
  // prefix keeps the root proxy and every regional head (the report sinks,
  // whose pairs the daemons' own passive Wren measurements overwrite with
  // live control-traffic estimates) out of the candidate pool.
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < kPoolSize; ++i) pool.push_back(8 + i);
  return pool;
}

RunResult run_scale(std::size_t n, bool federated, std::size_t regions, bool want_metrics) {
  topo::BriteParams bp;
  bp.nodes = n;  // >= daemon count: every daemon attaches to its own router
  bp.out_degree = 2;
  RngService rngs(4242);
  Rng gen = rngs.stream("fedscale.brite." + std::to_string(n));
  const topo::BriteTopology brite(bp, gen);

  sim::Simulator sim;
  Rng pick = rngs.stream("fedscale.hosts." + std::to_string(n));
  const topo::BriteNetwork bn = topo::make_brite_network(sim, brite, n, pick);

  virtuoso::SystemConfig config;
  config.telemetry = want_metrics;
  config.view_staleness_horizon = seconds(30.0);
  config.default_bandwidth_bps = 20e6;
  config.federation.enabled = federated;
  config.federation.regions = regions;
  config.federation.export_period = kReportPeriod;
  // Top-k budget sized so the demand-weighted pool pairs all survive
  // sampling: each region holds kPoolSize / regions demand sources, plus
  // slack for recency-ranked background pairs. Everything else is carried
  // only by the region-to-region aggregates.
  config.federation.summary_max_pairs =
      (kPoolSize / std::max<std::size_t>(1, regions)) * (kPoolSize - 1) + 64;
  virtuoso::VirtuosoSystem system(sim, *bn.network, config);
  for (std::size_t i = 0; i < bn.hosts.size(); ++i) {
    system.add_daemon(bn.hosts[i], "h" + std::to_string(i), i == 0);
  }
  system.bootstrap(vnet::LinkProtocol::kUdp);

  // Ground truth: the routed path between two daemons' attachment routers.
  const auto truth = [&](std::size_t i, std::size_t j) {
    return brite.path_metrics(bn.host_router[i], bn.host_router[j]);
  };

  // Fixed peer sets: k spread-out peers each; pool hosts also report every
  // pool peer so the flat plane's planner input is dense over the pool.
  const std::vector<std::size_t> pool = pool_indices();
  std::vector<std::vector<std::size_t>> peers(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = 1; p <= kPeersPerHost; ++p) {
      const std::size_t j = (i + p * 37) % n;
      if (j != i) peers[i].push_back(j);
    }
  }
  for (const std::size_t a : pool) {
    for (const std::size_t b : pool) {
      if (a != b) peers[a].push_back(b);
    }
  }

  // The planner's demand hints, pushed down so every candidate-pool pair
  // survives the regional top-k (VirtuosoSystem::prepare_federation_for_plan
  // does the same from live VTTIF demands).
  if (federated) {
    for (const std::size_t a : pool) {
      wren::RegionalProxy* proxy = system.regional_proxy(
          system.region_map()->region_of(bn.hosts[a]));
      for (const std::size_t b : pool) {
        if (a != b) proxy->set_demand_weight(bn.hosts[a], bn.hosts[b], 1.0);
      }
    }
  }

  // The daemons' report streams: real control-plane traffic crossing the
  // simulated BRITE network into the flat root or the regional tier.
  sim::PeriodicTask reporter(sim, kReportPeriod, [&] {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<wren::PathReading> readings;
      readings.reserve(peers[i].size());
      for (const std::size_t j : peers[i]) {
        const auto [bw, lat] = truth(i, j);
        readings.push_back({bn.hosts[j], bw, lat});
      }
      const soap::XmlNode msg = wren::encode_wren_report_xml(bn.hosts[i], readings);
      if (federated) {
        const wren::RegionId r = system.region_map()->region_of(bn.hosts[i]);
        system.regional_control(r)->send(bn.hosts[i], msg);
      } else {
        system.control_plane().send(bn.hosts[i], msg);
      }
    }
  });

  sim.run_until(kRunFor);
  reporter.stop();

  RunResult res;
  res.n = n;
  res.regions = federated ? regions : 1;
  if (federated) {
    res.root_view_bytes = system.control_plane().delivered_bytes("FederationSummary");
    for (std::size_t r = 0; r < regions; ++r) {
      res.regional_report_bytes += system.regional_control(r)->delivered_bytes("WrenReport");
    }
    res.coverage = system.federation_root()->coverage();
    res.seq_gaps = system.federation_root()->seq_gaps();
  } else {
    res.root_view_bytes = system.control_plane().delivered_bytes("WrenReport");
  }
  res.root_view_pairs = system.network_view().entries().size();

  // Plan the 8-VM ring over the candidate pool on what this plane's root
  // actually knows (exact entries, then region aggregates, then default),
  // and score the placement under ground truth.
  std::vector<net::NodeId> pool_hosts;
  for (const std::size_t a : pool) pool_hosts.push_back(bn.hosts[a]);
  std::size_t pool_pairs_known = 0;
  vadapt::CapacityGraph planned(pool_hosts, config.default_bandwidth_bps, 0.01);
  vadapt::CapacityGraph truth_graph(pool_hosts, config.default_bandwidth_bps, 0.01);
  const wren::GlobalNetworkView& view = system.network_view();
  for (std::size_t ia = 0; ia < pool.size(); ++ia) {
    for (std::size_t ib = 0; ib < pool.size(); ++ib) {
      if (ia == ib) continue;
      const net::NodeId ha = bn.hosts[pool[ia]];
      const net::NodeId hb = bn.hosts[pool[ib]];
      if (const auto bw = view.bandwidth_bps(ha, hb)) {
        ++pool_pairs_known;
        planned.set_bandwidth(ia, ib, *bw);
      } else if (federated) {
        if (const auto agg = system.federation_root()->aggregate_bandwidth(ha, hb)) {
          planned.set_bandwidth(ia, ib, *agg);
        }
      }
      if (const auto lat = view.latency_seconds(ha, hb)) planned.set_latency(ia, ib, *lat);
      const auto [bw_true, lat_true] = truth(pool[ia], pool[ib]);
      truth_graph.set_bandwidth(ia, ib, bw_true);
      truth_graph.set_latency(ia, ib, lat_true);
    }
  }
  std::vector<vadapt::Demand> ring;
  for (std::size_t v = 0; v < kRingVms; ++v) ring.push_back({v, (v + 1) % kRingVms, 20e6});
  const vadapt::GreedyResult gr = vadapt::greedy_heuristic(planned, ring, kRingVms, {});
  const vadapt::Evaluation ev = vadapt::evaluate(truth_graph, ring, gr.configuration, {});
  res.cost = ev.cost;
  res.feasible = ev.feasible;

  if (want_metrics && system.metrics() != nullptr) {
    res.metrics_json = obs::metrics_json(system.metrics()->snapshot());
  }
  std::cerr << "fedscale n=" << n << (federated ? " federated(" : " flat(")
            << res.regions << " region(s)): root view bytes=" << res.root_view_bytes
            << " regional report bytes=" << res.regional_report_bytes
            << " root pairs=" << res.root_view_pairs << " pool known=" << pool_pairs_known
            << "/" << pool.size() * (pool.size() - 1) << " cost=" << res.cost / 1e6
            << (res.feasible ? "" : " INFEASIBLE") << "\n";
  return res;
}

// The serial oracle: one region, sampling off — the full federated path
// (RegionalProxy -> vw.fedsum.v1 binary codec -> hex armor -> FederationRoot)
// must reproduce the flat GlobalNetworkView bit-identically.
bool run_flat_identical_differential() {
  topo::BriteParams bp;
  bp.nodes = 64;
  RngService rngs(7);
  Rng gen = rngs.stream("feddiff.brite");
  const topo::BriteTopology brite(bp, gen);

  std::vector<net::NodeId> hosts;
  for (net::NodeId h = 100; h < 164; ++h) hosts.push_back(h);
  const wren::RegionMap rm = wren::RegionMap::round_robin(hosts, 1);
  wren::RegionalProxyParams pp;
  pp.summary_max_pairs = 0;  // sampling off
  wren::RegionalProxy proxy(0, rm, pp);
  wren::GlobalNetworkView flat;

  Rng pick = rngs.stream("feddiff.pairs");
  SimTime t = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const auto i = static_cast<std::size_t>(pick.uniform_int(0, 63));
    const auto j = static_cast<std::size_t>(pick.uniform_int(0, 63));
    if (i == j) continue;
    const auto [bw, lat] = brite.path_metrics(i, j);
    t += millis(10);
    proxy.apply_report(hosts[i], {{hosts[j], bw, lat}}, t);
    flat.update_bandwidth(hosts[i], hosts[j], bw, t);
    flat.update_latency(hosts[i], hosts[j], lat, t);
  }

  const wren::FederationSummary summary = proxy.build_summary(t);
  const wren::FederationSummary shipped =
      wren::summary_from_hex(wren::summary_to_hex(summary));
  if (shipped != summary) {
    std::cerr << "fedscale: codec round-trip diverged\n";
    return false;
  }
  wren::GlobalNetworkView root_view;
  wren::FederationRoot root(root_view, rm);
  root.apply_summary(shipped, t);
  const bool identical = root_view.entries() == flat.entries();
  std::cerr << "fedscale differential: " << flat.entries().size() << " pairs, "
            << (identical ? "bit-identical" : "DIVERGED") << "\n";
  return identical;
}

std::string bool_json(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_federation.json";
  std::string metrics_path;
  std::vector<std::size_t> sizes = {250, 1000};
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      // Toy fleets for a fast smoke: the traffic-ratio/scaling gates are
      // advisory there (the fixed summary budget dominates at 64 hosts);
      // only the serial-oracle and convergence gates still bind.
      quick = true;
      sizes = {64, 256};
    }
  }

  struct Row {
    RunResult flat, fed;
  };
  std::vector<Row> rows;
  for (const std::size_t n : sizes) {
    // Regions scale with the fleet (~125 daemons per regional proxy).
    const std::size_t regions = std::max<std::size_t>(2, n / 125);
    Row row;
    row.flat = run_scale(n, /*federated=*/false, 1, /*want_metrics=*/false);
    const bool want_metrics = n == sizes.back();
    row.fed = run_scale(n, /*federated=*/true, regions, want_metrics);
    rows.push_back(std::move(row));
  }

  const bool flat_identical = run_flat_identical_differential();

  // --- gates -----------------------------------------------------------------
  bool pass = flat_identical;
  double worst_ratio = 0, worst_gap = 0;
  for (const Row& row : rows) {
    const double ratio = row.flat.root_view_bytes > 0
                             ? static_cast<double>(row.fed.root_view_bytes) /
                                   static_cast<double>(row.flat.root_view_bytes)
                             : 1.0;
    worst_ratio = std::max(worst_ratio, ratio);
    const double gap =
        (row.flat.cost - row.fed.cost) / std::max(1.0, std::fabs(row.flat.cost));
    worst_gap = std::max(worst_gap, gap);
    if ((!quick && ratio > kRatioMax) || gap > kGapMax || !row.fed.feasible ||
        !row.flat.feasible || row.fed.root_view_pairs == 0) {
      pass = false;
    }
  }
  const RunResult& lo = rows.front().fed;
  const RunResult& hi = rows.back().fed;
  const double exponent =
      std::log(static_cast<double>(hi.root_view_bytes) /
               static_cast<double>(std::max<std::uint64_t>(1, lo.root_view_bytes))) /
      std::log(static_cast<double>(hi.n) / static_cast<double>(lo.n));
  if (!quick && exponent > kExponentMax) pass = false;

  std::ostringstream json;
  json << "{\n  \"suite\": \"federation\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double ratio = static_cast<double>(row.fed.root_view_bytes) /
                         static_cast<double>(std::max<std::uint64_t>(1, row.flat.root_view_bytes));
    const double gap =
        (row.flat.cost - row.fed.cost) / std::max(1.0, std::fabs(row.flat.cost));
    json << "    {\"n\": " << row.flat.n << ", \"regions\": " << row.fed.regions
         << ", \"flat_root_bytes\": " << row.flat.root_view_bytes
         << ", \"fed_root_bytes\": " << row.fed.root_view_bytes
         << ", \"fed_regional_bytes\": " << row.fed.regional_report_bytes
         << ", \"ratio\": " << ratio << ", \"root_pairs_flat\": " << row.flat.root_view_pairs
         << ", \"root_pairs_fed\": " << row.fed.root_view_pairs
         << ", \"coverage\": " << row.fed.coverage << ", \"seq_gaps\": " << row.fed.seq_gaps
         << ", \"cost_flat\": " << row.flat.cost << ", \"cost_fed\": " << row.fed.cost
         << ", \"gap\": " << gap << ", \"feasible\": "
         << bool_json(row.fed.feasible && row.flat.feasible) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"scaling_exponent\": " << exponent << ",\n"
       << "  \"flat_identical\": " << bool_json(flat_identical) << ",\n"
       << "  \"gates\": {\"ratio_max\": " << kRatioMax << ", \"worst_ratio\": " << worst_ratio
       << ", \"gap_max\": " << kGapMax << ", \"worst_gap\": " << worst_gap
       << ", \"exponent_max\": " << kExponentMax << ", \"pass\": " << bool_json(pass)
       << "}\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();
  std::cout << json.str();

  if (!metrics_path.empty()) {
    const std::string& dump = rows.back().fed.metrics_json;
    if (dump.empty()) {
      std::cerr << "fedscale: no metrics snapshot captured\n";
      return 1;
    }
    std::ofstream mout(metrics_path);
    mout << dump;
    std::cerr << "wrote " << metrics_path << "\n";
  }

  if (!pass) {
    std::cerr << "fedscale: GATE FAILURE (see " << out_path << ")\n";
    return 1;
  }
  std::cerr << "fedscale: all gates passed -> " << out_path << "\n";
  return 0;
}
