// Warm-start re-adaptation micro benchmarks (the PR's acceptance gate):
// streaming single-link re-adaptation through WarmStartOptimizer vs the
// from-scratch multi-start pipeline the cold path runs, on BRITE overlay
// graphs at 256 and 1024 daemons.
//
// Two derived numbers gate the PR (tools/bench_to_json.py --suite
// vadapt_warm):
//   - speedup: warm single-link re-adapt at 1024 VMs must be >= 10x faster
//     than a from-scratch solve of the same problem.
//   - scaling: warm time must grow with the *delta*, not the problem — the
//     warm 1024/256 time ratio must stay below the cold 1024/256 ratio,
//     and the delta-size sweep (1/4/16/64 changed pairs at 1024 VMs) shows
//     the cost tracking the touched set.
//
// The cold series deliberately starts from random configurations (no greedy
// seed): on a complete 1024-host overlay the greedy heuristic's widest-path
// trees are themselves the dominant cost, and the gate compares against the
// annealing pipeline, not against greedy.
//
// Custom main: runtime audits (VW_AUDIT) are disabled so contract checks
// (the warm path's monotone-commit ensures) don't pollute the timing.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "topo/brite.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "vadapt/multistart.hpp"
#include "vadapt/problem.hpp"
#include "vadapt/warm_start.hpp"
#include "wren/delta.hpp"

namespace {

using namespace vw;
using namespace vw::vadapt;

CapacityGraph brite_overlay(std::size_t n, std::uint64_t seed) {
  topo::BriteParams params;
  params.nodes = n;
  topo::BriteTopology topo(params, Rng(seed));
  Rng pick(seed + 1);
  return topo.overlay_capacity_graph(n, pick);
}

std::vector<Demand> ring_demands(std::size_t n_vms, double rate) {
  std::vector<Demand> d;
  for (std::size_t i = 0; i < n_vms; ++i)
    d.push_back({static_cast<VmIndex>(i), static_cast<VmIndex>((i + 1) % n_vms), rate});
  return d;
}

// The system's cold kMultiStartAnnealing path with its default solver
// parameters (4 chains x 5000 iterations), run serially so the gate
// measures work, not parallel speedup. Trace recording is disabled (the
// system default records every iteration) to keep the baseline
// conservative.
MultiStartParams cold_params() {
  MultiStartParams ms;
  ms.threads = 1;
  ms.seed = 4242;
  ms.annealing.trace_stride = ms.annealing.iterations;
  return ms;
}

// --- from-scratch baseline: what every adaptation costs without warm start -
void BM_ColdFromScratch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = brite_overlay(n, 11);
  const auto demands = ring_demands(n, 20e6);
  MultiStartParams ms = cold_params();
  for (auto _ : state) {
    ++ms.seed;  // fresh chains per solve, as the system's cold path draws
    benchmark::DoNotOptimize(multi_start_annealing(g, demands, n, Objective{}, ms));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdFromScratch)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdFromScratch)->Arg(1024)->Unit(benchmark::kMillisecond);

// --- warm single-link re-adaptation ----------------------------------------
// One changed directed pair per adapt — the streaming case the optimizer
// exists for. Adoption (the once-per-cold O(n^2) copy) happens in setup,
// outside the timed region; each iteration consumes a one-pair delta.
void BM_WarmSingleLink(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = brite_overlay(n, 11);
  const auto demands = ring_demands(n, 20e6);
  MultiStartParams ms = cold_params();
  const MultiStartResult cold = multi_start_annealing(g, demands, n, Objective{}, ms);

  WarmStartParams wp;
  wp.enabled = true;
  WarmStartOptimizer warm(wp);
  warm.adopt(g, demands, n, cold.best.best);

  const net::NodeId u = g.hosts()[0];
  const net::NodeId v = g.hosts()[1];
  const double base = g.bandwidth(0, 1);
  std::uint64_t epoch = 0;
  bool low = false;
  for (auto _ : state) {
    wren::ViewDelta delta;
    delta.note_bandwidth(u, v, low ? base * 0.5 : base);  // alternate: no drift
    low = !low;
    benchmark::DoNotOptimize(warm.adapt(delta, demands, Rng(epoch++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WarmSingleLink)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmSingleLink)->Arg(1024)->Unit(benchmark::kMillisecond);

// --- delta-size sweep at 1024 VMs ------------------------------------------
// Re-adapt cost as a function of how many directed pairs the delta touches:
// the O(delta) claim is that this curve, not the problem size, drives time.
void BM_WarmDeltaSize(benchmark::State& state) {
  constexpr std::size_t kN = 1024;
  const auto k = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = brite_overlay(kN, 11);
  const auto demands = ring_demands(kN, 20e6);
  MultiStartParams ms = cold_params();
  const MultiStartResult cold = multi_start_annealing(g, demands, kN, Objective{}, ms);

  WarmStartParams wp;
  wp.enabled = true;
  WarmStartOptimizer warm(wp);
  warm.adopt(g, demands, kN, cold.best.best);

  std::vector<double> base(k);
  for (std::size_t i = 0; i < k; ++i) base[i] = g.bandwidth(i, (i + 7) % kN);
  std::uint64_t epoch = 0;
  bool low = false;
  for (auto _ : state) {
    wren::ViewDelta delta;
    for (std::size_t i = 0; i < k; ++i) {
      delta.note_bandwidth(g.hosts()[i], g.hosts()[(i + 7) % kN],
                           low ? base[i] * 0.5 : base[i]);
    }
    low = !low;
    benchmark::DoNotOptimize(warm.adapt(delta, demands, Rng(epoch++)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_WarmDeltaSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  vw::contracts::set_audit_enabled(false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
