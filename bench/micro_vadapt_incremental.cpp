// Incremental-evaluation micro benchmarks (the PR's acceptance gate): SA
// iteration throughput with the O(path-length) IncrementalEvaluator vs the
// pre-incremental full-rescore cost structure, the underlying single-move
// delta vs a from-scratch evaluate(), and the adjacency-list/cached widest
// paths vs the dense O(n^2) scan.
//
// Both annealing variants consume the identical RNG stream and — because
// delta evaluation is bit-exact — make identical optimizer decisions, so
// the ratio of their items_per_second is a pure cost-structure comparison
// at the problem size the paper's Figure 11 uses (32 hosts, 8-VM ring).
//
// tools/bench_to_json.py runs this binary and emits BENCH_vadapt.json with
// the derived speedups.
//
// Custom main: runtime audits (VW_AUDIT) are disabled so contract checks
// in hot loops don't pollute the timing.

#include <benchmark/benchmark.h>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/incremental.hpp"
#include "vadapt/widest_path.hpp"

namespace {

using namespace vw;
using namespace vw::vadapt;

constexpr std::size_t kHosts = 32;
constexpr std::size_t kVms = 8;

CapacityGraph random_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<net::NodeId> hosts(n);
  for (std::size_t i = 0; i < n; ++i) hosts[i] = static_cast<net::NodeId>(i);
  CapacityGraph g(hosts);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      g.set_bandwidth(i, j, rng.uniform(10e6, 1000e6));
      g.set_latency(i, j, rng.uniform(0.0001, 0.05));
    }
  }
  return g;
}

std::vector<Demand> ring_demands(std::size_t n_vms, double rate) {
  std::vector<Demand> d;
  for (std::size_t i = 0; i < n_vms; ++i) d.push_back({i, (i + 1) % n_vms, rate});
  return d;
}

// --- SA iteration throughput: full rescore vs incremental ------------------
// items_per_second = SA iterations per second; the acceptance criterion is
// incremental >= 5x full at this problem size.
void BM_AnnealingIteration(benchmark::State& state, bool full_rescore) {
  const CapacityGraph g = random_graph(kHosts, 3);
  const auto demands = ring_demands(kVms, 20e6);
  AnnealingParams params;
  params.iterations = 2000;
  params.trace_stride = params.iterations;  // no trace overhead
  params.full_rescore = full_rescore;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulated_annealing(g, demands, kVms, Objective{}, params, Rng(seed++)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.iterations));
}
BENCHMARK_CAPTURE(BM_AnnealingIteration, full, true);
BENCHMARK_CAPTURE(BM_AnnealingIteration, incremental, false);

// Same comparison under the Eq.3 combined objective (latency term adds a
// per-demand division that the delta path also skips for untouched demands).
void BM_AnnealingIterationEq3(benchmark::State& state, bool full_rescore) {
  const CapacityGraph g = random_graph(kHosts, 3);
  const auto demands = ring_demands(kVms, 20e6);
  Objective objective;
  objective.kind = ObjectiveKind::kResidualBandwidthLatency;
  objective.latency_weight = 3e5;
  AnnealingParams params;
  params.iterations = 2000;
  params.trace_stride = params.iterations;
  params.full_rescore = full_rescore;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulated_annealing(g, demands, kVms, objective, params, Rng(seed++)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.iterations));
}
BENCHMARK_CAPTURE(BM_AnnealingIterationEq3, full, true);
BENCHMARK_CAPTURE(BM_AnnealingIterationEq3, incremental, false);

// --- the primitive underneath: one move scored from scratch vs as a delta --
void BM_EvaluateFull(benchmark::State& state) {
  const CapacityGraph g = random_graph(kHosts, 5);
  const auto demands = ring_demands(kVms, 20e6);
  Rng rng(7);
  const Configuration conf = random_configuration(g, demands, kVms, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate(g, demands, conf, Objective{}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateFull);

void BM_SetPathDelta(benchmark::State& state) {
  const CapacityGraph g = random_graph(kHosts, 5);
  const auto demands = ring_demands(kVms, 20e6);
  Rng rng(7);
  IncrementalEvaluator ev(g, demands, Objective{});
  ev.reset(random_configuration(g, demands, kVms, rng));
  const Path direct(ev.configuration().paths[0]);
  Path detour = direct;
  detour.insert(detour.begin() + 1, (direct[0] + 1) % kHosts == direct[1]
                                        ? (direct[0] + 2) % kHosts
                                        : (direct[0] + 1) % kHosts);
  bool flip = false;
  for (auto _ : state) {
    ev.set_path(0, flip ? detour : direct);  // apply + revert alternate
    benchmark::DoNotOptimize(ev.evaluation());
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetPathDelta);

// --- widest paths: dense matrix scan vs adjacency view vs cached tree ------
void BM_WidestPathsDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = random_graph(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(widest_paths(g.bandwidth_matrix(), 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WidestPathsDense)->Arg(32)->Arg(128);

void BM_WidestPathsView(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = random_graph(n, 1);
  const AdjacencyView view(g.bandwidth_matrix());
  for (auto _ : state) {
    benchmark::DoNotOptimize(widest_paths(view, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WidestPathsView)->Arg(32)->Arg(128);

void BM_WidestPathsCached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CapacityGraph g = random_graph(n, 1);
  const AdjacencyView view(g.bandwidth_matrix());
  WidestPathCache cache(view);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.tree(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WidestPathsCached)->Arg(32)->Arg(128);

// Greedy heuristic end to end (now sharing one tree cache across the
// mapping and routing steps).
void BM_GreedyHeuristic(benchmark::State& state) {
  const CapacityGraph g = random_graph(kHosts, 2);
  const auto demands = ring_demands(kVms, 20e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_heuristic(g, demands, kVms));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GreedyHeuristic);

}  // namespace

int main(int argc, char** argv) {
  vw::contracts::set_audit_enabled(false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
