// Figure 11 reproduction: scalability study — adaptation of an 8-VM ring
// application onto 32 VNET hosts chosen from a 256-node BRITE (Waxman
// flat-router) physical topology, bandwidths uniform in [10, 1024] Mb/s,
// out-degree 2. Each overlay link is the routed path in the underlying
// topology (bottleneck bandwidth / summed latency).
//
// The paper's findings to reproduce: GH completes almost instantly but is
// beatable; SA takes longer yet eventually meets and exceeds the GH
// solution; with the combined bandwidth+latency objective (Eq. 3) SA
// greatly exceeds GH (which ignores latency entirely).
//
// Output: CSV objective, iteration, sa, sa_gh, sa_gh_best, ms_best, gh
// (ms_best = best-so-far of the winning multi-start chain) + timing notes
// on stderr.
//
// `--shards N` switches to the packet-level scale-up phase instead: the
// same 256-node BRITE topology is instantiated as a real net::Network
// (topo::make_brite_network), partitioned onto N conservative shards, and
// driven with ping-pong datagram traffic between the 32 VNET hosts. Output
// is one CSV row of engine statistics (events, epochs, handoffs, wall
// time); N=1 is the serial oracle to ratio against.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>

#include "net/network.hpp"
#include "sim/sharded.hpp"
#include "topo/brite.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/multistart.hpp"

using namespace vw;
using namespace vw::vadapt;

namespace {

void run_objective(const CapacityGraph& graph, const std::vector<Demand>& demands,
                   std::size_t n_vms, const Objective& objective, const char* label,
                   CsvWriter& csv) {
  const auto t0 = std::chrono::steady_clock::now();
  const GreedyResult gh = greedy_heuristic(graph, demands, n_vms, objective);
  const auto t1 = std::chrono::steady_clock::now();

  AnnealingParams params;
  params.iterations = 100'000;
  params.cooling = 0.99995;
  params.trace_stride = 200;
  RngService rngs(4242);
  Rng r1 = rngs.stream(std::string("fig11.sa.") + label);
  const AnnealingResult sa = simulated_annealing(graph, demands, n_vms, objective, params, r1);
  Rng r2 = rngs.stream(std::string("fig11.sagh.") + label);
  const AnnealingResult sa_gh =
      simulated_annealing(graph, demands, n_vms, objective, params, r2, gh.configuration);
  const auto t2 = std::chrono::steady_clock::now();

  // Multi-start: 4 chains, chain 0 seeded with GH, same per-chain budget.
  MultiStartParams ms_params;
  ms_params.chains = 4;
  ms_params.annealing = params;
  ms_params.seed = rngs.seed_for(std::string("fig11.multistart.") + label);
  const MultiStartResult multi =
      multi_start_annealing(graph, demands, n_vms, objective, ms_params, gh.configuration);
  const auto t3 = std::chrono::steady_clock::now();

  for (std::size_t i = 0; i < sa.trace.size(); i += 5) {
    csv.text_row({label, std::to_string(sa.trace[i].iteration),
                  std::to_string(sa.trace[i].current_cost / 1e6),
                  std::to_string(sa_gh.trace[i].current_cost / 1e6),
                  std::to_string(sa_gh.trace[i].best_cost / 1e6),
                  std::to_string(multi.best.trace[i].best_cost / 1e6),
                  std::to_string(gh.evaluation.cost / 1e6)});
  }

  using ms = std::chrono::duration<double, std::milli>;
  std::cerr << "fig11 [" << label << "]: GH=" << gh.evaluation.cost / 1e6 << " in "
            << ms(t1 - t0).count() << " ms; SA best=" << sa.best_evaluation.cost / 1e6
            << ", SA+GH best=" << sa_gh.best_evaluation.cost / 1e6 << " in "
            << ms(t2 - t1).count() << " ms (both runs); multistart(K=4)+GH best="
            << multi.best.best_evaluation.cost / 1e6 << " (chain " << multi.best_chain
            << ") in " << ms(t3 - t2).count() << " ms\n";
}

// The packet-level scale-up phase (--shards N): the fig11 physical topology
// as a live packet network on the sharded engine. Every host ping-pongs
// 1000-byte datagrams with a partner host for 200 ms of virtual time.
int run_sharded_scale(std::size_t shards) {
  topo::BriteParams params;
  params.nodes = 256;
  params.out_degree = 2;
  RngService rngs(99);
  Rng gen = rngs.stream("fig11.brite");
  const topo::BriteTopology brite(params, gen);

  std::optional<ThreadPool> pool;
  if (shards > 1) pool.emplace(shards);
  sim::ShardedSimulator ssim(shards, pool ? &*pool : nullptr);
  Rng pick = rngs.stream("fig11.hosts");
  const topo::BriteNetwork bn =
      topo::make_brite_network(ssim.shard(0), brite, 32, pick);
  net::Network& net = *bn.network;

  net::Network::PartitionOptions popts;
  popts.shards = shards;
  const net::Network::ShardPlan plan = net.partition(popts);
  net.bind_shards(ssim, plan);
  if (plan.lookahead > 0) ssim.set_lookahead(plan.lookahead);

  const std::size_t n = bn.hosts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId me = bn.hosts[i];
    const net::NodeId peer = bn.hosts[(i + n / 2) % n];
    net.set_host_stack(me, [&net, me, peer](net::Packet&&) {
      net::Packet reply;
      reply.flow = net::FlowKey{me, peer, 4000, 4000, net::Protocol::kUdp};
      reply.payload_bytes = 960;
      net.send(std::move(reply));
    });
  }
  for (std::size_t i = 0; i < n / 2; ++i) {
    const net::NodeId me = bn.hosts[i];
    const net::NodeId peer = bn.hosts[i + n / 2];
    net.sim_for(me).schedule_at(0, [&net, me, peer] {
      for (int w = 0; w < 16; ++w) {
        net::Packet pkt;
        pkt.flow = net::FlowKey{me, peer, 4000, 4000, net::Protocol::kUdp};
        pkt.payload_bytes = 960;
        net.send(std::move(pkt));
      }
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  ssim.run_until(millis(200));
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const std::uint64_t events = ssim.events_executed();

  CsvWriter csv(std::cout, {"shards", "virtual_ms", "wall_ms", "events",
                            "events_per_sec", "epochs", "handoffs", "lookahead_ns"});
  csv.text_row({std::to_string(shards), "200", std::to_string(wall_ms),
                std::to_string(events), std::to_string(events / (wall_ms / 1e3)),
                std::to_string(ssim.stats().epochs), std::to_string(ssim.stats().handoffs),
                std::to_string(plan.lookahead)});
  std::cerr << "fig11 [--shards " << shards << "]: " << events << " events in " << wall_ms
            << " ms (" << static_cast<std::uint64_t>(events / (wall_ms / 1e3))
            << " events/s), " << ssim.stats().epochs << " epochs, "
            << ssim.stats().handoffs << " cross-shard handoffs, lookahead "
            << plan.lookahead << " ns, " << net.packets_delivered() << " delivered\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      return run_sharded_scale(static_cast<std::size_t>(std::atoi(argv[i + 1])));
    }
  }
  topo::BriteParams params;
  params.nodes = 256;
  params.out_degree = 2;
  RngService rngs(99);
  Rng gen = rngs.stream("fig11.brite");
  const topo::BriteTopology brite(params, gen);
  Rng pick = rngs.stream("fig11.hosts");
  const CapacityGraph graph = brite.overlay_capacity_graph(32, pick);

  // 8-VM ring application.
  std::vector<Demand> demands;
  for (std::size_t i = 0; i < 8; ++i) demands.push_back({i, (i + 1) % 8, 20e6});

  std::cout << "# Figure 11: 8-VM ring onto 32 VNET hosts over a 256-node BRITE topology\n";
  CsvWriter csv(std::cout,
                {"objective", "iteration", "sa", "sa_gh", "sa_gh_best", "ms_best", "gh"});

  Objective residual;  // Eq. 1
  run_objective(graph, demands, 8, residual, "residual_bw", csv);

  Objective combined;  // Eq. 3
  combined.kind = ObjectiveKind::kResidualBandwidthLatency;
  // c sized so a millisecond-scale path latency is worth hundreds of Mb/s
  // of residual capacity — the latency term must actually steer the search
  // (GH ignores it entirely, which is the point of this comparison).
  combined.latency_weight = 3e5;
  run_objective(graph, demands, 8, combined, "residual_bw_latency", csv);

  return 0;
}
