// Parallel-simulation micro benchmark (this PR's acceptance gate): event
// throughput of the sharded conservative engine versus the single-shard
// serial oracle on an identical workload.
//
// The workload is a 32-host star (1 Gb/s access links, 50 us propagation —
// the propagation delay is the lookahead, so every conservative window
// spans 50 us of virtual time). Host i ping-pongs 1000-byte datagrams with
// host (i+16) % 32 through raw host stacks, 32 packets in flight per pair,
// so every shard has a deep event queue inside each window. The star center
// does no per-packet work under the cut-through ownership rule (the
// transit decision runs on the upstream host's shard), so the switch never
// serializes the run.
//
// BM_ShardedStar/N runs the same workload on N shards; N=1 uses no thread
// pool at all (the serial oracle). items_per_second = simulator events
// executed. tools/bench_to_json.py --suite parallel_sim wraps this binary
// into BENCH_parallel_sim.json and gates items/s(4 shards) / items/s(1
// shard) >= 2.5 when the machine has at least 4 CPUs.
//
// Custom main: runtime audits (VW_AUDIT) are disabled so contract checks in
// hot loops don't pollute the timing.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace vw;

constexpr int kHosts = 32;
constexpr int kWindow = 32;          // packets in flight per pair
constexpr std::uint32_t kPayload = 960;  // + 40B header = 1000B on the wire

int partner(int i) { return (i + 16) % kHosts; }

net::Packet make_pkt(net::NodeId src, net::NodeId dst) {
  net::Packet pkt;
  pkt.flow = net::FlowKey{src, dst, 4000, 4000, net::Protocol::kUdp};
  pkt.payload_bytes = kPayload;
  return pkt;
}

// Per-host receive counter, cacheline-isolated: hosts on different shards
// bump their counters from different worker threads.
struct alignas(64) HostCounter {
  std::uint64_t received = 0;
};

void BM_ShardedStar(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::optional<ThreadPool> pool;
  if (shards > 1) pool.emplace(shards);
  sim::ShardedSimulator ssim(shards, pool ? &*pool : nullptr);

  net::Network net(ssim.shard(0));
  const net::NodeId sw = net.add_router("switch");
  std::vector<net::NodeId> hosts;
  net::LinkConfig link;
  link.bits_per_sec = 1e9;
  link.prop_delay = micros(50);
  for (int i = 0; i < kHosts; ++i) {
    hosts.push_back(net.add_host("host-" + std::to_string(i)));
    net.add_link(hosts.back(), sw, link);
  }
  net.compute_routes();

  net::Network::PartitionOptions opts;
  opts.shards = shards;
  const net::Network::ShardPlan plan = net.partition(opts);
  net.bind_shards(ssim, plan);
  if (plan.lookahead > 0) ssim.set_lookahead(plan.lookahead);

  std::vector<HostCounter> counters(kHosts);
  for (int i = 0; i < kHosts; ++i) {
    const net::NodeId me = hosts[static_cast<std::size_t>(i)];
    const net::NodeId peer = hosts[static_cast<std::size_t>(partner(i))];
    net.set_host_stack(me, [&net, &counters, i, me, peer](net::Packet&&) {
      ++counters[static_cast<std::size_t>(i)].received;
      net.send(make_pkt(me, peer));  // ping-pong: answer every delivery
    });
  }
  // Prime kWindow round trips per pair from the lower half.
  for (int i = 0; i < kHosts / 2; ++i) {
    const net::NodeId me = hosts[static_cast<std::size_t>(i)];
    const net::NodeId peer = hosts[static_cast<std::size_t>(partner(i))];
    net.sim_for(me).schedule_at(0, [&net, me, peer] {
      for (int w = 0; w < kWindow; ++w) net.send(make_pkt(me, peer));
    });
  }

  SimTime horizon = 0;
  const std::uint64_t events0 = ssim.events_executed();
  for (auto _ : state) {
    horizon += millis(10);
    ssim.run_until(horizon);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(ssim.events_executed() - events0));

  std::uint64_t delivered = 0;
  for (const HostCounter& c : counters) delivered += c.received;
  VW_REQUIRE(delivered > 0, "sharded star delivered nothing");
  VW_REQUIRE(delivered == net.packets_delivered(), "delivery count mismatch: taps=",
             delivered, " network=", net.packets_delivered());
  state.counters["epochs"] = static_cast<double>(ssim.stats().epochs);
  state.counters["handoffs"] = static_cast<double>(ssim.stats().handoffs);
}
BENCHMARK(BM_ShardedStar)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  vw::contracts::set_audit_enabled(false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
