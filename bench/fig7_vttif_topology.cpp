// Figure 7 reproduction: the application topology VTTIF infers for a 4-VM
// NAS MultiGrid-like benchmark.
//
// The MultiGrid traffic pattern (strong nearest-neighbor exchange with
// weaker second/third-neighbor components from coarser grid levels) runs in
// 4 VMs over the VNET star; VTTIF's local observers accumulate the
// per-daemon matrices, the Proxy aggregates them through the sliding-window
// low-pass filter, and normalization + pruning recover the topology.
//
// Output: the inferred directed edges with their rates — the arrows (and
// thicknesses) of the paper's Figure 7 — next to the generated truth.

#include <iostream>

#include "topo/testbed.hpp"
#include "util/csv.hpp"
#include "virtuoso/system.hpp"
#include "vm/apps.hpp"

using namespace vw;

int main() {
  sim::Simulator sim;
  topo::NwuWmTestbed tb = topo::make_nwu_wm_network(sim);

  virtuoso::VirtuosoSystem system(sim, *tb.network, virtuoso::SystemConfig{});
  system.add_daemon(tb.minet1, "minet-1", /*is_proxy=*/true);
  system.add_daemon(tb.minet2, "minet-2");
  system.add_daemon(tb.lr3, "lr3");
  system.add_daemon(tb.lr4, "lr4");
  system.bootstrap(vnet::LinkProtocol::kUdp);

  std::vector<vm::VirtualMachine*> vms;
  vms.push_back(&system.create_vm("vm-1", tb.minet1));
  vms.push_back(&system.create_vm("vm-2", tb.minet2));
  vms.push_back(&system.create_vm("vm-3", tb.lr3));
  vms.push_back(&system.create_vm("vm-4", tb.lr4));

  const vm::apps::DemandMatrix truth = vm::apps::multigrid4(6e6);
  vm::apps::MatrixTrafficApp app(sim, vms, truth, millis(100));
  app.start();
  sim.run_until(seconds(30.0));
  app.stop();

  const vttif::Topology topo = system.global_vttif().current_topology();

  std::cout << "# Figure 7: VTTIF-inferred topology of the 4-VM NAS MultiGrid-like pattern\n";
  std::cout << "# edge weights in Mb/s; normalized = weight / max weight (arrow thickness)\n";
  CsvWriter csv(std::cout,
                {"src_vm", "dst_vm", "inferred_mbps", "normalized", "generated_mbps"});
  for (const vttif::TopologyEdge& e : topo.edges) {
    // MACs are 1-based VM creation order.
    const auto src_idx = static_cast<std::size_t>(e.src - 1);
    const auto dst_idx = static_cast<std::size_t>(e.dst - 1);
    const auto it = truth.find({src_idx, dst_idx});
    csv.row({static_cast<double>(e.src), static_cast<double>(e.dst), e.rate_bps / 1e6,
             e.normalized, it != truth.end() ? it->second / 1e6 : 0.0});
  }

  std::cerr << "fig7: " << topo.edges.size() << " edges inferred, "
            << system.global_vttif().updates_received() << " local updates aggregated\n";
  return 0;
}
