// Tests for Wren: the packet trace facility, train extraction, SIC
// available-bandwidth estimation (unit-level on synthetic records and
// end-to-end against simulated traffic with known cross traffic), the
// online analyzer, the SOAP service and the global network view.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "net/network.hpp"
#include "net/probe.hpp"
#include "sim/simulator.hpp"
#include "soap/rpc.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "util/check.hpp"
#include "wren/analyzer.hpp"
#include "wren/service.hpp"
#include "wren/sic.hpp"
#include "wren/trace.hpp"
#include "wren/train.hpp"
#include "wren/view.hpp"

namespace vw::wren {
namespace {

using net::FlowKey;
using net::Protocol;
using net::TapDirection;

FlowKey test_flow() { return FlowKey{0, 1, 100, 200, Protocol::kTcp}; }

PacketRecord out_record(SimTime t, std::uint64_t seq, std::uint32_t payload = 1460) {
  PacketRecord r;
  r.timestamp = t;
  r.direction = TapDirection::kOutgoing;
  r.flow = test_flow();
  r.payload_bytes = payload;
  r.wire_bytes = payload + 40;
  r.seq = seq;
  return r;
}

// --- TrainExtractor ----------------------------------------------------------

TEST(TrainExtractorTest, UniformSpacingFormsOneTrain) {
  std::vector<Train> trains;
  TrainExtractor ex(test_flow(), TrainParams{}, [&](const Train& t) { trains.push_back(t); });
  // 10 packets spaced 120us (1500B at 100Mbps), then silence -> flush.
  for (int i = 0; i < 10; ++i) {
    ex.add(out_record(i * micros(120), static_cast<std::uint64_t>(i) * 1460));
  }
  ex.flush();
  ASSERT_EQ(trains.size(), 1u);
  EXPECT_EQ(trains[0].length(), 10u);
  // ISR: 9 packets of 1500B over 9*120us = 100 Mbps.
  EXPECT_NEAR(trains[0].isr_bps, 100e6, 1e6);
}

TEST(TrainExtractorTest, LongGapBreaksTrain) {
  std::vector<Train> trains;
  TrainExtractor ex(test_flow(), TrainParams{}, [&](const Train& t) { trains.push_back(t); });
  for (int i = 0; i < 6; ++i) {
    ex.add(out_record(i * micros(120), static_cast<std::uint64_t>(i) * 1460));
  }
  // 50ms silence (> max_gap), then 6 more.
  for (int i = 0; i < 6; ++i) {
    ex.add(out_record(millis(50) + i * micros(120), (6 + static_cast<std::uint64_t>(i)) * 1460));
  }
  ex.flush();
  EXPECT_EQ(trains.size(), 2u);
}

TEST(TrainExtractorTest, ShortRunsAreDiscarded) {
  std::vector<Train> trains;
  TrainParams params;
  params.min_length = 5;
  TrainExtractor ex(test_flow(), params, [&](const Train& t) { trains.push_back(t); });
  for (int i = 0; i < 4; ++i) {
    ex.add(out_record(i * micros(120), static_cast<std::uint64_t>(i) * 1460));
  }
  ex.flush();
  EXPECT_TRUE(trains.empty());
}

TEST(TrainExtractorTest, InconsistentSpacingSplitsMaximalRuns) {
  std::vector<Train> trains;
  TrainParams params;
  params.spacing_tolerance = 2.0;
  TrainExtractor ex(test_flow(), params, [&](const Train& t) { trains.push_back(t); });
  // 8 tightly spaced, then a 9x jump in gap (still < max_gap), then 8 more.
  SimTime t = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i, t += micros(100), seq += 1460) ex.add(out_record(t, seq));
  t += micros(900);
  for (int i = 0; i < 8; ++i, t += micros(100), seq += 1460) ex.add(out_record(t, seq));
  ex.flush();
  ASSERT_EQ(trains.size(), 2u);
  EXPECT_GE(trains[0].length(), 8u);
  EXPECT_GE(trains[1].length(), 8u);
}

TEST(TrainExtractorTest, VariableLengthTrainsAreMaximal) {
  // The online tool scans for maximum-sized trains: a long uniform run must
  // come out as ONE train, not several fixed-size ones.
  std::vector<Train> trains;
  TrainExtractor ex(test_flow(), TrainParams{}, [&](const Train& t) { trains.push_back(t); });
  for (int i = 0; i < 100; ++i) {
    ex.add(out_record(i * micros(120), static_cast<std::uint64_t>(i) * 1460));
  }
  ex.flush();
  ASSERT_EQ(trains.size(), 1u);
  EXPECT_EQ(trains[0].length(), 100u);
}

TEST(TrainExtractorTest, PureAcksIgnored) {
  std::vector<Train> trains;
  TrainExtractor ex(test_flow(), TrainParams{}, [&](const Train& t) { trains.push_back(t); });
  PacketRecord ack = out_record(0, 0, 0);
  ack.is_ack = true;
  for (int i = 0; i < 10; ++i) {
    ack.timestamp = i * micros(120);
    ex.add(ack);
  }
  ex.flush();
  EXPECT_TRUE(trains.empty());
}

TEST(TrainExtractorTest, FlowMismatchThrows) {
  TrainExtractor ex(test_flow(), TrainParams{}, nullptr);
  PacketRecord r = out_record(0, 0);
  r.flow.dst_port = 999;
  EXPECT_THROW(ex.add(r), std::invalid_argument);
}

// --- SicEstimator (synthetic) ---------------------------------------------------

Train make_train(double isr_bps, std::size_t len = 10, SimTime start = 0) {
  Train t;
  t.flow = test_flow();
  const double gap_s = 1500.0 * 8.0 / isr_bps;
  for (std::size_t i = 0; i < len; ++i) {
    t.packets.push_back(TrainPacket{start + seconds(gap_s * static_cast<double>(i)),
                                    (i + 1) * 1460, 1500});
  }
  t.start_time = t.packets.front().sent_at;
  t.end_time = t.packets.back().sent_at;
  t.isr_bps = isr_bps;
  return t;
}

/// Feed ACKs for `train` with either flat or linearly growing RTTs.
void feed_acks(SicEstimator& est, const Train& train, SimTime base_rtt, SimTime rtt_growth) {
  for (std::size_t i = 0; i < train.packets.size(); ++i) {
    const TrainPacket& p = train.packets[i];
    est.add_ack(p.sent_at + base_rtt + static_cast<SimTime>(i) * rtt_growth, p.seq_end);
  }
}

TEST(SicEstimatorTest, UncongestedTrainRaisesEstimate) {
  SicEstimator est;
  const Train t = make_train(50e6);
  est.add_train(t);
  feed_acks(est, t, millis(1), 0);  // flat RTTs: no congestion
  est.process(seconds(1.0));
  ASSERT_TRUE(est.estimate_bps().has_value());
  EXPECT_NEAR(*est.estimate_bps(), 50e6, 1e6);
  ASSERT_EQ(est.window().size(), 1u);
  EXPECT_FALSE(est.window().front().congested);
}

TEST(SicEstimatorTest, CongestedTrainUsesAckRate) {
  SicEstimator est;
  const Train t = make_train(100e6);
  est.add_train(t);
  // Increasing RTTs: congestion. ACK spacing stretches (50us per packet) so
  // the ACK return rate falls below the ISR; the implied cross rate stays
  // physical (below capacity), so the inversion yields a positive estimate.
  feed_acks(est, t, millis(1), micros(50));
  est.process(seconds(1.0));
  ASSERT_EQ(est.window().size(), 1u);
  const SicObservation& obs = est.window().front();
  EXPECT_TRUE(obs.congested);
  EXPECT_LT(obs.ack_rate_bps, obs.isr_bps);
  ASSERT_TRUE(est.estimate_bps().has_value());
  EXPECT_LT(*est.estimate_bps(), 100e6);
  EXPECT_GT(*est.estimate_bps(), 0.0);
}

TEST(SicEstimatorTest, UniformAckStretchReadsAsSlowBottleneck) {
  // ACKs stretched uniformly look exactly like transmission through a
  // bottleneck of the ACK rate with no cross traffic: the capacity tracker
  // (ACK-pair dispersion) and the congestion inversion agree on ack_rate as
  // the available bandwidth.
  SicEstimator est;
  const Train t = make_train(100e6);
  est.add_train(t);
  feed_acks(est, t, millis(1), micros(300));
  est.process(seconds(1.0));
  ASSERT_EQ(est.window().size(), 1u);
  const SicObservation& obs = est.window().front();
  EXPECT_TRUE(obs.congested);
  ASSERT_TRUE(est.estimate_bps().has_value());
  EXPECT_NEAR(*est.estimate_bps(), obs.ack_rate_bps, 0.15 * obs.ack_rate_bps);
  ASSERT_TRUE(est.capacity_estimate_bps().has_value());
  EXPECT_LT(*est.capacity_estimate_bps(), 40e6);  // far below the 100 Mb/s ISR
}

TEST(SicEstimatorTest, TrainWithoutAcksTimesOut) {
  SicEstimator est;
  est.add_train(make_train(50e6));
  est.process(seconds(10.0));  // way past pending_timeout
  EXPECT_EQ(est.window().size(), 0u);
  EXPECT_EQ(est.trains_dropped(), 1u);
}

TEST(SicEstimatorTest, ObservationCallbackFires) {
  SicEstimator est;
  int fired = 0;
  est.set_on_observation([&](const SicObservation&) { ++fired; });
  const Train t = make_train(20e6);
  est.add_train(t);
  feed_acks(est, t, millis(1), 0);
  est.process(seconds(1.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(est.observations_total(), 1u);
}

TEST(SicEstimatorTest, WindowAgesOut) {
  SicParams params;
  params.window_age = seconds(5.0);
  SicEstimator est(params);
  const Train t = make_train(20e6);
  est.add_train(t);
  feed_acks(est, t, millis(1), 0);
  est.process(seconds(1.0));
  EXPECT_EQ(est.window().size(), 1u);
  est.process(seconds(30.0));
  EXPECT_EQ(est.window().size(), 0u);
  // The smoothed estimate survives (last known value).
  EXPECT_TRUE(est.estimate_bps().has_value());
}

TEST(SicEstimatorTest, MinRttTracked) {
  SicEstimator est;
  const Train t = make_train(20e6);
  est.add_train(t);
  feed_acks(est, t, millis(4), 0);
  est.process(seconds(1.0));
  ASSERT_TRUE(est.min_rtt_seconds().has_value());
  EXPECT_NEAR(*est.min_rtt_seconds(), 0.004, 0.001);
}

TEST(SicEstimatorTest, DuplicateAcksIgnored) {
  SicEstimator est;
  est.add_ack(micros(100), 1000);
  est.add_ack(micros(200), 1000);  // duplicate: must not corrupt the series
  est.add_ack(micros(300), 500);   // regression: ignored
  est.add_ack(micros(400), 2000);
  const Train t = make_train(20e6, 5);
  est.add_train(t);
  feed_acks(est, t, millis(1), 0);
  est.process(seconds(1.0));
  EXPECT_EQ(est.window().size(), 1u);
}

// --- end-to-end: Wren measuring simulated traffic ---------------------------------

struct WrenEnv {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId sender, receiver, cross, sw;
  std::unique_ptr<transport::TransportStack> stack;

  explicit WrenEnv(double bps = 100e6) {
    sender = net.add_host("sender");
    receiver = net.add_host("receiver");
    cross = net.add_host("cross");
    sw = net.add_router("switch");
    net::LinkConfig cfg;
    cfg.bits_per_sec = bps;
    cfg.prop_delay = micros(50);
    net.add_link(sender, sw, cfg);
    net.add_link(cross, sw, cfg);
    net.add_link(sw, receiver, cfg);
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
  }
};

TEST(WrenEndToEndTest, TraceCapturesTcpOnly) {
  WrenEnv env;
  TraceFacility trace(env.net, env.sender);
  auto udp_tx = env.stack->udp_bind(env.sender, 5001);
  udp_tx->send_to(env.receiver, 5000, 500);
  env.stack->tcp_listen(env.receiver, 80, [](transport::TcpConnection&) {});
  env.stack->tcp_connect(env.sender, env.receiver, 80).send(10'000);
  env.sim.run_until(seconds(2.0));
  const auto records = trace.collect();
  EXPECT_GT(records.size(), 0u);
  for (const auto& r : records) EXPECT_EQ(r.flow.proto, Protocol::kTcp);
}

TEST(WrenEndToEndTest, AnalyzerMeasuresIdleLinkBandwidth) {
  WrenEnv env;  // 100 Mbps, no cross traffic
  OnlineAnalyzer analyzer(env.net, env.sender);
  std::vector<transport::MessagePhase> phases{
      {.count = 100, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(8.0));
  const auto bw = analyzer.available_bandwidth_bps(env.receiver);
  ASSERT_TRUE(bw.has_value());
  // The whole 100 Mbps is available; expect within 25%.
  EXPECT_GT(*bw, 75e6);
  EXPECT_LT(*bw, 110e6);
}

TEST(WrenEndToEndTest, LatencyEstimateMatchesPath) {
  WrenEnv env;
  OnlineAnalyzer analyzer(env.net, env.sender);
  std::vector<transport::MessagePhase> phases{
      {.count = 50, .message_bytes = 100'000, .spacing = millis(50), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(4.0));
  const auto lat = analyzer.latency_seconds(env.receiver);
  ASSERT_TRUE(lat.has_value());
  // One-way propagation is 100us; serialization adds some. Accept < 2ms.
  EXPECT_GT(*lat, 0.00005);
  EXPECT_LT(*lat, 0.002);
}

TEST(WrenEndToEndTest, PeersListedAfterTraffic) {
  WrenEnv env;
  OnlineAnalyzer analyzer(env.net, env.sender);
  std::vector<transport::MessagePhase> phases{
      {.count = 20, .message_bytes = 50'000, .spacing = millis(50), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(3.0));
  const auto peers = analyzer.peers();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], env.receiver);
}

// Property sweep: with CBR cross traffic consuming part of the bottleneck,
// Wren's estimate must track the true residual bandwidth even though the
// monitored application does not saturate the path.
class WrenCrossTrafficTest : public ::testing::TestWithParam<double> {};

TEST_P(WrenCrossTrafficTest, EstimateTracksResidualBandwidth) {
  const double cross_rate = GetParam();
  WrenEnv env;  // 100 Mbps bottleneck
  OnlineAnalyzer analyzer(env.net, env.sender);
  transport::CbrUdpSource cbr(*env.stack, env.cross, env.receiver, 7000, cross_rate, 1000);
  if (cross_rate > 0) cbr.start();
  std::vector<transport::MessagePhase> phases{
      {.count = 200, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(12.0));

  const double expected_avail = 100e6 - cross_rate;
  const auto bw = analyzer.available_bandwidth_bps(env.receiver);
  ASSERT_TRUE(bw.has_value()) << "no estimate at cross rate " << cross_rate;
  if (cross_rate <= 50e6) {
    // Paper-grade accuracy: within 35% of truth (single path, bursty app).
    EXPECT_GT(*bw, 0.65 * expected_avail) << "cross " << cross_rate;
    EXPECT_LT(*bw, 1.35 * expected_avail) << "cross " << cross_rate;
  } else {
    // Dense unresponsive cross traffic consuming most of the path is a
    // known hard regime for passive SIC: the application's line-rate bursts
    // offer no rate diversity, and the bottleneck capacity cannot be
    // identified from ACK dispersion (no two of our packets ever drain
    // back-to-back). Wren still detects that most of the path is gone; we
    // assert direction and bounds rather than a tight match.
    EXPECT_LT(*bw, 0.60 * 100e6) << "cross " << cross_rate;
    EXPECT_GT(*bw, 0.65 * expected_avail) << "cross " << cross_rate;
  }
}

INSTANTIATE_TEST_SUITE_P(CrossRates, WrenCrossTrafficTest,
                         ::testing::Values(0.0, 25e6, 50e6, 75e6));

TEST(WrenEndToEndTest, CapacityEstimateFindsBottleneck) {
  // Capacity (from ACK-pair dispersion) must report the bottleneck's line
  // rate even while cross traffic holds the available bandwidth well below
  // it — the two quantities are distinct.
  WrenEnv env;  // 100 Mbps
  OnlineAnalyzer analyzer(env.net, env.sender);
  transport::CbrUdpSource cbr(*env.stack, env.cross, env.receiver, 7000, 40e6, 1000);
  cbr.start();
  std::vector<transport::MessagePhase> phases{
      {.count = 100, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(10.0));
  const auto cap = analyzer.capacity_bps(env.receiver);
  ASSERT_TRUE(cap.has_value());
  EXPECT_NEAR(*cap, 100e6, 12e6);
  const auto avail = analyzer.available_bandwidth_bps(env.receiver);
  ASSERT_TRUE(avail.has_value());
  EXPECT_LT(*avail, *cap);
}

// --- SOAP service ---------------------------------------------------------------

TEST(WrenServiceTest, BandwidthAndLatencyOverSoap) {
  WrenEnv env;
  OnlineAnalyzer analyzer(env.net, env.sender);
  soap::RpcRegistry registry;
  WrenService service(registry, analyzer, "wren://sender");
  WrenClient client(registry, "wren://sender");

  std::vector<transport::MessagePhase> phases{
      {.count = 100, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(8.0));

  const auto bw = client.available_bandwidth_bps(env.receiver);
  ASSERT_TRUE(bw.has_value());
  EXPECT_GT(*bw, 50e6);
  EXPECT_TRUE(client.latency_seconds(env.receiver).has_value());
  EXPECT_EQ(client.peers().size(), 1u);
}

TEST(WrenServiceTest, ObservationStreamIsIncremental) {
  WrenEnv env;
  OnlineAnalyzer analyzer(env.net, env.sender);
  soap::RpcRegistry registry;
  WrenService service(registry, analyzer, "wren://sender");
  WrenClient client(registry, "wren://sender");

  std::vector<transport::MessagePhase> phases{
      {.count = 60, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(3.0));
  auto [batch1, max1] = client.observations(0);
  EXPECT_GT(batch1.size(), 0u);
  env.sim.run_until(seconds(6.0));
  auto [batch2, max2] = client.observations(max1);
  EXPECT_GT(max2, max1);
  for (const auto& so : batch2) EXPECT_GT(so.id, max1);
}

TEST(WrenServiceTest, CapacityOverSoap) {
  WrenEnv env;
  OnlineAnalyzer analyzer(env.net, env.sender);
  soap::RpcRegistry registry;
  WrenService service(registry, analyzer, "wren://sender");
  WrenClient client(registry, "wren://sender");
  std::vector<transport::MessagePhase> phases{
      {.count = 80, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(6.0));
  const auto cap = client.capacity_bps(env.receiver);
  ASSERT_TRUE(cap.has_value());
  EXPECT_NEAR(*cap, 100e6, 12e6);
}

TEST(WrenServiceTest, UnknownPeerReturnsEmpty) {
  WrenEnv env;
  OnlineAnalyzer analyzer(env.net, env.sender);
  soap::RpcRegistry registry;
  WrenService service(registry, analyzer, "wren://sender");
  WrenClient client(registry, "wren://sender");
  EXPECT_FALSE(client.available_bandwidth_bps(42).has_value());
  EXPECT_FALSE(client.latency_seconds(42).has_value());
}

// --- GlobalNetworkView ------------------------------------------------------------

TEST(GlobalViewTest, UpdatesAndQueries) {
  GlobalNetworkView view;
  view.update_bandwidth(1, 2, 50e6, seconds(1.0));
  view.update_latency(1, 2, 0.010, seconds(1.0));
  EXPECT_DOUBLE_EQ(*view.bandwidth_bps(1, 2), 50e6);
  EXPECT_DOUBLE_EQ(*view.latency_seconds(1, 2), 0.010);
  EXPECT_FALSE(view.bandwidth_bps(2, 1).has_value());  // directed
  EXPECT_EQ(view.measured_pairs().size(), 1u);
}

TEST(GlobalViewTest, LaterUpdateWins) {
  GlobalNetworkView view;
  view.update_bandwidth(1, 2, 50e6, seconds(1.0));
  view.update_bandwidth(1, 2, 30e6, seconds(2.0));
  EXPECT_DOUBLE_EQ(*view.bandwidth_bps(1, 2), 30e6);
}

TEST(GlobalViewTest, AdjacencyListOnlyMeasuredPairs) {
  GlobalNetworkView view;
  view.update_bandwidth(0, 1, 10e6, 0);
  view.update_latency(1, 2, 0.01, 0);  // latency only: no bandwidth entry
  const auto adj = view.bandwidth_adjacency();
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(std::get<0>(adj[0]), 0u);
  EXPECT_EQ(std::get<1>(adj[0]), 1u);
}

// Reports arrive off the network: a NaN bandwidth would poison every VADAPT
// widest-path compare downstream (NaN compares false against everything),
// so the view must reject rather than trust poisoned values.
TEST(GlobalViewTest, RejectsNonFiniteAndNegativeMeasurements) {
  GlobalNetworkView view;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  EXPECT_FALSE(view.update_bandwidth(1, 2, nan, seconds(1.0)));
  EXPECT_FALSE(view.update_bandwidth(1, 2, inf, seconds(1.0)));
  EXPECT_FALSE(view.update_bandwidth(1, 2, -inf, seconds(1.0)));
  EXPECT_FALSE(view.update_bandwidth(1, 2, -1.0, seconds(1.0)));
  EXPECT_FALSE(view.update_latency(1, 2, nan, seconds(1.0)));
  EXPECT_FALSE(view.update_latency(1, 2, -0.5, seconds(1.0)));

  // Nothing landed; every rejection was counted.
  EXPECT_TRUE(view.entries().empty());
  EXPECT_EQ(view.rejected_reports(), 6u);

  // A rejected update leaves an existing good entry untouched.
  EXPECT_TRUE(view.update_bandwidth(1, 2, 40e6, seconds(2.0)));
  EXPECT_FALSE(view.update_bandwidth(1, 2, nan, seconds(3.0)));
  EXPECT_DOUBLE_EQ(*view.bandwidth_bps(1, 2), 40e6);
  EXPECT_EQ(view.entries().at({1, 2}).updated_at, seconds(2.0));

  // Zero is a legitimate measurement (a dead-idle or blocked path).
  EXPECT_TRUE(view.update_bandwidth(3, 4, 0.0, seconds(1.0)));
  EXPECT_TRUE(view.update_latency(3, 4, 0.0, seconds(1.0)));

  EXPECT_TRUE(GlobalNetworkView::valid_measurement(0.0));
  EXPECT_TRUE(GlobalNetworkView::valid_measurement(1e12));
  EXPECT_FALSE(GlobalNetworkView::valid_measurement(nan));
  EXPECT_FALSE(GlobalNetworkView::valid_measurement(inf));
  EXPECT_FALSE(GlobalNetworkView::valid_measurement(-1e-9));
}

TEST(GlobalViewTest, RejectedReportsFeedTheObsCounter) {
  obs::MetricsRegistry metrics;
  GlobalNetworkView view;
  view.set_obs(obs::Scope{&metrics, nullptr});
  view.update_bandwidth(1, 2, std::numeric_limits<double>::quiet_NaN(), 0);
  view.update_latency(1, 2, -1.0, 0);
  EXPECT_EQ(metrics.counter("wren.view.rejected_reports").value(), 2u);
}

TEST(GlobalViewTest, NegativeTimestampTripsTheContract) {
  GlobalNetworkView view;
  try {
    view.update_bandwidth(1, 2, 1e6, -1);
    FAIL() << "negative timestamp must trip VW_REQUIRE";
  } catch (const contracts::ContractError& err) {
    EXPECT_NE(std::string(err.what()).find("timestamp"), std::string::npos);
  }
}

}  // namespace
}  // namespace vw::wren
