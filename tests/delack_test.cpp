// Delayed-ACK tests: RFC 1122 behaviour of the receiver, its interaction
// with loss feedback, and Wren's measurement accuracy with a delayed-ACK
// receiver (the feedback stream it mines is half as dense).

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "transport/tcp.hpp"
#include "wren/analyzer.hpp"

namespace vw::transport {
namespace {

struct Env {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId a, b;
  std::unique_ptr<TransportStack> stack;

  explicit Env(bool delayed_ack, double bps = 100e6, SimTime delay = millis(1)) {
    a = net.add_host("a");
    b = net.add_host("b");
    net::LinkConfig cfg;
    cfg.bits_per_sec = bps;
    cfg.prop_delay = delay;
    net.add_link(a, b, cfg);
    net.compute_routes();
    stack = std::make_unique<TransportStack>(net);
    TcpParams params;
    params.delayed_ack = delayed_ack;
    stack->set_default_tcp_params(params);
  }

  /// Count pure ACKs arriving at host a (the sender side).
  std::uint64_t count_acks_during_transfer(std::uint64_t bytes) {
    std::uint64_t acks = 0;
    net.add_host_tap(a, [&](const net::TapEvent& ev) {
      if (ev.direction == net::TapDirection::kIncoming && ev.packet->is_ack &&
          ev.packet->payload_bytes == 0) {
        ++acks;
      }
    });
    TcpConnection* server = nullptr;
    stack->tcp_listen(b, 80, [&](TcpConnection& c) { server = &c; });
    stack->tcp_connect(a, b, 80).send(bytes);
    sim.run_until(seconds(30.0));
    EXPECT_NE(server, nullptr);
    if (server != nullptr) {
      EXPECT_EQ(server->bytes_received(), bytes);
    }
    return acks;
  }
};

TEST(DelayedAckTest, HalvesAckCount) {
  const std::uint64_t bytes = 500'000;  // ~343 segments
  Env immediate(false);
  Env delayed(true);
  const auto acks_immediate = immediate.count_acks_during_transfer(bytes);
  const auto acks_delayed = delayed.count_acks_during_transfer(bytes);
  EXPECT_GT(acks_immediate, 300u);
  // Delayed ACKs: roughly one per two segments (plus handshake/timeout acks).
  EXPECT_LT(acks_delayed, acks_immediate * 2 / 3);
  EXPECT_GT(acks_delayed, acks_immediate / 4);
}

TEST(DelayedAckTest, TransferStillCompletes) {
  Env env(true, 10e6, millis(5));
  TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) { server = &c; });
  env.stack->tcp_connect(env.a, env.b, 80).send(2'000'000);
  env.sim.run_until(seconds(30.0));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), 2'000'000u);
}

TEST(DelayedAckTest, TimerFlushesOddSegment) {
  // A single small message leaves one unacked segment; the 40 ms timer must
  // flush the ACK so the sender's data is acknowledged promptly.
  Env env(true);
  env.stack->tcp_listen(env.b, 80, [](TcpConnection&) {});
  auto& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(1000);  // one segment
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(client.bytes_acked(), 1000u);
}

TEST(DelayedAckTest, OutOfOrderDataAckedImmediately) {
  // Loss on the data path: the receiver must emit immediate duplicate ACKs
  // (no delay) so fast retransmit still works; the transfer finishes fast.
  Env env(true, 20e6, millis(5));
  RngService rngs(5);
  env.net.channel(env.a, env.b).set_loss(0.01, rngs.stream("loss"));
  TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) { server = &c; });
  auto& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(1'000'000);
  env.sim.run_until(seconds(60.0));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), 1'000'000u);
  EXPECT_GT(client.retransmissions(), 0u);
}

TEST(DelayedAckTest, WrenStillMeasuresWithDelayedAcks) {
  // The ablation the paper's design invites: Wren's ACK matching works on
  // cumulative coverage, so halving the feedback density must not break the
  // estimate — only coarsen it.
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId sender = net.add_host("s");
  const net::NodeId receiver = net.add_host("r");
  const net::NodeId cross = net.add_host("c");
  const net::NodeId sw = net.add_router("sw");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 100e6;
  cfg.prop_delay = micros(50);
  net.add_link(sender, sw, cfg);
  net.add_link(cross, sw, cfg);
  net.add_link(sw, receiver, cfg);
  net.compute_routes();
  TransportStack stack(net);
  TcpParams params;
  params.delayed_ack = true;
  stack.set_default_tcp_params(params);

  wren::OnlineAnalyzer analyzer(net, sender);
  CbrUdpSource cbr(stack, cross, receiver, 7000, 40e6, 1000);
  cbr.start();
  std::vector<MessagePhase> phases{
      {.count = 150, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  MessageSource app(stack, sender, receiver, 9000, phases);
  app.start();
  sim.run_until(seconds(12.0));

  const auto bw = analyzer.available_bandwidth_bps(receiver);
  ASSERT_TRUE(bw.has_value());
  // Truth is 60 Mb/s; accept a wider band than the per-segment-ACK case.
  EXPECT_GT(*bw, 30e6);
  EXPECT_LT(*bw, 95e6);
}

}  // namespace
}  // namespace vw::transport
