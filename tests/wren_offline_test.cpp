// Tests for offline Wren (trace archive + replay analysis) and the active
// SIC prober baseline.

#include <gtest/gtest.h>

#include <sstream>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "wren/active.hpp"
#include "wren/analyzer.hpp"
#include "wren/offline.hpp"
#include "wren/trace.hpp"

namespace vw::wren {
namespace {

struct LanEnv {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId sender, receiver, cross, sw;
  std::unique_ptr<transport::TransportStack> stack;

  LanEnv() {
    sender = net.add_host("s");
    receiver = net.add_host("r");
    cross = net.add_host("c");
    sw = net.add_router("sw");
    net::LinkConfig cfg;
    cfg.bits_per_sec = 100e6;
    cfg.prop_delay = micros(50);
    net.add_link(sender, sw, cfg);
    net.add_link(cross, sw, cfg);
    net.add_link(sw, receiver, cfg);
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
  }
};

PacketRecord sample_record() {
  PacketRecord r;
  r.timestamp = millis(123);
  r.direction = net::TapDirection::kOutgoing;
  r.flow = net::FlowKey{3, 7, 1000, 2000, net::Protocol::kTcp};
  r.payload_bytes = 1460;
  r.wire_bytes = 1500;
  r.seq = 14600;
  r.ack = 0;
  return r;
}

// --- archive format -----------------------------------------------------------

TEST(TraceArchiveTest, RoundTrip) {
  std::vector<PacketRecord> records;
  records.push_back(sample_record());
  PacketRecord ack = sample_record();
  ack.direction = net::TapDirection::kIncoming;
  ack.is_ack = true;
  ack.payload_bytes = 0;
  ack.ack = 16060;
  ack.flow = ack.flow.reversed();
  records.push_back(ack);

  std::stringstream ss;
  write_trace(ss, records);
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].timestamp, records[0].timestamp);
  EXPECT_EQ(parsed[0].flow, records[0].flow);
  EXPECT_EQ(parsed[0].seq, records[0].seq);
  EXPECT_EQ(parsed[1].is_ack, true);
  EXPECT_EQ(parsed[1].ack, 16060u);
  EXPECT_EQ(parsed[1].direction, net::TapDirection::kIncoming);
}

TEST(TraceArchiveTest, RejectsBadHeader) {
  std::stringstream ss("not a wren trace\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceArchiveTest, RejectsMalformedRecord) {
  std::stringstream ss("# wren-trace v1\n123 O 1 2 garbage\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceArchiveTest, SkipsCommentsAndBlankLines) {
  std::stringstream out;
  write_trace(out, {sample_record()});
  std::stringstream in("# wren-trace v1\n\n# comment\n" + out.str().substr(out.str().find('\n') + 1));
  EXPECT_EQ(read_trace(in).size(), 1u);
}

TEST(TraceArchiveTest, FilterUsefulDropsNoise) {
  std::vector<PacketRecord> records;
  records.push_back(sample_record());  // outgoing data: keep
  PacketRecord syn = sample_record();
  syn.payload_bytes = 0;
  syn.syn = true;
  records.push_back(syn);  // drop (no payload, not an incoming ack)
  PacketRecord in_data = sample_record();
  in_data.direction = net::TapDirection::kIncoming;
  records.push_back(in_data);  // drop (incoming data is the peer's problem)
  PacketRecord in_ack = sample_record();
  in_ack.direction = net::TapDirection::kIncoming;
  in_ack.is_ack = true;
  in_ack.payload_bytes = 0;
  records.push_back(in_ack);  // keep
  EXPECT_EQ(filter_useful(records).size(), 2u);
}

// --- offline analysis -----------------------------------------------------------

TEST(OfflineAnalysisTest, MatchesOnlineOnRecordedTraffic) {
  // Record a monitored transfer with cross traffic, then analyze offline:
  // the offline estimate must land near the online one (same machinery).
  LanEnv env;
  TraceFacility trace(env.net, env.sender, 1 << 20);
  OnlineAnalyzer online(env.net, env.sender);

  transport::CbrUdpSource cbr(*env.stack, env.cross, env.receiver, 7000, 40e6, 1000);
  cbr.start();
  std::vector<transport::MessagePhase> phases{
      {.count = 100, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(10.0));

  const auto online_bw = online.available_bandwidth_bps(env.receiver);
  ASSERT_TRUE(online_bw.has_value());

  const auto records = filter_useful(trace.collect());
  ASSERT_GT(records.size(), 1000u);
  const OfflineResult result = analyze_offline(records);
  ASSERT_EQ(result.flows_analyzed, 1u);
  ASSERT_EQ(result.estimates_bps.size(), 1u);
  EXPECT_NEAR(result.estimates_bps[0].second, *online_bw, 0.25 * *online_bw);
  EXPECT_GT(result.observations.size(), 10u);
}

TEST(OfflineAnalysisTest, ArchiveRoundTripPreservesAnalysis) {
  LanEnv env;
  TraceFacility trace(env.net, env.sender, 1 << 20);
  std::vector<transport::MessagePhase> phases{
      {.count = 60, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(7.0));

  const auto records = filter_useful(trace.collect());
  std::stringstream ss;
  write_trace(ss, records);
  const auto reread = read_trace(ss);
  ASSERT_EQ(reread.size(), records.size());

  const OfflineResult direct = analyze_offline(records);
  const OfflineResult via_archive = analyze_offline(reread);
  ASSERT_EQ(direct.estimates_bps.size(), via_archive.estimates_bps.size());
  for (std::size_t i = 0; i < direct.estimates_bps.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.estimates_bps[i].second, via_archive.estimates_bps[i].second);
  }
}

TEST(OfflineAnalysisTest, EmptyTraceYieldsNothing) {
  const OfflineResult result = analyze_offline({});
  EXPECT_EQ(result.flows_analyzed, 0u);
  EXPECT_TRUE(result.estimates_bps.empty());
}

// --- active prober ----------------------------------------------------------------

class ActiveProberSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ActiveProberSweepTest, BinarySearchFindsResidual) {
  const double cross_rate = GetParam();
  LanEnv env;
  transport::CbrUdpSource cbr(*env.stack, env.cross, env.receiver, 7000, cross_rate, 1000);
  if (cross_rate > 0) cbr.start();

  ActiveProbeParams params;
  params.max_rate_bps = 100e6;
  ActiveProber prober(*env.stack, env.sender, env.receiver, 8800, params);
  double estimate = 0;
  prober.start([&](double bps) { estimate = bps; });
  env.sim.run_until(seconds(20.0));

  ASSERT_TRUE(prober.finished());
  const double truth = 100e6 - cross_rate;
  EXPECT_NEAR(estimate, truth, 0.25 * truth) << "cross " << cross_rate;
  EXPECT_GT(prober.bytes_injected(), 0u);  // the cost Wren avoids
  EXPECT_EQ(prober.trains_sent(), params.iterations * params.trains_per_rate);
}

INSTANTIATE_TEST_SUITE_P(CrossRates, ActiveProberSweepTest,
                         ::testing::Values(0.0, 30e6, 60e6));

TEST(ActiveProberTest, InjectsSubstantialProbeTraffic) {
  LanEnv env;
  ActiveProbeParams params;
  params.max_rate_bps = 100e6;
  ActiveProber prober(*env.stack, env.sender, env.receiver, 8800, params);
  prober.start(nullptr);
  env.sim.run_until(seconds(20.0));
  // 10 trains x 24 packets x ~1228B.
  EXPECT_GT(prober.bytes_injected(), 250'000u);
}

}  // namespace
}  // namespace vw::wren
