// Unit tests for the discrete-event simulator: ordering, cancellation,
// run_until semantics and periodic tasks.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace vw::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(millis(30), [&] { order.push_back(3); });
  sim.schedule_at(millis(10), [&] { order.push_back(1); });
  sim.schedule_at(millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), millis(30));
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(millis(10), [&] {
    sim.schedule_in(millis(5), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, millis(15));
}

TEST(SimulatorTest, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(millis(5), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, EmptyCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(0, Simulator::Callback{}), std::invalid_argument);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle h = sim.schedule_at(millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, DoubleCancelReturnsFalse) {
  Simulator sim;
  EventHandle h = sim.schedule_at(millis(1), [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  EventHandle h = sim.schedule_at(millis(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulatorTest, CancelDefaultHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(SimulatorTest, HasPendingTracksLiveEvents) {
  Simulator sim;
  EXPECT_FALSE(sim.has_pending());
  EventHandle h = sim.schedule_at(millis(1), [] {});
  EXPECT_TRUE(sim.has_pending());
  sim.cancel(h);
  EXPECT_FALSE(sim.has_pending());
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(millis(10), [&] { ++count; });
  sim.schedule_at(millis(20), [&] { ++count; });
  sim.schedule_at(millis(30), [&] { ++count; });
  sim.run_until(millis(20));
  EXPECT_EQ(count, 2);  // events at exactly `until` fire
  EXPECT_EQ(sim.now(), millis(20));
  sim.run_until(millis(100));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), millis(100));  // time advances to the boundary
}

TEST(SimulatorTest, RunUntilComposable) {
  Simulator sim;
  std::vector<SimTime> times;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(millis(i * 10), [&times, &sim] { times.push_back(sim.now()); });
  }
  for (int i = 1; i <= 5; ++i) sim.run_until(millis(i * 10));
  EXPECT_EQ(times.size(), 5u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(millis(1), recurse);
  };
  sim.schedule_in(millis(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), millis(5));
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<SimTime> fired;
  PeriodicTask task(sim, millis(10), [&] { fired.push_back(sim.now()); });
  sim.run_until(millis(35));
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], millis(10));
  EXPECT_EQ(fired[1], millis(20));
  EXPECT_EQ(fired[2], millis(30));
}

TEST(PeriodicTaskTest, StopPreventsFurtherFiring) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, millis(10), [&] { ++count; });
  sim.run_until(millis(25));
  task.stop();
  sim.run_until(millis(100));
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, StopFromWithinCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, millis(10), [&] {
    if (++count == 2) task.stop();
  });
  sim.run_until(seconds(1.0));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, DestructorStops) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, millis(10), [&] { ++count; });
    sim.run_until(millis(15));
  }
  sim.run_until(millis(200));
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTaskTest, NonPositivePeriodThrows) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, 0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, LargeWorkloadDeterministic) {
  // A stress run mixing schedules and cancels must execute the exact same
  // event sequence twice (the determinism every experiment relies on).
  auto run = [] {
    Simulator sim;
    std::vector<int> trace;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 20'000; ++i) {
      handles.push_back(sim.schedule_at(millis((i * 7919) % 10'000),
                                        [&trace, i] { trace.push_back(i); }));
    }
    for (int i = 0; i < 20'000; i += 3) sim.cancel(handles[static_cast<std::size_t>(i)]);
    sim.run();
    return trace;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.size(), 20'000u - 6'667u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace vw::sim
