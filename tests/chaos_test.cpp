// Failure-resilience regression suite: stale-view expiry, queue flushing on
// link-down, migration failure/rollback/supersession, control-plane
// reconnect with backoff, daemon-death detection, and the end-to-end chaos
// scenario (deterministic under a fixed seed).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/fault.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/testbed.hpp"
#include "transport/stack.hpp"
#include "virtuoso/system.hpp"
#include "vm/apps.hpp"
#include "vm/machine.hpp"
#include "vm/migration.hpp"
#include "vnet/control.hpp"
#include "vnet/overlay.hpp"
#include "wren/view.hpp"

namespace vw {
namespace {

// --- stale measurements ------------------------------------------------------------

TEST(StaleViewTest, EntriesExpireFromAllQueries) {
  SimTime now = 0;
  wren::GlobalNetworkView view;
  view.set_clock([&] { return now; });
  view.set_staleness_horizon(seconds(10.0));

  view.update_bandwidth(1, 2, 50e6, now);
  view.update_latency(1, 2, 0.01, now);
  now = seconds(9.0);
  EXPECT_TRUE(view.bandwidth_bps(1, 2).has_value());
  EXPECT_TRUE(view.latency_seconds(1, 2).has_value());
  EXPECT_EQ(view.measured_pairs().size(), 1u);
  EXPECT_EQ(view.bandwidth_adjacency().size(), 1u);

  now = seconds(11.0);
  EXPECT_FALSE(view.bandwidth_bps(1, 2).has_value());
  EXPECT_FALSE(view.latency_seconds(1, 2).has_value());
  EXPECT_TRUE(view.measured_pairs().empty());
  EXPECT_TRUE(view.bandwidth_adjacency().empty());

  // A fresh report resurrects the pair.
  view.update_bandwidth(1, 2, 60e6, now);
  ASSERT_TRUE(view.bandwidth_bps(1, 2).has_value());
  EXPECT_DOUBLE_EQ(*view.bandwidth_bps(1, 2), 60e6);
}

TEST(StaleViewTest, ZeroHorizonNeverExpires) {
  SimTime now = 0;
  wren::GlobalNetworkView view;
  view.set_clock([&] { return now; });
  view.update_bandwidth(1, 2, 50e6, now);
  now = seconds(1e6);
  EXPECT_TRUE(view.bandwidth_bps(1, 2).has_value());
}

TEST(StaleViewTest, InvalidateHostDropsEveryTouchingEntry) {
  wren::GlobalNetworkView view;
  view.update_bandwidth(1, 2, 1e6, 0);
  view.update_bandwidth(2, 1, 1e6, 0);
  view.update_bandwidth(2, 3, 1e6, 0);
  view.update_bandwidth(1, 3, 1e6, 0);
  EXPECT_EQ(view.invalidate_host(2), 3u);
  EXPECT_FALSE(view.bandwidth_bps(1, 2).has_value());
  EXPECT_FALSE(view.bandwidth_bps(2, 3).has_value());
  EXPECT_TRUE(view.bandwidth_bps(1, 3).has_value());
  view.invalidate(1, 3);
  EXPECT_FALSE(view.bandwidth_bps(1, 3).has_value());
}

TEST(StaleViewTest, ExpireStaleBoundsMemory) {
  SimTime now = 0;
  wren::GlobalNetworkView view;
  view.set_clock([&] { return now; });
  view.set_staleness_horizon(seconds(5.0));
  view.update_bandwidth(1, 2, 1e6, 0);
  view.update_bandwidth(3, 4, 1e6, seconds(4.0));
  now = seconds(6.0);
  EXPECT_EQ(view.expire_stale(), 1u);
  EXPECT_EQ(view.entries().size(), 1u);
}

// --- link-down queue flush ----------------------------------------------------------

TEST(ChannelDownTest, DownFlushesQueuesAndCancelsServiceInFlight) {
  sim::Simulator sim;
  net::Network net{sim};
  const net::NodeId a = net.add_host("a");
  const net::NodeId b = net.add_host("b");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 1e6;  // slow: packets queue up
  cfg.prop_delay = millis(1);
  net.add_link(a, b, cfg);
  net.compute_routes();

  int delivered = 0;
  net.set_host_stack(b, [&](net::Packet&&) { ++delivered; });
  sim.schedule_at(millis(1), [&] {
    for (int i = 0; i < 20; ++i) {
      net::Packet p;
      p.flow = net::FlowKey{a, b, 1, 2, net::Protocol::kUdp};
      p.payload_bytes = 1000;
      net.send(std::move(p));
    }
  });
  // ~8 ms per packet at 1 Mb/s: the queue is deep and one packet is mid-
  // serialization when the link goes down.
  sim.schedule_at(millis(20), [&] { net.set_link_down(a, b, true); });
  sim.run_until(seconds(1.0));

  const net::ChannelStats& stats = net.channel(a, b).stats();
  EXPECT_GT(stats.packets_down_dropped, 0u);
  EXPECT_LT(delivered, 20);
  EXPECT_EQ(delivered + static_cast<int>(stats.packets_down_dropped), 20);

  // The cancelled service completion must not strand the channel: after the
  // link returns, new packets flow again.
  net.set_link_down(a, b, false);
  net::Packet p;
  p.flow = net::FlowKey{a, b, 1, 2, net::Protocol::kUdp};
  p.payload_bytes = 500;
  net.send(std::move(p));
  const int before = delivered;
  sim.run_until(seconds(2.0));
  EXPECT_EQ(delivered, before + 1);
}

// --- migration failure semantics ---------------------------------------------------

struct MigrationEnv {
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<net::NodeId> hosts;
  net::NodeId sw = 0;
  std::unique_ptr<transport::TransportStack> stack;
  std::unique_ptr<vnet::Overlay> overlay;
  std::vector<std::unique_ptr<vm::VirtualMachine>> machines;

  MigrationEnv() {
    sw = net.add_router("switch");
    for (std::size_t i = 0; i < 3; ++i) {
      const net::NodeId h = net.add_host("host-" + std::to_string(i));
      net::LinkConfig cfg;
      cfg.bits_per_sec = 100e6;
      cfg.prop_delay = micros(50);
      net.add_link(h, sw, cfg);
      hosts.push_back(h);
    }
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
    overlay = std::make_unique<vnet::Overlay>(*stack);
    overlay->create_daemon(hosts[0], "proxy", /*is_proxy=*/true);
    overlay->create_daemon(hosts[1], "d1");
    overlay->create_daemon(hosts[2], "d2");
    overlay->bootstrap_star(vnet::LinkProtocol::kUdp);
  }

  vm::VirtualMachine& vm_at(net::NodeId host, std::uint64_t memory = 16ull << 20) {
    const auto mac = static_cast<vnet::MacAddress>(machines.size() + 1);
    machines.push_back(std::make_unique<vm::VirtualMachine>(
        sim, *overlay, mac, "vm" + std::to_string(mac), memory));
    machines.back()->attach(host);
    return *machines.back();
  }
};

TEST(MigrationFailureTest, PathDownMidFlightFailsAndRollsBack) {
  MigrationEnv env;
  vm::VirtualMachine& m = env.vm_at(env.hosts[1]);
  vm::MigrationEngine engine(env.sim, env.net);

  vm::MigrationStatus status = vm::MigrationStatus::kCompleted;
  bool called = false;
  engine.migrate(m, env.hosts[2], [&](vm::VirtualMachine&, vm::MigrationStatus s) {
    called = true;
    status = s;
  });
  EXPECT_TRUE(engine.in_flight(m));
  // Cut the target's link while the ~2.3 s transfer is in flight.
  env.sim.schedule_at(seconds(1.0),
                      [&] { env.net.set_link_down(env.hosts[2], env.sw, true); });
  env.sim.run_until(seconds(10.0));

  EXPECT_TRUE(called);
  EXPECT_EQ(status, vm::MigrationStatus::kFailed);
  ASSERT_TRUE(m.attached());
  EXPECT_EQ(m.host(), env.hosts[1]);  // rolled back to the source
  EXPECT_FALSE(engine.in_flight(m));
  EXPECT_EQ(engine.migrations_failed(), 1u);
  EXPECT_EQ(engine.migrations_completed(), 0u);
}

TEST(MigrationFailureTest, DeadlineBlownFailsTheMigration) {
  MigrationEnv env;
  vm::VirtualMachine& m = env.vm_at(env.hosts[1]);
  vm::MigrationParams params;
  params.deadline_factor = 0.5;  // deadline before the estimated completion
  params.path_check_period = millis(100);
  vm::MigrationEngine engine(env.sim, env.net, params);

  vm::MigrationStatus status = vm::MigrationStatus::kCompleted;
  engine.migrate(m, env.hosts[2],
                 [&](vm::VirtualMachine&, vm::MigrationStatus s) { status = s; });
  env.sim.run_until(seconds(10.0));
  EXPECT_EQ(status, vm::MigrationStatus::kFailed);
  ASSERT_TRUE(m.attached());
  EXPECT_EQ(m.host(), env.hosts[1]);
  EXPECT_EQ(engine.migrations_failed(), 1u);
}

TEST(MigrationFailureTest, RetargetSupersedesAndReestimatesRemaining) {
  MigrationEnv env;
  vm::VirtualMachine& m = env.vm_at(env.hosts[1]);
  vm::MigrationEngine engine(env.sim, env.net);

  vm::MigrationStatus first_status = vm::MigrationStatus::kCompleted;
  engine.migrate(m, env.hosts[2],
                 [&](vm::VirtualMachine&, vm::MigrationStatus s) { first_status = s; });
  const SimTime total = engine.estimate_duration(m, env.hosts[1], env.hosts[0]);

  vm::MigrationStatus second_status = vm::MigrationStatus::kFailed;
  env.sim.schedule_at(seconds(1.0), [&] {
    engine.migrate(m, env.hosts[0],
                   [&](vm::VirtualMachine&, vm::MigrationStatus s) { second_status = s; });
  });

  // The superseded request's callback fires with kSuperseded the moment the
  // re-target lands.
  env.sim.run_until(seconds(1.5));
  EXPECT_EQ(first_status, vm::MigrationStatus::kSuperseded);
  EXPECT_EQ(engine.migrations_superseded(), 1u);
  EXPECT_TRUE(engine.in_flight(m));

  // Completion keeps the ORIGINAL start time: elapsed work counts, so the
  // VM lands at started_at + re-estimated total, not 1 s later.
  env.sim.run_until(total - millis(100));
  EXPECT_TRUE(engine.in_flight(m));
  env.sim.run_until(total + millis(100));
  EXPECT_FALSE(engine.in_flight(m));
  EXPECT_EQ(second_status, vm::MigrationStatus::kCompleted);
  ASSERT_TRUE(m.attached());
  EXPECT_EQ(m.host(), env.hosts[0]);
  EXPECT_EQ(engine.migrations_started(), 1u);  // one transfer, re-targeted
  EXPECT_EQ(engine.migrations_completed(), 1u);
}

TEST(MigrationFailureTest, AbortReattachesAtSource) {
  MigrationEnv env;
  vm::VirtualMachine& m = env.vm_at(env.hosts[1]);
  vm::MigrationEngine engine(env.sim, env.net);

  vm::MigrationStatus status = vm::MigrationStatus::kCompleted;
  engine.migrate(m, env.hosts[2],
                 [&](vm::VirtualMachine&, vm::MigrationStatus s) { status = s; });
  env.sim.run_until(seconds(1.0));
  EXPECT_TRUE(engine.abort(m));
  EXPECT_EQ(status, vm::MigrationStatus::kAborted);
  ASSERT_TRUE(m.attached());
  EXPECT_EQ(m.host(), env.hosts[1]);
  EXPECT_EQ(engine.migrations_aborted(), 1u);
  EXPECT_FALSE(engine.abort(m));  // nothing in flight any more
  env.sim.run_until(seconds(10.0));
  EXPECT_EQ(engine.migrations_completed(), 0u);  // cancelled event never fires
}

// --- control-plane reconnect ---------------------------------------------------------

TEST(ControlReconnectTest, OutageDisconnectsThenReconnectsWithBackoffAndResends) {
  sim::Simulator sim;
  net::Network net{sim};
  const net::NodeId daemon_host = net.add_host("daemon");
  const net::NodeId proxy_host = net.add_host("proxy");
  const net::NodeId sw = net.add_router("sw");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 100e6;
  cfg.prop_delay = millis(1);
  net.add_link(daemon_host, sw, cfg);
  net.add_link(sw, proxy_host, cfg);
  net.compute_routes();
  transport::TransportStack stack(net);

  vnet::ControlPlaneParams params;
  params.send_timeout = seconds(2.0);
  params.connect_timeout = seconds(3.0);
  params.backoff_initial = millis(250);
  vnet::ControlPlane control(stack, proxy_host, 9001, params);

  int pings = 0;
  control.register_handler("Ping", [&](const soap::XmlNode&) { ++pings; });

  int sent = 0;
  sim::PeriodicTask pinger(sim, millis(500), [&] {
    soap::XmlNode msg;
    msg.name = "Ping";
    msg.attributes["n"] = std::to_string(sent++);
    control.send(daemon_host, msg);
  });

  net::FaultPlan faults(sim, net);
  faults.link_outage(seconds(5.0), seconds(15.0), daemon_host, sw);

  sim.run_until(seconds(5.0));
  const std::uint64_t delivered_pre_outage = control.messages_delivered();
  EXPECT_GT(delivered_pre_outage, 0u);
  EXPECT_TRUE(control.connection_healthy(daemon_host));

  // Mid-outage: the stall was detected and the connection torn down.
  sim.run_until(seconds(14.0));
  EXPECT_GE(control.disconnects(), 1u);
  EXPECT_FALSE(control.connection_healthy(daemon_host));

  sim.run_until(seconds(40.0));
  EXPECT_GE(control.reconnects(), 1u);
  // Backoff implies several attempts across a 10 s outage.
  EXPECT_GT(control.reconnect_attempts(), control.reconnects());
  EXPECT_GE(control.messages_resent(), 1u);
  EXPECT_TRUE(control.connection_healthy(daemon_host));
  // At-least-once: everything queued during the outage was replayed.
  sim.run_until(seconds(41.0));
  EXPECT_GE(control.messages_delivered(), static_cast<std::uint64_t>(sent) - 2);
  EXPECT_EQ(static_cast<int>(control.messages_delivered()), pings);
  EXPECT_EQ(control.messages_dropped(), 0u);  // window never overflowed
}

// --- daemon-failure detection --------------------------------------------------------

TEST(DaemonFailureTest, KilledDaemonIsDeclaredDeadAndExcluded) {
  sim::Simulator sim;
  net::Network net{sim};
  const net::NodeId sw = net.add_router("sw");
  std::vector<net::NodeId> hosts;
  for (int i = 0; i < 3; ++i) {
    const net::NodeId h = net.add_host("h" + std::to_string(i));
    net::LinkConfig cfg;
    cfg.bits_per_sec = 100e6;
    cfg.prop_delay = micros(50);
    net.add_link(h, sw, cfg);
    hosts.push_back(h);
  }
  net.compute_routes();

  virtuoso::SystemConfig config;
  config.telemetry = false;
  config.daemon_timeout = seconds(2.0);
  config.control_heartbeat_period = millis(500);
  virtuoso::VirtuosoSystem system(sim, net, config);
  system.add_daemon(hosts[0], "proxy", true);
  system.add_daemon(hosts[1], "d1");
  system.add_daemon(hosts[2], "d2");
  system.bootstrap(vnet::LinkProtocol::kUdp);

  system.network_view().update_bandwidth(hosts[0], hosts[2], 10e6, sim.now());
  system.network_view().update_bandwidth(hosts[0], hosts[1], 10e6, sim.now());

  sim.run_until(seconds(4.0));
  EXPECT_TRUE(system.daemon_alive(hosts[1]));
  EXPECT_TRUE(system.daemon_alive(hosts[2]));
  EXPECT_EQ(system.capacity_graph().size(), 3u);

  system.kill_daemon(hosts[2]);
  sim.run_until(seconds(10.0));
  EXPECT_TRUE(system.daemon_alive(hosts[0]));
  EXPECT_TRUE(system.daemon_alive(hosts[1]));
  EXPECT_FALSE(system.daemon_alive(hosts[2]));
  EXPECT_EQ(system.daemons_declared_dead(), 1u);
  EXPECT_EQ(system.capacity_graph().size(), 2u);
  EXPECT_EQ(system.live_daemon_hosts(), (std::vector<net::NodeId>{hosts[0], hosts[1]}));
  // Its measurements were invalidated with it; the others survive.
  EXPECT_FALSE(system.network_view().bandwidth_bps(hosts[0], hosts[2]).has_value());
  EXPECT_TRUE(system.network_view().bandwidth_bps(hosts[0], hosts[1]).has_value());
}

// --- end-to-end chaos scenario -------------------------------------------------------

struct ChaosResult {
  std::string signature;
  bool all_attached = true;
  bool trio_on_fast_cluster = false;
  std::uint64_t migrations_failed = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t daemons_died = 0;
  std::uint64_t replans = 0;
};

// The examples/chaos_cluster scenario, compacted: cut the inter-domain link
// while the first adaptation's migrations are crossing it.
ChaosResult run_chaos_scenario(std::uint64_t seed, bool warm_start = false) {
  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  virtuoso::SystemConfig config;
  config.seed = seed;
  config.warm_start.enabled = warm_start;
  config.telemetry = false;
  config.view_staleness_horizon = seconds(10.0);
  config.control_heartbeat_period = seconds(1.0);
  config.daemon_timeout = seconds(5.0);
  config.control.send_timeout = seconds(4.0);
  config.control.backoff_initial = millis(250);
  virtuoso::VirtuosoSystem system(sim, *tb.network, config);

  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    system.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  system.bootstrap(vnet::LinkProtocol::kUdp);

  const std::uint64_t mem = 8ull << 20;
  vm::VirtualMachine& v0 = system.create_vm("vm-0", tb.domain1_hosts[0], mem);
  vm::VirtualMachine& v1 = system.create_vm("vm-1", tb.domain1_hosts[1], mem);
  vm::VirtualMachine& v2 = system.create_vm("vm-2", tb.domain2_hosts[0], mem);
  vm::VirtualMachine& v3 = system.create_vm("vm-3", tb.domain2_hosts[1], mem);
  const std::vector<vm::VirtualMachine*> vms = {&v0, &v1, &v2, &v3};

  vm::apps::DemandMatrix demands;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) demands[{i, j}] = 8e6;
    }
  }
  demands[{0, 3}] = demands[{3, 0}] = 0.5e6;
  vm::apps::MatrixTrafficApp app(sim, vms, demands, millis(100));
  app.start();

  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = tb.hosts();
  sim::PeriodicTask oracle(sim, seconds(2.0), [&] {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      for (std::size_t j = 0; j < hosts.size(); ++j) {
        if (i == j || !tb.network->path_up(hosts[i], hosts[j])) continue;
        system.network_view().update_bandwidth(hosts[i], hosts[j],
                                               truth.graph.bandwidth(i, j), sim.now());
        system.network_view().update_latency(hosts[i], hosts[j], truth.graph.latency(i, j),
                                             sim.now());
      }
    }
  });

  system.enable_auto_adaptation(virtuoso::AdaptationAlgorithm::kGreedy, seconds(10.0));

  net::FaultPlan faults(sim, *tb.network);
  faults.link_outage(seconds(5.0), seconds(23.0), tb.switch1, tb.switch2);

  sim.run_until(seconds(60.0));
  app.stop();

  ChaosResult r;
  r.migrations_failed = system.migration().migrations_failed();
  r.reconnects = system.control_plane().reconnects();
  r.daemons_died = system.daemons_declared_dead();
  r.replans = system.failure_replans();
  const auto on_fast = [&](const vm::VirtualMachine& m) {
    return m.attached() && (m.host() == tb.domain2_hosts[0] || m.host() == tb.domain2_hosts[1] ||
                            m.host() == tb.domain2_hosts[2]);
  };
  r.trio_on_fast_cluster = on_fast(v0) && on_fast(v1) && on_fast(v2);
  std::ostringstream sig;
  for (const vm::VirtualMachine* m : vms) {
    r.all_attached = r.all_attached && m->attached();
    sig << (m->attached() ? static_cast<long long>(m->host()) : -1) << ",";
  }
  sig << system.auto_adaptations() << "," << r.replans << "," << r.migrations_failed << ","
      << system.migration().migrations_started() << "," << r.reconnects << ","
      << system.control_plane().disconnects() << ","
      << system.control_plane().messages_resent() << ","
      << system.control_plane().messages_delivered() << "," << r.daemons_died;
  r.signature = sig.str();
  return r;
}

TEST(ChaosScenarioTest, ResilienceInvariantsHoldThroughTheOutage) {
  const ChaosResult r = run_chaos_scenario(42);
  EXPECT_TRUE(r.all_attached) << "a VM was left detached";
  EXPECT_GT(r.migrations_failed, 0u);
  EXPECT_GT(r.reconnects, 0u);
  EXPECT_GT(r.daemons_died, 0u);
  EXPECT_GT(r.replans, 0u);
  // The loop still converged to the good placement after the chaos.
  EXPECT_TRUE(r.trio_on_fast_cluster);
}

TEST(ChaosScenarioTest, DeterministicUnderTheSameSeed) {
  const ChaosResult a = run_chaos_scenario(42);
  const ChaosResult b = run_chaos_scenario(42);
  EXPECT_EQ(a.signature, b.signature);
}

TEST(ChaosScenarioTest, DatapathOverhaulPreservesGoldenSignatures) {
  // Differential gate for the event-engine/datapath overhaul: these run
  // signatures were recorded on the pre-overhaul engine (commit 943c2a9,
  // std::function events + hash-set cancellation + per-hop map routing) for
  // the fig10-style challenge scenario. The slot-arena scheduler, SmallFn
  // callbacks, dense channel index, and move-forward packet path must
  // reproduce them bit-for-bit — any ordering drift in the rebuilt hot path
  // shows up here as a changed migration/reconnect/delivery count.
  //
  // Re-recorded for the planner-ordering fix: adapt_now() now refreshes
  // liveness and expires stale view entries before building its capacity
  // graph (refresh_view_before_planning), so replans no longer act on
  // dead-host adjacency. The fresher view yields a different (and smaller)
  // migration trajectory; both seeds still converge to the same placement
  // and the value is identical on the serial and sharded engines.
  EXPECT_EQ(run_chaos_scenario(42).signature, "6,7,5,2,4,1,3,8,3,6,158,843,3");
  EXPECT_EQ(run_chaos_scenario(7).signature, "6,7,5,2,4,1,3,8,3,6,158,843,3");
}

TEST(WarmStartGoldenTest, ChaosSignaturesIdenticalWithKnobOnAndOff) {
  // The warm-start knob must be inert for this scenario: 4 VMs sits below the
  // default WarmStartParams::min_vms floor, so every adaptation falls back to
  // the cold planner and consumes exactly the same RNG streams. Any drift here
  // means the warm path leaked state (delta drain, RNG, counters) into the
  // cold trajectory.
  for (std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{7}}) {
    EXPECT_EQ(run_chaos_scenario(seed, /*warm_start=*/true).signature,
              "6,7,5,2,4,1,3,8,3,6,158,843,3")
        << "seed " << seed;
    EXPECT_EQ(run_chaos_scenario(seed, /*warm_start=*/false).signature,
              "6,7,5,2,4,1,3,8,3,6,158,843,3")
        << "seed " << seed;
  }
}

TEST(WarmStartGoldenTest, SystemRoutesSecondAdaptationThroughWarmPath) {
  // End-to-end wiring check: with the min_vms floor lowered, the first
  // adaptation is a cold solve that seeds the incumbent, and a subsequent
  // single-pair measurement shift re-adapts through the warm optimizer.
  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  virtuoso::SystemConfig config;
  config.seed = 42;
  config.telemetry = false;
  config.view_staleness_horizon = seconds(60.0);
  config.warm_start.enabled = true;
  config.warm_start.min_vms = 1;
  virtuoso::VirtuosoSystem system(sim, *tb.network, config);

  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    system.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  system.bootstrap(vnet::LinkProtocol::kUdp);

  const std::uint64_t mem = 8ull << 20;
  vm::VirtualMachine& v0 = system.create_vm("vm-0", tb.domain1_hosts[0], mem);
  vm::VirtualMachine& v1 = system.create_vm("vm-1", tb.domain1_hosts[1], mem);
  vm::VirtualMachine& v2 = system.create_vm("vm-2", tb.domain2_hosts[0], mem);
  vm::VirtualMachine& v3 = system.create_vm("vm-3", tb.domain2_hosts[1], mem);
  const std::vector<vm::VirtualMachine*> vms = {&v0, &v1, &v2, &v3};

  vm::apps::DemandMatrix matrix;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) matrix[{i, j}] = 8e6;
    }
  }
  matrix[{0, 3}] = matrix[{3, 0}] = 0.5e6;
  vm::apps::MatrixTrafficApp app(sim, vms, matrix, millis(100));
  app.start();

  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = tb.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      system.network_view().update_bandwidth(hosts[i], hosts[j], truth.graph.bandwidth(i, j),
                                             sim.now());
      system.network_view().update_latency(hosts[i], hosts[j], truth.graph.latency(i, j),
                                           sim.now());
    }
  }

  sim.run_until(seconds(5.0));
  system.adapt_now(virtuoso::AdaptationAlgorithm::kGreedy);
  EXPECT_EQ(system.cold_starts(), 1u);
  EXPECT_EQ(system.warm_starts(), 0u);

  // A single measurement shift: exactly the streaming-delta case the warm
  // optimizer exists for.
  sim.run_until(seconds(10.0));
  system.network_view().update_bandwidth(hosts[0], hosts[1], truth.graph.bandwidth(0, 1) * 0.5,
                                         sim.now());
  system.adapt_now(virtuoso::AdaptationAlgorithm::kGreedy);
  EXPECT_EQ(system.warm_starts(), 1u);
  EXPECT_EQ(system.cold_starts(), 1u);
  app.stop();
}

// --- liveness-sweep -> replan ordering ---------------------------------------

// Regression for the ISSUE-9 snapshot-ordering bug: a replan must never
// optimize over an adjacency snapshot taken before invalidate_host() /
// expire_stale() ran. The scenario parks the run in the window where the
// ordering is the only defense: the victim daemon has been silent longer
// than daemon_timeout, but the *periodic* liveness sweep last fired before
// the timeout elapsed — so at plan time the Proxy still believes the host
// is alive and the view still holds (fresh-looking) entries for its paths.
// adapt_now() must refresh liveness + expiry itself before snapshotting.
TEST(PlanOrderingTest, AdaptRefreshesLivenessAndExpiryBeforeSnapshotting) {
  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  virtuoso::SystemConfig config;
  config.telemetry = false;
  config.control_heartbeat_period = seconds(1.0);
  config.daemon_timeout = seconds(60.0);  // periodic sweep every 30 s
  config.view_staleness_horizon = seconds(30.0);
  config.default_bandwidth_bps = 10e6;
  virtuoso::VirtuosoSystem system(sim, *tb.network, config);

  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    system.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  system.bootstrap(vnet::LinkProtocol::kUdp);

  vm::VirtualMachine& a = system.create_vm("vm-a", tb.domain1_hosts[0], 8ull << 20);
  vm::VirtualMachine& b = system.create_vm("vm-b", tb.domain1_hosts[1], 8ull << 20);
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = demands[{1, 0}] = 4e6;
  vm::apps::MatrixTrafficApp app(sim, {&a, &b}, demands, millis(100));
  app.start();

  sim.run_until(seconds(5.0));  // every daemon has heartbeated
  const net::NodeId victim = tb.domain2_hosts[2];
  system.kill_daemon(victim);

  // Sweeps fire at t=30 (silent 25 s) and t=60 (silent 55 s): both inside
  // the timeout, so the belief "alive" survives them. At t=70 the daemon
  // has been silent 65 s > 60 s — dead in fact, alive in the Proxy's eyes.
  sim.run_until(seconds(70.0));
  app.stop();
  ASSERT_TRUE(system.daemon_alive(victim));

  wren::GlobalNetworkView& view = system.network_view();
  const net::NodeId live_a = tb.domain1_hosts[0];
  const net::NodeId live_b = tb.domain1_hosts[1];
  // Fresh-looking entries for the dead host's paths (only invalidate_host
  // removes these) and a stale live-pair entry (only expire_stale does).
  view.update_bandwidth(victim, live_a, 50e6, seconds(69.0));
  view.update_bandwidth(live_a, victim, 50e6, seconds(69.0));
  view.update_bandwidth(live_a, live_b, 5e6, seconds(10.0));
  ASSERT_TRUE(view.entries().contains({victim, live_a}));
  ASSERT_TRUE(view.entries().contains({live_a, live_b}));

  const virtuoso::AdaptationOutcome outcome =
      system.adapt_now(virtuoso::AdaptationAlgorithm::kGreedy);

  // The plan ran over a refreshed snapshot: the victim was declared dead
  // and scrubbed from the view first, the stale entry was dropped, and the
  // host set handed to the optimizer no longer contains the victim.
  EXPECT_FALSE(system.daemon_alive(victim));
  EXPECT_EQ(system.daemons_declared_dead(), 1u);
  EXPECT_FALSE(view.entries().contains({victim, live_a}));
  EXPECT_FALSE(view.entries().contains({live_a, victim}));
  EXPECT_FALSE(view.entries().contains({live_a, live_b}));
  for (const net::NodeId h : outcome.hosts) EXPECT_NE(h, victim);
}

// --- resend-window eviction holes --------------------------------------------

// ISSUE-9 window-gap bugfix: during a long outage a tiny resend window
// overflows and evicts *unacknowledged* reports — permanent delivery holes
// the post-outage replay cannot heal. The control plane must count each
// hole (window_gaps) and surface it through the gap callback so the sender
// can schedule a full re-report; the test drives the overflow and verifies
// the scheduled make-up report lands after the outage.
TEST(ControlPlaneChaosTest, WindowOverflowCountsGapsAndFullReReportHealsThem) {
  sim::Simulator sim;
  net::Network net{sim};
  const net::NodeId proxy_host = net.add_host("proxy");
  const net::NodeId daemon_host = net.add_host("daemon");
  const net::NodeId sw = net.add_router("sw");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 100e6;
  cfg.prop_delay = millis(1);
  net.add_link(daemon_host, sw, cfg);
  net.add_link(sw, proxy_host, cfg);
  net.compute_routes();
  transport::TransportStack stack(net);

  vnet::ControlPlaneParams params;
  params.send_timeout = seconds(2.0);
  params.connect_timeout = seconds(3.0);
  params.backoff_initial = millis(250);
  params.resend_window = 4;  // tiny: a 20 s outage at 4 msgs/s must overflow
  vnet::ControlPlane control(stack, proxy_host, 9001, params);

  std::uint64_t reports = 0;
  std::uint64_t full_reports = 0;
  control.register_handler("Report", [&](const soap::XmlNode&) { ++reports; });
  control.register_handler("FullReport", [&](const soap::XmlNode&) { ++full_reports; });

  // The daemon's healing hook: on a gap, schedule one full re-report (the
  // callback contract forbids calling send() synchronously). Deduplicated
  // like VirtuosoSystem::schedule_full_re_report.
  std::uint64_t gap_callbacks = 0;
  bool rereport_pending = false;
  control.set_on_window_gap([&](net::NodeId host) {
    ++gap_callbacks;
    EXPECT_EQ(host, daemon_host);
    if (rereport_pending) return;
    rereport_pending = true;
    sim.schedule_in(millis(500), [&] {
      rereport_pending = false;
      soap::XmlNode msg;
      msg.name = "FullReport";
      control.send(daemon_host, msg);
    });
  });

  int sent = 0;
  sim::PeriodicTask reporter(sim, millis(250), [&] {
    soap::XmlNode msg;
    msg.name = "Report";
    msg.attributes["n"] = std::to_string(sent++);
    control.send(daemon_host, msg);
  });

  net::FaultPlan faults(sim, net);
  faults.link_outage(seconds(5.0), seconds(25.0), daemon_host, sw);

  sim.run_until(seconds(5.0));
  EXPECT_GT(control.messages_delivered(), 0u);
  EXPECT_EQ(control.window_gaps(), 0u);

  // Deep into the outage the window has overflowed with unacked reports.
  sim.run_until(seconds(24.0));
  EXPECT_GT(control.window_gaps(), 0u);
  EXPECT_GE(gap_callbacks, control.window_gaps());
  EXPECT_GE(control.messages_dropped(), control.window_gaps());

  // After the outage: the replay plus the healing re-report both land.
  sim.run_until(seconds(60.0));
  EXPECT_GE(control.reconnects(), 1u);
  EXPECT_GT(full_reports, 0u);
  EXPECT_GT(control.delivered_bytes("FullReport"), 0u);
  EXPECT_GT(control.delivered_bytes("Report"), 0u);
  // Every hole was either replayed or healed; the stream kept flowing.
  EXPECT_GT(reports, 0u);
}

TEST(ChaosScenarioTest, SecondSeedAlsoSurvives) {
  const ChaosResult r = run_chaos_scenario(7);
  EXPECT_TRUE(r.all_attached);
  EXPECT_GT(r.migrations_failed, 0u);
  EXPECT_GT(r.reconnects, 0u);
}

}  // namespace
}  // namespace vw
