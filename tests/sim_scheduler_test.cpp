// Scheduler-overhaul regression tests: the generation-stamped slot arena
// must be observationally identical to a naive reference event queue.
//
//  * a >=100k-op randomized differential walk (schedule / cancel / run_until
//    interleaved, including events scheduled from inside callbacks so slots
//    are recycled mid-run) compares execution order against an independently
//    implemented lazy-deletion reference queue;
//  * handle-reuse tests pin the generation semantics: a stale EventHandle
//    (fired, cancelled, or its slot since recycled) cancels nothing;
//  * cancel interleaved with same-timestamp events pins the (at, seq) FIFO
//    tie-break the whole system's determinism rests on.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <queue>
#include <random>
#include <vector>

#include "sim/simulator.hpp"

namespace vw::sim {
namespace {

// --- reference queue ---------------------------------------------------------
// Deliberately *not* the slot arena: ids are never reused and cancellation is
// a per-id flag, so any aliasing bug in the arena (stale generation honored,
// slot recycled too early, heap entry surviving its slot) diverges the trace.
class ReferenceQueue {
 public:
  using Id = std::uint64_t;

  Id schedule(SimTime at, int op_id, SimTime child_delay = -1) {
    const Id id = table_.size();
    table_.push_back(Event{op_id, child_delay, false, false});
    queue_.push(Entry{at, next_seq_++, id});
    return id;
  }

  bool cancel(Id id) {
    Event& ev = table_[id];
    if (ev.cancelled || ev.executed) return false;
    ev.cancelled = true;
    return true;
  }

  void run_until(SimTime until, std::vector<int>& trace) {
    while (!queue_.empty()) {
      const Entry top = queue_.top();
      Event& ev = table_[top.id];
      if (ev.cancelled) {
        queue_.pop();
        continue;
      }
      if (top.at > until) break;
      queue_.pop();
      ev.executed = true;
      now_ = top.at;
      trace.push_back(ev.op_id);
      // Mirror of the self-rescheduling callbacks in the simulator walk.
      if (ev.child_delay >= 0) schedule(now_ + ev.child_delay, ev.op_id + 1'000'000);
    }
    if (now_ < until) now_ = until;
  }

  SimTime now() const { return now_; }

 private:
  struct Event {
    int op_id;
    SimTime child_delay;  ///< when >= 0, execution schedules a follow-up
    bool cancelled;
    bool executed;
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Id id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> table_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

TEST(SchedulerDifferentialTest, RandomizedWalkMatchesReferenceQueue) {
  // ~168k ops total: 120k schedules + 40k cancel attempts + 8k run_until
  // boundaries, with one in eight events rescheduling a child from inside
  // its callback (the slot-recycling-while-running case).
  constexpr int kRounds = 8'000;
  constexpr int kSchedulesPerRound = 15;
  constexpr int kCancelsPerRound = 5;

  Simulator sim;
  ReferenceQueue ref;
  std::vector<int> sim_trace;
  std::vector<int> ref_trace;

  std::mt19937_64 rng(0xda7a'9a7eULL);
  std::uniform_int_distribution<SimTime> delay(0, 5'000);
  std::uniform_int_distribution<int> child(0, 7);

  // Handles of externally scheduled events; never pruned, so later rounds
  // routinely cancel handles that already fired or were already cancelled —
  // both must agree that those are dead.
  std::vector<std::pair<EventHandle, ReferenceQueue::Id>> handles;

  int next_op = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kSchedulesPerRound; ++i) {
      const int op = next_op++;
      const SimTime at = sim.now() + delay(rng);
      const SimTime child_delay = child(rng) == 0 ? delay(rng) : -1;
      EventHandle h;
      if (child_delay >= 0) {
        h = sim.schedule_at(at, [&sim, &sim_trace, op, child_delay] {
          sim_trace.push_back(op);
          sim.schedule_in(child_delay,
                          [&sim_trace, op] { sim_trace.push_back(op + 1'000'000); });
        });
      } else {
        h = sim.schedule_at(at, [&sim_trace, op] { sim_trace.push_back(op); });
      }
      handles.emplace_back(h, ref.schedule(at, op, child_delay));
    }
    for (int i = 0; i < kCancelsPerRound && !handles.empty(); ++i) {
      const std::size_t pick =
          std::uniform_int_distribution<std::size_t>(0, handles.size() - 1)(rng);
      const bool sim_cancelled = sim.cancel(handles[pick].first);
      const bool ref_cancelled = ref.cancel(handles[pick].second);
      ASSERT_EQ(sim_cancelled, ref_cancelled) << "cancel divergence at round " << round;
    }
    const SimTime until = sim.now() + delay(rng);
    sim.run_until(until);
    ref.run_until(until, ref_trace);
    ASSERT_EQ(sim.now(), ref.now()) << "clock divergence at round " << round;
  }
  sim.run();
  ref.run_until(std::numeric_limits<SimTime>::max() / 2, ref_trace);

  ASSERT_GT(sim_trace.size(), 80'000u);  // the walk actually executed work
  ASSERT_EQ(sim_trace.size(), ref_trace.size());
  ASSERT_EQ(sim_trace, ref_trace);
}

// --- generation / handle-reuse semantics -------------------------------------

TEST(SchedulerHandleTest, StaleHandleAfterCancelAndSlotReuseIsNoop) {
  Simulator sim;
  bool b_ran = false;
  EventHandle a = sim.schedule_at(millis(10), [] {});
  ASSERT_TRUE(sim.cancel(a));  // frees a's slot
  // b reuses the freed slot with a bumped generation.
  EventHandle b = sim.schedule_at(millis(20), [&] { b_ran = true; });
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(sim.cancel(a));  // stale: must not kill b
  sim.run();
  EXPECT_TRUE(b_ran);
}

TEST(SchedulerHandleTest, StaleHandleAfterExecutionAndSlotReuseIsNoop) {
  Simulator sim;
  EventHandle a = sim.schedule_at(millis(1), [] {});
  sim.run();  // a fires, its slot returns to the free list
  bool b_ran = false;
  EventHandle b = sim.schedule_at(millis(2), [&] { b_ran = true; });
  EXPECT_FALSE(sim.cancel(a));
  sim.run();
  EXPECT_TRUE(b_ran);
  EXPECT_TRUE(sim.cancel(b) == false);  // b already fired
}

TEST(SchedulerHandleTest, ManyGenerationsOfTheSameSlotStayDistinct) {
  Simulator sim;
  std::vector<EventHandle> stale;
  // With an empty arena each schedule/cancel pair recycles slot 0, bumping
  // its generation every iteration.
  for (int i = 0; i < 1'000; ++i) {
    EventHandle h = sim.schedule_at(millis(1), [] {});
    ASSERT_TRUE(sim.cancel(h));
    stale.push_back(h);
  }
  int fired = 0;
  sim.schedule_at(millis(1), [&] { ++fired; });
  for (EventHandle h : stale) EXPECT_FALSE(sim.cancel(h));
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerHandleTest, SlotReusedByCallbackDuringExecutionIsSafe) {
  // pop_and_run_next releases the slot before invoking the callback, so a
  // callback's own schedule_in may land in the very slot of the event being
  // executed. The handle of the *executing* event must then be stale.
  Simulator sim;
  bool child_ran = false;
  EventHandle parent = sim.schedule_at(millis(1), [&] {
    sim.schedule_in(millis(1), [&] { child_ran = true; });
    // The parent is mid-execution: cancelling its handle must not hit the
    // child that now occupies the recycled slot.
    EXPECT_FALSE(sim.cancel(parent));
  });
  sim.run();
  EXPECT_TRUE(child_ran);
}

// --- cancel vs same-timestamp FIFO (run_until / pop_and_run_next sharing) ----

TEST(SchedulerFifoTest, CancelInterleavedWithSameTimeEventsKeepsFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> h;
  for (int i = 0; i < 6; ++i) {
    h.push_back(sim.schedule_at(millis(5), [&order, i] { order.push_back(i); }));
  }
  sim.cancel(h[0]);  // cancelled head: run_until's boundary check must skip it
  sim.cancel(h[3]);  // cancelled mid-sequence entry
  // Scheduled after the cancels; still the same timestamp, so it runs last.
  sim.schedule_at(millis(5), [&order] { order.push_back(6); });
  sim.run_until(millis(5));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 5, 6}));
}

TEST(SchedulerFifoTest, CancelFromCallbackKillsLaterSameTimeEvent) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> h;
  h.push_back(sim.schedule_at(millis(5), [&] {
    order.push_back(0);
    sim.cancel(h[2]);  // same-timestamp victim later in FIFO order
  }));
  h.push_back(sim.schedule_at(millis(5), [&] { order.push_back(1); }));
  h.push_back(sim.schedule_at(millis(5), [&] { order.push_back(2); }));
  h.push_back(sim.schedule_at(millis(5), [&] { order.push_back(3); }));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
}

TEST(SchedulerFifoTest, RunUntilBoundaryWithAllHeadsCancelledAdvancesClock) {
  Simulator sim;
  std::vector<EventHandle> h;
  for (int i = 0; i < 3; ++i) h.push_back(sim.schedule_at(millis(2), [] {}));
  bool late_ran = false;
  sim.schedule_at(millis(50), [&] { late_ran = true; });
  for (EventHandle e : h) sim.cancel(e);
  sim.run_until(millis(10));
  EXPECT_EQ(sim.now(), millis(10));  // skipped cancelled heads, no time warp
  EXPECT_FALSE(late_ran);
  sim.run_until(millis(50));
  EXPECT_TRUE(late_ran);
}

TEST(SchedulerFifoTest, ScheduleAtNowFromCallbackRunsAfterQueuedPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(millis(5), [&] {
    order.push_back(0);
    // Same virtual time, but a later seq than the already-queued peers.
    sim.schedule_at(millis(5), [&order] { order.push_back(9); });
  });
  sim.schedule_at(millis(5), [&order] { order.push_back(1); });
  sim.schedule_at(millis(5), [&order] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 9}));
}

}  // namespace
}  // namespace vw::sim
