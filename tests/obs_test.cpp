// Unit tests for the observability subsystem: metrics registry semantics,
// histogram bucketing and quantiles, event-tracer ring behavior, exporter
// output (including Chrome trace JSON well-formedness) and the SOAP
// QueryMetrics / StreamEvents round trip.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "soap/rpc.hpp"
#include "soap/telemetry.hpp"
#include "util/log.hpp"

namespace vw::obs {
namespace {

// --- a minimal JSON structural validator (enough to catch malformed output
// from the exporters: unbalanced structures, bad tokens, trailing garbage).

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;  // skip the escaped char
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, RegisterLookupSnapshotReset) {
  SimTime now = seconds(3.0);
  MetricsRegistry reg([&now] { return now; });

  Counter& c = reg.counter("wren.trains.accepted");
  Gauge& g = reg.gauge("vttif.topology.edges");
  Histogram& h = reg.histogram("vadapt.sa.best_cost");
  EXPECT_EQ(reg.size(), 3u);

  // Get-or-create returns the same instrument.
  EXPECT_EQ(&reg.counter("wren.trains.accepted"), &c);
  EXPECT_EQ(&reg.gauge("vttif.topology.edges"), &g);
  EXPECT_EQ(&reg.histogram("vadapt.sa.best_cost"), &h);
  EXPECT_EQ(reg.size(), 3u);

  c.add(5);
  g.set(4.0);
  h.record(10.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.taken_at, seconds(3.0));
  ASSERT_EQ(snap.metrics.size(), 3u);
  // Sorted by name.
  EXPECT_EQ(snap.metrics[0].name, "vadapt.sa.best_cost");
  EXPECT_EQ(snap.metrics[1].name, "vttif.topology.edges");
  EXPECT_EQ(snap.metrics[2].name, "wren.trains.accepted");

  const MetricValue* cv = snap.find("wren.trains.accepted");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->kind, InstrumentKind::kCounter);
  EXPECT_EQ(cv->count, 5u);
  const MetricValue* gv = snap.find("vttif.topology.edges");
  ASSERT_NE(gv, nullptr);
  EXPECT_DOUBLE_EQ(gv->value, 4.0);
  const MetricValue* hv = snap.find("vadapt.sa.best_cost");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->histogram.count, 1u);
  EXPECT_DOUBLE_EQ(hv->histogram.min, 10.0);

  // Prefix filtering: exact name or "<prefix>." children only.
  EXPECT_EQ(reg.snapshot("wren").metrics.size(), 1u);
  EXPECT_EQ(reg.snapshot("wren.trains").metrics.size(), 1u);
  EXPECT_EQ(reg.snapshot("wren.trains.accepted").metrics.size(), 1u);
  EXPECT_EQ(reg.snapshot("wre").metrics.size(), 0u);
  EXPECT_EQ(reg.snapshot("vadapt").metrics.size(), 1u);

  // Reset zeroes values but keeps registrations and addresses.
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(&reg.counter("wren.trains.accepted"), &c);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x.count");
  EXPECT_THROW(reg.gauge("x.count"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x.count"), std::invalid_argument);
}

TEST(MetricsRegistryTest, InvalidNamesRejected) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter(".leading"), std::invalid_argument);
  EXPECT_THROW(reg.counter("trailing."), std::invalid_argument);
  EXPECT_THROW(reg.counter("a..b"), std::invalid_argument);
  EXPECT_THROW(reg.counter("Upper.case"), std::invalid_argument);
  EXPECT_THROW(reg.counter("sp ace"), std::invalid_argument);
  EXPECT_NO_THROW(reg.counter("ok.name_2.x"));
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 = [0, 1); bucket k >= 1 = [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.999), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(1.999), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(3.999), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 3u);
  // Negative and NaN clamp to bucket 0.
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);

  for (std::size_t k = 1; k + 1 < Histogram::kBuckets; ++k) {
    // The bounds and the index function must agree at every boundary.
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(k)), k) << "bucket " << k;
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(k)), k + 1) << "bucket " << k;
  }
}

TEST(HistogramTest, CountsSumExtremes) {
  Histogram h;
  for (double x : {3.0, 5.0, 100.0, 0.25}) h.record(x);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 108.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 108.25 / 4.0);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(0.25)], 1u);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(3.0)], 1u);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(100.0)], 1u);
}

TEST(HistogramTest, EmptySnapshotHasNaNExtremes) {
  Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.max));
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  // After reset, a populated histogram returns to the NaN state.
  h.record(7.0);
  h.reset();
  EXPECT_TRUE(std::isnan(h.snapshot().min));
}

TEST(HistogramTest, QuantilesAreMonotoneAndClamped) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const Histogram::Snapshot s = h.snapshot();
  // Endpoints clamp to the observed extremes.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
  // Monotone in q, and roughly tracking the true order statistic (log2
  // buckets are coarse: allow a factor-of-two band).
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double est = s.quantile(q);
    EXPECT_GE(est, prev) << "q=" << q;
    const double truth = q * 1000.0;
    EXPECT_GE(est, truth / 2.1) << "q=" << q;
    EXPECT_LE(est, truth * 2.1 + 2.0) << "q=" << q;
    prev = est;
  }
}

// --- EventTracer -------------------------------------------------------------

TEST(EventTracerTest, RingWraparoundKeepsNewestWithMonotoneIds) {
  EventTracer tracer(4);
  for (int i = 0; i < 6; ++i) tracer.instant("e" + std::to_string(i), "test");
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest were evicted; ids stay monotone.
  EXPECT_EQ(events.front().name, "e2");
  EXPECT_EQ(events.back().name, "e5");
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].id, events[i - 1].id);
  }
}

TEST(EventTracerTest, SpanRecordsCompleteEventWithArgs) {
  SimTime now = 0;
  EventTracer tracer(16, [&now] { return now; });
  {
    EventTracer::Span span = tracer.span("work", "test");
    span.arg("key", "value");
    now = millis(5);
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, EventPhase::kComplete);
  EXPECT_EQ(events[0].ts, 0);
  EXPECT_EQ(events[0].dur, millis(5));
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "key");
  EXPECT_EQ(events[0].args[0].second, "value");
}

TEST(EventTracerTest, EventsSincePagesIncrementally) {
  EventTracer tracer(64);
  for (int i = 0; i < 10; ++i) tracer.instant("e" + std::to_string(i), "test");
  auto [first, cursor1] = tracer.events_since(0, 4);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first.front().name, "e0");
  auto [second, cursor2] = tracer.events_since(first.back().id, 100);
  ASSERT_EQ(second.size(), 6u);
  EXPECT_EQ(second.front().name, "e4");
  EXPECT_EQ(cursor2, second.back().id);
  auto [rest, cursor3] = tracer.events_since(cursor2, 100);
  EXPECT_TRUE(rest.empty());
  EXPECT_EQ(cursor3, cursor2);
}

TEST(EventTracerTest, CompleteRejectsBackwardInterval) {
  EventTracer tracer(16);
  EXPECT_THROW(tracer.complete("bad", "test", millis(10), millis(5)),
               std::invalid_argument);
}

TEST(EventTracerTest, DisabledScopeSpanIsInert) {
  Scope disabled;  // no metrics, no tracer
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.counter("x.y"), nullptr);
  EXPECT_EQ(disabled.gauge("x.y"), nullptr);
  EXPECT_EQ(disabled.histogram("x.y"), nullptr);
  add(disabled.counter("x.y"));              // null-tolerant helpers: no crash
  set(disabled.gauge("x.y"), 1.0);
  record(disabled.histogram("x.y"), 1.0);
  {
    EventTracer::Span span = disabled.span("noop", "test");
    span.arg("k", "v");
    span.end();
  }
  disabled.instant("noop", "test");
}

// --- exporters ---------------------------------------------------------------

TEST(ObsExportTest, MetricsJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.level").set(-2.5);
  Histogram& h = reg.histogram("c.dist");
  h.record(4.0);
  h.record(100.0);
  reg.histogram("d.empty");  // empty histogram: min/max must export as null

  const std::string json = metrics_json(reg.snapshot());
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"vw.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"min\":null"), std::string::npos);
}

TEST(ObsExportTest, ChromeTraceJsonIsWellFormed) {
  SimTime now = 0;
  EventTracer tracer(64, [&now] { return now; });
  tracer.instant("mark \"quoted\"", "cat\\slash", {{"k", "line1\nline2"}});
  now = millis(2);
  {
    EventTracer::Span span = tracer.span("phase", "test");
    span.arg("x", "1");
    now = millis(7);
  }
  const std::string json = chrome_trace_json(tracer.events());
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);

  // JSONL: every line is itself valid JSON.
  std::istringstream lines(events_jsonl(tracer.events()));
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(ObsExportTest, CsvAndTextTableCoverEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("a.count").add(1);
  reg.gauge("b.level").set(2.0);
  reg.histogram("c.dist").record(3.0);

  std::ostringstream csv;
  write_csv(csv, reg.snapshot());
  std::size_t csv_lines = 0;
  std::string line;
  std::istringstream csv_in(csv.str());
  while (std::getline(csv_in, line)) ++csv_lines;
  EXPECT_EQ(csv_lines, 4u);  // header + 3 instruments

  std::ostringstream table;
  write_text_table(table, reg.snapshot());
  EXPECT_NE(table.str().find("a.count"), std::string::npos);
  EXPECT_NE(table.str().find("c.dist"), std::string::npos);
}

// --- SOAP round trip ---------------------------------------------------------

TEST(TelemetrySoapTest, QueryMetricsRoundTrip) {
  MetricsRegistry reg;
  reg.counter("wren.trains.accepted").add(42);
  reg.gauge("vttif.topology.edges").set(6.5);
  Histogram& h = reg.histogram("vm.migration.duration_s");
  h.record(1.5);
  h.record(12.0);
  reg.histogram("vadapt.empty");

  soap::RpcRegistry rpc;
  soap::TelemetryService service(rpc, reg, nullptr, "telemetry://test");
  const soap::TelemetryClient client(rpc, "telemetry://test");

  const MetricsSnapshot snap = client.query_metrics();
  ASSERT_EQ(snap.metrics.size(), 4u);

  const MetricValue* c = snap.find("wren.trains.accepted");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, 42u);
  const MetricValue* g = snap.find("vttif.topology.edges");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 6.5);
  const MetricValue* hv = snap.find("vm.migration.duration_s");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->histogram.count, 2u);
  EXPECT_DOUBLE_EQ(hv->histogram.sum, 13.5);
  EXPECT_DOUBLE_EQ(hv->histogram.min, 1.5);
  EXPECT_DOUBLE_EQ(hv->histogram.max, 12.0);
  EXPECT_EQ(hv->histogram.buckets[Histogram::bucket_index(1.5)], 1u);
  // The empty histogram's extremes survive the wire as NaN.
  const MetricValue* empty = snap.find("vadapt.empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(std::isnan(empty->histogram.min));
  EXPECT_TRUE(std::isnan(empty->histogram.max));

  // Prefix filter crosses the wire too.
  const MetricsSnapshot wren = client.query_metrics("wren");
  ASSERT_EQ(wren.metrics.size(), 1u);
  EXPECT_EQ(wren.metrics[0].name, "wren.trains.accepted");
}

TEST(TelemetrySoapTest, StreamEventsPagesThroughTheRing) {
  MetricsRegistry reg;
  EventTracer tracer(64);
  for (int i = 0; i < 7; ++i) {
    tracer.instant("e" + std::to_string(i), "test", {{"i", std::to_string(i)}});
  }
  soap::RpcRegistry rpc;
  soap::TelemetryService service(rpc, reg, &tracer, "telemetry://test");
  const soap::TelemetryClient client(rpc, "telemetry://test");

  auto [first, cursor] = client.stream_events(0, 3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].name, "e0");
  EXPECT_EQ(first[0].phase, EventPhase::kInstant);
  ASSERT_EQ(first[0].args.size(), 1u);
  EXPECT_EQ(first[0].args[0].first, "i");

  auto [rest, cursor2] = client.stream_events(first.back().id, 100);
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest.back().name, "e6");
  EXPECT_EQ(cursor2, rest.back().id);
  auto [none, cursor3] = client.stream_events(cursor2, 100);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(cursor3, cursor2);
}

TEST(TelemetrySoapTest, StreamEventsWithoutTracerFaults) {
  MetricsRegistry reg;
  soap::RpcRegistry rpc;
  soap::TelemetryService service(rpc, reg, nullptr, "telemetry://test");
  const soap::TelemetryClient client(rpc, "telemetry://test");
  EXPECT_THROW(client.stream_events(0), soap::SoapFault);
}

// --- concurrency (run under TSan in CI) -------------------------------------

TEST(ObsConcurrencyTest, InstrumentsAreRaceFreeAndExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("t.count");
  Gauge& g = reg.gauge("t.level");
  Histogram& h = reg.histogram("t.dist");

  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &g, &h, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        g.set(static_cast<double>(t));
        h.record(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 99.0);
}

TEST(ObsConcurrencyTest, RegistryGetOrCreateIsThreadSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < 50; ++i) {
        reg.counter("shared.counter_" + std::to_string(i % 10)).add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.size(), 10u);
  std::uint64_t total = 0;
  for (const MetricValue& m : reg.snapshot().metrics) total += m.count;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 50);
}

TEST(ObsConcurrencyTest, TracerConcurrentRecording) {
  EventTracer tracer(256);
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      for (int i = 0; i < kEvents; ++i) {
        tracer.instant("e", "thread" + std::to_string(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(tracer.recorded(), static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(tracer.events().size(), tracer.capacity());
  EXPECT_EQ(tracer.dropped(), tracer.recorded() - tracer.capacity());
}

TEST(ObsConcurrencyTest, LoggerConcurrentSinkWrites) {
  std::ostringstream sink;
  Logger logger(&sink, LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  const std::string payload(64, 'x');  // long enough to expose interleaving
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&logger, &payload] {
      for (int i = 0; i < kLines; ++i) logger.info("test", payload);
    });
  }
  for (std::thread& w : workers) w.join();

  // Every line arrived exactly once and intact — no interleaved characters.
  std::istringstream lines(sink.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find(payload), std::string::npos) << line;
    ++n;
  }
  EXPECT_EQ(n, static_cast<std::size_t>(kThreads) * kLines);
}

}  // namespace
}  // namespace vw::obs
