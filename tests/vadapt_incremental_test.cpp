// Differential tests for the incremental VADAPT optimizer core:
//  * IncrementalEvaluator vs from-scratch evaluate() over long randomized
//    perturbation walks (path and mapping moves) — bit-exact by design,
//    asserted both exactly and at the 1e-9 contract tolerance;
//  * simulated_annealing incremental mode vs the full-rescore reference —
//    bit-identical optimizer decisions from the same seed;
//  * multi-start determinism: K chains on a thread pool reproduce the
//    single-thread merge for the same seed set;
//  * the thread pool itself, and the trace_stride == 0 contract.

#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <cmath>
#include <numeric>

#include "topo/testbed.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/cluster.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/incremental.hpp"
#include "vadapt/multistart.hpp"
#include "vadapt/problem.hpp"
#include "vadapt/warm_start.hpp"
#include "vadapt/widest_path.hpp"
#include "wren/delta.hpp"
#include "wren/view.hpp"

namespace vw::vadapt {
namespace {

CapacityGraph random_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<net::NodeId> hosts(n);
  for (std::size_t i = 0; i < n; ++i) hosts[i] = static_cast<net::NodeId>(i);
  CapacityGraph g(hosts);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      g.set_bandwidth(i, j, rng.uniform(5e6, 500e6));
      g.set_latency(i, j, rng.uniform(0.0001, 0.02));
    }
  }
  return g;
}

std::vector<Demand> mixed_demands(std::size_t n_vms, Rng& rng) {
  std::vector<Demand> demands;
  for (std::size_t i = 0; i < n_vms; ++i) {
    demands.push_back({i, (i + 1) % n_vms, rng.uniform(1e6, 60e6)});
  }
  demands.push_back({0, n_vms / 2, rng.uniform(1e6, 60e6)});  // shared-edge pressure
  demands.push_back({n_vms - 1, 1, rng.uniform(1e6, 60e6)});
  return demands;
}

// A randomized single-path perturbation mirroring the annealer's move set,
// built only from public state.
Path perturb_path(const Path& path, std::size_t n_hosts, Rng& rng) {
  Path out = path;
  const double u = rng.uniform(0.0, 3.0);
  if (u < 1.0 && out.size() < n_hosts) {
    std::vector<char> on_path(n_hosts, 0);
    for (HostIndex h : out) on_path[h] = 1;
    std::vector<HostIndex> pool;
    for (HostIndex h = 0; h < n_hosts; ++h) {
      if (!on_path[h]) pool.push_back(h);
    }
    if (!pool.empty()) {
      const HostIndex v = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 1));
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), v);
    }
  } else if (u < 2.0 && out.size() > 2) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 2));
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
  } else if (out.size() > 3) {
    const auto x = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 2));
    auto y = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 2));
    if (x == y) y = 1 + (y - 1 + 1) % (out.size() - 2);
    std::swap(out[x], out[y]);
  }
  return out;
}

void run_differential_walk(const Objective& objective, std::uint64_t seed,
                           std::size_t iterations) {
  const std::size_t n_hosts = 12;
  const std::size_t n_vms = 6;
  const CapacityGraph graph = random_graph(n_hosts, seed);
  Rng rng(seed * 7 + 1);
  const std::vector<Demand> demands = mixed_demands(n_vms, rng);

  IncrementalEvaluator ev(graph, demands, objective);
  ev.reset(random_configuration(graph, demands, n_vms, rng));

  std::size_t mapping_moves = 0;
  std::size_t path_moves = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    if (rng.chance(0.05)) {
      // Mapping move: fresh random configuration, full rescore.
      ev.reset(random_configuration(graph, demands, n_vms, rng));
      ++mapping_moves;
    } else {
      const auto d = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(demands.size()) - 1));
      ev.set_path(d, perturb_path(ev.configuration().paths[d], n_hosts, rng));
      ++path_moves;
    }

    const Evaluation full = evaluate(graph, demands, ev.configuration(), objective);
    const Evaluation& inc = ev.evaluation();
    // Contract tolerance from the issue...
    ASSERT_NEAR(inc.cost, full.cost, 1e-9 * std::max(1.0, std::abs(full.cost)))
        << "iteration " << iter;
    ASSERT_NEAR(inc.min_residual_bps, full.min_residual_bps,
                1e-9 * std::max(1.0, std::abs(full.min_residual_bps)))
        << "iteration " << iter;
    // ...and the stronger bit-exactness the implementation guarantees.
    ASSERT_EQ(inc.cost, full.cost) << "cost drifted at iteration " << iter;
    ASSERT_EQ(inc.min_residual_bps, full.min_residual_bps)
        << "min residual drifted at iteration " << iter;
    ASSERT_EQ(inc.feasible, full.feasible) << "iteration " << iter;
  }
  EXPECT_GT(mapping_moves, 0u);
  EXPECT_GT(path_moves, iterations / 2);
}

TEST(IncrementalEvaluatorTest, RandomWalkMatchesFullEvaluateEq1) {
  run_differential_walk(Objective{}, 17, 6000);
}

TEST(IncrementalEvaluatorTest, RandomWalkMatchesFullEvaluateEq3) {
  Objective obj;
  obj.kind = ObjectiveKind::kResidualBandwidthLatency;
  obj.latency_weight = 2e5;
  run_differential_walk(obj, 23, 6000);
}

TEST(IncrementalEvaluatorTest, RevertRestoresStateExactly) {
  const CapacityGraph graph = random_graph(8, 3);
  Rng rng(9);
  const std::vector<Demand> demands = mixed_demands(4, rng);
  IncrementalEvaluator ev(graph, demands);
  ev.reset(random_configuration(graph, demands, 4, rng));

  const Evaluation before = ev.evaluation();
  const Path original = ev.configuration().paths[1];
  const Path moved = perturb_path(original, 8, rng);
  ev.set_path(1, moved);
  ev.set_path(1, original);  // the annealer's reject-revert
  EXPECT_EQ(ev.evaluation().cost, before.cost);
  EXPECT_EQ(ev.evaluation().min_residual_bps, before.min_residual_bps);
  EXPECT_EQ(ev.configuration().paths[1], original);
}

TEST(IncrementalEvaluatorTest, TracksSharedEdgeDemands) {
  // Two demands share edge 1->2; moving one must rescore the other.
  CapacityGraph g({0, 1, 2, 3});
  for (HostIndex i = 0; i < 4; ++i) {
    for (HostIndex j = 0; j < 4; ++j) {
      if (i != j) g.set_bandwidth(i, j, 100e6);
    }
  }
  const std::vector<Demand> demands{{0, 1, 30e6}, {2, 1, 40e6}};
  Configuration conf;
  conf.mapping = {1, 2, 3, 0};  // VM0@h1, VM1@h2, VM2@h3
  conf.paths = {{1, 2}, {3, 1, 2}};  // both cross 1->2
  IncrementalEvaluator ev(g, demands);
  ev.reset(conf);
  EXPECT_DOUBLE_EQ(ev.residual(1, 2), 100e6 - 70e6);
  EXPECT_DOUBLE_EQ(ev.bottleneck(0), 30e6);

  // Re-route demand 1 off the shared edge: demand 0's bottleneck recovers.
  ev.set_path(1, {3, 2});
  EXPECT_DOUBLE_EQ(ev.residual(1, 2), 70e6);
  EXPECT_DOUBLE_EQ(ev.bottleneck(0), 70e6);
  EXPECT_EQ(ev.evaluation().cost,
            evaluate(g, demands, ev.configuration()).cost);
}

// --- annealing: incremental vs full-rescore reference ---------------------------

void expect_bit_identical_runs(const CapacityGraph& graph, const std::vector<Demand>& demands,
                               std::size_t n_vms, const Objective& objective,
                               std::optional<Configuration> initial, std::uint64_t seed) {
  AnnealingParams params;
  params.iterations = 3000;
  params.trace_stride = 1;

  params.full_rescore = false;
  const AnnealingResult inc =
      simulated_annealing(graph, demands, n_vms, objective, params, Rng(seed), initial);
  params.full_rescore = true;
  const AnnealingResult full =
      simulated_annealing(graph, demands, n_vms, objective, params, Rng(seed), initial);

  ASSERT_EQ(inc.trace.size(), full.trace.size());
  for (std::size_t i = 0; i < inc.trace.size(); ++i) {
    ASSERT_EQ(inc.trace[i].iteration, full.trace[i].iteration) << "i=" << i;
    ASSERT_EQ(inc.trace[i].current_cost, full.trace[i].current_cost)
        << "decision diverged at iteration " << i;
    ASSERT_EQ(inc.trace[i].best_cost, full.trace[i].best_cost) << "i=" << i;
  }
  EXPECT_EQ(inc.best_evaluation.cost, full.best_evaluation.cost);
  EXPECT_EQ(inc.best.mapping, full.best.mapping);
  EXPECT_EQ(inc.best.paths, full.best.paths);
  EXPECT_EQ(inc.final_state.mapping, full.final_state.mapping);
  EXPECT_EQ(inc.final_state.paths, full.final_state.paths);
}

TEST(AnnealingDifferentialTest, IncrementalDecisionsMatchFullRescoreBitwise) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  expect_bit_identical_runs(sc.graph, sc.demands, sc.n_vms, Objective{}, std::nullopt, 101);
}

TEST(AnnealingDifferentialTest, SeededChainMatchesWithLatencyObjective) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms);
  Objective obj;
  obj.kind = ObjectiveKind::kResidualBandwidthLatency;
  obj.latency_weight = 3e5;
  expect_bit_identical_runs(sc.graph, sc.demands, sc.n_vms, obj, gh.configuration, 202);
}

TEST(AnnealingDifferentialTest, RandomGraphMatches) {
  const CapacityGraph graph = random_graph(10, 77);
  Rng rng(78);
  const std::vector<Demand> demands = mixed_demands(5, rng);
  expect_bit_identical_runs(graph, demands, 5, Objective{}, std::nullopt, 303);
}

TEST(AnnealingTest, TraceStrideZeroViolatesContract) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  AnnealingParams params;
  params.trace_stride = 0;
  EXPECT_THROW(simulated_annealing(sc.graph, sc.demands, sc.n_vms, Objective{}, params, Rng(1)),
               std::invalid_argument);
}

// --- multi-start ----------------------------------------------------------------

TEST(MultiStartTest, DeterministicAcrossThreadCounts) {
  const CapacityGraph graph = random_graph(16, 5);
  Rng rng(6);
  const std::vector<Demand> demands = mixed_demands(6, rng);

  MultiStartParams params;
  params.chains = 5;
  params.seed = 99;
  params.annealing.iterations = 1500;
  params.annealing.trace_stride = 1500;

  params.threads = 1;
  const MultiStartResult sequential =
      multi_start_annealing(graph, demands, 6, Objective{}, params);
  params.threads = 4;
  const MultiStartResult threaded = multi_start_annealing(graph, demands, 6, Objective{}, params);

  EXPECT_EQ(sequential.best_chain, threaded.best_chain);
  EXPECT_EQ(sequential.best.best_evaluation.cost, threaded.best.best_evaluation.cost);
  EXPECT_EQ(sequential.best.best.mapping, threaded.best.best.mapping);
  EXPECT_EQ(sequential.best.best.paths, threaded.best.best.paths);
  ASSERT_EQ(sequential.chains.size(), threaded.chains.size());
  for (std::size_t k = 0; k < sequential.chains.size(); ++k) {
    EXPECT_EQ(sequential.chains[k].seed, threaded.chains[k].seed);
    EXPECT_EQ(sequential.chains[k].best_evaluation.cost, threaded.chains[k].best_evaluation.cost)
        << "chain " << k;
  }
}

TEST(MultiStartTest, BestIsMaxOverChains) {
  const CapacityGraph graph = random_graph(12, 41);
  Rng rng(42);
  const std::vector<Demand> demands = mixed_demands(5, rng);
  MultiStartParams params;
  params.chains = 4;
  params.threads = 2;
  params.seed = 7;
  params.annealing.iterations = 800;
  params.annealing.trace_stride = 800;
  const MultiStartResult result = multi_start_annealing(graph, demands, 5, Objective{}, params);
  ASSERT_EQ(result.chains.size(), 4u);
  for (const ChainOutcome& chain : result.chains) {
    EXPECT_LE(chain.best_evaluation.cost, result.best.best_evaluation.cost);
  }
  EXPECT_EQ(result.best.best_evaluation.cost,
            result.chains[result.best_chain].best_evaluation.cost);
}

TEST(MultiStartTest, SeededNeverWorseThanGreedy) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms);
  MultiStartParams params;
  params.chains = 3;
  params.threads = 3;
  params.seed = 11;
  params.annealing.iterations = 2000;
  params.annealing.trace_stride = 2000;
  const MultiStartResult result =
      multi_start_annealing(sc.graph, sc.demands, sc.n_vms, Objective{}, params,
                            gh.configuration);
  EXPECT_GE(result.best.best_evaluation.cost, gh.evaluation.cost);
  for (const Path& p : result.best.best.paths) {
    EXPECT_TRUE(valid_path(p, result.best.best,
                           sc.demands[static_cast<std::size_t>(&p - result.best.best.paths.data())],
                           sc.graph.size()));
  }
}

TEST(MultiStartTest, RequiresAtLeastOneChain) {
  const CapacityGraph graph = random_graph(4, 1);
  MultiStartParams params;
  params.chains = 0;
  EXPECT_THROW(multi_start_annealing(graph, {}, 2, Objective{}, params),
               std::invalid_argument);
}

// --- thread pool ----------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

// --- hashed host lookup ---------------------------------------------------------

TEST(CapacityGraphTest, IndexOfHashedLookup) {
  CapacityGraph g({40, 10, 30});
  EXPECT_EQ(g.index_of(40), std::optional<HostIndex>(0));
  EXPECT_EQ(g.index_of(10), std::optional<HostIndex>(1));
  EXPECT_EQ(g.index_of(30), std::optional<HostIndex>(2));
  EXPECT_EQ(g.index_of(99), std::nullopt);
}

TEST(CapacityGraphTest, IndexOfDuplicateKeepsFirst) {
  CapacityGraph g({7, 7, 9});
  EXPECT_EQ(g.index_of(7), std::optional<HostIndex>(0));
}

// --- warm start: scoped widest-path cache invalidation --------------------------

void expect_tree_equal(const WidestPathTree& a, const WidestPathTree& b, HostIndex source) {
  ASSERT_EQ(a.source, b.source) << "source " << source;
  ASSERT_EQ(a.width, b.width) << "widths diverged for source " << source;
  ASSERT_EQ(a.parent, b.parent) << "parents diverged for source " << source;
}

TEST(WarmStartWidestCacheTest, UntouchedSourceTreesSurviveSingleEdgeUpdate) {
  const CapacityGraph graph = random_graph(12, 91);
  AdjacencyView view(graph.bandwidth_matrix());
  WidestPathCache cache(view);
  for (HostIndex s = 0; s < graph.size(); ++s) cache.tree(s);
  ASSERT_EQ(cache.cached_trees(), graph.size());

  // Decrease edge 3 -> 7: only trees routing v=7 through u=3 may drop.
  const double before = view.capacity(3, 7);
  const double after = before * 0.25;
  std::size_t expected_drops = 0;
  for (HostIndex s = 0; s < graph.size(); ++s) {
    const WidestPathTree& t = cache.tree(s);
    if (t.parent[7] && *t.parent[7] == 3) ++expected_drops;
  }
  view.update(3, 7, after);
  const std::size_t dropped = cache.invalidate_edge(3, 7, before, after);
  EXPECT_EQ(dropped, expected_drops);
  EXPECT_EQ(cache.cached_trees(), graph.size() - dropped);
  EXPECT_LT(dropped, graph.size()) << "a single edge must not clear the whole cache";

  // The satellite contract: every survivor is bit-identical to a fresh
  // recompute over the updated view.
  for (HostIndex s = 0; s < graph.size(); ++s) {
    if (!cache.is_cached(s)) continue;
    expect_tree_equal(cache.tree(s), widest_paths(view, s), s);
  }
}

TEST(WarmStartWidestCacheTest, SurvivorsMatchFreshRecomputeOverRandomUpdates) {
  const std::size_t n = 10;
  const CapacityGraph graph = random_graph(n, 123);
  AdjacencyView view(graph.bandwidth_matrix());
  WidestPathCache cache(view);
  Rng rng(321);
  std::size_t survivors_checked = 0;
  for (std::size_t step = 0; step < 300; ++step) {
    for (HostIndex s = 0; s < n; ++s) cache.tree(s);  // refill misses
    const auto u = static_cast<HostIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto v = static_cast<HostIndex>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u == v) v = (v + 1) % n;
    const double before = view.capacity(u, v);
    // Mix decreases, increases, deletions (<= 0), and resurrections.
    const double after = rng.chance(0.1) ? 0.0 : rng.uniform(1e6, 600e6);
    view.update(u, v, after);
    cache.invalidate_edge(u, v, before, after);
    for (HostIndex s = 0; s < n; ++s) {
      if (!cache.is_cached(s)) continue;
      expect_tree_equal(cache.tree(s), widest_paths(view, s), s);
      ++survivors_checked;
    }
  }
  EXPECT_GT(survivors_checked, 300u) << "invalidation was effectively wholesale";
}

TEST(WarmStartWidestCacheTest, InvalidateSourceDropsExactlyOneTree) {
  const CapacityGraph graph = random_graph(6, 55);
  AdjacencyView view(graph.bandwidth_matrix());
  WidestPathCache cache(view);
  for (HostIndex s = 0; s < graph.size(); ++s) cache.tree(s);
  cache.invalidate_source(2);
  EXPECT_FALSE(cache.is_cached(2));
  EXPECT_EQ(cache.cached_trees(), graph.size() - 1);
  const std::size_t misses = cache.misses();
  cache.tree(2);
  EXPECT_EQ(cache.misses(), misses + 1);
}

// --- warm start: view delta protocol --------------------------------------------

TEST(WarmStartViewDeltaTest, TrackingRecordsValueChangesAndInvalidations) {
  wren::GlobalNetworkView view;
  view.update_bandwidth(1, 2, 100e6, 0);  // before tracking: not recorded
  view.enable_delta_tracking();
  EXPECT_TRUE(view.pending_delta().empty());

  view.update_bandwidth(1, 2, 100e6, 1);  // same value: no delta entry
  EXPECT_TRUE(view.pending_delta().empty());
  view.update_bandwidth(1, 2, 80e6, 2);
  view.update_latency(3, 4, 0.005, 2);
  view.invalidate(1, 2);
  view.update_bandwidth(5, 6, 50e6, 3);

  wren::ViewDelta delta = view.drain_delta();
  EXPECT_TRUE(view.pending_delta().empty()) << "drain must reset the accumulator";
  ASSERT_EQ(delta.pair_count(), 3u);
  // Invalidation supersedes the earlier bandwidth change on (1,2).
  const wren::PairDelta& p12 = delta.pairs().at({1, 2});
  EXPECT_TRUE(p12.invalidated);
  EXPECT_FALSE(p12.bandwidth_changed);
  const wren::PairDelta& p34 = delta.pairs().at({3, 4});
  EXPECT_TRUE(p34.latency_changed);
  EXPECT_EQ(p34.latency_s, 0.005);
  const wren::PairDelta& p56 = delta.pairs().at({5, 6});
  EXPECT_TRUE(p56.bandwidth_changed);
  EXPECT_EQ(p56.bandwidth_bps, 50e6);
}

TEST(WarmStartViewDeltaTest, HostInvalidationAndMerge) {
  wren::GlobalNetworkView view;
  view.enable_delta_tracking();
  view.update_bandwidth(1, 2, 10e6, 0);
  view.update_bandwidth(2, 3, 20e6, 0);
  wren::ViewDelta first = view.drain_delta();

  view.invalidate_host(2);
  wren::ViewDelta second = view.drain_delta();
  EXPECT_EQ(second.invalidated_hosts().count(2), 1u);
  EXPECT_TRUE(second.pairs().at({1, 2}).invalidated);
  EXPECT_TRUE(second.pairs().at({2, 3}).invalidated);

  first.merge(second);
  EXPECT_TRUE(first.pairs().at({1, 2}).invalidated);
  EXPECT_FALSE(first.pairs().at({1, 2}).bandwidth_changed);
}

// --- warm start: optimizer ------------------------------------------------------

/// A cheap but real from-scratch solve used as the differential oracle.
Configuration cold_solve(const CapacityGraph& graph, const std::vector<Demand>& demands,
                         std::size_t n_vms, double* cost_out) {
  const GreedyResult gh = greedy_heuristic(graph, demands, n_vms);
  MultiStartParams params;
  params.chains = 2;
  params.threads = 1;
  params.seed = 4242;
  params.annealing.iterations = 800;
  params.annealing.trace_stride = 800;
  const MultiStartResult result =
      multi_start_annealing(graph, demands, n_vms, Objective{}, params, gh.configuration);
  if (cost_out != nullptr) *cost_out = result.best.best_evaluation.cost;
  return result.best.best;
}

TEST(WarmStartOptimizerTest, EmptyDeltaLeavesIncumbentBitIdentical) {
  const std::size_t n_hosts = 16;
  const std::size_t n_vms = 8;
  const CapacityGraph graph = random_graph(n_hosts, 7);
  Rng demand_rng(8);
  const std::vector<Demand> demands = mixed_demands(n_vms, demand_rng);
  const Configuration conf = cold_solve(graph, demands, n_vms, nullptr);

  WarmStartOptimizer warm;
  warm.adopt(graph, demands, n_vms, conf);
  const double cost = warm.evaluation().cost;

  const WarmAdaptStats stats = warm.adapt(wren::ViewDelta{}, demands, Rng(999));
  EXPECT_EQ(stats.patched_edges, 0u);
  EXPECT_EQ(stats.rate_changes, 0u);
  EXPECT_EQ(stats.burst_iterations, 0u);
  EXPECT_EQ(warm.evaluation().cost, cost);
  EXPECT_EQ(warm.incumbent().mapping, conf.mapping);
  EXPECT_EQ(warm.incumbent().paths, conf.paths);
}

TEST(WarmStartOptimizerTest, DifferentialWalkTracksFromScratch) {
  const std::size_t n_hosts = 16;
  const std::size_t n_vms = 8;
  CapacityGraph graph = random_graph(n_hosts, 17);  // mutable mirror of the "true" network
  Rng demand_rng(18);
  const std::vector<Demand> demands = mixed_demands(n_vms, demand_rng);

  WarmStartParams params;
  params.min_burst_iterations = 300;
  params.max_burst_iterations = 2000;
  WarmStartOptimizer warm(params);
  warm.adopt(graph, demands, n_vms, cold_solve(graph, demands, n_vms, nullptr));

  Rng rng(19);
  constexpr double kTolerance = 0.2;  // warm cost >= (1 - tol) * cold cost
  std::size_t oracle_checks = 0;
  for (std::size_t step = 0; step < 1000; ++step) {
    // One random single-entry delta: a directed pair's bandwidth moves.
    const auto u = static_cast<HostIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_hosts) - 1));
    auto v = static_cast<HostIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_hosts) - 1));
    if (u == v) v = (v + 1) % n_hosts;
    const double bw = rng.uniform(5e6, 500e6);
    graph.set_bandwidth(u, v, bw);
    wren::ViewDelta delta;
    delta.note_bandwidth(graph.host(u), graph.host(v), bw);

    const WarmAdaptStats stats =
        warm.adapt(delta, demands, Rng(1000 + static_cast<std::uint64_t>(step)));
    EXPECT_EQ(stats.delta_pairs, 1u);
    EXPECT_GE(stats.cost_after, stats.cost_before) << "step " << step;
    EXPECT_EQ(warm.graph().bandwidth(u, v), bw);

    // The committed incumbent must score exactly what the evaluator claims.
    const Evaluation check = evaluate(warm.graph(), warm.demands(), warm.incumbent());
    ASSERT_EQ(warm.evaluation().cost, check.cost) << "step " << step;

    // Differential oracle every few steps (the cold solve dominates runtime).
    if (step % 25 == 0) {
      double cold_cost = 0;
      cold_solve(graph, demands, n_vms, &cold_cost);
      ASSERT_GT(cold_cost, 0.0) << "oracle degenerate at step " << step;
      EXPECT_GE(warm.evaluation().cost, (1.0 - kTolerance) * cold_cost)
          << "warm drifted away from from-scratch at step " << step;
      ++oracle_checks;
    }
  }
  EXPECT_EQ(oracle_checks, 40u);
}

TEST(WarmStartOptimizerTest, RateDriftIsPatchedInPlace) {
  const std::size_t n_hosts = 12;
  const std::size_t n_vms = 6;
  const CapacityGraph graph = random_graph(n_hosts, 29);
  Rng demand_rng(30);
  std::vector<Demand> demands = mixed_demands(n_vms, demand_rng);
  WarmStartOptimizer warm;
  warm.adopt(graph, demands, n_vms, cold_solve(graph, demands, n_vms, nullptr));

  demands[0].rate_bps *= 2.5;  // VTTIF reports a hotter flow
  demands[3].rate_bps *= 0.1;
  const WarmAdaptStats stats = warm.adapt(wren::ViewDelta{}, demands, Rng(31));
  EXPECT_EQ(stats.rate_changes, 2u);
  EXPECT_GT(stats.burst_iterations, 0u);
  EXPECT_EQ(warm.demands()[0].rate_bps, demands[0].rate_bps);
  const Evaluation check = evaluate(warm.graph(), demands, warm.incumbent());
  EXPECT_EQ(warm.evaluation().cost, check.cost);
}

TEST(WarmStartOptimizerTest, InvalidatedPairFallsBackToConfiguredCapacity) {
  const CapacityGraph graph = random_graph(10, 47);
  Rng demand_rng(48);
  const std::vector<Demand> demands = mixed_demands(5, demand_rng);
  WarmStartParams params;
  params.fallback_bandwidth_bps = 123e6;
  params.fallback_latency_s = 0.002;
  WarmStartOptimizer warm(params);
  warm.adopt(graph, demands, 5, cold_solve(graph, demands, 5, nullptr));

  wren::ViewDelta delta;
  delta.note_invalidated(graph.host(2), graph.host(5));
  warm.adapt(delta, demands, Rng(49));
  EXPECT_EQ(warm.graph().bandwidth(2, 5), 123e6);
  EXPECT_EQ(warm.graph().latency(2, 5), 0.002);
}

TEST(WarmStartOptimizerTest, CompatibilityGuards) {
  const CapacityGraph graph = random_graph(8, 61);
  Rng demand_rng(62);
  const std::vector<Demand> demands = mixed_demands(4, demand_rng);
  WarmStartOptimizer warm;
  EXPECT_FALSE(warm.has_incumbent());
  EXPECT_FALSE(warm.compatible(graph.hosts(), demands, 4));

  warm.adopt(graph, demands, 4, cold_solve(graph, demands, 4, nullptr));
  EXPECT_TRUE(warm.compatible(graph.hosts(), demands, 4));

  std::vector<Demand> drifted = demands;
  drifted[0].rate_bps += 1e6;  // rates may drift...
  EXPECT_TRUE(warm.compatible(graph.hosts(), drifted, 4));
  drifted[0].dst = (drifted[0].dst + 1) % 4;  // ...endpoints may not
  EXPECT_FALSE(warm.compatible(graph.hosts(), drifted, 4));

  std::vector<net::NodeId> fewer_hosts = graph.hosts();
  fewer_hosts.pop_back();  // a daemon died
  EXPECT_FALSE(warm.compatible(fewer_hosts, demands, 4));
  EXPECT_FALSE(warm.compatible(graph.hosts(), demands, 5));

  // Delta-size guard: 8 hosts -> 56 directed pairs; default threshold 25%.
  wren::ViewDelta small;
  small.note_bandwidth(graph.host(0), graph.host(1), 1e6);
  EXPECT_TRUE(warm.delta_acceptable(small));
  wren::ViewDelta big;
  for (HostIndex i = 0; i < 8; ++i) {
    for (HostIndex j = 0; j < 8; ++j) {
      if (i != j) big.note_bandwidth(graph.host(i), graph.host(j), 1e6);
    }
  }
  EXPECT_FALSE(warm.delta_acceptable(big));

  warm.invalidate();
  EXPECT_FALSE(warm.has_incumbent());
}

// --- warm start: hierarchical decomposition -------------------------------------

/// A demand set with clear communities: dense rings inside each block of
/// `block` VMs, plus a weak chain between consecutive blocks.
std::vector<Demand> community_demands(std::size_t n_vms, std::size_t block, Rng& rng) {
  std::vector<Demand> demands;
  for (std::size_t b = 0; b * block < n_vms; ++b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(lo + block, n_vms);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t j = i + 1 < hi ? i + 1 : lo;
      if (j != i) demands.push_back({i, j, rng.uniform(40e6, 80e6)});
    }
    if (lo > 0) demands.push_back({lo - 1, lo, rng.uniform(1e6, 2e6)});  // weak bridge
  }
  return demands;
}

TEST(WarmStartClusterTest, FindsTrafficCommunitiesDeterministically) {
  Rng rng(71);
  const std::vector<Demand> demands = community_demands(24, 8, rng);
  const ClusterAssignment a = cluster_vms_by_traffic(demands, 24);
  const ClusterAssignment b = cluster_vms_by_traffic(demands, 24);
  EXPECT_EQ(a.cluster_of, b.cluster_of) << "clustering must be deterministic";

  // Each dense ring must land in one community; the weak bridges must not
  // glue everything into a single blob.
  EXPECT_GT(a.size(), 1u);
  for (std::size_t b_idx = 0; b_idx < 3; ++b_idx) {
    const std::uint32_t c = a.cluster_of[b_idx * 8];
    for (std::size_t i = 1; i < 8; ++i) {
      EXPECT_EQ(a.cluster_of[b_idx * 8 + i], c) << "vm " << (b_idx * 8 + i);
    }
  }
  std::size_t total = 0;
  for (const auto& members : a.clusters) total += members.size();
  EXPECT_EQ(total, 24u);
}

TEST(WarmStartClusterTest, RespectsSizeCapAndHandlesIdleVms) {
  Rng rng(73);
  const std::vector<Demand> demands = community_demands(16, 8, rng);
  ClusterParams params;
  params.max_cluster_size = 4;
  const ClusterAssignment a = cluster_vms_by_traffic(demands, 20, params);  // 4 idle VMs
  for (const auto& members : a.clusters) EXPECT_LE(members.size(), 4u);
  ASSERT_EQ(a.cluster_of.size(), 20u);
  for (std::size_t v = 16; v < 20; ++v) {
    EXPECT_EQ(a.clusters[a.cluster_of[v]].size(), 1u) << "idle vm " << v << " not a singleton";
  }
}

TEST(WarmStartOptimizerTest, DecompositionBurstsAreDeterministicAndMonotone) {
  const std::size_t n_hosts = 48;
  const std::size_t n_vms = 32;
  const CapacityGraph graph = random_graph(n_hosts, 83);
  Rng demand_rng(84);
  const std::vector<Demand> demands = community_demands(n_vms, 8, demand_rng);

  WarmStartParams params;
  params.decomposition_min_vms = 16;   // force the hierarchical path
  params.decomposition_min_targets = 8;
  params.max_neighborhood = 64;
  params.max_cluster_size = 8;
  params.min_burst_iterations = 200;
  params.max_burst_iterations = 1000;

  const GreedyResult gh = greedy_heuristic(graph, demands, n_vms);
  WarmStartOptimizer a(params);
  WarmStartOptimizer b(params);
  a.adopt(graph, demands, n_vms, gh.configuration);
  b.adopt(graph, demands, n_vms, gh.configuration);

  // A delta wide enough to touch many demands across communities.
  wren::ViewDelta delta;
  Rng rng(85);
  for (std::size_t k = 0; k < 40; ++k) {
    const auto u = static_cast<HostIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_hosts) - 1));
    auto v = static_cast<HostIndex>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_hosts) - 1));
    if (u == v) v = (v + 1) % n_hosts;
    delta.note_bandwidth(graph.host(u), graph.host(v), rng.uniform(5e6, 500e6));
  }

  const WarmAdaptStats sa = a.adapt(delta, demands, Rng(86));
  const WarmAdaptStats sb = b.adapt(delta, demands, Rng(86));
  EXPECT_GT(sa.burst_groups, 1u) << "expected a decomposed (multi-burst) adapt";
  EXPECT_GE(sa.cost_after, sa.cost_before);
  EXPECT_EQ(sa.cost_after, sb.cost_after);
  EXPECT_EQ(a.incumbent().mapping, b.incumbent().mapping);
  EXPECT_EQ(a.incumbent().paths, b.incumbent().paths);
  // Warm bursts are path-only: the mapping (hence VM placement) is stable.
  EXPECT_EQ(a.incumbent().mapping, gh.configuration.mapping);
}

}  // namespace
}  // namespace vw::vadapt
