// Differential tests for the incremental VADAPT optimizer core:
//  * IncrementalEvaluator vs from-scratch evaluate() over long randomized
//    perturbation walks (path and mapping moves) — bit-exact by design,
//    asserted both exactly and at the 1e-9 contract tolerance;
//  * simulated_annealing incremental mode vs the full-rescore reference —
//    bit-identical optimizer decisions from the same seed;
//  * multi-start determinism: K chains on a thread pool reproduce the
//    single-thread merge for the same seed set;
//  * the thread pool itself, and the trace_stride == 0 contract.

#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <cmath>
#include <numeric>

#include "topo/testbed.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/incremental.hpp"
#include "vadapt/multistart.hpp"
#include "vadapt/problem.hpp"

namespace vw::vadapt {
namespace {

CapacityGraph random_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<net::NodeId> hosts(n);
  for (std::size_t i = 0; i < n; ++i) hosts[i] = static_cast<net::NodeId>(i);
  CapacityGraph g(hosts);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      g.set_bandwidth(i, j, rng.uniform(5e6, 500e6));
      g.set_latency(i, j, rng.uniform(0.0001, 0.02));
    }
  }
  return g;
}

std::vector<Demand> mixed_demands(std::size_t n_vms, Rng& rng) {
  std::vector<Demand> demands;
  for (std::size_t i = 0; i < n_vms; ++i) {
    demands.push_back({i, (i + 1) % n_vms, rng.uniform(1e6, 60e6)});
  }
  demands.push_back({0, n_vms / 2, rng.uniform(1e6, 60e6)});  // shared-edge pressure
  demands.push_back({n_vms - 1, 1, rng.uniform(1e6, 60e6)});
  return demands;
}

// A randomized single-path perturbation mirroring the annealer's move set,
// built only from public state.
Path perturb_path(const Path& path, std::size_t n_hosts, Rng& rng) {
  Path out = path;
  const double u = rng.uniform(0.0, 3.0);
  if (u < 1.0 && out.size() < n_hosts) {
    std::vector<char> on_path(n_hosts, 0);
    for (HostIndex h : out) on_path[h] = 1;
    std::vector<HostIndex> pool;
    for (HostIndex h = 0; h < n_hosts; ++h) {
      if (!on_path[h]) pool.push_back(h);
    }
    if (!pool.empty()) {
      const HostIndex v = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 1));
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), v);
    }
  } else if (u < 2.0 && out.size() > 2) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 2));
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
  } else if (out.size() > 3) {
    const auto x = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 2));
    auto y = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(out.size()) - 2));
    if (x == y) y = 1 + (y - 1 + 1) % (out.size() - 2);
    std::swap(out[x], out[y]);
  }
  return out;
}

void run_differential_walk(const Objective& objective, std::uint64_t seed,
                           std::size_t iterations) {
  const std::size_t n_hosts = 12;
  const std::size_t n_vms = 6;
  const CapacityGraph graph = random_graph(n_hosts, seed);
  Rng rng(seed * 7 + 1);
  const std::vector<Demand> demands = mixed_demands(n_vms, rng);

  IncrementalEvaluator ev(graph, demands, objective);
  ev.reset(random_configuration(graph, demands, n_vms, rng));

  std::size_t mapping_moves = 0;
  std::size_t path_moves = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    if (rng.chance(0.05)) {
      // Mapping move: fresh random configuration, full rescore.
      ev.reset(random_configuration(graph, demands, n_vms, rng));
      ++mapping_moves;
    } else {
      const auto d = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(demands.size()) - 1));
      ev.set_path(d, perturb_path(ev.configuration().paths[d], n_hosts, rng));
      ++path_moves;
    }

    const Evaluation full = evaluate(graph, demands, ev.configuration(), objective);
    const Evaluation& inc = ev.evaluation();
    // Contract tolerance from the issue...
    ASSERT_NEAR(inc.cost, full.cost, 1e-9 * std::max(1.0, std::abs(full.cost)))
        << "iteration " << iter;
    ASSERT_NEAR(inc.min_residual_bps, full.min_residual_bps,
                1e-9 * std::max(1.0, std::abs(full.min_residual_bps)))
        << "iteration " << iter;
    // ...and the stronger bit-exactness the implementation guarantees.
    ASSERT_EQ(inc.cost, full.cost) << "cost drifted at iteration " << iter;
    ASSERT_EQ(inc.min_residual_bps, full.min_residual_bps)
        << "min residual drifted at iteration " << iter;
    ASSERT_EQ(inc.feasible, full.feasible) << "iteration " << iter;
  }
  EXPECT_GT(mapping_moves, 0u);
  EXPECT_GT(path_moves, iterations / 2);
}

TEST(IncrementalEvaluatorTest, RandomWalkMatchesFullEvaluateEq1) {
  run_differential_walk(Objective{}, 17, 6000);
}

TEST(IncrementalEvaluatorTest, RandomWalkMatchesFullEvaluateEq3) {
  Objective obj;
  obj.kind = ObjectiveKind::kResidualBandwidthLatency;
  obj.latency_weight = 2e5;
  run_differential_walk(obj, 23, 6000);
}

TEST(IncrementalEvaluatorTest, RevertRestoresStateExactly) {
  const CapacityGraph graph = random_graph(8, 3);
  Rng rng(9);
  const std::vector<Demand> demands = mixed_demands(4, rng);
  IncrementalEvaluator ev(graph, demands);
  ev.reset(random_configuration(graph, demands, 4, rng));

  const Evaluation before = ev.evaluation();
  const Path original = ev.configuration().paths[1];
  const Path moved = perturb_path(original, 8, rng);
  ev.set_path(1, moved);
  ev.set_path(1, original);  // the annealer's reject-revert
  EXPECT_EQ(ev.evaluation().cost, before.cost);
  EXPECT_EQ(ev.evaluation().min_residual_bps, before.min_residual_bps);
  EXPECT_EQ(ev.configuration().paths[1], original);
}

TEST(IncrementalEvaluatorTest, TracksSharedEdgeDemands) {
  // Two demands share edge 1->2; moving one must rescore the other.
  CapacityGraph g({0, 1, 2, 3});
  for (HostIndex i = 0; i < 4; ++i) {
    for (HostIndex j = 0; j < 4; ++j) {
      if (i != j) g.set_bandwidth(i, j, 100e6);
    }
  }
  const std::vector<Demand> demands{{0, 1, 30e6}, {2, 1, 40e6}};
  Configuration conf;
  conf.mapping = {1, 2, 3, 0};  // VM0@h1, VM1@h2, VM2@h3
  conf.paths = {{1, 2}, {3, 1, 2}};  // both cross 1->2
  IncrementalEvaluator ev(g, demands);
  ev.reset(conf);
  EXPECT_DOUBLE_EQ(ev.residual(1, 2), 100e6 - 70e6);
  EXPECT_DOUBLE_EQ(ev.bottleneck(0), 30e6);

  // Re-route demand 1 off the shared edge: demand 0's bottleneck recovers.
  ev.set_path(1, {3, 2});
  EXPECT_DOUBLE_EQ(ev.residual(1, 2), 70e6);
  EXPECT_DOUBLE_EQ(ev.bottleneck(0), 70e6);
  EXPECT_EQ(ev.evaluation().cost,
            evaluate(g, demands, ev.configuration()).cost);
}

// --- annealing: incremental vs full-rescore reference ---------------------------

void expect_bit_identical_runs(const CapacityGraph& graph, const std::vector<Demand>& demands,
                               std::size_t n_vms, const Objective& objective,
                               std::optional<Configuration> initial, std::uint64_t seed) {
  AnnealingParams params;
  params.iterations = 3000;
  params.trace_stride = 1;

  params.full_rescore = false;
  const AnnealingResult inc =
      simulated_annealing(graph, demands, n_vms, objective, params, Rng(seed), initial);
  params.full_rescore = true;
  const AnnealingResult full =
      simulated_annealing(graph, demands, n_vms, objective, params, Rng(seed), initial);

  ASSERT_EQ(inc.trace.size(), full.trace.size());
  for (std::size_t i = 0; i < inc.trace.size(); ++i) {
    ASSERT_EQ(inc.trace[i].iteration, full.trace[i].iteration) << "i=" << i;
    ASSERT_EQ(inc.trace[i].current_cost, full.trace[i].current_cost)
        << "decision diverged at iteration " << i;
    ASSERT_EQ(inc.trace[i].best_cost, full.trace[i].best_cost) << "i=" << i;
  }
  EXPECT_EQ(inc.best_evaluation.cost, full.best_evaluation.cost);
  EXPECT_EQ(inc.best.mapping, full.best.mapping);
  EXPECT_EQ(inc.best.paths, full.best.paths);
  EXPECT_EQ(inc.final_state.mapping, full.final_state.mapping);
  EXPECT_EQ(inc.final_state.paths, full.final_state.paths);
}

TEST(AnnealingDifferentialTest, IncrementalDecisionsMatchFullRescoreBitwise) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  expect_bit_identical_runs(sc.graph, sc.demands, sc.n_vms, Objective{}, std::nullopt, 101);
}

TEST(AnnealingDifferentialTest, SeededChainMatchesWithLatencyObjective) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms);
  Objective obj;
  obj.kind = ObjectiveKind::kResidualBandwidthLatency;
  obj.latency_weight = 3e5;
  expect_bit_identical_runs(sc.graph, sc.demands, sc.n_vms, obj, gh.configuration, 202);
}

TEST(AnnealingDifferentialTest, RandomGraphMatches) {
  const CapacityGraph graph = random_graph(10, 77);
  Rng rng(78);
  const std::vector<Demand> demands = mixed_demands(5, rng);
  expect_bit_identical_runs(graph, demands, 5, Objective{}, std::nullopt, 303);
}

TEST(AnnealingTest, TraceStrideZeroViolatesContract) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  AnnealingParams params;
  params.trace_stride = 0;
  EXPECT_THROW(simulated_annealing(sc.graph, sc.demands, sc.n_vms, Objective{}, params, Rng(1)),
               std::invalid_argument);
}

// --- multi-start ----------------------------------------------------------------

TEST(MultiStartTest, DeterministicAcrossThreadCounts) {
  const CapacityGraph graph = random_graph(16, 5);
  Rng rng(6);
  const std::vector<Demand> demands = mixed_demands(6, rng);

  MultiStartParams params;
  params.chains = 5;
  params.seed = 99;
  params.annealing.iterations = 1500;
  params.annealing.trace_stride = 1500;

  params.threads = 1;
  const MultiStartResult sequential =
      multi_start_annealing(graph, demands, 6, Objective{}, params);
  params.threads = 4;
  const MultiStartResult threaded = multi_start_annealing(graph, demands, 6, Objective{}, params);

  EXPECT_EQ(sequential.best_chain, threaded.best_chain);
  EXPECT_EQ(sequential.best.best_evaluation.cost, threaded.best.best_evaluation.cost);
  EXPECT_EQ(sequential.best.best.mapping, threaded.best.best.mapping);
  EXPECT_EQ(sequential.best.best.paths, threaded.best.best.paths);
  ASSERT_EQ(sequential.chains.size(), threaded.chains.size());
  for (std::size_t k = 0; k < sequential.chains.size(); ++k) {
    EXPECT_EQ(sequential.chains[k].seed, threaded.chains[k].seed);
    EXPECT_EQ(sequential.chains[k].best_evaluation.cost, threaded.chains[k].best_evaluation.cost)
        << "chain " << k;
  }
}

TEST(MultiStartTest, BestIsMaxOverChains) {
  const CapacityGraph graph = random_graph(12, 41);
  Rng rng(42);
  const std::vector<Demand> demands = mixed_demands(5, rng);
  MultiStartParams params;
  params.chains = 4;
  params.threads = 2;
  params.seed = 7;
  params.annealing.iterations = 800;
  params.annealing.trace_stride = 800;
  const MultiStartResult result = multi_start_annealing(graph, demands, 5, Objective{}, params);
  ASSERT_EQ(result.chains.size(), 4u);
  for (const ChainOutcome& chain : result.chains) {
    EXPECT_LE(chain.best_evaluation.cost, result.best.best_evaluation.cost);
  }
  EXPECT_EQ(result.best.best_evaluation.cost,
            result.chains[result.best_chain].best_evaluation.cost);
}

TEST(MultiStartTest, SeededNeverWorseThanGreedy) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms);
  MultiStartParams params;
  params.chains = 3;
  params.threads = 3;
  params.seed = 11;
  params.annealing.iterations = 2000;
  params.annealing.trace_stride = 2000;
  const MultiStartResult result =
      multi_start_annealing(sc.graph, sc.demands, sc.n_vms, Objective{}, params,
                            gh.configuration);
  EXPECT_GE(result.best.best_evaluation.cost, gh.evaluation.cost);
  for (const Path& p : result.best.best.paths) {
    EXPECT_TRUE(valid_path(p, result.best.best,
                           sc.demands[static_cast<std::size_t>(&p - result.best.best.paths.data())],
                           sc.graph.size()));
  }
}

TEST(MultiStartTest, RequiresAtLeastOneChain) {
  const CapacityGraph graph = random_graph(4, 1);
  MultiStartParams params;
  params.chains = 0;
  EXPECT_THROW(multi_start_annealing(graph, {}, 2, Objective{}, params),
               std::invalid_argument);
}

// --- thread pool ----------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

// --- hashed host lookup ---------------------------------------------------------

TEST(CapacityGraphTest, IndexOfHashedLookup) {
  CapacityGraph g({40, 10, 30});
  EXPECT_EQ(g.index_of(40), std::optional<HostIndex>(0));
  EXPECT_EQ(g.index_of(10), std::optional<HostIndex>(1));
  EXPECT_EQ(g.index_of(30), std::optional<HostIndex>(2));
  EXPECT_EQ(g.index_of(99), std::nullopt);
}

TEST(CapacityGraphTest, IndexOfDuplicateKeepsFirst) {
  CapacityGraph g({7, 7, 9});
  EXPECT_EQ(g.index_of(7), std::optional<HostIndex>(0));
}

}  // namespace
}  // namespace vw::vadapt
