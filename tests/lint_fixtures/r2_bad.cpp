// R2 fixture: every unseeded/ambient randomness source vwlint must flag.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;
  std::mt19937 unseeded;
  std::mt19937_64 also_unseeded;
  srand(42);
  const int c = rand();
  return static_cast<int>(rd() + unseeded() + also_unseeded()) + c;
}
