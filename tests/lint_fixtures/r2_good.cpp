// R2 fixture: explicitly-seeded randomness vwlint must pass — every engine
// is constructed from a seed that (in real code) derives from RngService.
#include <cstdint>
#include <random>

double draw(std::uint64_t stream_seed) {
  std::mt19937_64 engine(stream_seed);
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine);
}
