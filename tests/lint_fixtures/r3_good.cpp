// R3 fixture: the two accepted shapes — iterate a sorted copy, or waive the
// order-insensitive collection step with a reason. vwlint must pass.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

double total_rate() {
  std::unordered_map<std::string, double> rates = {{"a", 1.0}};
  std::vector<std::pair<std::string, double>> sorted_rates;
  sorted_rates.reserve(rates.size());
  // vwlint: unordered-ok(collection only; order normalized by the sort below)
  for (const auto& [name, rate] : rates) sorted_rates.emplace_back(name, rate);
  std::sort(sorted_rates.begin(), sorted_rates.end());
  double total = 0;
  for (const auto& [name, rate] : sorted_rates) total += rate;
  return total;
}
