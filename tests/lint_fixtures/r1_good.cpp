// R1 fixture: virtual-clock-pure code vwlint must pass. Time only flows in
// as SimTime / a clock callback; names that merely contain "time"/"clock"
// must not trip the rule.
#include <cstdint>

using SimTime = std::int64_t;

SimTime transmission_time(std::int64_t bytes, double bits_per_sec) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0e9 / bits_per_sec);
}

struct Meter {
  SimTime last_tick = 0;
  SimTime clock_skew = 0;
  SimTime advance(SimTime now) {
    const SimTime dt = now - last_tick;
    last_tick = now;
    return dt + clock_skew + transmission_time(1500, 1e9);
  }
};
