// R3 fixture: unordered-container iteration feeding an accumulator in an
// ordering-sensitive module, with no waiver — vwlint must flag both loops.
#include <string>
#include <unordered_map>
#include <unordered_set>

double total_rate(const std::unordered_map<int, double>& ignored) {
  std::unordered_map<std::string, double> rates = {{"a", 1.0}};
  std::unordered_set<int> members = {1, 2, 3};
  double total = 0;
  for (const auto& [name, rate] : rates) total += rate;
  for (auto it = members.begin(); it != members.end(); ++it) total += *it;
  (void)ignored;
  return total;
}
