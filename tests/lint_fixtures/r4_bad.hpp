#pragma once

// R4 fixture: hot-path header with a std::function callback and a by-value
// shared_ptr parameter — vwlint must flag both.
#include <functional>
#include <memory>

struct Payload;

class HotPath {
 public:
  using Callback = std::function<void(int)>;
  void deliver(std::shared_ptr<Payload> payload, int size);
};
