#pragma once

// R5 fixture: a public header with exactly two VW_REQUIRE/VW_ENSURE contract
// sites; test_vwlint.py checks coverage counting and baseline regression
// against this file.
#define VW_REQUIRE(cond, ...) ((void)(cond))
#define VW_ENSURE(cond, ...) ((void)(cond))

inline int clamp_positive(int x) {
  VW_REQUIRE(x > -1000, "way out of range");
  const int r = x < 0 ? 0 : x;
  VW_ENSURE(r >= 0, "postcondition");
  return r;
}
