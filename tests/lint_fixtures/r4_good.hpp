#pragma once

// R4 fixture: hot-path header passing the shared_ptr by const& and using a
// SmallFn-style callable — vwlint must pass.
#include <memory>

struct Payload;

template <typename Sig>
class SmallFnLike {};

class HotPath {
 public:
  using Callback = SmallFnLike<void(int)>;
  void deliver(const std::shared_ptr<Payload>& payload, int size);
};
