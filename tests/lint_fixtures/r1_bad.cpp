// R1 fixture: every wall-clock source vwlint must flag in simulated code.
#include <chrono>
#include <ctime>

long long stamp_events() {
  const auto a = std::chrono::steady_clock::now();
  const auto b = std::chrono::system_clock::now();
  const auto c = std::chrono::high_resolution_clock::now();
  const std::time_t d = time(nullptr);
  const std::clock_t e = clock();
  (void)a; (void)b; (void)c; (void)e;
  return static_cast<long long>(d);
}
