// Unit tests for the physical network substrate: link serialization and
// propagation timing, drop-tail queueing, routing, taps, endpoint delay
// emulation and the SNMP-style link probe.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/probe.hpp"
#include "sim/simulator.hpp"

namespace vw::net {
namespace {

Packet make_packet(NodeId src, NodeId dst, std::uint32_t payload) {
  Packet p;
  p.flow = FlowKey{src, dst, 1000, 2000, Protocol::kUdp};
  p.payload_bytes = payload;
  p.header_bytes = 40;
  return p;
}

struct TwoHosts {
  sim::Simulator sim;
  Network net{sim};
  NodeId a, b;

  explicit TwoHosts(const LinkConfig& cfg = {}) {
    a = net.add_host("a");
    b = net.add_host("b");
    net.add_link(a, b, cfg);
    net.compute_routes();
  }
};

TEST(NetworkTest, DeliveryTimeIsSerializationPlusPropagation) {
  LinkConfig cfg;
  cfg.bits_per_sec = 10e6;
  cfg.prop_delay = millis(2);
  TwoHosts env(cfg);
  SimTime delivered_at = -1;
  env.net.set_host_stack(env.b, [&](Packet&&) { delivered_at = env.sim.now(); });
  env.net.send(make_packet(env.a, env.b, 1210));  // 1250B on wire = 1ms at 10Mbps
  env.sim.run();
  EXPECT_EQ(delivered_at, millis(3));
}

TEST(NetworkTest, BackToBackPacketsQueue) {
  LinkConfig cfg;
  cfg.bits_per_sec = 10e6;
  cfg.prop_delay = 0;
  TwoHosts env(cfg);
  std::vector<SimTime> arrivals;
  env.net.set_host_stack(env.b, [&](Packet&&) { arrivals.push_back(env.sim.now()); });
  for (int i = 0; i < 3; ++i) env.net.send(make_packet(env.a, env.b, 1210));
  env.sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], millis(1));
  EXPECT_EQ(arrivals[1], millis(2));
  EXPECT_EQ(arrivals[2], millis(3));
}

TEST(NetworkTest, DropTailWhenQueueFull) {
  LinkConfig cfg;
  cfg.bits_per_sec = 1e6;  // slow: queue builds instantly
  cfg.queue_limit_bytes = 3000;
  TwoHosts env(cfg);
  int delivered = 0;
  env.net.set_host_stack(env.b, [&](Packet&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) env.net.send(make_packet(env.a, env.b, 1210));
  env.sim.run();
  EXPECT_EQ(delivered, 2);  // 2 x 1250 fits in 3000, the rest dropped
  EXPECT_EQ(env.net.packets_dropped(), 8u);
}

TEST(NetworkTest, MultiHopRouting) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_host("a");
  const NodeId r1 = net.add_router("r1");
  const NodeId r2 = net.add_router("r2");
  const NodeId b = net.add_host("b");
  LinkConfig cfg;
  cfg.prop_delay = millis(1);
  net.add_link(a, r1, cfg);
  net.add_link(r1, r2, cfg);
  net.add_link(r2, b, cfg);
  net.compute_routes();

  EXPECT_EQ(net.next_hop(a, b), r1);
  EXPECT_EQ(net.next_hop(r1, b), r2);
  EXPECT_EQ(net.path_prop_delay(a, b), millis(3));

  bool got = false;
  net.set_host_stack(b, [&](Packet&& p) {
    got = true;
    EXPECT_EQ(p.flow.src, a);
  });
  net.send(make_packet(a, b, 100));
  sim.run();
  EXPECT_TRUE(got);
}

TEST(NetworkTest, RoutingPrefersLowerLatency) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_host("a");
  const NodeId fast = net.add_router("fast");
  const NodeId slow = net.add_router("slow");
  const NodeId b = net.add_host("b");
  LinkConfig fast_cfg;
  fast_cfg.prop_delay = millis(1);
  LinkConfig slow_cfg;
  slow_cfg.prop_delay = millis(10);
  net.add_link(a, fast, fast_cfg);
  net.add_link(fast, b, fast_cfg);
  net.add_link(a, slow, slow_cfg);
  net.add_link(slow, b, slow_cfg);
  net.compute_routes();
  EXPECT_EQ(net.next_hop(a, b), fast);
}

TEST(NetworkTest, PathBottleneck) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_host("a");
  const NodeId r = net.add_router("r");
  const NodeId b = net.add_host("b");
  LinkConfig wide;
  wide.bits_per_sec = 100e6;
  LinkConfig narrow;
  narrow.bits_per_sec = 10e6;
  net.add_link(a, r, wide);
  net.add_link(r, b, narrow);
  net.compute_routes();
  EXPECT_DOUBLE_EQ(net.path_bottleneck_bps(a, b), 10e6);
}

TEST(NetworkTest, OutgoingTapFiresAtSerializationCompletion) {
  LinkConfig cfg;
  cfg.bits_per_sec = 10e6;
  cfg.prop_delay = millis(5);
  TwoHosts env(cfg);
  SimTime tap_time = -1;
  env.net.add_host_tap(env.a, [&](const TapEvent& ev) {
    if (ev.direction == TapDirection::kOutgoing) tap_time = ev.timestamp;
  });
  env.net.send(make_packet(env.a, env.b, 1210));
  env.sim.run();
  EXPECT_EQ(tap_time, millis(1));  // before propagation completes
}

TEST(NetworkTest, IncomingTapFiresAtDelivery) {
  LinkConfig cfg;
  cfg.bits_per_sec = 10e6;
  cfg.prop_delay = millis(5);
  TwoHosts env(cfg);
  SimTime tap_time = -1;
  env.net.add_host_tap(env.b, [&](const TapEvent& ev) {
    if (ev.direction == TapDirection::kIncoming) tap_time = ev.timestamp;
  });
  env.net.send(make_packet(env.a, env.b, 1210));
  env.sim.run();
  EXPECT_EQ(tap_time, millis(6));
}

TEST(NetworkTest, RemovedTapStopsFiring) {
  TwoHosts env;
  int count = 0;
  const TapId id = env.net.add_host_tap(env.a, [&](const TapEvent&) { ++count; });
  env.net.send(make_packet(env.a, env.b, 100));
  env.sim.run();
  const int after_first = count;
  EXPECT_GT(after_first, 0);
  env.net.remove_host_tap(env.a, id);
  env.net.send(make_packet(env.a, env.b, 100));
  env.sim.run();
  EXPECT_EQ(count, after_first);
}

TEST(NetworkTest, EndpointDelayEmulation) {
  LinkConfig cfg;
  cfg.bits_per_sec = 10e6;
  cfg.prop_delay = 0;
  TwoHosts env(cfg);
  env.net.add_endpoint_delay(env.a, env.b, millis(25));
  SimTime delivered_at = -1;
  env.net.set_host_stack(env.b, [&](Packet&&) { delivered_at = env.sim.now(); });
  env.net.send(make_packet(env.a, env.b, 1210));
  env.sim.run();
  EXPECT_EQ(delivered_at, millis(26));  // 1ms serialization + 25ms NistNet
}

TEST(NetworkTest, LoopbackDelivery) {
  TwoHosts env;
  bool got = false;
  env.net.set_host_stack(env.a, [&](Packet&& p) {
    got = true;
    EXPECT_EQ(p.flow.dst, env.a);
  });
  env.net.send(make_packet(env.a, env.a, 500));
  env.sim.run();
  EXPECT_TRUE(got);
}

TEST(NetworkTest, PacketIdsAreUnique) {
  TwoHosts env;
  std::vector<std::uint64_t> ids;
  env.net.set_host_stack(env.b, [&](Packet&& p) { ids.push_back(p.id); });
  for (int i = 0; i < 5; ++i) env.net.send(make_packet(env.a, env.b, 100));
  env.sim.run();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(NetworkTest, DuplicateLinkThrows) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.add_link(a, b, {});
  EXPECT_THROW(net.add_link(a, b, {}), std::invalid_argument);
  EXPECT_THROW(net.add_link(b, a, {}), std::invalid_argument);
}

TEST(NetworkTest, SelfLinkThrows) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_host("a");
  EXPECT_THROW(net.add_link(a, a, {}), std::invalid_argument);
}

TEST(NetworkTest, UnreachableDestinationDropsSilently) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");  // no link
  net.compute_routes();
  bool got = false;
  net.set_host_stack(b, [&](Packet&&) { got = true; });
  Packet p;
  p.flow = FlowKey{a, b, 1, 2, Protocol::kUdp};
  p.payload_bytes = 10;
  net.send(std::move(p));
  sim.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(net.path_prop_delay(a, b), -1);
  EXPECT_DOUBLE_EQ(net.path_bottleneck_bps(a, b), 0.0);
}

TEST(ChannelTest, CapacityChangeAffectsNewPackets) {
  LinkConfig cfg;
  cfg.bits_per_sec = 10e6;
  cfg.prop_delay = 0;
  TwoHosts env(cfg);
  std::vector<SimTime> arrivals;
  env.net.set_host_stack(env.b, [&](Packet&&) { arrivals.push_back(env.sim.now()); });
  env.net.send(make_packet(env.a, env.b, 1210));
  env.sim.run();
  env.net.channel(env.a, env.b).set_capacity_bps(20e6);
  env.net.send(make_packet(env.a, env.b, 1210));
  env.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], millis(1));
  EXPECT_EQ(arrivals[1] - arrivals[0], micros(500));
}

TEST(LinkProbeTest, MeasuresUtilizationAndAvailability) {
  LinkConfig cfg;
  cfg.bits_per_sec = 10e6;
  cfg.prop_delay = 0;
  TwoHosts env(cfg);
  LinkProbe probe(env.sim, env.net.channel(env.a, env.b), millis(100));

  // Send 50 packets of 1250B over the first 100ms: 0.5 Mbit in 0.1s = 5 Mbps.
  for (int i = 0; i < 50; ++i) {
    env.sim.schedule_at(i * millis(2), [&] { env.net.send(make_packet(env.a, env.b, 1210)); });
  }
  env.sim.run_until(millis(250));
  ASSERT_GE(probe.samples().size(), 2u);
  EXPECT_NEAR(probe.samples()[0].utilized_bps, 5e6, 0.6e6);
  EXPECT_NEAR(probe.samples()[0].available_bps, 5e6, 0.6e6);
  // Second interval: idle.
  EXPECT_NEAR(probe.samples()[1].available_bps, 10e6, 0.1e6);
}

TEST(LinkProbeTest, CurrentAvailableBeforeSamplesIsCapacity) {
  TwoHosts env;
  LinkProbe probe(env.sim, env.net.channel(env.a, env.b), seconds(1.0));
  EXPECT_DOUBLE_EQ(probe.current_available_bps(), env.net.channel(env.a, env.b).capacity_bps());
}

}  // namespace
}  // namespace vw::net
