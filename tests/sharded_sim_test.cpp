// Sharded conservative-engine regression suite: the determinism contract
// (event order is a pure function of the workload, never of shard count or
// thread count), the lookahead/epoch protocol, the topology partitioner,
// the packet-level cross-shard datapath, and the end-to-end chaos
// differential against the single-shard oracle's golden signatures
// (tests/golden/).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/fault.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "topo/testbed.hpp"
#include "util/thread_pool.hpp"
#include "virtuoso/system.hpp"
#include "vm/apps.hpp"
#include "vm/machine.hpp"

namespace vw {
namespace {

// --- deterministic token walk ------------------------------------------------
// A synthetic workload with heavy cross-shard traffic: kTokens tokens hop
// between kNodes logical nodes for kSteps steps. Every hop is a pure
// function of (token, step) — splitmix64 picks the next node and a delay of
// at least the lookahead — so the full per-node event trace is defined by
// the workload alone and any two runs can be compared bit-for-bit.

constexpr int kNodes = 16;
constexpr int kTokens = 256;
constexpr int kSteps = 400;  // 256 * 400 = 102,400 hop events
constexpr SimTime kWalkLookahead = 100;

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One recorded hop: (virtual time, token * 1000 + step).
using Trace = std::vector<std::pair<SimTime, std::uint64_t>>;

struct Walk {
  sim::ShardedSimulator& ssim;
  std::vector<Trace>& traces;  ///< per logical node; node -> shard is fixed

  std::size_t shard_of(int node) const { return node % ssim.shard_count(); }

  void hop(std::uint64_t token, int step, int node, SimTime at) {
    traces[static_cast<std::size_t>(node)].push_back(
        {at, token * 1000 + static_cast<std::uint64_t>(step)});
    if (step + 1 >= kSteps) return;
    const std::uint64_t h = mix(token * 1315423911ull + static_cast<std::uint64_t>(step));
    const int next = static_cast<int>(h % kNodes);
    const SimTime delay = kWalkLookahead + static_cast<SimTime>((h >> 32) % (8 * kWalkLookahead));
    const SimTime then = at + delay;
    ssim.post(shard_of(node), shard_of(next), then,
              [this, token, step, next, then] { hop(token, step + 1, next, then); });
  }
};

/// Runs the walk on `shards` shards with `threads` pool workers (0 = serial
/// oracle dispatch) and returns the per-node traces.
std::vector<Trace> run_walk(std::size_t shards, std::size_t threads,
                            sim::ShardedSimulator::Stats* stats_out = nullptr) {
  std::optional<ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  sim::ShardedSimulator ssim(shards, pool ? &*pool : nullptr);
  ssim.set_lookahead(kWalkLookahead);
  std::vector<Trace> traces(kNodes);
  Walk walk{ssim, traces};
  for (int tok = 0; tok < kTokens; ++tok) {
    const auto token = static_cast<std::uint64_t>(tok);
    const int start = static_cast<int>(mix(token) % kNodes);
    const SimTime t0 = static_cast<SimTime>(mix(token ^ 0xabcdull) % 1000);
    ssim.shard(walk.shard_of(start))
        .schedule_at(t0, [&walk, token, start, t0] { walk.hop(token, 0, start, t0); });
  }
  ssim.run_until(seconds(1.0));
  // One event per hop: step 0 runs inside the injection event, steps
  // 1..kSteps-1 via post, so kTokens * kSteps events in total.
  EXPECT_EQ(ssim.events_executed(), static_cast<std::uint64_t>(kTokens) * kSteps);
  if (stats_out != nullptr) *stats_out = ssim.stats();
  return traces;
}

/// Sorts each node's trace by (time, payload), keeping only the what/when
/// set. Used for cross-shard-count comparison, where same-(node, time)
/// tie order may legally differ from the serial engine's schedule order.
std::vector<Trace> sorted(std::vector<Trace> traces) {
  for (Trace& t : traces) std::sort(t.begin(), t.end());
  return traces;
}

TEST(ShardedSchedulerTest, WalkMatchesSerialOracleAcrossShardCounts) {
  const std::vector<Trace> oracle = sorted(run_walk(1, 0));
  for (std::size_t shards : {2u, 4u, 8u}) {
    sim::ShardedSimulator::Stats stats;
    const std::vector<Trace> got = sorted(run_walk(shards, shards, &stats));
    EXPECT_EQ(got, oracle) << "trace diverged at " << shards << " shards";
    EXPECT_GT(stats.epochs, 0u);
    EXPECT_GT(stats.handoffs, 0u);
    EXPECT_GT(stats.null_messages, 0u);
  }
}

TEST(ShardedSchedulerTest, TraceIsIndependentOfThreadCount) {
  // Same sharding, different worker counts (including the no-pool serial
  // dispatch): bit-identical traces *including* same-time tie order, which
  // is what proves the merge never observes thread arrival order.
  const std::vector<Trace> base = run_walk(4, 0);
  EXPECT_EQ(run_walk(4, 2), base);
  EXPECT_EQ(run_walk(4, 8), base);
}

TEST(ShardedSchedulerTest, RunUntilComposesAcrossCalls) {
  sim::ShardedSimulator a(3);
  sim::ShardedSimulator b(3);
  a.set_lookahead(kWalkLookahead);
  b.set_lookahead(kWalkLookahead);
  std::vector<Trace> ta(kNodes);
  std::vector<Trace> tb(kNodes);
  Walk wa{a, ta};
  Walk wb{b, tb};
  a.shard(0).schedule_at(0, [&wa] { wa.hop(1, 0, 0, 0); });
  b.shard(0).schedule_at(0, [&wb] { wb.hop(1, 0, 0, 0); });
  a.run_until(millis(1));
  for (SimTime t = micros(1); t <= millis(1); t += micros(1)) b.run_until(t);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(ta, tb);
}

TEST(ShardedSchedulerTest, GlobalEventsAreStopTheWorldOrdered) {
  sim::ShardedSimulator ssim(2);
  ssim.set_lookahead(50);
  std::vector<std::string> order;
  ssim.shard(0).schedule_at(100, [&] { order.push_back("shard0@100"); });
  ssim.shard(1).schedule_at(100, [&] { order.push_back("shard1@100"); });
  ssim.shard(1).schedule_at(40, [&] { order.push_back("shard1@40"); });
  ssim.schedule_global(100, [&] {
    order.push_back("globalA@100");
    EXPECT_EQ(ssim.now(), SimTime{100});
  });
  ssim.schedule_global(100, [&] { order.push_back("globalB@100"); });
  ssim.schedule_global(60, [&] { order.push_back("global@60"); });
  ssim.run_until(200);
  // Globals run after every event strictly before their time and before any
  // shard event at it; same-time globals keep FIFO order.
  const std::vector<std::string> expect = {"shard1@40", "global@60", "globalA@100",
                                           "globalB@100", "shard0@100", "shard1@100"};
  EXPECT_EQ(order, expect);
  EXPECT_EQ(ssim.stats().global_events, 3u);
  EXPECT_EQ(ssim.now(), SimTime{200});
}

TEST(ShardedSchedulerTest, ExportsObsMetrics) {
  SimTime now = 0;
  obs::MetricsRegistry reg([&now] { return now; });
  std::optional<ThreadPool> pool;
  pool.emplace(2);
  sim::ShardedSimulator ssim(2, &*pool);
  ssim.set_lookahead(kWalkLookahead);
  ssim.set_obs(obs::Scope{&reg, nullptr});
  std::vector<Trace> traces(kNodes);
  Walk walk{ssim, traces};
  ssim.shard(0).schedule_at(0, [&walk] { walk.hop(7, 0, 0, 0); });
  ssim.run_until(millis(1));
  EXPECT_EQ(reg.counter("sim.epochs").value(), ssim.stats().epochs);
  EXPECT_EQ(reg.counter("sim.null_messages").value(), ssim.stats().null_messages);
  EXPECT_EQ(reg.counter("sim.mailbox.handoffs").value(), ssim.stats().handoffs);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.shards").value(), 2.0);
  EXPECT_GT(ssim.stats().handoffs, 0u);
}

// --- topology partitioner ----------------------------------------------------

TEST(ShardedPartitionTest, StarPartitionBalancesHostsAndFindsLookahead) {
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId sw = net.add_router("sw");
  net::LinkConfig link;
  link.prop_delay = micros(50);
  std::vector<net::NodeId> hosts;
  for (int i = 0; i < 32; ++i) {
    hosts.push_back(net.add_host("h" + std::to_string(i)));
    net.add_link(hosts.back(), sw, link);
  }
  net.compute_routes();
  net::Network::PartitionOptions four;
  four.shards = 4;
  const auto plan = net.partition(four);
  ASSERT_EQ(plan.shards, 4u);
  std::vector<int> hosts_per_shard(4, 0);
  for (const net::NodeId h : hosts) ++hosts_per_shard[plan.node_shard[h]];
  for (int c : hosts_per_shard) EXPECT_EQ(c, 8);
  EXPECT_EQ(plan.lookahead, micros(50));
  // Determinism: same topology, same options, same plan.
  EXPECT_EQ(net.partition(four).node_shard, plan.node_shard);
}

TEST(ShardedPartitionTest, PinGroupsStayTogetherAndSingleShardHasNoCut) {
  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);
  net::Network::PartitionOptions opts;
  opts.shards = 4;
  opts.pin_groups = {tb.hosts()};
  const auto plan = tb.network->partition(opts);
  for (const net::NodeId h : tb.hosts()) {
    EXPECT_EQ(plan.node_shard[h], plan.node_shard[tb.hosts()[0]]);
  }
  EXPECT_GT(plan.lookahead, 0);

  const auto solo = tb.network->partition(net::Network::PartitionOptions{});
  EXPECT_EQ(solo.lookahead, 0);  // nothing crosses
  for (const auto s : solo.node_shard) EXPECT_EQ(s, 0u);
}

// --- packet-level cross-shard datapath ---------------------------------------
// A 8-host star ping-pong through raw host stacks (the micro_parallel_sim
// workload, shrunk). Each host receives from exactly one peer, so per-host
// delivery traces must be bit-identical between the serial oracle and any
// sharded run.

std::vector<Trace> run_star(std::size_t shards) {
  constexpr int kHosts = 8;
  std::optional<ThreadPool> pool;
  if (shards > 1) pool.emplace(shards);
  sim::ShardedSimulator ssim(shards, pool ? &*pool : nullptr);
  net::Network net(ssim.shard(0));
  const net::NodeId sw = net.add_router("sw");
  net::LinkConfig link;
  link.bits_per_sec = 1e9;
  link.prop_delay = micros(50);
  std::vector<net::NodeId> hosts;
  for (int i = 0; i < kHosts; ++i) {
    hosts.push_back(net.add_host("h" + std::to_string(i)));
    net.add_link(hosts.back(), sw, link);
  }
  net.compute_routes();
  net::Network::PartitionOptions popts;
  popts.shards = shards;
  const auto plan = net.partition(popts);
  net.bind_shards(ssim, plan);
  if (plan.lookahead > 0) ssim.set_lookahead(plan.lookahead);

  std::vector<Trace> traces(kHosts);
  for (int i = 0; i < kHosts; ++i) {
    const net::NodeId me = hosts[static_cast<std::size_t>(i)];
    const net::NodeId peer = hosts[static_cast<std::size_t>((i + kHosts / 2) % kHosts)];
    net.set_host_stack(me, [&net, &traces, &ssim, plan, i, me, peer](net::Packet&& pkt) {
      traces[static_cast<std::size_t>(i)].push_back(
          {net.sim_for(me).now(), pkt.seq});
      if (pkt.seq >= 200) return;  // each direction stops after 200 turns
      net::Packet reply;
      reply.flow = net::FlowKey{me, peer, 4000, 4000, net::Protocol::kUdp};
      reply.payload_bytes = 960;
      reply.seq = pkt.seq + 1;
      net.send(std::move(reply));
    });
  }
  for (int i = 0; i < kHosts / 2; ++i) {
    const net::NodeId me = hosts[static_cast<std::size_t>(i)];
    const net::NodeId peer = hosts[static_cast<std::size_t>(i + kHosts / 2)];
    net.sim_for(me).schedule_at(0, [&net, me, peer] {
      net::Packet pkt;
      pkt.flow = net::FlowKey{me, peer, 4000, 4000, net::Protocol::kUdp};
      pkt.payload_bytes = 960;
      pkt.seq = 1;
      net.send(std::move(pkt));
    });
  }
  ssim.run_until(seconds(1.0));
  EXPECT_GT(net.packets_delivered(), 0u);
  return traces;
}

TEST(ShardedNetworkTest, StarDeliveriesMatchSerialOracle) {
  const std::vector<Trace> oracle = run_star(1);
  EXPECT_EQ(run_star(2), oracle);
  EXPECT_EQ(run_star(4), oracle);
}

// --- end-to-end chaos differential -------------------------------------------
// The fig10-style chaos scenario of tests/chaos_test.cpp, re-run on the
// sharded engine. All six hosts are pinned to one shard (the upper layers —
// VirtuosoSystem, transport, the traffic app — share state and schedule on
// shard 0); the switches and the inter-domain WAN link land elsewhere, so
// every packet crossing the domains crosses shards twice. Faults go through
// the stop-the-world global-event path. The run must reproduce the serial
// engine's golden signature (tests/golden/chaos_signature_seed*.txt,
// recorded as the machine string below) bit-for-bit at every shard count.
// Re-recorded when the replan path gained the pre-plan liveness/staleness
// refresh (VirtuosoSystem::refresh_view_before_planning): the fresher view
// legitimately changes the migration trajectory (fewer, different moves),
// identically at every shard count.

constexpr const char* kGoldenChaosSignature = "6,7,5,2,4,1,3,8,3,6,158,843,3";

std::string run_chaos_scenario_sharded(std::uint64_t seed, std::size_t shards) {
  std::optional<ThreadPool> pool;
  if (shards > 1) pool.emplace(shards);
  sim::ShardedSimulator ssim(shards, pool ? &*pool : nullptr);
  sim::Simulator& sim = ssim.shard(0);
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  net::Network::PartitionOptions popts;
  popts.shards = shards;
  popts.pin_groups = {tb.hosts()};
  const auto plan = tb.network->partition(popts);
  // The pinned host blob is the heaviest component, so LPT places it on
  // shard 0 — where the upper layers were just constructed.
  for (const net::NodeId h : tb.hosts()) EXPECT_EQ(plan.node_shard[h], 0u);
  tb.network->bind_shards(ssim, plan);
  if (plan.lookahead > 0) ssim.set_lookahead(plan.lookahead);

  virtuoso::SystemConfig config;
  config.seed = seed;
  config.telemetry = false;
  config.view_staleness_horizon = seconds(10.0);
  config.control_heartbeat_period = seconds(1.0);
  config.daemon_timeout = seconds(5.0);
  config.control.send_timeout = seconds(4.0);
  config.control.backoff_initial = millis(250);
  virtuoso::VirtuosoSystem system(sim, *tb.network, config);

  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    system.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  system.bootstrap(vnet::LinkProtocol::kUdp);

  const std::uint64_t mem = 8ull << 20;
  vm::VirtualMachine& v0 = system.create_vm("vm-0", tb.domain1_hosts[0], mem);
  vm::VirtualMachine& v1 = system.create_vm("vm-1", tb.domain1_hosts[1], mem);
  vm::VirtualMachine& v2 = system.create_vm("vm-2", tb.domain2_hosts[0], mem);
  vm::VirtualMachine& v3 = system.create_vm("vm-3", tb.domain2_hosts[1], mem);
  const std::vector<vm::VirtualMachine*> vms = {&v0, &v1, &v2, &v3};

  vm::apps::DemandMatrix demands;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) demands[{i, j}] = 8e6;
    }
  }
  demands[{0, 3}] = demands[{3, 0}] = 0.5e6;
  vm::apps::MatrixTrafficApp app(sim, vms, demands, millis(100));
  app.start();

  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = tb.hosts();
  sim::PeriodicTask oracle(sim, seconds(2.0), [&] {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      for (std::size_t j = 0; j < hosts.size(); ++j) {
        if (i == j || !tb.network->path_up(hosts[i], hosts[j])) continue;
        system.network_view().update_bandwidth(hosts[i], hosts[j],
                                               truth.graph.bandwidth(i, j), sim.now());
        system.network_view().update_latency(hosts[i], hosts[j], truth.graph.latency(i, j),
                                             sim.now());
      }
    }
  });

  system.enable_auto_adaptation(virtuoso::AdaptationAlgorithm::kGreedy, seconds(10.0));

  net::FaultPlan faults(ssim, *tb.network);
  faults.link_outage(seconds(5.0), seconds(23.0), tb.switch1, tb.switch2);

  ssim.run_until(seconds(60.0));
  app.stop();

  std::ostringstream sig;
  for (const vm::VirtualMachine* m : vms) {
    sig << (m->attached() ? static_cast<long long>(m->host()) : -1) << ",";
  }
  sig << system.auto_adaptations() << "," << system.failure_replans() << ","
      << system.migration().migrations_failed() << ","
      << system.migration().migrations_started() << ","
      << system.control_plane().reconnects() << ","
      << system.control_plane().disconnects() << ","
      << system.control_plane().messages_resent() << ","
      << system.control_plane().messages_delivered() << ","
      << system.daemons_declared_dead();
  return sig.str();
}

TEST(ShardedChaosTest, GoldenSignatureAtEveryShardCountSeed42) {
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(run_chaos_scenario_sharded(42, shards), kGoldenChaosSignature)
        << "diverged at " << shards << " shards";
  }
}

TEST(ShardedChaosTest, GoldenSignatureAtEveryShardCountSeed7) {
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(run_chaos_scenario_sharded(7, shards), kGoldenChaosSignature)
        << "diverged at " << shards << " shards";
  }
}

}  // namespace
}  // namespace vw
