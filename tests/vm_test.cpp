// Tests for the VM layer: message fragmentation/reassembly through VNET,
// migration (detach/transfer/re-attach, cost model), and the application
// workload generators.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/stack.hpp"
#include "vm/apps.hpp"
#include "vm/machine.hpp"
#include "vm/migration.hpp"
#include "vnet/overlay.hpp"

namespace vw::vm {
namespace {

struct VmEnv {
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<net::NodeId> hosts;
  std::unique_ptr<transport::TransportStack> stack;
  std::unique_ptr<vnet::Overlay> overlay;
  std::vector<std::unique_ptr<VirtualMachine>> machines;

  explicit VmEnv(std::size_t n_hosts = 3) {
    const net::NodeId sw = net.add_router("switch");
    for (std::size_t i = 0; i < n_hosts; ++i) {
      const net::NodeId h = net.add_host("host-" + std::to_string(i));
      net::LinkConfig cfg;
      cfg.bits_per_sec = 100e6;
      cfg.prop_delay = micros(50);
      net.add_link(h, sw, cfg);
      hosts.push_back(h);
    }
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
    overlay = std::make_unique<vnet::Overlay>(*stack);
    overlay->create_daemon(hosts[0], "proxy", /*is_proxy=*/true);
    for (std::size_t i = 1; i < n_hosts; ++i) {
      overlay->create_daemon(hosts[i], "d" + std::to_string(i));
    }
    overlay->bootstrap_star(vnet::LinkProtocol::kUdp);
  }

  VirtualMachine& vm(vnet::MacAddress mac, net::NodeId host,
                     std::uint64_t memory = 64ull << 20) {
    machines.push_back(
        std::make_unique<VirtualMachine>(sim, *overlay, mac, "vm" + std::to_string(mac), memory));
    machines.back()->attach(host);
    return *machines.back();
  }
};

TEST(VirtualMachineTest, SmallMessageSingleFrame) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  VirtualMachine& b = env.vm(2, env.hosts[2]);
  std::uint64_t got = 0;
  b.set_on_message([&](vnet::MacAddress src, std::uint64_t bytes, const std::any&) {
    EXPECT_EQ(src, 1u);
    got = bytes;
  });
  a.send_message(2, 800);
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(got, 800u);
  EXPECT_EQ(a.messages_sent(), 1u);
  EXPECT_EQ(b.messages_received(), 1u);
}

TEST(VirtualMachineTest, LargeMessageFragmentsAndReassembles) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  VirtualMachine& b = env.vm(2, env.hosts[2]);
  std::uint64_t got = 0;
  b.set_on_message([&](vnet::MacAddress, std::uint64_t bytes, const std::any&) { got = bytes; });
  a.send_message(2, 200'000);  // ~134 MTU frames
  env.sim.run_until(seconds(2.0));
  EXPECT_EQ(got, 200'000u);
  EXPECT_EQ(b.messages_received(), 1u);
  EXPECT_GE(b.bytes_received(), 200'000u);
}

TEST(VirtualMachineTest, TagRidesWithMessage) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  VirtualMachine& b = env.vm(2, env.hosts[2]);
  std::string got;
  b.set_on_message([&](vnet::MacAddress, std::uint64_t, const std::any& tag) {
    if (const auto* s = std::any_cast<std::string>(&tag)) got = *s;
  });
  a.send_message(2, 5000, std::any(std::string("hello")));
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(got, "hello");
}

TEST(VirtualMachineTest, SameHostVmToVm) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  VirtualMachine& b = env.vm(2, env.hosts[1]);
  std::uint64_t got = 0;
  b.set_on_message([&](vnet::MacAddress, std::uint64_t bytes, const std::any&) { got = bytes; });
  a.send_message(2, 3000);
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(got, 3000u);
}

TEST(VirtualMachineTest, DetachedVmDropsSends) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  a.detach();
  a.send_message(2, 1000);  // must not crash
  EXPECT_EQ(a.messages_sent(), 0u);
  EXPECT_THROW(a.host(), std::logic_error);
}

TEST(VirtualMachineTest, DoubleAttachThrows) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  EXPECT_THROW(a.attach(env.hosts[2]), std::logic_error);
}

TEST(MigrationTest, MovesVmAndTrafficFollows) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  VirtualMachine& b = env.vm(2, env.hosts[2], 16ull << 20);
  std::uint64_t got = 0;
  b.set_on_message([&](vnet::MacAddress, std::uint64_t bytes, const std::any&) { got += bytes; });

  MigrationEngine engine(env.sim, env.net);
  bool done = false;
  engine.migrate(b, env.hosts[1], [&](VirtualMachine&, MigrationStatus status) {
    done = status == MigrationStatus::kCompleted;
  });
  EXPECT_FALSE(b.attached());  // paused during transfer
  env.sim.run_until(seconds(30.0));
  EXPECT_TRUE(done);
  ASSERT_TRUE(b.attached());
  EXPECT_EQ(b.host(), env.hosts[1]);
  EXPECT_EQ(engine.migrations_completed(), 1u);

  // Post-migration delivery works (same-host now).
  a.send_message(2, 4000);
  env.sim.run_until(seconds(31.0));
  EXPECT_EQ(got, 4000u);
}

TEST(MigrationTest, NoopWhenAlreadyThere) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  MigrationEngine engine(env.sim, env.net);
  bool done = false;
  engine.migrate(a, env.hosts[1], [&](VirtualMachine&, MigrationStatus status) {
    done = status == MigrationStatus::kCompleted;
  });
  EXPECT_TRUE(done);  // immediate
  EXPECT_EQ(engine.migrations_started(), 0u);
}

TEST(MigrationTest, RetargetMidFlightLandsAtLatestTarget) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[0], 64ull << 20);
  MigrationEngine engine(env.sim, env.net);
  engine.migrate(a, env.hosts[1]);
  EXPECT_TRUE(engine.in_flight(a));
  // Re-target while the first transfer is still in progress.
  engine.migrate(a, env.hosts[2]);
  env.sim.run_until(seconds(60.0));
  ASSERT_TRUE(a.attached());
  EXPECT_EQ(a.host(), env.hosts[2]);
  EXPECT_FALSE(engine.in_flight(a));
  EXPECT_EQ(engine.migrations_started(), 1u);  // one transfer, re-targeted
}

TEST(MigrationTest, DurationScalesWithMemory) {
  VmEnv env;
  VirtualMachine& small = env.vm(1, env.hosts[1], 16ull << 20);
  VirtualMachine& large = env.vm(2, env.hosts[1], 256ull << 20);
  MigrationEngine engine(env.sim, env.net);
  const SimTime t_small = engine.estimate_duration(small, env.hosts[1], env.hosts[2]);
  const SimTime t_large = engine.estimate_duration(large, env.hosts[1], env.hosts[2]);
  EXPECT_GT(t_large, 10 * t_small / 2);
  EXPECT_GT(t_small, 0);
}

// --- application workloads --------------------------------------------------------

TEST(DemandsTest, AllToAllShape) {
  const auto m = apps::all_to_all(4, 1e6);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m.at({0, 3}), 1e6);
}

TEST(DemandsTest, RingShape) {
  const auto m = apps::ring(4, 1e6);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m.at({3, 0}), 1e6);
}

TEST(DemandsTest, MultigridIsAsymmetricAndHierarchical) {
  const auto m = apps::multigrid4(8e6);
  EXPECT_GT(m.at({0, 1}), m.at({0, 2}));  // fine grid beats coarse
  EXPECT_GT(m.at({0, 2}), m.at({0, 3}));
  EXPECT_GT(m.at({0, 1}), m.at({1, 0}));  // asymmetry
}

TEST(MatrixTrafficAppTest, GeneratesDemandedRates) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  VirtualMachine& b = env.vm(2, env.hosts[2]);
  std::uint64_t got = 0;
  b.set_on_message([&](vnet::MacAddress, std::uint64_t bytes, const std::any&) { got += bytes; });

  apps::DemandMatrix demands;
  demands[{0, 1}] = 4e6;  // 4 Mbps from a to b
  apps::MatrixTrafficApp app(env.sim, {&a, &b}, demands, millis(100));
  app.start();
  env.sim.run_until(seconds(5.0));
  app.stop();
  const double rate = static_cast<double>(got) * 8.0 / 5.0;
  EXPECT_NEAR(rate, 4e6, 0.8e6);
}

TEST(MatrixTrafficAppTest, OutOfRangeDemandThrows) {
  VmEnv env;
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  apps::DemandMatrix demands;
  demands[{0, 5}] = 1e6;
  EXPECT_THROW(apps::MatrixTrafficApp(env.sim, {&a}, demands), std::out_of_range);
}

TEST(BspAppTest, RingNeighborsShape) {
  const auto n2 = apps::BspNeighborApp::ring_neighbors(2);
  EXPECT_EQ(n2[0], (std::vector<std::size_t>{1}));
  const auto n4 = apps::BspNeighborApp::ring_neighbors(4);
  EXPECT_EQ(n4[0], (std::vector<std::size_t>{1, 3}));
}

TEST(BspAppTest, GridNeighborsShape) {
  const auto g = apps::BspNeighborApp::grid_neighbors(2, 2);
  // Corner of a 2x2 grid has exactly 2 neighbors.
  EXPECT_EQ(g[0].size(), 2u);
  EXPECT_EQ(g[3].size(), 2u);
}

TEST(BspAppTest, SuperstepsAdvanceInLockstep) {
  VmEnv env(4);
  VirtualMachine& a = env.vm(1, env.hosts[1]);
  VirtualMachine& b = env.vm(2, env.hosts[2]);
  VirtualMachine& c = env.vm(3, env.hosts[1]);
  apps::BspNeighborApp app(env.sim, {&a, &b, &c}, apps::BspNeighborApp::ring_neighbors(3),
                           20'000, millis(10));
  app.start();
  env.sim.run_until(seconds(10.0));
  app.stop();
  EXPECT_GT(app.supersteps_completed(), 5u);
  EXPECT_GT(app.messages_sent(), 3 * app.supersteps_completed());
}

}  // namespace
}  // namespace vw::vm
