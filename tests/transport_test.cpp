// Tests for the transport layer: TCP handshake, window growth, throughput,
// loss recovery, message boundaries; UDP datagrams; traffic generators.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/meter.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace vw::transport {
namespace {

struct Env {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId a, b;
  std::unique_ptr<TransportStack> stack;

  explicit Env(double bps = 100e6, SimTime delay = micros(100),
               std::int64_t queue = 256 * 1024) {
    a = net.add_host("a");
    b = net.add_host("b");
    net::LinkConfig cfg;
    cfg.bits_per_sec = bps;
    cfg.prop_delay = delay;
    cfg.queue_limit_bytes = queue;
    net.add_link(a, b, cfg);
    net.compute_routes();
    stack = std::make_unique<TransportStack>(net);
  }
};

TEST(TcpTest, HandshakeEstablishesBothEnds) {
  Env env;
  TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) { server = &c; });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  EXPECT_FALSE(client.established());
  env.sim.run();
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(client.established());
  EXPECT_TRUE(server->established());
}

TEST(TcpTest, EstablishedCallbackFires) {
  Env env;
  env.stack->tcp_listen(env.b, 80, [](TcpConnection&) {});
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  bool called = false;
  client.set_on_established([&] { called = true; });
  env.sim.run();
  EXPECT_TRUE(called);
}

TEST(TcpTest, ConnectToClosedPortNeverEstablishes) {
  Env env;
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 81);
  env.sim.run();
  EXPECT_FALSE(client.established());
  EXPECT_EQ(client.state(), TcpConnection::State::kClosed);  // SYN retries exhausted
}

TEST(TcpTest, TransfersAllBytes) {
  Env env;
  TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) { server = &c; });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(1'000'000);
  env.sim.run();
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), 1'000'000u);
  EXPECT_EQ(client.bytes_acked(), 1'000'000u);
}

TEST(TcpTest, MessageBoundariesPreserved) {
  Env env;
  std::vector<std::uint64_t> sizes;
  std::vector<int> tags;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) {
    c.set_on_message([&](std::uint64_t bytes, const std::any& tag) {
      sizes.push_back(bytes);
      if (const int* t = std::any_cast<int>(&tag)) tags.push_back(*t);
    });
  });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(2000, 1);
  client.send(50'000, 2);
  client.send(300, 3);
  env.sim.run();
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{2000, 50'000, 300}));
  EXPECT_EQ(tags, (std::vector<int>{1, 2, 3}));
}

TEST(TcpTest, ThroughputApproachesCapacity) {
  Env env(10e6, millis(5));
  TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) { server = &c; });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(8'000'000);  // 64 Mbit: ~7s at 10 Mbps
  env.sim.run_until(seconds(15.0));
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(server->bytes_received(), 8'000'000u);
  // Completion time within [100%, 143%] of the ideal 6.4 s (headers + slow
  // start + recovery overhead).
  SimTime done_at = -1;
  // bytes_received updates monotonically; find completion by re-running a
  // fresh transfer with a completion callback.
  Env env2(10e6, millis(5));
  TcpConnection* server2 = nullptr;
  env2.stack->tcp_listen(env2.b, 80, [&](TcpConnection& c) {
    server2 = &c;
    c.set_on_delivered([&](std::uint64_t total) {
      if (total >= 8'000'000u && done_at < 0) done_at = env2.sim.now();
    });
  });
  env2.stack->tcp_connect(env2.a, env2.b, 80).send(8'000'000);
  env2.sim.run_until(seconds(15.0));
  ASSERT_GT(done_at, 0);
  const double tput = 8'000'000.0 * 8.0 / to_seconds(done_at);
  EXPECT_GT(tput, 0.70 * 10e6);
  EXPECT_LT(tput, 10e6);
}

TEST(TcpTest, SlowStartGrowsWindowExponentially) {
  Env env(100e6, millis(10));
  env.stack->tcp_listen(env.b, 80, [](TcpConnection&) {});
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(10'000'000);
  const double initial_cwnd = client.cwnd();
  // After a few RTTs of slow start the window should have grown manyfold.
  env.sim.run_until(seconds(0.2));
  EXPECT_GT(client.cwnd(), 4 * initial_cwnd);
}

TEST(TcpTest, RecoversFromLossViaQueueOverflow) {
  // Tiny queue forces drops during slow start; the transfer must still finish.
  Env env(10e6, millis(5), 8 * 1024);
  TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) { server = &c; });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(2'000'000);
  env.sim.run_until(seconds(30.0));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), 2'000'000u);
  EXPECT_GT(client.retransmissions(), 0u);
}

TEST(TcpTest, SrttTracksPathRtt) {
  Env env(100e6, millis(20));
  env.stack->tcp_listen(env.b, 80, [](TcpConnection&) {});
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(100'000);
  env.sim.run();
  // Path RTT is ~40ms propagation plus serialization.
  EXPECT_GT(client.srtt(), millis(39));
  EXPECT_LT(client.srtt(), millis(60));
}

TEST(TcpTest, TwoConnectionsShareFairly) {
  Env env(10e6, millis(5));
  TcpConnection* s1 = nullptr;
  TcpConnection* s2 = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) { s1 = &c; });
  env.stack->tcp_listen(env.b, 81, [&](TcpConnection& c) { s2 = &c; });
  TcpConnection& c1 = env.stack->tcp_connect(env.a, env.b, 80);
  TcpConnection& c2 = env.stack->tcp_connect(env.a, env.b, 81);
  c1.send(20'000'000);
  c2.send(20'000'000);
  env.sim.run_until(seconds(10.0));
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  const double r1 = static_cast<double>(s1->bytes_received());
  const double r2 = static_cast<double>(s2->bytes_received());
  EXPECT_GT(r1, 0);
  EXPECT_GT(r2, 0);
  // Jain-fairness-ish: neither flow starves (at least 25% of the other).
  EXPECT_GT(std::min(r1, r2) / std::max(r1, r2), 0.25);
}

TEST(TcpTest, FullDuplexDataBothDirections) {
  // Both endpoints send simultaneously; each side's stream must arrive
  // completely and independently.
  Env env(50e6, millis(2));
  TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) {
    server = &c;
    c.send(300'000);  // server -> client stream
  });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(500'000);  // client -> server stream
  env.sim.run_until(seconds(10.0));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), 500'000u);
  EXPECT_EQ(client.bytes_received(), 300'000u);
}

TEST(TcpTest, ManySmallMessagesKeepOrderAndTags) {
  Env env;
  std::vector<int> tags;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) {
    c.set_on_message([&](std::uint64_t, const std::any& tag) {
      if (const int* t = std::any_cast<int>(&tag)) tags.push_back(*t);
    });
  });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  for (int i = 0; i < 200; ++i) client.send(100 + i, i);
  env.sim.run();
  ASSERT_EQ(tags.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
}

TEST(TcpTest, CloseStopsTraffic) {
  Env env;
  env.stack->tcp_listen(env.b, 80, [](TcpConnection&) {});
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  env.sim.run();
  client.send(1'000'000);
  client.close();
  env.sim.run();
  EXPECT_EQ(client.state(), TcpConnection::State::kClosed);
}

// Property sweep: bulk TCP must complete and achieve reasonable utilization
// across capacities and RTTs (BDP from ~2 KB to ~1.2 MB).
struct PathCase {
  double bps;
  SimTime delay;
};

class TcpPathSweepTest : public ::testing::TestWithParam<PathCase> {};

TEST_P(TcpPathSweepTest, BulkTransferUtilizesPath) {
  const PathCase pc = GetParam();
  Env env(pc.bps, pc.delay);
  // Size the transfer for ~4 seconds at line rate.
  const auto bytes = static_cast<std::uint64_t>(pc.bps * 4.0 / 8.0);
  TcpConnection* server = nullptr;
  SimTime done_at = -1;
  env.stack->tcp_listen(env.b, 80, [&](TcpConnection& c) {
    server = &c;
    c.set_on_delivered([&](std::uint64_t total) {
      if (total >= bytes && done_at < 0) done_at = env.sim.now();
    });
  });
  TcpConnection& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(bytes);
  env.sim.run_until(seconds(60.0));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), bytes);
  ASSERT_GT(done_at, 0);
  // Utilization: finished within 3x the ideal time (rwnd can cap long-fat
  // paths; 256 KB / 100 ms = ~21 Mb/s is the floor for the worst case here).
  const double ideal_s = static_cast<double>(bytes) * 8.0 / pc.bps;
  const double rwnd_s =
      static_cast<double>(bytes) / (256.0 * 1024.0) * 2.0 * to_seconds(pc.delay);
  EXPECT_LT(to_seconds(done_at), 3.0 * std::max(ideal_s, rwnd_s) + 5.0);
}

INSTANTIATE_TEST_SUITE_P(Paths, TcpPathSweepTest,
                         ::testing::Values(PathCase{1e6, millis(10)},
                                           PathCase{10e6, millis(1)},
                                           PathCase{100e6, millis(50)},
                                           PathCase{1e9, micros(100)}));

// --- UDP ---------------------------------------------------------------------

TEST(UdpTest, DatagramDelivery) {
  Env env;
  auto rx = env.stack->udp_bind(env.b, 5000);
  auto tx = env.stack->udp_bind(env.a, 5001);
  std::uint32_t got_bytes = 0;
  rx->set_on_receive([&](const net::Packet& p) { got_bytes = p.payload_bytes; });
  tx->send_to(env.b, 5000, 999);
  env.sim.run();
  EXPECT_EQ(got_bytes, 999u);
  EXPECT_EQ(tx->datagrams_sent(), 1u);
  EXPECT_EQ(rx->datagrams_received(), 1u);
}

TEST(UdpTest, UserDataRidesAlong) {
  Env env;
  auto rx = env.stack->udp_bind(env.b, 5000);
  auto tx = env.stack->udp_bind(env.a, 5001);
  std::string got;
  rx->set_on_receive([&](const net::Packet& p) {
    if (p.user_data) got = std::any_cast<std::string>(*p.user_data);
  });
  tx->send_to(env.b, 5000, 10, std::make_shared<std::any>(std::string("hello")));
  env.sim.run();
  EXPECT_EQ(got, "hello");
}

TEST(UdpTest, UnboundPortDrops) {
  Env env;
  auto tx = env.stack->udp_bind(env.a, 5001);
  tx->send_to(env.b, 4999, 100);
  env.sim.run();  // must not crash
  SUCCEED();
}

TEST(UdpTest, DoubleBindThrows) {
  Env env;
  auto s1 = env.stack->udp_bind(env.a, 6000);
  EXPECT_THROW(env.stack->udp_bind(env.a, 6000), std::invalid_argument);
}

// --- meters ---------------------------------------------------------------------

TEST(RateMeterTest, SeriesBuckets) {
  RateMeter m;
  m.add(millis(100), 1250);   // bucket 0
  m.add(millis(900), 1250);   // bucket 0
  m.add(millis(1500), 2500);  // bucket 1
  const auto series = m.series(seconds(1.0));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0].bps, 20'000, 1);  // 2500B*8/1s
  EXPECT_NEAR(series[1].bps, 20'000, 1);
  EXPECT_EQ(m.total_bytes(), 5000u);
}

TEST(RateMeterTest, AverageWindow) {
  RateMeter m;
  m.add(seconds(1.0), 1000);
  m.add(seconds(2.0), 1000);
  m.add(seconds(3.0), 1000);
  EXPECT_NEAR(m.average_bps(seconds(0.5), seconds(2.5)), 2000 * 8 / 2.0, 1);
}

TEST(RateMeterTest, BackwardsTimeThrows) {
  RateMeter m;
  m.add(seconds(2.0), 10);
  EXPECT_THROW(m.add(seconds(1.0), 10), std::invalid_argument);
}

// --- generators ---------------------------------------------------------------

TEST(CbrTest, HoldsConfiguredRate) {
  Env env;
  CbrUdpSource cbr(*env.stack, env.a, env.b, 7000, 5e6, 1000);
  cbr.start();
  env.sim.run_until(seconds(2.0));
  cbr.stop();
  // 5 Mbps for 2s = 10 Mbit = 1250 datagrams of 1000B.
  EXPECT_NEAR(static_cast<double>(cbr.datagrams_sent()), 1250.0, 13.0);
}

TEST(CbrTest, RateChangeTakesEffect) {
  Env env;
  CbrUdpSource cbr(*env.stack, env.a, env.b, 7000, 5e6, 1000);
  cbr.start();
  env.sim.run_until(seconds(1.0));
  const auto at_1s = cbr.datagrams_sent();
  cbr.set_rate_bps(10e6);
  env.sim.run_until(seconds(2.0));
  const auto second_leg = cbr.datagrams_sent() - at_1s;
  EXPECT_NEAR(static_cast<double>(second_leg), 2.0 * static_cast<double>(at_1s), 30.0);
}

TEST(CbrTest, ZeroRatePausesUntilRestored) {
  Env env;
  CbrUdpSource cbr(*env.stack, env.a, env.b, 7000, 5e6, 1000);
  cbr.start();
  env.sim.run_until(seconds(0.5));
  cbr.set_rate_bps(0);
  const auto paused_at = cbr.datagrams_sent();
  env.sim.run_until(seconds(1.5));
  EXPECT_EQ(cbr.datagrams_sent(), paused_at);
  cbr.set_rate_bps(5e6);
  env.sim.run_until(seconds(2.0));
  EXPECT_GT(cbr.datagrams_sent(), paused_at);
}

TEST(MessageSourceTest, SendsScriptedPhases) {
  Env env;
  std::vector<MessagePhase> phases{
      {.count = 5, .message_bytes = 2000, .spacing = millis(100), .pause_after = seconds(1.0)},
      {.count = 3, .message_bytes = 50'000, .spacing = millis(100), .pause_after = 0},
  };
  MessageSource src(*env.stack, env.a, env.b, 9000, phases, /*repeat=*/2);
  src.start();
  env.sim.run_until(seconds(20.0));
  EXPECT_TRUE(src.finished());
  EXPECT_EQ(src.messages_sent(), 16u);  // (5+3) x 2
  EXPECT_EQ(src.sink().messages_received(), 16u);
  EXPECT_EQ(src.sink().bytes_received(), 2u * (5u * 2000u + 3u * 50'000u));
}

TEST(OnOffTest, AlternatesBetweenSilenceAndBursts) {
  Env env(10e6, millis(2));
  OnOffTcpSource onoff(*env.stack, env.a, env.b, 9100, 4e6, seconds(0.5), seconds(0.5), Rng(99));
  onoff.start();
  env.sim.run_until(seconds(20.0));
  onoff.stop();
  const double achieved =
      static_cast<double>(onoff.sink().bytes_received()) * 8.0 / 20.0;
  // ~50% duty cycle at 4 Mbps peak: expect roughly 2 Mbps +/- generous slack.
  EXPECT_GT(achieved, 0.8e6);
  EXPECT_LT(achieved, 3.5e6);
}

TEST(BulkTest, SaturatesLink) {
  Env env(10e6, millis(5));
  BulkTcpSource bulk(*env.stack, env.a, env.b, 9200);
  bulk.start();
  env.sim.run_until(seconds(10.0));
  bulk.stop();
  const double tput = bulk.throughput_bps(seconds(2.0), seconds(10.0));
  EXPECT_GT(tput, 0.8 * 10e6);
  EXPECT_LT(tput, 10e6);
}

}  // namespace
}  // namespace vw::transport
