// Failure-injection and reservation tests: random loss, link down/up,
// TCP resilience under loss, and token-bucket priority reservations
// protecting a flow from best-effort congestion.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/reservation.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"

namespace vw::net {
namespace {

struct Env {
  sim::Simulator sim;
  Network net{sim};
  NodeId a, b, c, sw;
  std::unique_ptr<transport::TransportStack> stack;
  RngService rngs{777};

  explicit Env(double bps = 10e6) {
    a = net.add_host("a");
    b = net.add_host("b");
    c = net.add_host("c");
    sw = net.add_router("sw");
    LinkConfig cfg;
    cfg.bits_per_sec = bps;
    cfg.prop_delay = millis(1);
    net.add_link(a, sw, cfg);
    net.add_link(c, sw, cfg);
    net.add_link(sw, b, cfg);
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
  }

  Packet udp_packet(std::uint32_t bytes = 1000) {
    Packet p;
    p.flow = FlowKey{a, b, 1, 2, Protocol::kUdp};
    p.payload_bytes = bytes;
    return p;
  }
};

TEST(LossInjectionTest, DropsApproximatelyConfiguredFraction) {
  Env env;
  env.net.set_link_loss(env.sw, env.b, 0.3, env.rngs);
  int delivered = 0;
  env.net.set_host_stack(env.b, [&](Packet&&) { ++delivered; });
  for (int i = 0; i < 2000; ++i) {
    env.sim.schedule_at(i * micros(900), [&] { env.net.send(env.udp_packet(100)); });
  }
  env.sim.run();
  EXPECT_NEAR(delivered, 1400, 80);  // 70% of 2000
  EXPECT_NEAR(static_cast<double>(env.net.channel(env.sw, env.b).stats().packets_lost), 600, 80);
}

TEST(LossInjectionTest, ZeroLossDeliversEverything) {
  Env env;
  env.net.set_link_loss(env.sw, env.b, 0.0, env.rngs);
  int delivered = 0;
  env.net.set_host_stack(env.b, [&](Packet&&) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    env.sim.schedule_at(i * millis(1), [&] { env.net.send(env.udp_packet(100)); });
  }
  env.sim.run();
  EXPECT_EQ(delivered, 100);
}

TEST(LossInjectionTest, InvalidProbabilityThrows) {
  Env env;
  EXPECT_THROW(env.net.channel(env.a, env.sw).set_loss(1.5, env.rngs.stream("x")),
               std::invalid_argument);
}

TEST(LinkDownTest, DownLinkDropsEverything) {
  Env env;
  env.net.set_link_down(env.sw, env.b, true);
  int delivered = 0;
  env.net.set_host_stack(env.b, [&](Packet&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) env.net.send(env.udp_packet(100));
  env.sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(env.net.channel(env.sw, env.b).stats().packets_down_dropped, 10u);
}

TEST(LinkDownTest, RecoversAfterUp) {
  Env env;
  int delivered = 0;
  env.net.set_host_stack(env.b, [&](Packet&&) { ++delivered; });
  env.net.set_link_down(env.sw, env.b, true);
  env.net.send(env.udp_packet(100));
  env.sim.run();
  EXPECT_EQ(delivered, 0);
  env.net.set_link_down(env.sw, env.b, false);
  env.net.send(env.udp_packet(100));
  env.sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(LinkDownTest, TcpSurvivesTransientOutage) {
  Env env;
  transport::TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](transport::TcpConnection& conn) { server = &conn; });
  auto& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(1'000'000);
  env.sim.run_until(seconds(0.3));
  // 2-second outage mid-transfer.
  env.net.set_link_down(env.sw, env.b, true);
  env.sim.run_until(seconds(2.3));
  env.net.set_link_down(env.sw, env.b, false);
  env.sim.run_until(seconds(30.0));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), 1'000'000u);  // RTO recovery resumed it
  EXPECT_GT(client.retransmissions(), 0u);
}

// Property sweep: TCP completes a transfer under any moderate random loss.
class TcpLossSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweepTest, TransferCompletesUnderLoss) {
  const double loss = GetParam();
  Env env(20e6);
  env.net.set_link_loss(env.sw, env.b, loss, env.rngs);
  transport::TcpConnection* server = nullptr;
  env.stack->tcp_listen(env.b, 80, [&](transport::TcpConnection& conn) { server = &conn; });
  auto& client = env.stack->tcp_connect(env.a, env.b, 80);
  client.send(500'000);
  env.sim.run_until(seconds(120.0));
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->bytes_received(), 500'000u) << "loss " << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweepTest, ::testing::Values(0.001, 0.01, 0.05));

// --- reservations ------------------------------------------------------------

TEST(ReservationTest, ChannelAdmissionControl) {
  Env env(10e6);
  Channel& ch = env.net.channel(env.sw, env.b);
  const FlowKey f1{env.a, env.b, 1, 2, Protocol::kUdp};
  const FlowKey f2{env.c, env.b, 3, 4, Protocol::kUdp};
  EXPECT_TRUE(ch.add_reservation(f1, 6e6));
  EXPECT_FALSE(ch.add_reservation(f2, 5e6));  // 11 Mbps > 10 Mbps capacity
  EXPECT_TRUE(ch.add_reservation(f2, 4e6));
  EXPECT_DOUBLE_EQ(ch.reserved_bps(), 10e6);
  ch.remove_reservation(f1);
  EXPECT_DOUBLE_EQ(ch.reserved_bps(), 4e6);
}

TEST(ReservationTest, ReReservationReplacesRate) {
  Env env(10e6);
  Channel& ch = env.net.channel(env.sw, env.b);
  const FlowKey f{env.a, env.b, 1, 2, Protocol::kUdp};
  EXPECT_TRUE(ch.add_reservation(f, 6e6));
  EXPECT_TRUE(ch.add_reservation(f, 8e6));  // replaces, not adds
  EXPECT_DOUBLE_EQ(ch.reserved_bps(), 8e6);
}

TEST(ReservationTest, PathReservationAllOrNothing) {
  Env env(10e6);
  ReservationManager mgr(env.net);
  // Saturate the sw->b hop so the second path reservation must fail on it
  // and roll back the a->sw hop too.
  const FlowKey f1{env.a, env.b, 1, 2, Protocol::kUdp};
  const FlowKey f2{env.c, env.b, 3, 4, Protocol::kUdp};
  ASSERT_TRUE(mgr.reserve_path(f1, 8e6).has_value());
  EXPECT_FALSE(mgr.reserve_path(f2, 5e6).has_value());
  EXPECT_DOUBLE_EQ(env.net.channel(env.c, env.sw).reserved_bps(), 0.0);  // rolled back
  EXPECT_EQ(mgr.active(), 1u);
}

TEST(ReservationTest, ReleaseFreesAllHops) {
  Env env(10e6);
  ReservationManager mgr(env.net);
  const FlowKey f{env.a, env.b, 1, 2, Protocol::kUdp};
  const auto id = mgr.reserve_path(f, 8e6);
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(mgr.reserved_on(env.a, env.sw), 8e6);
  EXPECT_DOUBLE_EQ(mgr.reserved_on(env.sw, env.b), 8e6);
  mgr.release(*id);
  EXPECT_EQ(mgr.active(), 0u);
  EXPECT_DOUBLE_EQ(env.net.channel(env.sw, env.b).reserved_bps(), 0.0);
  mgr.release(*id);  // idempotent
}

TEST(ReservationTest, ReservedFlowProtectedFromCongestion) {
  // A 4 Mbps CBR flow with a 4 Mbps reservation keeps its rate while an
  // unreserved 9 Mbps flow floods the shared 10 Mbps bottleneck; without
  // the reservation it loses heavily.
  auto run_case = [](bool reserved) {
    Env env(10e6);
    ReservationManager mgr(env.net);
    transport::CbrUdpSource victim(*env.stack, env.a, env.b, 7000, 4e6, 1000);
    transport::CbrUdpSource flood(*env.stack, env.c, env.b, 7001, 9e6, 1000);
    if (reserved) {
      // The victim's UDP flow key: CbrUdpSource binds an ephemeral source
      // port; reserve by wildcarding through the actual first packet is
      // overkill here — reserve with the known 5-tuple.
      const FlowKey f{env.a, env.b, 49152, 7000, Protocol::kUdp};
      EXPECT_TRUE(mgr.reserve_path(f, 4.5e6).has_value());
    }
    victim.start();
    flood.start();
    std::uint64_t victim_bytes = 0;
    env.net.set_host_stack(env.b, [&](Packet&& p) {
      if (p.flow.src == env.a) victim_bytes += p.payload_bytes;
    });
    env.sim.run_until(seconds(10.0));
    return static_cast<double>(victim_bytes) * 8.0 / 10.0;
  };

  const double with_reservation = run_case(true);
  const double without = run_case(false);
  EXPECT_GT(with_reservation, 3.8e6);  // essentially full rate
  EXPECT_LT(without, 3.5e6);           // squeezed by the flood
}

TEST(ReservationTest, TokenBucketDowngradesExcessTraffic) {
  // A flow reserved at 2 Mb/s but sending 8 Mb/s: only ~2 Mb/s rides the
  // priority class; the excess is classified best effort.
  Env env(10e6);
  Channel& ch = env.net.channel(env.a, env.sw);
  const FlowKey f{env.a, env.b, 49152, 7000, Protocol::kUdp};
  ASSERT_TRUE(ch.add_reservation(f, 2e6, /*burst_bytes=*/4000));
  transport::CbrUdpSource src(*env.stack, env.a, env.b, 7000, 8e6, 1000);
  src.start();
  env.sim.run_until(seconds(10.0));
  const auto& stats = ch.stats();
  const double prio_fraction =
      static_cast<double>(stats.priority_packets) / static_cast<double>(stats.packets_sent);
  // ~2 of 8 Mb/s conforms -> about 25% priority.
  EXPECT_NEAR(prio_fraction, 0.25, 0.08);
}

TEST(ReservationTest, UnroutablePathRejected) {
  sim::Simulator sim;
  Network net(sim);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");  // disconnected
  net.compute_routes();
  ReservationManager mgr(net);
  EXPECT_FALSE(mgr.reserve_path(FlowKey{a, b, 1, 2, Protocol::kUdp}, 1e6).has_value());
}

TEST(ReservationTest, PriorityPacketsCounted) {
  Env env(10e6);
  Channel& ch = env.net.channel(env.a, env.sw);
  const FlowKey f{env.a, env.b, 1, 2, Protocol::kUdp};
  ASSERT_TRUE(ch.add_reservation(f, 5e6));
  env.net.send(env.udp_packet(1000));
  env.sim.run();
  EXPECT_EQ(ch.stats().priority_packets, 1u);
}

}  // namespace
}  // namespace vw::net
