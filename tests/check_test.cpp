#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"
#include "wren/train.hpp"

namespace vw::contracts {
namespace {

// Handler state has to be global because FailureHandler is a plain function
// pointer (no capture). Each test resets it via the Recorder fixture.
std::vector<ContractViolation> g_recorded;

void recording_handler(const ContractViolation& violation) {
  g_recorded.push_back(violation);
}

class Recorder {
 public:
  Recorder() : scoped_(&recording_handler) { g_recorded.clear(); }
  const std::vector<ContractViolation>& violations() const { return g_recorded; }

 private:
  ScopedContractHandler scoped_;
};

TEST(CheckTest, PassingContractsAreSilent) {
  Recorder rec;
  VW_REQUIRE(1 + 1 == 2);
  VW_ENSURE(true, "never formatted");
  VW_ASSERT(42 > 0, "nor this: ", 42);
  VW_AUDIT(true);
  EXPECT_TRUE(rec.violations().empty());
}

TEST(CheckTest, DefaultHandlerThrowsContractError) {
  try {
    VW_REQUIRE(false, "widget ", 7, " broke");
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_EQ(e.kind(), Kind::kRequire);
    EXPECT_EQ(e.line(), __LINE__ - 4);
    const std::string what = e.what();
    EXPECT_NE(what.find("VW_REQUIRE"), std::string::npos) << what;
    EXPECT_NE(what.find("false"), std::string::npos) << what;
    EXPECT_NE(what.find("widget 7 broke"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
}

TEST(CheckTest, ContractErrorIsCatchableAsStdLogicError) {
  // Subsystems converted from ad-hoc std::invalid_argument throws; existing
  // callers catching logic_error/invalid_argument must keep working.
  EXPECT_THROW(VW_REQUIRE(false), std::invalid_argument);
  EXPECT_THROW(VW_ENSURE(false), std::logic_error);
}

TEST(CheckTest, CustomHandlerReceivesViolationDetails) {
  Recorder rec;
  const int got = 3;
  VW_ENSURE(got == 4, "got=", got);
  ASSERT_EQ(rec.violations().size(), 1u);
  const ContractViolation& v = rec.violations().front();
  EXPECT_EQ(v.kind, Kind::kEnsure);
  EXPECT_EQ(v.condition, "got == 4");
  EXPECT_EQ(v.message, "got=3");
  EXPECT_NE(v.file.find("check_test.cpp"), std::string_view::npos);
  EXPECT_GT(v.line, 0);
}

TEST(CheckTest, ReturningHandlerSuppressesViolation) {
  Recorder rec;
  int after = 0;
  VW_ASSERT(false, "tolerated");
  after = 1;  // execution continues when the handler returns
  EXPECT_EQ(after, 1);
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_EQ(rec.violations().front().kind, Kind::kAssert);
}

TEST(CheckTest, ScopedHandlerRestoresPrevious) {
  FailureHandler before = failure_handler();
  {
    ScopedContractHandler scoped(&recording_handler);
    EXPECT_EQ(failure_handler(), &recording_handler);
  }
  EXPECT_EQ(failure_handler(), before);
}

TEST(CheckTest, MessageArgumentsOnlyEvaluatedOnFailure) {
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return std::string("costly");
  };
  VW_REQUIRE(true, expensive());
  EXPECT_EQ(calls, 0);
  Recorder rec;
  VW_REQUIRE(false, expensive());
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_EQ(rec.violations().front().message, "costly");
}

#if VW_ENABLE_AUDIT
TEST(CheckTest, AuditTierObeysRuntimeGate) {
  Recorder rec;
  int evaluated = 0;
  auto probe = [&evaluated] {
    ++evaluated;
    return false;
  };

  set_audit_enabled(false);
  VW_AUDIT(probe(), "skipped entirely");
  EXPECT_EQ(evaluated, 0);
  EXPECT_TRUE(rec.violations().empty());

  set_audit_enabled(true);
  VW_AUDIT(probe(), "now it fires");
  EXPECT_EQ(evaluated, 1);
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_EQ(rec.violations().front().kind, Kind::kAudit);
}
#endif

TEST(CheckTest, KindNamesMatchMacros) {
  EXPECT_EQ(kind_name(Kind::kRequire), "VW_REQUIRE");
  EXPECT_EQ(kind_name(Kind::kEnsure), "VW_ENSURE");
  EXPECT_EQ(kind_name(Kind::kAssert), "VW_ASSERT");
  EXPECT_EQ(kind_name(Kind::kAudit), "VW_AUDIT");
  EXPECT_EQ(kind_name(Kind::kUnreachable), "VW_UNREACHABLE");
}

TEST(CheckDeathTest, UnreachableAbortsEvenWithTolerantHandler) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedContractHandler scoped(&recording_handler);
        VW_UNREACHABLE("fell off the state machine");
      },
      "");
}

// --- deliberately violated subsystem invariants -----------------------------

TEST(CheckIntegrationTest, SimulatorRejectsSchedulingInThePast) {
  sim::Simulator sim;
  sim.schedule_at(millis(10), [] {});
  sim.run();
  EXPECT_EQ(sim.now(), millis(10));
  try {
    sim.schedule_at(millis(5), [] {});
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_EQ(e.kind(), Kind::kRequire);
  }
}

TEST(CheckIntegrationTest, SimulatorRejectsNullCallback) {
  sim::Simulator sim;
  EXPECT_THROW(sim.schedule_at(millis(1), sim::Simulator::Callback{}), ContractError);
}

TEST(CheckIntegrationTest, TrainExtractorRejectsForeignFlow) {
  const net::FlowKey flow{0, 1, 1000, 80, net::Protocol::kTcp};
  wren::TrainExtractor extractor(flow, wren::TrainParams{}, [](const wren::Train&) {});

  wren::PacketRecord record;
  record.flow = flow;
  record.flow.dst_port = 81;  // not the flow this extractor was built for
  record.timestamp = millis(1);
  record.payload_bytes = 1000;
  record.wire_bytes = 1040;
  EXPECT_THROW(extractor.add(record), ContractError);
}

TEST(CheckIntegrationTest, TrainExtractorRejectsTimeTravel) {
  const net::FlowKey flow{0, 1, 1000, 80, net::Protocol::kTcp};
  wren::TrainExtractor extractor(flow, wren::TrainParams{}, [](const wren::Train&) {});

  wren::PacketRecord record;
  record.flow = flow;
  record.payload_bytes = 1000;
  record.wire_bytes = 1040;
  record.timestamp = millis(2);
  extractor.add(record);
  record.timestamp = millis(1);  // regresses: trace records arrive in order
  EXPECT_THROW(extractor.add(record), ContractError);
}

}  // namespace
}  // namespace vw::contracts
