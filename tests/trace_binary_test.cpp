// Tests for the vw.trace.v1 binary capture datapath: the SPSC ring, the
// binary codec (incl. corrupt-input handling), the TraceWriter thread, the
// capture-session wiring, the corpus operations (merge/filter/match), and
// the binary -> offline-replay differential.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "util/spsc_ring.hpp"
#include "wren/capture.hpp"
#include "wren/offline.hpp"
#include "wren/trace.hpp"
#include "wren/trace_binary.hpp"
#include "wren/trace_writer.hpp"

namespace vw::wren {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

PacketRecord sample_record() {
  PacketRecord r;
  r.timestamp = millis(123);
  r.direction = net::TapDirection::kOutgoing;
  r.flow = net::FlowKey{3, 7, 1000, 2000, net::Protocol::kTcp};
  r.payload_bytes = 1460;
  r.wire_bytes = 1500;
  r.seq = 14600;
  r.ack = 0;
  return r;
}

bool records_equal(const PacketRecord& a, const PacketRecord& b) {
  return a.timestamp == b.timestamp && a.direction == b.direction && a.flow == b.flow &&
         a.payload_bytes == b.payload_bytes && a.wire_bytes == b.wire_bytes && a.seq == b.seq &&
         a.ack == b.ack && a.is_ack == b.is_ack && a.syn == b.syn;
}

// --- SpscRing ----------------------------------------------------------------

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));  // full
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));  // empty
}

TEST(SpscRingTest, DropOldestKeepsNewestWindow) {
  // The producer-side overflow policy: on full, pop-and-discard the oldest,
  // then push. The ring must end up holding the newest `capacity` values.
  SpscRing<int> ring(4);
  int discarded = 0;
  for (int i = 0; i < 100; ++i) {
    while (!ring.try_push(int(i))) {
      int victim;
      if (ring.try_pop(victim)) ++discarded;
    }
  }
  EXPECT_EQ(discarded, 96);
  int v = -1;
  for (int expect = 96; expect < 100; ++expect) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRingTest, WrapsManyGenerations) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t(i)));
    ASSERT_TRUE(ring.try_pop(v));
    ASSERT_EQ(v, i);
  }
}

// Producer/consumer stress: covered by the TSan CI job. The producer uses
// the real capture-path overflow loop (drop-oldest), so the pop path is
// exercised concurrently from both threads — exactly the contention the
// sequence stamps exist for.
TEST(SpscRingTest, ConcurrentProducerConsumerStress) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200'000;
  std::atomic<std::uint64_t> dropped{0};

  std::thread consumer([&] {
    std::uint64_t last = 0;
    std::uint64_t popped = 0;
    std::uint64_t v;
    while (popped + dropped.load(std::memory_order_acquire) < kCount) {
      if (ring.try_pop(v)) {
        // Values must come out in increasing order even with drops — the
        // ring never reorders, it only loses a prefix of the backlog.
        ASSERT_GE(v + 1, last + 1);
        last = v + 1;
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(std::uint64_t(i))) {
      std::uint64_t victim;
      if (ring.try_pop(victim)) dropped.fetch_add(1, std::memory_order_release);
    }
  }
  consumer.join();
  std::uint64_t v;
  while (ring.try_pop(v)) {
  }  // leftover accounting already settled by the join condition
}

// --- binary codec ------------------------------------------------------------

TEST(TraceBinaryTest, RecordRoundTrip) {
  PacketRecord r = sample_record();
  r.is_ack = true;
  r.syn = true;
  r.direction = net::TapDirection::kIncoming;
  r.ack = 0x1122334455667788ull;
  const auto buf = encode_record(r);
  const PacketRecord back = decode_record(buf.data());
  EXPECT_TRUE(records_equal(r, back));
  EXPECT_EQ(back.flow.proto, net::Protocol::kTcp);  // the format is TCP-only
}

TEST(TraceBinaryTest, HeaderRoundTrip) {
  TraceFileHeader h;
  h.host = 42;
  h.shard = 3;
  h.record_count = 7;
  h.dropped = 2;
  const auto buf = encode_header(h);
  const TraceFileHeader back = decode_header(buf.data());
  EXPECT_EQ(back.host, 42u);
  EXPECT_EQ(back.shard, 3u);
  EXPECT_EQ(back.record_count, 7u);
  EXPECT_EQ(back.dropped, 2u);
}

TEST(TraceBinaryTest, FileRoundTrip) {
  std::vector<PacketRecord> records{sample_record()};
  PacketRecord second = sample_record();
  second.timestamp = millis(124);
  second.seq = 16060;
  records.push_back(second);

  TraceFileHeader h;
  h.host = 3;
  h.shard = 1;
  h.dropped = 5;
  std::stringstream ss;
  write_trace_binary(ss, h, records);
  EXPECT_EQ(ss.str().size(), kTraceHeaderSize + records.size() * kTraceRecordSize);

  const BinaryTrace back = read_trace_binary(ss);
  EXPECT_EQ(back.header.host, 3u);
  EXPECT_EQ(back.header.shard, 1u);
  EXPECT_EQ(back.header.dropped, 5u);
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_TRUE(records_equal(back.records[0], records[0]));
  EXPECT_TRUE(records_equal(back.records[1], records[1]));
}

TEST(TraceBinaryTest, MatchesTextFormatRoundTrip) {
  // The binary codec and the text archive must agree record-for-record.
  std::vector<PacketRecord> records;
  for (int i = 0; i < 50; ++i) {
    PacketRecord r = sample_record();
    r.timestamp = millis(100 + i);
    r.seq = 1460ull * static_cast<std::uint64_t>(i);
    if (i % 7 == 0) {
      r.direction = net::TapDirection::kIncoming;
      r.is_ack = true;
      r.payload_bytes = 0;
      r.flow = r.flow.reversed();
    }
    records.push_back(r);
  }

  std::stringstream text;
  write_trace(text, records);
  const auto via_text = read_trace(text);

  std::stringstream binary;
  write_trace_binary(binary, TraceFileHeader{}, records);
  const auto via_binary = read_trace_binary(binary).records;

  ASSERT_EQ(via_text.size(), via_binary.size());
  for (std::size_t i = 0; i < via_text.size(); ++i) {
    EXPECT_TRUE(records_equal(via_text[i], via_binary[i])) << "record " << i;
  }
}

void expect_parse_error(const std::string& bytes, const char* needle) {
  std::stringstream ss(bytes);
  try {
    read_trace_binary(ss);
    FAIL() << "expected parse error mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(TraceBinaryTest, RejectsTruncatedHeader) {
  expect_parse_error(std::string(10, '\0'), "header");
}

TEST(TraceBinaryTest, RejectsBadMagic) {
  std::string bytes(kTraceHeaderSize, '\0');
  bytes.replace(0, 8, "NOTTRACE");
  expect_parse_error(bytes, "magic");
}

TEST(TraceBinaryTest, RejectsFutureVersion) {
  auto buf = encode_header(TraceFileHeader{});
  buf[8] = 99;  // version u32 LE at offset 8
  expect_parse_error(std::string(buf.begin(), buf.end()), "version");
}

TEST(TraceBinaryTest, RejectsWrongRecordSize) {
  auto buf = encode_header(TraceFileHeader{});
  buf[12] = 47;  // record_size u32 LE at offset 12
  expect_parse_error(std::string(buf.begin(), buf.end()), "record size");
}

TEST(TraceBinaryTest, RejectsTruncatedRecord) {
  TraceFileHeader h;
  std::stringstream ss;
  write_trace_binary(ss, h, {sample_record()});
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 1);
  expect_parse_error(bytes, "truncated");
}

TEST(TraceBinaryTest, RejectsRecordCountMismatch) {
  std::stringstream ss;
  write_trace_binary(ss, TraceFileHeader{}, {sample_record(), sample_record()});
  std::string bytes = ss.str();
  // Claim 3 records in the header while the body carries 2.
  bytes[24] = 3;
  expect_parse_error(bytes, "count");
}

TEST(TraceBinaryTest, ReadFileReportsMissingPath) {
  EXPECT_THROW(read_trace_binary_file(temp_path("does-not-exist.vwtrace")),
               std::runtime_error);
}

// --- text archive hardening (satellite) --------------------------------------

TEST(TraceArchiveHardeningTest, RejectsTrailingGarbageAfterRecord) {
  std::stringstream out;
  write_trace(out, {sample_record()});
  std::string text = out.str();
  ASSERT_EQ(text.back(), '\n');
  text.insert(text.size() - 1, " surplus-token");
  std::stringstream in(text);
  EXPECT_THROW(read_trace(in), std::runtime_error);
}

// --- TraceFacility gauge (satellite) -----------------------------------------

TEST(TraceFacilityGaugeTest, BufferedGaugeTracksRingOccupancy) {
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId a = net.add_host("a");
  const net::NodeId b = net.add_host("b");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 100e6;
  cfg.prop_delay = micros(50);
  net.add_link(a, b, cfg);
  net.compute_routes();
  transport::TransportStack stack(net);

  TraceFacility trace(net, a);
  obs::MetricsRegistry reg;
  trace.set_obs(obs::Scope{&reg, nullptr});
  obs::Gauge& buffered = reg.gauge("wren.trace.buffered");

  std::vector<transport::MessagePhase> phases{
      {.count = 5, .message_bytes = 50'000, .spacing = millis(10), .pause_after = 0}};
  transport::MessageSource app(stack, a, b, 9000, phases);
  app.start();
  sim.run_until(seconds(2.0));

  EXPECT_GT(trace.buffered(), 0u);
  EXPECT_EQ(buffered.value(), static_cast<double>(trace.buffered()));
  const auto records = trace.collect();
  EXPECT_GT(records.size(), 0u);
  EXPECT_EQ(buffered.value(), 0.0);  // drained
}

// --- TraceWriter end-to-end --------------------------------------------------

struct CaptureEnv {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId sender, receiver, sw;
  std::unique_ptr<transport::TransportStack> stack;

  CaptureEnv() {
    sender = net.add_host("s");
    receiver = net.add_host("r");
    sw = net.add_router("sw");
    net::LinkConfig cfg;
    cfg.bits_per_sec = 100e6;
    cfg.prop_delay = micros(50);
    net.add_link(sender, sw, cfg);
    net.add_link(sw, receiver, cfg);
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
  }

  void run_transfer(double run_s = 3.0) {
    std::vector<transport::MessagePhase> phases{
        {.count = 20, .message_bytes = 100'000, .spacing = millis(50), .pause_after = 0}};
    transport::MessageSource app(*stack, sender, receiver, 9000, phases);
    app.start();
    sim.run_until(seconds(run_s));
  }
};

TEST(TraceWriterTest, CapturesExactlyWhatTheFacilitySees) {
  CaptureEnv env;
  const std::string path = temp_path("writer-e2e.vwtrace");
  TraceFacility facility(env.net, env.sender, 1 << 20);
  TraceWriterParams params;
  params.overflow = TraceWriterParams::Overflow::kBlock;
  params.shard = 7;
  TraceWriter writer(env.net, env.sender, path, params);

  obs::MetricsRegistry reg;
  writer.set_obs(obs::Scope{&reg, nullptr});

  env.run_transfer();
  writer.finish();
  EXPECT_TRUE(writer.finished());
  EXPECT_EQ(writer.records_dropped(), 0u);
  EXPECT_EQ(writer.records_written(), writer.records_captured());

  const auto expected = facility.collect();
  const BinaryTrace shard = read_trace_binary_file(path);
  EXPECT_EQ(shard.header.host, env.sender);
  EXPECT_EQ(shard.header.shard, 7u);
  EXPECT_EQ(shard.header.dropped, 0u);
  EXPECT_EQ(shard.header.record_count, shard.records.size());
  ASSERT_EQ(shard.records.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(records_equal(shard.records[i], expected[i])) << "record " << i;
  }

  // Telemetry: the writer pipeline accounted every record and byte.
  const obs::MetricsSnapshot snap = reg.snapshot("wren.trace.writer");
  ASSERT_EQ(snap.metrics.size(), 5u);
  EXPECT_EQ(reg.counter("wren.trace.writer.captured").value(), expected.size());
  EXPECT_EQ(reg.counter("wren.trace.writer.written").value(), expected.size());
  EXPECT_EQ(reg.counter("wren.trace.writer.dropped").value(), 0u);
  EXPECT_EQ(reg.counter("wren.trace.writer.bytes").value(),
            expected.size() * kTraceRecordSize);
}

TEST(TraceWriterTest, BlockModeIsLosslessEvenWithTinyRing) {
  CaptureEnv env;
  const std::string path = temp_path("writer-tiny.vwtrace");
  TraceFacility facility(env.net, env.sender, 1 << 20);
  TraceWriterParams params;
  params.ring_capacity = 4;  // writer thread is forced to lag
  params.batch = 2;
  params.overflow = TraceWriterParams::Overflow::kBlock;
  TraceWriter writer(env.net, env.sender, path, params);
  env.run_transfer();
  writer.finish();

  EXPECT_EQ(writer.records_dropped(), 0u);
  const BinaryTrace shard = read_trace_binary_file(path);
  EXPECT_EQ(shard.records.size(), facility.collect().size());
}

TEST(TraceWriterTest, FinishIsIdempotentAndDestructorSafe) {
  CaptureEnv env;
  const std::string path = temp_path("writer-idem.vwtrace");
  {
    TraceWriter writer(env.net, env.sender, path);
    env.run_transfer(1.0);
    writer.finish();
    writer.finish();  // no-op
  }                   // destructor runs finish() again
  EXPECT_NO_THROW(read_trace_binary_file(path));
}

TEST(TraceWriterTest, ThrowsWhenFileCannotBeCreated) {
  CaptureEnv env;
  EXPECT_THROW(TraceWriter(env.net, env.sender, "/nonexistent-dir/x/y.vwtrace"),
               std::runtime_error);
}

TEST(CaptureSessionTest, OneShardPerHostMergesTimeOrdered) {
  CaptureEnv env;
  const std::string dir = temp_path("capture-session");
  TraceWriterParams params;
  params.overflow = TraceWriterParams::Overflow::kBlock;
  CaptureSession session(env.net, dir, params);
  session.add_host(env.sender);
  session.add_host(env.receiver);
  env.run_transfer();
  session.finish();

  ASSERT_EQ(session.writers().size(), 2u);
  EXPECT_GT(session.records_captured(), 0u);
  EXPECT_EQ(session.records_dropped(), 0u);

  std::vector<std::vector<PacketRecord>> shards;
  for (const auto& w : session.writers()) {
    const BinaryTrace t = read_trace_binary_file(w->path());
    EXPECT_EQ(t.header.host, w->host());
    shards.push_back(t.records);
  }
  EXPECT_EQ(shards[0].size() + shards[1].size(), session.records_captured());

  const auto merged = merge_traces(shards);
  ASSERT_EQ(merged.size(), session.records_captured());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].timestamp, merged[i].timestamp);
  }
}

// --- corpus operations -------------------------------------------------------

TEST(TraceFilterTest, FieldsComposeAndUnsetMatchesAll) {
  PacketRecord r = sample_record();  // src 3 -> dst 7, ports 1000 -> 2000
  EXPECT_TRUE(TraceFilter{}.matches(r));

  TraceFilter f;
  f.src = 3;
  f.dst = 7;
  f.dst_port = 2000;
  EXPECT_TRUE(f.matches(r));
  f.src_port = 1001;
  EXPECT_FALSE(f.matches(r));

  TraceFilter window;
  window.from = millis(123);
  window.to = millis(123);
  EXPECT_TRUE(window.matches(r));  // inclusive on both ends
  window.to = millis(122);
  window.from = millis(0);
  EXPECT_FALSE(window.matches(r));

  TraceFilter useful;
  useful.useful_only = true;
  EXPECT_TRUE(useful.matches(r));  // outgoing data
  PacketRecord in_data = r;
  in_data.direction = net::TapDirection::kIncoming;
  EXPECT_FALSE(useful.matches(in_data));
}

TEST(MatchTracesTest, PairsFramesAndCountsLoss) {
  // Hand-built two-point capture: three data frames leave A; the second is
  // lost; the first is retransmitted (same seq/payload) and both copies
  // arrive — FIFO pairing must map copy 1 -> arrival 1, copy 2 -> arrival 2.
  const net::FlowKey flow{0, 1, 1000, 2000, net::Protocol::kTcp};
  auto frame = [&](SimTime t, std::uint64_t seq, net::TapDirection dir) {
    PacketRecord r;
    r.timestamp = t;
    r.direction = dir;
    r.flow = flow;
    r.payload_bytes = 1460;
    r.wire_bytes = 1500;
    r.seq = seq;
    return r;
  };
  std::vector<PacketRecord> from{
      frame(millis(1), 0, net::TapDirection::kOutgoing),
      frame(millis(2), 1460, net::TapDirection::kOutgoing),  // lost
      frame(millis(3), 0, net::TapDirection::kOutgoing),     // retransmission
  };
  std::vector<PacketRecord> to{
      frame(millis(1) + micros(200), 0, net::TapDirection::kIncoming),
      frame(millis(3) + micros(300), 0, net::TapDirection::kIncoming),
  };

  const MatchResult result = match_traces(from, to);
  ASSERT_EQ(result.matched.size(), 2u);
  EXPECT_EQ(result.unmatched_from, 1u);
  EXPECT_EQ(result.unmatched_to, 0u);
  EXPECT_EQ(result.matched[0].latency(), micros(200));
  EXPECT_EQ(result.matched[1].latency(), micros(300));
  EXPECT_EQ(result.min_latency(), micros(200));
  EXPECT_EQ(result.max_latency(), micros(300));
  EXPECT_EQ(result.latency_quantile(0.5), micros(200));
  EXPECT_DOUBLE_EQ(result.mean_latency_ns(), (micros(200) + micros(300)) / 2.0);
}

TEST(MatchTracesTest, SimulatedTwoPointLatencyRespectsPropagation) {
  // Capture at both ends of sender -> switch -> receiver (50 us per hop)
  // and match: every frame's NIC-departure -> NIC-delivery latency must be
  // at least the two-hop propagation delay plus downstream serialization.
  CaptureEnv env;
  const std::string from_path = temp_path("match-from.vwtrace");
  const std::string to_path = temp_path("match-to.vwtrace");
  TraceWriterParams params;
  params.overflow = TraceWriterParams::Overflow::kBlock;
  TraceWriter at_sender(env.net, env.sender, from_path, params);
  TraceWriter at_receiver(env.net, env.receiver, to_path, params);
  env.run_transfer();
  at_sender.finish();
  at_receiver.finish();

  const BinaryTrace from = read_trace_binary_file(from_path);
  const BinaryTrace to = read_trace_binary_file(to_path);
  const MatchResult result = match_traces(from.records, to.records);
  ASSERT_GT(result.matched.size(), 100u);
  EXPECT_EQ(result.unmatched_from, 0u);  // lossless path, every frame arrives
  // 2 x 50 us propagation + >= 120 ns serialization of the second hop.
  EXPECT_GE(result.min_latency(), micros(100));
  EXPECT_LT(result.min_latency(), millis(10));
  EXPECT_LE(result.min_latency(), result.latency_quantile(0.5));
  EXPECT_LE(result.latency_quantile(0.5), result.max_latency());
}

// --- the differential: binary capture replays to identical estimates ---------

TEST(BinaryReplayDifferentialTest, EstimatesBitIdenticalToInProcessAnalysis) {
  CaptureEnv env;
  const std::string path = temp_path("differential.vwtrace");
  TraceFacility facility(env.net, env.sender, 1 << 20);
  TraceWriterParams params;
  params.overflow = TraceWriterParams::Overflow::kBlock;
  TraceWriter writer(env.net, env.sender, path, params);

  std::vector<transport::MessagePhase> phases{
      {.count = 60, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(*env.stack, env.sender, env.receiver, 9000, phases);
  app.start();
  env.sim.run_until(seconds(7.0));
  writer.finish();

  const OfflineResult direct = analyze_offline(filter_useful(facility.collect()));
  const BinaryTrace shard = read_trace_binary_file(path);
  const OfflineResult replayed = analyze_offline(filter_useful(shard.records));

  ASSERT_GT(direct.observations.size(), 10u);
  ASSERT_EQ(replayed.observations.size(), direct.observations.size());
  ASSERT_EQ(replayed.estimates_bps.size(), direct.estimates_bps.size());
  for (std::size_t i = 0; i < direct.estimates_bps.size(); ++i) {
    EXPECT_EQ(replayed.estimates_bps[i].first, direct.estimates_bps[i].first);
    // Bit-identical, not EXPECT_NEAR: same records, same SIC arithmetic.
    EXPECT_EQ(replayed.estimates_bps[i].second, direct.estimates_bps[i].second);
  }
}

}  // namespace
}  // namespace vw::wren
