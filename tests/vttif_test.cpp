// Tests for VTTIF: traffic matrices, topology inference (normalization and
// pruning), the local accumulate/push half, the global sliding-window
// aggregation, and the damped change detection.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/stack.hpp"
#include "vnet/overlay.hpp"
#include "vttif/classify.hpp"
#include "vttif/global.hpp"
#include "vttif/local.hpp"
#include "vttif/matrix.hpp"

namespace vw::vttif {
namespace {

TEST(TrafficMatrixTest, AddAndQuery) {
  TrafficMatrix m;
  m.add(1, 2, 100);
  m.add(1, 2, 50);
  m.add(2, 1, 10);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 150);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 10);
  EXPECT_DOUBLE_EQ(m.at(3, 4), 0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.total(), 160);
  EXPECT_DOUBLE_EQ(m.max_entry(), 150);
}

TEST(TrafficMatrixTest, ZeroAddIsIgnored) {
  TrafficMatrix m;
  m.add(1, 2, 0);
  EXPECT_TRUE(m.empty());
}

TEST(TrafficMatrixTest, MergeAndScale) {
  TrafficMatrix a, b;
  a.add(1, 2, 100);
  b.add(1, 2, 50);
  b.add(3, 4, 10);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 150);
  EXPECT_DOUBLE_EQ(a.at(3, 4), 10);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.at(1, 2), 75);
}

TEST(InferTopologyTest, PrunesWeakEdges) {
  TrafficMatrix m;
  m.add(1, 2, 1000);
  m.add(2, 3, 500);
  m.add(3, 4, 50);  // 5% of max: below the 10% cutoff
  const Topology topo = infer_topology(m, 0.1);
  ASSERT_EQ(topo.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(topo.edges[0].normalized, 1.0);
  EXPECT_DOUBLE_EQ(topo.edges[1].normalized, 0.5);
}

TEST(InferTopologyTest, EmptyMatrixYieldsEmptyTopology) {
  EXPECT_TRUE(infer_topology(TrafficMatrix{}, 0.1).edges.empty());
}

TEST(TopologyTest, SameShapeComparesEdgeSets) {
  TrafficMatrix m1, m2;
  m1.add(1, 2, 100);
  m2.add(1, 2, 70);  // same edge, different rate
  EXPECT_TRUE(infer_topology(m1, 0.1).same_shape(infer_topology(m2, 0.1)));
  m2.add(2, 3, 60);
  EXPECT_FALSE(infer_topology(m1, 0.1).same_shape(infer_topology(m2, 0.1)));
}

TEST(TopologyTest, MaxRelativeChange) {
  TrafficMatrix m1, m2;
  m1.add(1, 2, 100);
  m2.add(1, 2, 150);
  const double change =
      infer_topology(m2, 0.1).max_relative_change(infer_topology(m1, 0.1));
  EXPECT_NEAR(change, 0.5, 1e-9);
}

struct VttifEnv {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId host;
  std::unique_ptr<transport::TransportStack> stack;
  std::unique_ptr<vnet::Overlay> overlay;
  vnet::VnetDaemon* daemon = nullptr;

  VttifEnv() {
    host = net.add_host("h");
    const net::NodeId other = net.add_host("other");
    net.add_link(host, other, {});
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
    overlay = std::make_unique<vnet::Overlay>(*stack);
    daemon = &overlay->create_daemon(host, "d", /*is_proxy=*/true);
    daemon->attach_vm(1, [](vnet::FramePtr) {});
    daemon->attach_vm(2, [](vnet::FramePtr) {});
  }

  void inject(vnet::MacAddress src, vnet::MacAddress dst, std::uint32_t bytes) {
    vnet::EthernetFrame f;
    f.src_mac = src;
    f.dst_mac = dst;
    f.payload_bytes = bytes;
    daemon->inject_from_vm(f);
  }
};

TEST(LocalVttifTest, AccumulatesBitsAndPushesPeriodically) {
  VttifEnv env;
  std::vector<TrafficMatrix> pushes;
  LocalVttif local(env.sim, *env.daemon, seconds(1.0),
                   [&](net::NodeId, const TrafficMatrix& m) { pushes.push_back(m); });
  env.inject(1, 2, 1000 - vnet::kEthernetHeaderBytes);  // 1000B on the virtual wire
  env.inject(1, 2, 1000 - vnet::kEthernetHeaderBytes);
  env.sim.run_until(seconds(1.5));
  ASSERT_EQ(pushes.size(), 1u);
  EXPECT_DOUBLE_EQ(pushes[0].at(1, 2), 2 * 1000 * 8.0);
}

TEST(LocalVttifTest, NoPushWhenIdle) {
  VttifEnv env;
  int pushes = 0;
  LocalVttif local(env.sim, *env.daemon, seconds(1.0),
                   [&](net::NodeId, const TrafficMatrix&) { ++pushes; });
  env.sim.run_until(seconds(5.0));
  EXPECT_EQ(pushes, 0);
}

TEST(GlobalVttifTest, SlidingWindowRates) {
  sim::Simulator sim;
  GlobalVttifParams params;
  params.aggregation_period = seconds(1.0);
  params.window_slots = 4;
  GlobalVttif global(sim, params);

  // 8000 bits/sec for 4 seconds.
  for (int t = 0; t < 4; ++t) {
    sim.schedule_at(millis(100) + seconds(static_cast<double>(t)), [&global] {
      TrafficMatrix m;
      m.add(1, 2, 8000);
      global.update_from(0, m);
    });
  }
  sim.run_until(seconds(4.5));
  EXPECT_NEAR(global.smoothed_rate_matrix().at(1, 2), 8000, 1);
}

TEST(GlobalVttifTest, LowPassDampsBursts) {
  sim::Simulator sim;
  GlobalVttifParams params;
  params.aggregation_period = seconds(1.0);
  params.window_slots = 10;
  GlobalVttif global(sim, params);
  // One slot's worth of traffic, then silence: the windowed rate is the
  // burst divided by the whole window.
  sim.schedule_at(millis(100), [&global] {
    TrafficMatrix m;
    m.add(1, 2, 100'000);
    global.update_from(0, m);
  });
  sim.run_until(seconds(10.5));
  EXPECT_NEAR(global.smoothed_rate_matrix().at(1, 2), 10'000, 1);
}

TEST(GlobalVttifTest, ChangeCallbackFiresOnFirstTopology) {
  sim::Simulator sim;
  GlobalVttif global(sim);
  int changes = 0;
  global.set_on_change([&](const Topology&) { ++changes; });
  sim.schedule_at(millis(100), [&global] {
    TrafficMatrix m;
    m.add(1, 2, 1000);
    global.update_from(0, m);
  });
  sim.run_until(seconds(2.0));
  EXPECT_EQ(changes, 1);
}

TEST(GlobalVttifTest, CooldownPreventsOscillation) {
  sim::Simulator sim;
  GlobalVttifParams params;
  params.aggregation_period = seconds(1.0);
  params.window_slots = 2;
  params.reaction_cooldown = seconds(60.0);  // effectively once
  GlobalVttif global(sim, params);
  int changes = 0;
  global.set_on_change([&](const Topology&) { ++changes; });
  // Alternate between two very different patterns every second.
  for (int t = 0; t < 20; ++t) {
    sim.schedule_at(millis(100) + seconds(static_cast<double>(t)), [&global, t] {
      TrafficMatrix m;
      if (t % 2 == 0) {
        m.add(1, 2, 1'000'000);
      } else {
        m.add(3, 4, 1'000'000);
      }
      global.update_from(0, m);
    });
  }
  sim.run_until(seconds(21.0));
  EXPECT_EQ(changes, 1);  // damped: no oscillating adaptation triggers
  EXPECT_EQ(global.changes_reported(), 1u);
}

TEST(GlobalVttifTest, StablePatternReportsOnce) {
  sim::Simulator sim;
  GlobalVttifParams params;
  params.reaction_cooldown = seconds(2.0);
  GlobalVttif global(sim, params);
  int changes = 0;
  global.set_on_change([&](const Topology&) { ++changes; });
  for (int t = 0; t < 15; ++t) {
    sim.schedule_at(millis(100) + seconds(static_cast<double>(t)), [&global] {
      TrafficMatrix m;
      m.add(1, 2, 1'000'000);
      global.update_from(0, m);
    });
  }
  sim.run_until(seconds(16.0));
  EXPECT_EQ(changes, 1);  // steady state: one report, no re-triggers
}

TEST(GlobalVttifTest, EndToEndWithLocalHalf) {
  // LocalVttif on a daemon feeding GlobalVttif: the inferred topology must
  // reflect the injected pattern.
  VttifEnv env;
  GlobalVttifParams params;
  params.aggregation_period = seconds(1.0);
  params.window_slots = 3;
  GlobalVttif global(env.sim, params);
  LocalVttif local(env.sim, *env.daemon, seconds(1.0),
                   [&](net::NodeId reporter, const TrafficMatrix& m) {
                     global.update_from(reporter, m);
                   });
  // Strong 1->2, weak 2->1.
  for (int t = 0; t < 30; ++t) {
    env.sim.schedule_at(millis(100 * t), [&env, t] {
      env.inject(1, 2, 10'000);
      if (t % 10 == 0) env.inject(2, 1, 200);
    });
  }
  env.sim.run_until(seconds(4.0));
  const Topology topo = global.current_topology();
  ASSERT_GE(topo.edges.size(), 1u);
  EXPECT_EQ(topo.edges[0].src, 1u);
  EXPECT_EQ(topo.edges[0].dst, 2u);
  EXPECT_DOUBLE_EQ(topo.edges[0].normalized, 1.0);
}

// --- topology classification ---------------------------------------------------

namespace classify_helpers {

Topology from_edges(const std::vector<std::pair<vnet::MacAddress, vnet::MacAddress>>& edges) {
  TrafficMatrix m;
  for (const auto& [src, dst] : edges) m.add(src, dst, 1000);
  return infer_topology(m, 0.1);
}

}  // namespace classify_helpers

using classify_helpers::from_edges;

TEST(ClassifyTest, AllToAll) {
  std::vector<std::pair<vnet::MacAddress, vnet::MacAddress>> edges;
  for (vnet::MacAddress a = 1; a <= 4; ++a) {
    for (vnet::MacAddress b = 1; b <= 4; ++b) {
      if (a != b) edges.push_back({a, b});
    }
  }
  EXPECT_EQ(classify_topology(from_edges(edges)).kind, PatternKind::kAllToAll);
}

TEST(ClassifyTest, BidirectionalRing) {
  std::vector<std::pair<vnet::MacAddress, vnet::MacAddress>> edges;
  for (vnet::MacAddress i = 0; i < 5; ++i) {
    edges.push_back({i + 1, (i + 1) % 5 + 1});
    edges.push_back({(i + 1) % 5 + 1, i + 1});
  }
  EXPECT_EQ(classify_topology(from_edges(edges)).kind, PatternKind::kRing);
}

TEST(ClassifyTest, UnidirectionalRing) {
  std::vector<std::pair<vnet::MacAddress, vnet::MacAddress>> edges;
  for (vnet::MacAddress i = 0; i < 6; ++i) edges.push_back({i + 1, (i + 1) % 6 + 1});
  EXPECT_EQ(classify_topology(from_edges(edges)).kind, PatternKind::kRingUni);
}

TEST(ClassifyTest, Chain) {
  EXPECT_EQ(classify_topology(from_edges({{1, 2}, {2, 1}, {2, 3}, {3, 2}})).kind,
            PatternKind::kChain);
}

TEST(ClassifyTest, StarFindsHub) {
  std::vector<std::pair<vnet::MacAddress, vnet::MacAddress>> edges;
  for (vnet::MacAddress worker : {1u, 2u, 4u, 5u}) {
    edges.push_back({3, worker});
    edges.push_back({worker, 3});
  }
  const Classification c = classify_topology(from_edges(edges));
  EXPECT_EQ(c.kind, PatternKind::kStar);
  EXPECT_EQ(c.parameter, 2u);  // index of MAC 3 in sorted {1,2,3,4,5}
}

TEST(ClassifyTest, Mesh2x3) {
  // 2x3 grid over MACs 1..6.
  std::vector<std::pair<vnet::MacAddress, vnet::MacAddress>> edges;
  auto connect = [&](vnet::MacAddress a, vnet::MacAddress b) {
    edges.push_back({a, b});
    edges.push_back({b, a});
  };
  connect(1, 2);
  connect(2, 3);
  connect(4, 5);
  connect(5, 6);
  connect(1, 4);
  connect(2, 5);
  connect(3, 6);
  const Classification c = classify_topology(from_edges(edges));
  EXPECT_EQ(c.kind, PatternKind::kMesh2D);
  EXPECT_EQ(c.parameter, 2u);  // rows
}

TEST(ClassifyTest, IrregularAndEmpty) {
  EXPECT_EQ(classify_topology(Topology{}).kind, PatternKind::kIrregular);
  EXPECT_EQ(classify_topology(from_edges({{1, 2}, {3, 4}, {1, 4}})).kind,
            PatternKind::kIrregular);
}

TEST(ClassifyTest, TwoVmPairIsChain) {
  EXPECT_EQ(classify_topology(from_edges({{1, 2}, {2, 1}})).kind, PatternKind::kChain);
}

TEST(ClassifyTest, ToStringNames) {
  EXPECT_EQ(to_string(PatternKind::kAllToAll), "all-to-all");
  EXPECT_EQ(to_string(PatternKind::kMesh2D), "2D mesh");
}

}  // namespace
}  // namespace vw::vttif
