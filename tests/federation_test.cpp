// Tests for the federated measurement plane (DESIGN.md §5i): region
// assignment, the vw.fedsum.v1 summary codec (round-trip + corrupt-input
// rejection in the style of trace_binary_test.cpp), the WrenReport XML
// codec, the RegionalProxy top-k/aggregate export policy, the root-tier
// fold-in (timestamps, seq gaps, coverage, liveness), the on-demand
// measurement scheduler, the federation SOAP endpoints — and the serial
// oracle: with one region and sampling off, the federated plane reproduces
// the flat GlobalNetworkView bit-identically.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "soap/federation.hpp"
#include "soap/rpc.hpp"
#include "wren/federation.hpp"
#include "wren/view.hpp"

namespace vw::wren {
namespace {

// --- RegionMap ---------------------------------------------------------------

TEST(RegionMapTest, RoundRobinBalancesAndChunkedPreservesLocality) {
  const std::vector<net::NodeId> hosts = {10, 11, 12, 13, 14, 15, 16};
  const RegionMap rr = RegionMap::round_robin(hosts, 3);
  EXPECT_EQ(rr.region_count(), 3u);
  EXPECT_EQ(rr.region_of(10), 0u);
  EXPECT_EQ(rr.region_of(11), 1u);
  EXPECT_EQ(rr.region_of(12), 2u);
  EXPECT_EQ(rr.region_of(13), 0u);
  EXPECT_EQ(rr.hosts_in(0).size(), 3u);
  EXPECT_EQ(rr.hosts_in(2).size(), 2u);

  const RegionMap ch = RegionMap::chunked(hosts, 3);
  EXPECT_EQ(ch.region_count(), 3u);
  // Contiguous prefixes stay together.
  EXPECT_EQ(ch.region_of(10), ch.region_of(11));
  EXPECT_NE(ch.region_of(10), ch.region_of(16));

  EXPECT_EQ(rr.region_of(999), kInvalidRegion);
}

// --- vw.fedsum.v1 codec ------------------------------------------------------

FederationSummary sample_summary() {
  FederationSummary s;
  s.region = 2;
  s.created_at = seconds(12.5);
  s.seq = 7;
  s.total_pairs = 5;
  s.entries.push_back({1, 2, 80e6, 0.004, seconds(11.0), true, true});
  s.entries.push_back({3, 4, 10e6, 0.0, seconds(12.0), true, false});
  s.entries.push_back({5, 6, 0.0, 0.25, seconds(9.0), false, true});
  s.aggregates.push_back({2, 0, 3, 40e6, 10e6, 0.01});
  s.aggregates.push_back({2, 1, 1, 9e6, 9e6, 0.2});
  s.hosts.push_back({1, seconds(12.4)});
  s.hosts.push_back({3, seconds(12.1)});
  return s;
}

TEST(SummaryCodecTest, RoundTripPreservesEveryField) {
  const FederationSummary s = sample_summary();
  const std::vector<unsigned char> bytes = encode_summary(s);
  EXPECT_EQ(bytes.size(), kSummaryHeaderSize + 3 * kSummaryEntrySize +
                              2 * kSummaryAggregateSize + 2 * kSummaryHostSize);
  const FederationSummary back = decode_summary(bytes);
  EXPECT_EQ(back, s);
}

TEST(SummaryCodecTest, EmptySummaryRoundTrips) {
  FederationSummary s;
  s.region = 0;
  s.seq = 1;
  const FederationSummary back = decode_summary(encode_summary(s));
  EXPECT_EQ(back, s);
}

TEST(SummaryCodecTest, HexArmorRoundTripsAndRejectsGarbage) {
  const FederationSummary s = sample_summary();
  const std::string hex = summary_to_hex(s);
  EXPECT_EQ(hex.size(), 2 * encode_summary(s).size());
  EXPECT_EQ(summary_from_hex(hex), s);

  EXPECT_THROW(summary_from_hex(hex.substr(0, hex.size() - 1)), std::runtime_error);
  std::string bad = hex;
  bad[3] = 'z';
  EXPECT_THROW(summary_from_hex(bad), std::runtime_error);
}

TEST(SummaryCodecTest, RejectsTruncatedHeader) {
  const std::vector<unsigned char> bytes = encode_summary(sample_summary());
  EXPECT_THROW(decode_summary(bytes.data(), kSummaryHeaderSize - 1), std::runtime_error);
  EXPECT_THROW(decode_summary(bytes.data(), 0), std::runtime_error);
}

TEST(SummaryCodecTest, RejectsBadMagicAndFutureVersion) {
  std::vector<unsigned char> bytes = encode_summary(sample_summary());
  std::vector<unsigned char> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(decode_summary(bad_magic), std::runtime_error);

  std::vector<unsigned char> future = bytes;
  future[8] = 0x7f;  // version little-endian low byte
  EXPECT_THROW(decode_summary(future), std::runtime_error);
}

TEST(SummaryCodecTest, RejectsTruncatedRecordsAndTrailingBytes) {
  const std::vector<unsigned char> bytes = encode_summary(sample_summary());
  // Record section shorter than the header's counts promise.
  EXPECT_THROW(decode_summary(bytes.data(), bytes.size() - 1), std::runtime_error);
  EXPECT_THROW(decode_summary(bytes.data(), kSummaryHeaderSize + kSummaryEntrySize),
               std::runtime_error);
  // Bytes beyond the last promised record.
  std::vector<unsigned char> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(decode_summary(trailing), std::runtime_error);
}

// --- WrenReport XML codec ----------------------------------------------------

TEST(WrenReportCodecTest, RoundTripsReadings) {
  std::vector<PathReading> in;
  in.push_back({7, 55e6, 0.003});
  in.push_back({9, std::nullopt, 0.5});
  in.push_back({11, 1e6, std::nullopt});
  const soap::XmlNode msg = encode_wren_report_xml(3, in);

  std::vector<PathReading> out;
  std::uint64_t rejected = 0;
  EXPECT_EQ(parse_wren_report_xml(msg, out, &rejected), 3u);
  EXPECT_EQ(rejected, 0u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].peer, 7u);
  EXPECT_DOUBLE_EQ(*out[0].bandwidth_bps, 55e6);
  EXPECT_DOUBLE_EQ(*out[0].latency_s, 0.003);
  EXPECT_FALSE(out[1].bandwidth_bps.has_value());
  EXPECT_DOUBLE_EQ(*out[1].latency_s, 0.5);
  EXPECT_FALSE(out[2].latency_s.has_value());
}

TEST(WrenReportCodecTest, DropsAndCountsPoisonedValues) {
  soap::XmlNode msg;
  msg.name = "WrenReport";
  msg.attributes["reporter"] = "5";
  soap::XmlNode& p1 = msg.add_child("peer");
  p1.attributes["id"] = "6";
  p1.attributes["bw"] = "nan";
  p1.attributes["lat"] = "0.01";
  soap::XmlNode& p2 = msg.add_child("peer");
  p2.attributes["id"] = "7";
  p2.attributes["bw"] = "-3.0";
  soap::XmlNode& p3 = msg.add_child("peer");
  p3.attributes["id"] = "8";
  p3.attributes["lat"] = "inf";

  std::vector<PathReading> out;
  std::uint64_t rejected = 0;
  EXPECT_EQ(parse_wren_report_xml(msg, out, &rejected), 5u);
  // NaN bw, negative bw, Inf lat all rejected; only peer 6's latency lives.
  EXPECT_EQ(rejected, 3u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].peer, 6u);
  EXPECT_FALSE(out[0].bandwidth_bps.has_value());
  EXPECT_DOUBLE_EQ(*out[0].latency_s, 0.01);
}

// --- RegionalProxy export policy ---------------------------------------------

TEST(RegionalProxyTest, TopKKeepsDemandWeightedPairsAndCountsSuppression) {
  const std::vector<net::NodeId> hosts = {1, 2, 3, 4};
  const RegionMap rm = RegionMap::round_robin(hosts, 1);
  RegionalProxyParams params;
  params.summary_max_pairs = 2;
  RegionalProxy proxy(0, rm, params);

  proxy.apply_report(1, {{2, 10e6, std::nullopt}}, seconds(1.0));
  proxy.apply_report(2, {{3, 20e6, std::nullopt}}, seconds(2.0));
  proxy.apply_report(3, {{4, 30e6, std::nullopt}}, seconds(3.0));
  proxy.apply_report(4, {{1, 40e6, std::nullopt}}, seconds(4.0));

  // The demand hint forces the *oldest* pair into the top-k; the other slot
  // goes to the most recently updated pair.
  proxy.set_demand_weight(1, 2, 5.0);
  const FederationSummary s = proxy.build_summary(seconds(5.0));
  EXPECT_EQ(s.seq, 1u);
  EXPECT_EQ(s.total_pairs, 4u);
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_EQ(s.entries[0].from, 1u);
  EXPECT_EQ(s.entries[0].to, 2u);
  EXPECT_EQ(s.entries[1].from, 4u);
  EXPECT_EQ(s.entries[1].to, 1u);
  EXPECT_EQ(proxy.entries_exported(), 2u);
  EXPECT_EQ(proxy.entries_suppressed(), 2u);

  // Aggregates cover the suppressed mass: all four pairs roll up.
  ASSERT_EQ(s.aggregates.size(), 1u);
  EXPECT_EQ(s.aggregates[0].pair_count, 4u);
  EXPECT_DOUBLE_EQ(s.aggregates[0].min_bandwidth_bps, 10e6);
  EXPECT_DOUBLE_EQ(s.aggregates[0].mean_bandwidth_bps, 25e6);

  // Liveness evidence rides along for every reporter heard from.
  EXPECT_EQ(s.hosts.size(), 4u);

  // force_full bypasses sampling once (window-gap healing).
  const FederationSummary full = proxy.build_summary(seconds(6.0), /*force_full=*/true);
  EXPECT_EQ(full.seq, 2u);
  EXPECT_EQ(full.entries.size(), 4u);
}

// --- FederationRoot ----------------------------------------------------------

TEST(FederationRootTest, AppliesEntriesWithOriginalTimestampsAndTracksSeqGaps) {
  const std::vector<net::NodeId> hosts = {1, 2, 3, 4};
  const RegionMap rm = RegionMap::round_robin(hosts, 2);
  GlobalNetworkView root_view;
  FederationRoot root(root_view, rm);

  std::vector<std::pair<net::NodeId, SimTime>> seen;
  root.set_host_seen_fn([&](net::NodeId h, SimTime at) { seen.push_back({h, at}); });

  FederationSummary s;
  s.region = 0;
  s.seq = 1;
  s.total_pairs = 1;
  s.entries.push_back({1, 3, 70e6, 0.002, seconds(3.0), true, true});
  s.hosts.push_back({1, seconds(4.0)});
  root.apply_summary(s, seconds(10.0));

  // TTL consistency contract: the entry lands with its *regional* timestamp.
  ASSERT_EQ(root_view.entries().size(), 1u);
  EXPECT_EQ(root_view.entries().begin()->second.updated_at, seconds(3.0));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 1u);
  EXPECT_EQ(seen[0].second, seconds(4.0));

  // Skipping seq 2 is a detected gap; a later duplicate/regression is not.
  s.seq = 3;
  root.apply_summary(s, seconds(12.0));
  EXPECT_EQ(root.seq_gaps(), 1u);
  s.seq = 4;
  root.apply_summary(s, seconds(13.0));
  EXPECT_EQ(root.seq_gaps(), 1u);
  EXPECT_EQ(root.summaries_applied(), 3u);
}

TEST(FederationRootTest, AggregateFallbackAndCoverage) {
  const std::vector<net::NodeId> hosts = {1, 2, 3, 4};
  const RegionMap rm = RegionMap::round_robin(hosts, 2);  // {1,3}->0, {2,4}->1
  GlobalNetworkView root_view;
  FederationRoot root(root_view, rm);

  FederationSummary s;
  s.region = 0;
  s.seq = 1;
  s.total_pairs = 4;
  s.entries.push_back({1, 3, 70e6, 0.002, seconds(3.0), true, true});
  s.aggregates.push_back({0, 1, 3, 12e6, 4e6, 0.05});
  root.apply_summary(s, seconds(10.0));

  // (1 -> 2) crosses region 0 -> 1: no exact entry, aggregate answers.
  ASSERT_TRUE(root.aggregate_bandwidth(1, 2).has_value());
  EXPECT_DOUBLE_EQ(*root.aggregate_bandwidth(1, 2), 12e6);
  ASSERT_TRUE(root.aggregate_latency(1, 2).has_value());
  EXPECT_DOUBLE_EQ(*root.aggregate_latency(1, 2), 0.05);
  // (2 -> 1) is region 1 -> 0: no aggregate row exported for it.
  EXPECT_FALSE(root.aggregate_bandwidth(2, 1).has_value());
  // Unassigned hosts never match an aggregate.
  EXPECT_FALSE(root.aggregate_bandwidth(999, 2).has_value());

  // Coverage: region 0 exported 1 of 4 fresh pairs.
  EXPECT_DOUBLE_EQ(root.coverage(), 0.25);
}

// --- serial oracle -----------------------------------------------------------

// With one region and sampling off, daemon reports folded through the
// RegionalProxy -> vw.fedsum.v1 -> FederationRoot path must reproduce the
// flat GlobalNetworkView *bit-identically* — same pairs, same values, same
// timestamps. This is the ISSUE-9 differential gate in unit form.
TEST(FederationOracleTest, SingleRegionNoSamplingReproducesFlatViewBitIdentically) {
  const std::vector<net::NodeId> hosts = {1, 2, 3, 4, 5};
  const RegionMap rm = RegionMap::round_robin(hosts, 1);

  RegionalProxyParams params;
  params.summary_max_pairs = 0;  // sampling off
  RegionalProxy proxy(0, rm, params);

  GlobalNetworkView flat;

  // A spread of reports: bandwidth-only, latency-only, both, re-updates.
  struct Report {
    net::NodeId from, to;
    std::optional<double> bw, lat;
    SimTime at;
  };
  const std::vector<Report> reports = {
      {1, 2, 80e6, 0.001, seconds(1.0)},  {2, 1, 60e6, std::nullopt, seconds(1.5)},
      {3, 4, std::nullopt, 0.2, seconds(2.0)}, {1, 2, 90e6, std::nullopt, seconds(3.0)},
      {4, 5, 5e6, 0.05, seconds(3.5)},    {5, 1, 1e9, 0.0001, seconds(4.0)},
  };
  for (const Report& r : reports) {
    proxy.apply_report(r.from, {{r.to, r.bw, r.lat}}, r.at);
    if (r.bw) flat.update_bandwidth(r.from, r.to, *r.bw, r.at);
    if (r.lat) flat.update_latency(r.from, r.to, *r.lat, r.at);
  }

  const FederationSummary summary = proxy.build_summary(seconds(5.0));
  EXPECT_EQ(summary.entries.size(), flat.entries().size());
  EXPECT_EQ(proxy.entries_suppressed(), 0u);

  // Cross the wire: binary codec + hex armor, like the real control plane.
  const FederationSummary shipped = summary_from_hex(summary_to_hex(summary));

  GlobalNetworkView root_view;
  FederationRoot root(root_view, rm);
  root.apply_summary(shipped, seconds(6.0));

  EXPECT_EQ(root_view.entries(), flat.entries());
}

// --- on-demand measurement scheduler -----------------------------------------

TEST(MeasurementSchedulerTest, RequestsColdPairsOnlyHonoringCooldownAndBudget) {
  MeasurementSchedulerParams params;
  params.request_cooldown = seconds(10.0);
  params.max_outstanding = 2;
  MeasurementScheduler sched(params);

  std::vector<std::pair<net::NodeId, net::NodeId>> issued;
  sched.set_request_fn([&](net::NodeId f, net::NodeId t) { issued.push_back({f, t}); });

  GlobalNetworkView view;
  view.update_bandwidth(1, 2, 50e6, seconds(1.0));  // warm pair

  // Warm pair skipped; two cold pairs fit the budget; the third is over it.
  EXPECT_EQ(sched.request_cold_pairs(view, {{1, 2}, {3, 4}, {5, 6}, {7, 8}}, seconds(2.0)), 2u);
  ASSERT_EQ(issued.size(), 2u);
  EXPECT_EQ(issued[0], (std::pair<net::NodeId, net::NodeId>{3, 4}));
  EXPECT_EQ(sched.outstanding(), 2u);
  EXPECT_EQ(sched.suppressed(), 1u);  // (7,8) over budget; (1,2) warm, not suppressed

  // Same pairs again inside the cooldown: nothing new even after results.
  sched.on_result(3, 4);
  sched.on_result(5, 6);
  EXPECT_EQ(sched.outstanding(), 0u);
  EXPECT_EQ(sched.completed(), 2u);
  EXPECT_EQ(sched.request_cold_pairs(view, {{3, 4}}, seconds(5.0)), 0u);

  // Past the cooldown the still-cold pair is re-requested.
  EXPECT_EQ(sched.request_cold_pairs(view, {{3, 4}}, seconds(13.0)), 1u);
  EXPECT_EQ(sched.requested(), 3u);
}

// --- SOAP federation endpoints -----------------------------------------------

TEST(FederationSoapTest, SubscribeExportRequestRoundTrip) {
  soap::RpcRegistry registry;
  soap::FederationService service(registry, "federation://proxy");
  soap::FederationClient client(registry, "federation://proxy");

  std::vector<std::pair<std::uint32_t, std::string>> subs;
  service.set_subscribe_fn([&](std::uint32_t region, const std::string& who) {
    subs.push_back({region, who});
    return region < 8;
  });
  std::string last_payload;
  service.set_export_fn([&](std::uint32_t region, const std::string& hex) {
    last_payload = std::to_string(region) + ":" + hex;
  });
  service.set_request_fn([&](std::uint32_t from, std::uint32_t to) { return from != to; });

  EXPECT_TRUE(client.subscribe(3, "vnet://h3:9002"));
  EXPECT_FALSE(client.subscribe(9, "vnet://h9:9002"));
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(service.subscribers().at(3), "vnet://h3:9002");
  EXPECT_FALSE(service.subscribers().contains(9));

  const std::string hex = summary_to_hex(sample_summary());
  client.export_summary(2, hex);
  EXPECT_EQ(service.exports_received(), 1u);
  EXPECT_EQ(last_payload, "2:" + hex);

  EXPECT_TRUE(client.request_measurement(1, 2));
  EXPECT_FALSE(client.request_measurement(4, 4));
  EXPECT_EQ(service.requests_received(), 2u);
}

TEST(FederationSoapTest, MalformedRequestsFault) {
  soap::RpcRegistry registry;
  soap::FederationService service(registry, "federation://proxy");

  soap::XmlNode no_region;
  no_region.name = "ExportSummary";
  no_region.add_text_child("summary", "00");
  EXPECT_THROW(registry.call("federation://proxy", "ExportSummary", no_region),
               soap::SoapFault);

  soap::XmlNode no_payload;
  no_payload.name = "ExportSummary";
  no_payload.attributes["region"] = "1";
  EXPECT_THROW(registry.call("federation://proxy", "ExportSummary", no_payload),
               soap::SoapFault);
}

}  // namespace
}  // namespace vw::wren
