// Tests for the topology builders: BRITE Waxman generation properties and
// the packet-level / capacity-graph testbeds.

#include <gtest/gtest.h>

#include "topo/brite.hpp"
#include "topo/testbed.hpp"

namespace vw::topo {
namespace {

TEST(BriteTest, GeneratesRequestedSize) {
  BriteParams params;
  params.nodes = 64;
  BriteTopology topo(params, Rng(1));
  EXPECT_EQ(topo.node_count(), 64u);
  // Incremental growth with out_degree 2: (n-1) joins, first adds 1 edge.
  EXPECT_EQ(topo.edges().size(), 2u * 64 - 3);
}

TEST(BriteTest, AlwaysConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    BriteParams params;
    params.nodes = 128;
    BriteTopology topo(params, Rng(seed));
    EXPECT_TRUE(topo.connected()) << "seed " << seed;
  }
}

TEST(BriteTest, BandwidthsWithinConfiguredRange) {
  BriteParams params;
  params.nodes = 100;
  BriteTopology topo(params, Rng(2));
  for (const BriteEdge& e : topo.edges()) {
    EXPECT_GE(e.bandwidth_bps, params.bw_min_mbps * 1e6);
    EXPECT_LE(e.bandwidth_bps, params.bw_max_mbps * 1e6);
    EXPECT_GT(e.latency_s, 0);
  }
}

TEST(BriteTest, PathMetricsConsistent) {
  BriteParams params;
  params.nodes = 64;
  BriteTopology topo(params, Rng(3));
  const auto [bw, lat] = topo.path_metrics(0, 63);
  EXPECT_GT(bw, 0);
  EXPECT_GT(lat, 0);
  // Symmetric links and symmetric shortest-path costs.
  const auto [bw_r, lat_r] = topo.path_metrics(63, 0);
  EXPECT_DOUBLE_EQ(lat, lat_r);
}

TEST(BriteTest, OverlayCapacityGraphShape) {
  BriteParams params;
  params.nodes = 256;
  BriteTopology topo(params, Rng(4));
  Rng pick(5);
  const vadapt::CapacityGraph g = topo.overlay_capacity_graph(32, pick);
  EXPECT_EQ(g.size(), 32u);
  // Distinct hosts.
  std::set<net::NodeId> uniq(g.hosts().begin(), g.hosts().end());
  EXPECT_EQ(uniq.size(), 32u);
  // All pairwise entries populated and positive (graph is connected).
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      if (i == j) continue;
      EXPECT_GT(g.bandwidth(i, j), 0) << i << "->" << j;
      EXPECT_GT(g.latency(i, j), 0);
    }
  }
}

TEST(BriteTest, DeterministicForSeed) {
  BriteParams params;
  params.nodes = 64;
  BriteTopology a(params, Rng(7));
  BriteTopology b(params, Rng(7));
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (std::size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.edges()[i].bandwidth_bps, b.edges()[i].bandwidth_bps);
  }
}

TEST(TestbedTest, LanTestbedTopology) {
  sim::Simulator sim;
  const LanTestbed tb = make_lan_testbed(sim);
  EXPECT_DOUBLE_EQ(tb.network->path_bottleneck_bps(tb.sender, tb.receiver), 100e6);
  EXPECT_DOUBLE_EQ(tb.network->path_bottleneck_bps(tb.cross_source, tb.receiver), 100e6);
  EXPECT_EQ(tb.network->next_hop(tb.sender, tb.receiver), tb.switch_node);
}

TEST(TestbedTest, WanTestbedBottleneckAndDelay) {
  sim::Simulator sim;
  const WanTestbed tb = make_wan_testbed(sim, 30e6, millis(25), 2);
  EXPECT_DOUBLE_EQ(tb.network->path_bottleneck_bps(tb.sender, tb.receiver), 30e6);
  EXPECT_EQ(tb.cross_sources.size(), 2u);
  // Cross traffic shares the bottleneck link.
  EXPECT_EQ(tb.network->next_hop(tb.cross_sources[0], tb.cross_sinks[0]), tb.router_a);
}

TEST(TestbedTest, NwuWmNetworkShape) {
  sim::Simulator sim;
  const NwuWmTestbed tb = make_nwu_wm_network(sim);
  EXPECT_EQ(tb.hosts().size(), 4u);
  // Intra-site fast, cross-site thin.
  EXPECT_GT(tb.network->path_bottleneck_bps(tb.minet1, tb.minet2), 50e6);
  EXPECT_LT(tb.network->path_bottleneck_bps(tb.minet1, tb.lr3), 20e6);
}

TEST(TestbedTest, NwuWmCapacityGraphMatchesFigure6) {
  const vadapt::CapacityGraph g = nwu_wm_capacity_graph();
  ASSERT_EQ(g.size(), 4u);
  // Intra-site links are an order of magnitude faster than cross-site.
  EXPECT_GT(g.bandwidth(0, 1), 80e6);
  EXPECT_GT(g.bandwidth(2, 3), 70e6);
  EXPECT_LT(g.bandwidth(0, 2), 15e6);
  EXPECT_GT(g.latency(0, 2), g.latency(0, 1));
}

TEST(TestbedTest, ChallengeScenarioStructure) {
  const ChallengeScenario sc = make_challenge_scenario();
  EXPECT_EQ(sc.graph.size(), 6u);
  EXPECT_EQ(sc.n_vms, 4u);
  EXPECT_EQ(sc.demands.size(), 8u);  // 6 heavy + 2 light
  // Domain 2 is faster internally than domain 1; inter-domain is thin.
  EXPECT_GT(sc.graph.bandwidth(3, 4), sc.graph.bandwidth(0, 1));
  EXPECT_LT(sc.graph.bandwidth(0, 3), sc.graph.bandwidth(0, 1));
}

TEST(TestbedTest, ChallengeNetworkPacketLevel) {
  sim::Simulator sim;
  const ChallengeNetwork tb = make_challenge_network(sim);
  EXPECT_EQ(tb.hosts().size(), 6u);
  EXPECT_DOUBLE_EQ(
      tb.network->path_bottleneck_bps(tb.domain2_hosts[0], tb.domain2_hosts[1]), 1000e6);
  EXPECT_DOUBLE_EQ(
      tb.network->path_bottleneck_bps(tb.domain1_hosts[0], tb.domain2_hosts[0]), 10e6);
}

}  // namespace
}  // namespace vw::topo
