// Tests for VSched: EDF admission control, slice delivery, deadline
// accounting, preemption and best-effort leftover sharing.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "vm/vsched.hpp"

namespace vw::vm {
namespace {

TEST(VSchedTest, AdmissionControlEnforcesUtilizationBound) {
  sim::Simulator sim;
  VSched sched(sim);
  // 50% + 30% fits; another 30% does not.
  EXPECT_TRUE(sched.admit("vm-a", {millis(10), millis(5)}).has_value());
  EXPECT_TRUE(sched.admit("vm-b", {millis(20), millis(6)}).has_value());
  EXPECT_FALSE(sched.admit("vm-c", {millis(10), millis(3)}).has_value());
  EXPECT_NEAR(sched.admitted_utilization(), 0.8, 1e-9);
}

TEST(VSchedTest, MalformedConstraintsRejected) {
  sim::Simulator sim;
  VSched sched(sim);
  EXPECT_FALSE(sched.admit("zero-period", {0, millis(1)}).has_value());
  EXPECT_FALSE(sched.admit("zero-slice", {millis(10), 0}).has_value());
  EXPECT_FALSE(sched.admit("slice-gt-period", {millis(10), millis(11)}).has_value());
}

TEST(VSchedTest, UtilizationLimitParameterChecked) {
  sim::Simulator sim;
  EXPECT_THROW(VSched(sim, 0.0), std::invalid_argument);
  EXPECT_THROW(VSched(sim, 1.5), std::invalid_argument);
}

TEST(VSchedTest, SingleTaskReceivesExactSlice) {
  sim::Simulator sim;
  VSched sched(sim);
  const auto id = sched.admit("vm", {millis(10), millis(3)});
  ASSERT_TRUE(id.has_value());
  sim.run_until(seconds(1.0));
  const VSchedTaskStats s = sched.stats(*id);
  // 100 periods of 3 ms each = 300 ms of CPU.
  EXPECT_NEAR(to_seconds(s.cpu_received), 0.300, 0.004);
  EXPECT_GE(s.periods_completed, 99u);
  EXPECT_EQ(s.deadlines_missed, 0u);
}

TEST(VSchedTest, FullyLoadedEdfMeetsAllDeadlines) {
  // Classic EDF result: any task set with utilization <= 1 is schedulable.
  sim::Simulator sim;
  VSched sched(sim);
  const auto a = sched.admit("a", {millis(10), millis(4)});   // 40%
  const auto b = sched.admit("b", {millis(20), millis(8)});   // 40%
  const auto c = sched.admit("c", {millis(50), millis(10)});  // 20%
  ASSERT_TRUE(a && b && c);
  sim.run_until(seconds(2.0));
  EXPECT_EQ(sched.stats(*a).deadlines_missed, 0u);
  EXPECT_EQ(sched.stats(*b).deadlines_missed, 0u);
  EXPECT_EQ(sched.stats(*c).deadlines_missed, 0u);
  EXPECT_NEAR(to_seconds(sched.stats(*a).cpu_received), 0.8, 0.01);
  EXPECT_NEAR(to_seconds(sched.stats(*b).cpu_received), 0.8, 0.01);
  EXPECT_NEAR(to_seconds(sched.stats(*c).cpu_received), 0.4, 0.02);
}

TEST(VSchedTest, BestEffortGetsLeftover) {
  sim::Simulator sim;
  VSched sched(sim);
  const auto rt = sched.admit("rt", {millis(10), millis(6)});  // 60%
  const auto be1 = sched.add_best_effort("batch-1");
  const auto be2 = sched.add_best_effort("batch-2");
  ASSERT_TRUE(rt.has_value());
  sim.run_until(seconds(1.0));
  // Trigger final accounting via a no-op admission.
  sched.admit("probe", {millis(10), millis(1)});
  // 40% leftover split two ways = ~0.2 s each.
  EXPECT_NEAR(to_seconds(sched.stats(be1).cpu_received), 0.2, 0.02);
  EXPECT_NEAR(to_seconds(sched.stats(be2).cpu_received), 0.2, 0.02);
}

TEST(VSchedTest, RemoveFreesUtilization) {
  sim::Simulator sim;
  VSched sched(sim);
  const auto a = sched.admit("a", {millis(10), millis(8)});
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(sched.admit("b", {millis(10), millis(5)}).has_value());
  sched.remove(*a);
  EXPECT_TRUE(sched.admit("b", {millis(10), millis(5)}).has_value());
}

TEST(VSchedTest, InteractivePlusBatchMix) {
  // The VSched paper's headline scenario: a short-period interactive VM
  // coexists with a long-period batch VM; both meet their constraints.
  sim::Simulator sim;
  VSched sched(sim);
  const auto interactive = sched.admit("interactive", {millis(5), millis(1)});  // 20%
  const auto batch = sched.admit("batch", {seconds(1.0), millis(700)});         // 70%
  ASSERT_TRUE(interactive && batch);
  sim.run_until(seconds(5.0));
  EXPECT_EQ(sched.stats(*interactive).deadlines_missed, 0u);
  EXPECT_EQ(sched.stats(*batch).deadlines_missed, 0u);
  EXPECT_NEAR(to_seconds(sched.stats(*interactive).cpu_received), 1.0, 0.02);
  EXPECT_NEAR(to_seconds(sched.stats(*batch).cpu_received), 3.5, 0.05);
}

TEST(VSchedTest, UnknownTaskStatsThrow) {
  sim::Simulator sim;
  VSched sched(sim);
  EXPECT_THROW(sched.stats(42), std::out_of_range);
}

TEST(VSchedTest, LateAdmissionStartsCleanPeriod) {
  sim::Simulator sim;
  VSched sched(sim);
  sim.schedule_at(millis(500), [&] { sched.admit("late", {millis(10), millis(5)}); });
  sim.run_until(seconds(1.5));
  EXPECT_NEAR(sched.admitted_utilization(), 0.5, 1e-9);
}

}  // namespace
}  // namespace vw::vm
