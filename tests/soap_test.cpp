// Tests for the XML/SOAP layer: serialization, parsing, envelopes, RPC
// dispatch and fault propagation.

#include <gtest/gtest.h>

#include "soap/rpc.hpp"
#include "soap/xml.hpp"

namespace vw::soap {
namespace {

TEST(XmlTest, SerializeSimpleTree) {
  XmlNode root;
  root.name = "root";
  root.add_text_child("a", "1");
  XmlNode& b = root.add_child("b");
  b.attributes["k"] = "v";
  EXPECT_EQ(to_xml(root), "<root><a>1</a><b k=\"v\"/></root>");
}

TEST(XmlTest, EscapeRoundTrip) {
  XmlNode root;
  root.name = "r";
  root.text = "a<b & \"c\" 'd'";
  root.attributes["attr"] = "x&y<z";
  const XmlNode parsed = parse_xml(to_xml(root));
  EXPECT_EQ(parsed.text, root.text);
  EXPECT_EQ(parsed.attributes.at("attr"), "x&y<z");
}

TEST(XmlTest, ParseNested) {
  const XmlNode n = parse_xml("<a><b><c>deep</c></b><b2>x</b2></a>");
  EXPECT_EQ(n.name, "a");
  ASSERT_NE(n.child("b"), nullptr);
  EXPECT_EQ(n.child("b")->child_text("c"), "deep");
  EXPECT_EQ(n.child_text("b2"), "x");
}

TEST(XmlTest, ParseSelfClosingAndAttributes) {
  const XmlNode n = parse_xml("<a x=\"1\" y='two'/>");
  EXPECT_EQ(n.attributes.at("x"), "1");
  EXPECT_EQ(n.attributes.at("y"), "two");
  EXPECT_TRUE(n.children.empty());
}

TEST(XmlTest, ParseSkipsPrologAndComments) {
  const XmlNode n = parse_xml("<?xml version=\"1.0\"?><a><!-- note --><b>1</b></a>");
  EXPECT_EQ(n.child_text("b"), "1");
}

TEST(XmlTest, ChildrenNamedReturnsAll) {
  const XmlNode n = parse_xml("<a><p>1</p><q>x</q><p>2</p></a>");
  const auto ps = n.children_named("p");
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[0]->text, "1");
  EXPECT_EQ(ps[1]->text, "2");
}

TEST(XmlTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_xml("<a><b></a>"), std::runtime_error);     // mismatched close
  EXPECT_THROW(parse_xml("<a>"), std::runtime_error);            // unterminated
  EXPECT_THROW(parse_xml("<a>&unknown;</a>"), std::runtime_error);
  EXPECT_THROW(parse_xml("<a></a><b></b>"), std::runtime_error);  // two roots
  EXPECT_THROW(parse_xml("plain text"), std::runtime_error);
}

TEST(XmlTest, WhitespaceOnlyTextPreserved) {
  // Mixed content keeps character data.
  const XmlNode n = parse_xml("<a>hi<b/>there</a>");
  EXPECT_EQ(n.text, "hithere");
}

TEST(EnvelopeTest, WrapAndExtract) {
  XmlNode body;
  body.name = "MyRequest";
  body.add_text_child("x", "42");
  const XmlNode env = make_envelope(body);
  EXPECT_EQ(env.name, "soap:Envelope");
  const XmlNode extracted = extract_body(parse_xml(to_xml(env)));
  EXPECT_EQ(extracted.name, "MyRequest");
  EXPECT_EQ(extracted.child_text("x"), "42");
}

TEST(EnvelopeTest, ExtractRejectsNonEnvelope) {
  XmlNode n;
  n.name = "NotAnEnvelope";
  EXPECT_THROW(extract_body(n), std::runtime_error);
}

TEST(EnvelopeTest, FaultConstruction) {
  const XmlNode f = make_fault("soap:Server", "boom");
  EXPECT_TRUE(is_fault(f));
  EXPECT_EQ(f.child_text("faultstring"), "boom");
}

TEST(RpcTest, CallDispatchesAndReturns) {
  RpcRegistry reg;
  reg.register_method("svc://x", "Echo", [](const XmlNode& req) {
    XmlNode resp;
    resp.name = "EchoResponse";
    resp.add_text_child("echo", req.child_text("value"));
    return resp;
  });
  XmlNode req;
  req.name = "Echo";
  req.add_text_child("value", "ping");
  const XmlNode resp = reg.call("svc://x", "Echo", req);
  EXPECT_EQ(resp.child_text("echo"), "ping");
}

TEST(RpcTest, UnknownEndpointThrows) {
  RpcRegistry reg;
  XmlNode req;
  req.name = "M";
  EXPECT_THROW(reg.call("svc://missing", "M", req), std::out_of_range);
}

TEST(RpcTest, HandlerExceptionBecomesFault) {
  RpcRegistry reg;
  reg.register_method("svc://x", "Fail",
                      [](const XmlNode&) -> XmlNode { throw std::runtime_error("kaput"); });
  XmlNode req;
  req.name = "Fail";
  try {
    reg.call("svc://x", "Fail", req);
    FAIL() << "expected SoapFault";
  } catch (const SoapFault& f) {
    EXPECT_EQ(f.code(), "soap:Server");
    EXPECT_STREQ(f.what(), "kaput");
  }
}

TEST(RpcTest, UnregisterEndpointRemovesAllMethods) {
  RpcRegistry reg;
  reg.register_method("svc://x", "A", [](const XmlNode&) {
    XmlNode r;
    r.name = "R";
    return r;
  });
  reg.register_method("svc://x", "B", [](const XmlNode&) {
    XmlNode r;
    r.name = "R";
    return r;
  });
  EXPECT_TRUE(reg.has_endpoint("svc://x"));
  reg.unregister_endpoint("svc://x");
  EXPECT_FALSE(reg.has_endpoint("svc://x"));
}

TEST(RpcTest, RequestSurvivesXmlRoundTrip) {
  // Values with XML-special characters must arrive intact through the
  // serialize/parse cycle the registry performs.
  RpcRegistry reg;
  std::string received;
  reg.register_method("svc://x", "Take", [&](const XmlNode& req) {
    received = req.child_text("v");
    XmlNode ok;
    ok.name = "Ok";
    return ok;
  });
  XmlNode req;
  req.name = "Take";
  req.add_text_child("v", "a<b>&\"c\"");
  reg.call("svc://x", "Take", req);
  EXPECT_EQ(received, "a<b>&\"c\"");
}

}  // namespace
}  // namespace vw::soap
