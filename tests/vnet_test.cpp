// Tests for the VNET overlay: daemons, star bootstrap around the Proxy,
// frame routing (local delivery, rules, proxy resolution, default link),
// dynamic links and the encapsulating overlay link types.

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/stack.hpp"
#include "vnet/control.hpp"
#include "vnet/daemon.hpp"
#include "vnet/links.hpp"
#include "vnet/overlay.hpp"

namespace vw::vnet {
namespace {

struct OverlayEnv {
  sim::Simulator sim;
  net::Network net{sim};
  std::vector<net::NodeId> hosts;
  std::unique_ptr<transport::TransportStack> stack;
  std::unique_ptr<Overlay> overlay;

  explicit OverlayEnv(std::size_t n_hosts = 3) {
    const net::NodeId sw = net.add_router("switch");
    for (std::size_t i = 0; i < n_hosts; ++i) {
      const net::NodeId h = net.add_host("host-" + std::to_string(i));
      net::LinkConfig cfg;
      cfg.bits_per_sec = 100e6;
      cfg.prop_delay = micros(50);
      net.add_link(h, sw, cfg);
      hosts.push_back(h);
    }
    net.compute_routes();
    stack = std::make_unique<transport::TransportStack>(net);
    overlay = std::make_unique<Overlay>(*stack);
  }
};

EthernetFrame frame(MacAddress src, MacAddress dst, std::uint32_t bytes = 500) {
  EthernetFrame f;
  f.src_mac = src;
  f.dst_mac = dst;
  f.payload_bytes = bytes;
  return f;
}

TEST(VnetDaemonTest, LocalDelivery) {
  OverlayEnv env;
  VnetDaemon& d = env.overlay->create_daemon(env.hosts[0], "proxy", /*is_proxy=*/true);
  FramePtr got;
  d.attach_vm(1, [&](FramePtr f) { got = std::move(f); });
  d.attach_vm(2, [](FramePtr) {});
  d.inject_from_vm(frame(2, 1));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src_mac, 2u);
}

TEST(VnetDaemonTest, NoRouteDropsFrame) {
  OverlayEnv env;
  VnetDaemon& d = env.overlay->create_daemon(env.hosts[0], "proxy", true);
  d.inject_from_vm(frame(1, 99));
  EXPECT_EQ(d.frames_dropped(), 1u);
}

TEST(VnetDaemonTest, FrameObserverSeesLocalVmFrames) {
  OverlayEnv env;
  VnetDaemon& d = env.overlay->create_daemon(env.hosts[0], "proxy", true);
  std::vector<EthernetFrame> seen;
  d.set_frame_observer([&](const EthernetFrame& f) { seen.push_back(f); });
  d.attach_vm(1, [](FramePtr) {});
  d.inject_from_vm(frame(2, 1, 777));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].payload_bytes, 777u);
}

TEST(OverlayTest, StarDeliversAcrossHostsTcp) {
  OverlayEnv env(3);
  VnetDaemon& proxy = env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kTcp);
  (void)proxy;

  FramePtr got;
  d2.attach_vm(20, [&](FramePtr f) { got = std::move(f); });
  env.overlay->register_vm(20, d2);
  d1.attach_vm(10, [](FramePtr) {});
  env.overlay->register_vm(10, d1);

  env.sim.run_until(seconds(1.0));  // let star connections establish
  d1.inject_from_vm(frame(10, 20, 800));
  env.sim.run_until(seconds(2.0));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->src_mac, 10u);
  EXPECT_EQ(got->payload_bytes, 800u);
}

TEST(OverlayTest, StarDeliversAcrossHostsUdp) {
  OverlayEnv env(3);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);

  FramePtr got;
  d2.attach_vm(20, [&](FramePtr f) { got = std::move(f); });
  env.overlay->register_vm(20, d2);

  d1.inject_from_vm(frame(10, 20));
  env.sim.run_until(seconds(1.0));
  ASSERT_NE(got, nullptr);
}

TEST(OverlayTest, FramesTraverseProxyInStar) {
  OverlayEnv env(3);
  VnetDaemon& proxy = env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  int delivered = 0;
  d2.attach_vm(20, [&](FramePtr) { ++delivered; });
  env.overlay->register_vm(20, d2);
  d1.inject_from_vm(frame(10, 20));
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(proxy.frames_forwarded(), 1u);  // hairpin through the hub
}

TEST(OverlayTest, DirectLinkAndRuleBypassesProxy) {
  OverlayEnv env(3);
  VnetDaemon& proxy = env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  int delivered = 0;
  d2.attach_vm(20, [&](FramePtr) { ++delivered; });
  env.overlay->register_vm(20, d2);

  // VADAPT-style change: direct link d1 -> d2 plus a forwarding rule.
  env.overlay->install_path({env.hosts[1], env.hosts[2]}, 20, LinkProtocol::kUdp);
  d1.inject_from_vm(frame(10, 20));
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(proxy.frames_forwarded(), 0u);  // bypassed
  EXPECT_EQ(env.overlay->dynamic_link_count(), 1u);
}

TEST(OverlayTest, MultiHopInstallPath) {
  OverlayEnv env(4);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& mid = env.overlay->create_daemon(env.hosts[2], "mid");
  VnetDaemon& d3 = env.overlay->create_daemon(env.hosts[3], "d3");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  int delivered = 0;
  d3.attach_vm(30, [&](FramePtr) { ++delivered; });
  env.overlay->register_vm(30, d3);

  // Route via the intermediate daemon (overlay-level forwarding).
  env.overlay->install_path({env.hosts[1], env.hosts[2], env.hosts[3]}, 30, LinkProtocol::kUdp);
  d1.inject_from_vm(frame(10, 30));
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(mid.frames_forwarded(), 1u);
}

TEST(OverlayTest, ResetToStarRemovesDynamicState) {
  OverlayEnv env(3);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  env.overlay->register_vm(20, d2);
  env.overlay->install_path({env.hosts[1], env.hosts[2]}, 20, LinkProtocol::kUdp);
  EXPECT_EQ(env.overlay->dynamic_link_count(), 1u);
  EXPECT_EQ(d1.rule_count(), 1u);
  env.overlay->reset_to_star();
  EXPECT_EQ(env.overlay->dynamic_link_count(), 0u);
  EXPECT_EQ(d1.rule_count(), 0u);

  // Traffic still flows via the star.
  int delivered = 0;
  d2.attach_vm(20, [&](FramePtr) { ++delivered; });
  d1.inject_from_vm(frame(10, 20));
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(delivered, 1);
}

TEST(OverlayTest, EnsureLinkIsIdempotent) {
  OverlayEnv env(3);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  auto [a1, b1] = env.overlay->ensure_link(d1, d2, LinkProtocol::kUdp);
  auto [a2, b2] = env.overlay->ensure_link(d1, d2, LinkProtocol::kUdp);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(env.overlay->dynamic_link_count(), 1u);
  (void)b1;
  (void)b2;
}

TEST(OverlayTest, TtlPreventsForwardingLoops) {
  OverlayEnv env(3);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  // Deliberately install a 2-cycle for an unattached MAC.
  env.overlay->install_path({env.hosts[1], env.hosts[2]}, 77, LinkProtocol::kUdp);
  env.overlay->install_path({env.hosts[2], env.hosts[1]}, 77, LinkProtocol::kUdp);
  d1.inject_from_vm(frame(10, 77));
  env.sim.run_until(seconds(5.0));  // must terminate (TTL), not loop forever
  EXPECT_GT(d1.frames_dropped() + d2.frames_dropped(), 0u);
}

TEST(OverlayTest, MacRegistryTracksDaemon) {
  OverlayEnv env(2);
  VnetDaemon& proxy = env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  env.overlay->register_vm(5, d1);
  EXPECT_EQ(env.overlay->daemon_for_mac(5), &d1);
  env.overlay->register_vm(5, proxy);  // migration: re-register
  EXPECT_EQ(env.overlay->daemon_for_mac(5), &proxy);
  env.overlay->unregister_vm(5);
  EXPECT_EQ(env.overlay->daemon_for_mac(5), nullptr);
}

TEST(OverlayTest, SecondProxyThrows) {
  OverlayEnv env(2);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  EXPECT_THROW(env.overlay->create_daemon(env.hosts[1], "proxy2", true), std::invalid_argument);
}

TEST(OverlayTest, DuplicateDaemonOnHostThrows) {
  OverlayEnv env(2);
  env.overlay->create_daemon(env.hosts[0], "a", true);
  EXPECT_THROW(env.overlay->create_daemon(env.hosts[0], "b"), std::invalid_argument);
}

TEST(OverlayTest, EncapsulationAddsOverheadOnWire) {
  // A 500B frame over a UDP overlay link must appear on the physical wire
  // as frame + encapsulation + UDP/IP headers.
  OverlayEnv env(2);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  std::uint32_t wire_bytes = 0;
  env.net.add_host_tap(env.hosts[1], [&](const net::TapEvent& ev) {
    if (ev.direction == net::TapDirection::kOutgoing) wire_bytes = ev.packet->size_bytes();
  });
  d1.inject_from_vm(frame(10, 99, 500));  // unknown mac: proxy will drop, but it leaves d1
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(wire_bytes, 500u + kEthernetHeaderBytes + kEncapsulationBytes + 28u);
}

TEST(OverlayTest, StarLinkOutageDropsAndRecovers) {
  OverlayEnv env(3);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  int delivered = 0;
  d2.attach_vm(20, [&](FramePtr) { ++delivered; });
  env.overlay->register_vm(20, d2);

  // Take the d1 access link down: frames vanish silently (UDP overlay).
  env.net.set_link_down(env.hosts[1], env.net.next_hop(env.hosts[1], env.hosts[0]), true);
  d1.inject_from_vm(frame(10, 20));
  env.sim.run_until(seconds(1.0));
  EXPECT_EQ(delivered, 0);

  // Back up: traffic resumes.
  env.net.set_link_down(env.hosts[1], env.net.next_hop(env.hosts[1], env.hosts[0]), false);
  d1.inject_from_vm(frame(10, 20));
  env.sim.run_until(seconds(2.0));
  EXPECT_EQ(delivered, 1);
}

TEST(VnetDaemonTest, RemoveLinkErasesDependentRules) {
  OverlayEnv env(3);
  env.overlay->create_daemon(env.hosts[0], "proxy", true);
  VnetDaemon& d1 = env.overlay->create_daemon(env.hosts[1], "d1");
  VnetDaemon& d2 = env.overlay->create_daemon(env.hosts[2], "d2");
  env.overlay->bootstrap_star(LinkProtocol::kUdp);
  auto [a_side, b_side] = env.overlay->ensure_link(d1, d2, LinkProtocol::kUdp);
  (void)b_side;
  d1.add_rule(42, a_side);
  EXPECT_EQ(d1.rule_count(), 1u);
  d1.remove_link(a_side);
  EXPECT_EQ(d1.rule_count(), 0u);
  EXPECT_FALSE(d1.has_link(a_side));
}

// --- control plane ------------------------------------------------------------

TEST(ControlPlaneTest, ReportsCrossTheNetwork) {
  OverlayEnv env(3);
  ControlPlane control(*env.stack, env.hosts[0]);
  std::vector<std::string> reporters;
  control.register_handler("VttifUpdate", [&](const soap::XmlNode& msg) {
    reporters.push_back(msg.attributes.at("reporter"));
  });

  soap::XmlNode msg;
  msg.name = "VttifUpdate";
  msg.attributes["reporter"] = std::to_string(env.hosts[1]);
  control.send(env.hosts[1], msg);
  EXPECT_TRUE(reporters.empty());  // in flight: handshake + transfer take time
  env.sim.run_until(seconds(1.0));
  ASSERT_EQ(reporters.size(), 1u);
  EXPECT_EQ(reporters[0], std::to_string(env.hosts[1]));
  EXPECT_GT(control.bytes_shipped(), 0u);
}

TEST(ControlPlaneTest, ProxyHostShortCircuits) {
  OverlayEnv env(2);
  ControlPlane control(*env.stack, env.hosts[0]);
  int handled = 0;
  control.register_handler("Ping", [&](const soap::XmlNode&) { ++handled; });
  soap::XmlNode msg;
  msg.name = "Ping";
  control.send(env.hosts[0], msg);  // from the proxy host itself
  EXPECT_EQ(handled, 1);            // immediate, no network
  EXPECT_EQ(control.bytes_shipped(), 0u);
}

TEST(ControlPlaneTest, UnknownRootCountedAsUnhandled) {
  OverlayEnv env(2);
  ControlPlane control(*env.stack, env.hosts[0]);
  soap::XmlNode msg;
  msg.name = "Mystery";
  control.send(env.hosts[0], msg);
  EXPECT_EQ(control.messages_delivered(), 0u);  // no handler matched
  EXPECT_EQ(control.messages_unhandled(), 1u);
  EXPECT_EQ(control.parse_failures(), 0u);
}

TEST(ControlPlaneTest, ReusesOneConnectionPerHost) {
  OverlayEnv env(2);
  ControlPlane control(*env.stack, env.hosts[0]);
  int handled = 0;
  control.register_handler("Ping", [&](const soap::XmlNode&) { ++handled; });
  soap::XmlNode msg;
  msg.name = "Ping";
  for (int i = 0; i < 10; ++i) control.send(env.hosts[1], msg);
  env.sim.run_until(seconds(2.0));
  EXPECT_EQ(handled, 10);
}

}  // namespace
}  // namespace vw::vnet
