// Integration tests for the full Virtuoso runtime: daemons + star overlay,
// VM traffic observed by VTTIF, Wren measuring the physical paths through
// the VNET encapsulation, the Proxy's global views, and end-to-end
// adaptation (measure -> infer -> optimize -> migrate/re-route).

#include <gtest/gtest.h>

#include <sstream>

#include "topo/testbed.hpp"
#include "vm/apps.hpp"
#include "virtuoso/system.hpp"

namespace vw::virtuoso {
namespace {

struct ChallengeEnv {
  sim::Simulator sim;
  topo::ChallengeNetwork tb;
  std::unique_ptr<VirtuosoSystem> system;

  explicit ChallengeEnv(SystemConfig config = {}) : tb(topo::make_challenge_network(sim)) {
    system = std::make_unique<VirtuosoSystem>(sim, *tb.network, config);
    bool first = true;
    for (net::NodeId h : tb.hosts()) {
      system->add_daemon(h, tb.network->node(h).name, /*is_proxy=*/first);
      first = false;
    }
    system->bootstrap(vnet::LinkProtocol::kUdp);
  }
};

TEST(VirtuosoTest, VmTrafficFlowsThroughOverlay) {
  ChallengeEnv env;
  vm::VirtualMachine& a = env.system->create_vm("vm-a", env.tb.domain1_hosts[0]);
  vm::VirtualMachine& b = env.system->create_vm("vm-b", env.tb.domain1_hosts[1]);
  std::uint64_t got = 0;
  b.set_on_message([&](vnet::MacAddress, std::uint64_t bytes, const std::any&) { got += bytes; });
  a.send_message(b.mac(), 50'000);
  env.sim.run_until(seconds(2.0));
  EXPECT_EQ(got, 50'000u);
}

TEST(VirtuosoTest, VttifInfersApplicationTopology) {
  ChallengeEnv env;
  vm::VirtualMachine& a = env.system->create_vm("vm-a", env.tb.domain1_hosts[0]);
  vm::VirtualMachine& b = env.system->create_vm("vm-b", env.tb.domain1_hosts[1]);
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = 5e6;
  vm::apps::MatrixTrafficApp app(env.sim, {&a, &b}, demands, millis(100));
  app.start();
  env.sim.run_until(seconds(8.0));
  app.stop();
  const auto inferred = env.system->current_demands();
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_EQ(inferred[0].src, 0u);
  EXPECT_EQ(inferred[0].dst, 1u);
  // Rate within a factor of ~2 (includes headers, window smoothing ramp).
  EXPECT_GT(inferred[0].rate_bps, 2.5e6);
  EXPECT_LT(inferred[0].rate_bps, 10e6);
}

TEST(VirtuosoTest, WrenViewPopulatesForCommunicatingDaemons) {
  ChallengeEnv env;
  vm::VirtualMachine& a = env.system->create_vm("vm-a", env.tb.domain2_hosts[0]);
  vm::VirtualMachine& b = env.system->create_vm("vm-b", env.tb.domain2_hosts[1]);
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = 20e6;
  vm::apps::MatrixTrafficApp app(env.sim, {&a, &b}, demands, millis(100));
  app.start();
  env.sim.run_until(seconds(10.0));
  app.stop();
  // The daemons talk via the proxy star (UDP links carry the frames, but
  // the VNET star uses UDP here, so Wren sees... the MessageSource TCP is
  // absent). With UDP overlay links there is no TCP for Wren to mine, so
  // the view may be empty; this documents the protocol dependence.
  SUCCEED();
}

TEST(VirtuosoTest, WrenMeasuresTcpOverlayTraffic) {
  // With TCP overlay links, the VNET encapsulation itself is the TCP flow
  // Wren mines: "Wren monitors the traffic between VNET daemons".
  ChallengeEnv env;
  // Rebuild with a TCP star: create a fresh system on a fresh network.
  sim::Simulator sim2;
  topo::ChallengeNetwork tb2 = topo::make_challenge_network(sim2);
  VirtuosoSystem sys(sim2, *tb2.network, SystemConfig{});
  bool first = true;
  for (net::NodeId h : tb2.hosts()) {
    sys.add_daemon(h, tb2.network->node(h).name, first);
    first = false;
  }
  sys.bootstrap(vnet::LinkProtocol::kTcp);
  vm::VirtualMachine& a = sys.create_vm("vm-a", tb2.domain2_hosts[1]);
  vm::VirtualMachine& b = sys.create_vm("vm-b", tb2.domain2_hosts[2]);
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = 30e6;
  vm::apps::MatrixTrafficApp app(sim2, {&a, &b}, demands, millis(100));
  app.start();
  sim2.run_until(seconds(15.0));
  app.stop();
  // The proxy lives in domain 1; daemon-to-proxy-to-daemon TCP flows cross
  // the 10 Mbps inter-domain link. Wren on the sending host must have a
  // bandwidth estimate toward the proxy's host.
  const net::NodeId proxy_host = tb2.domain1_hosts[0];
  const auto bw = sys.wren_on(tb2.domain2_hosts[1]).available_bandwidth_bps(proxy_host);
  ASSERT_TRUE(bw.has_value());
  EXPECT_LT(*bw, 20e6);  // bounded by the thin inter-domain link
  EXPECT_GT(*bw, 1e6);
  // And the Proxy's global view received it through the SOAP reports.
  EXPECT_TRUE(sys.network_view().bandwidth_bps(tb2.domain2_hosts[1], proxy_host).has_value());
}

TEST(VirtuosoTest, CapacityGraphUsesViewWithFallback) {
  SystemConfig config;
  config.default_bandwidth_bps = 42e6;
  ChallengeEnv env(config);
  const vadapt::CapacityGraph g = env.system->capacity_graph();
  EXPECT_EQ(g.size(), 6u);
  EXPECT_DOUBLE_EQ(g.bandwidth(0, 1), 42e6);  // nothing measured yet: fallback
}

TEST(VirtuosoTest, AdaptationMigratesHeavyVmsToFastCluster) {
  // The end-to-end challenge-scenario loop, with the capacity graph taken
  // from ground truth (Wren feeds it in the TCP-star variant; here we
  // exercise VADAPT + migration + overlay reconfiguration).
  SystemConfig config;
  config.annealing.iterations = 2000;
  ChallengeEnv env(config);

  // Place all four VMs suboptimally: heavy trio split across the domains.
  // Small memory images so migration over the 10 Mbps inter-domain link
  // completes within the test horizon.
  const std::uint64_t mem = 4ull << 20;
  vm::VirtualMachine& v0 = env.system->create_vm("vm-0", env.tb.domain1_hosts[0], mem);
  vm::VirtualMachine& v1 = env.system->create_vm("vm-1", env.tb.domain1_hosts[1], mem);
  vm::VirtualMachine& v2 = env.system->create_vm("vm-2", env.tb.domain2_hosts[0], mem);
  vm::VirtualMachine& v3 = env.system->create_vm("vm-3", env.tb.domain2_hosts[1], mem);

  // Heavy all-to-all among VMs 0-2, light chatter to VM 3.
  vm::apps::DemandMatrix demands;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) demands[{i, j}] = 8e6;
    }
  }
  demands[{0, 3}] = 0.5e6;
  demands[{3, 0}] = 0.5e6;
  vm::apps::MatrixTrafficApp app(env.sim, {&v0, &v1, &v2, &v3}, demands, millis(100));
  app.start();
  env.sim.run_until(seconds(8.0));

  // Inject the physical truth as the measured view (stands in for Wren on
  // the UDP overlay; the TCP-star test above validates the Wren path).
  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  auto& view = env.system->network_view();
  const auto hosts = env.tb.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      view.update_bandwidth(hosts[i], hosts[j], truth.graph.bandwidth(i, j), env.sim.now());
      view.update_latency(hosts[i], hosts[j], truth.graph.latency(i, j), env.sim.now());
    }
  }

  const AdaptationOutcome outcome = env.system->adapt_now(AdaptationAlgorithm::kAnnealingGreedy);
  EXPECT_GT(outcome.migrations, 0u);
  app.stop();
  env.sim.run_until(seconds(60.0));  // let migrations complete

  // Heavy VMs all on the fast (domain 2) cluster.
  int heavy_on_fast = 0;
  for (vm::VirtualMachine* machine : {&v0, &v1, &v2}) {
    ASSERT_TRUE(machine->attached());
    const auto& d2 = env.tb.domain2_hosts;
    if (std::find(d2.begin(), d2.end(), machine->host()) != d2.end()) ++heavy_on_fast;
  }
  EXPECT_EQ(heavy_on_fast, 3);

  // Traffic still flows after migrations + re-routing.
  std::uint64_t got = 0;
  v1.set_on_message([&](vnet::MacAddress, std::uint64_t bytes, const std::any&) { got += bytes; });
  v0.send_message(v1.mac(), 10'000);
  env.sim.run_until(seconds(62.0));
  EXPECT_EQ(got, 10'000u);
}

TEST(VirtuosoTest, AutoAdaptationTriggersOnTrafficChange) {
  SystemConfig config;
  config.annealing.iterations = 300;
  // Fast VTTIF so the test converges quickly.
  config.vttif.reaction_cooldown = seconds(2.0);
  ChallengeEnv env(config);

  const std::uint64_t mem = 4ull << 20;
  vm::VirtualMachine& v0 = env.system->create_vm("vm-0", env.tb.domain1_hosts[0], mem);
  vm::VirtualMachine& v1 = env.system->create_vm("vm-1", env.tb.domain1_hosts[1], mem);

  // Ground-truth capacity view (Wren's role on the UDP overlay).
  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = env.tb.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i != j) {
        env.system->network_view().update_bandwidth(hosts[i], hosts[j],
                                                    truth.graph.bandwidth(i, j), 0);
      }
    }
  }

  env.system->enable_auto_adaptation(AdaptationAlgorithm::kGreedy, seconds(10.0));
  EXPECT_EQ(env.system->auto_adaptations(), 0u);

  // Heavy VM pair traffic appears: VTTIF detects the change and the system
  // adapts without an explicit call, moving the pair to the fast cluster.
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = 20e6;
  demands[{1, 0}] = 20e6;
  vm::apps::MatrixTrafficApp app(env.sim, {&v0, &v1}, demands, millis(100));
  app.start();
  env.sim.run_until(seconds(60.0));
  app.stop();
  env.sim.run_until(seconds(90.0));  // migrations complete

  EXPECT_GE(env.system->auto_adaptations(), 1u);
  ASSERT_TRUE(v0.attached());
  ASSERT_TRUE(v1.attached());
  const auto& d2 = env.tb.domain2_hosts;
  EXPECT_NE(std::find(d2.begin(), d2.end(), v0.host()), d2.end());
  EXPECT_NE(std::find(d2.begin(), d2.end(), v1.host()), d2.end());
}

TEST(VirtuosoTest, LoggerRecordsAdaptationEvents) {
  std::ostringstream log_sink;
  Logger logger(&log_sink, LogLevel::kInfo);
  SystemConfig config;
  config.annealing.iterations = 100;
  config.logger = &logger;
  ChallengeEnv env(config);
  env.system->create_vm("vm-0", env.tb.domain1_hosts[0], 4ull << 20);
  env.system->create_vm("vm-1", env.tb.domain1_hosts[1], 4ull << 20);
  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = env.tb.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i != j) {
        env.system->network_view().update_bandwidth(hosts[i], hosts[j],
                                                    truth.graph.bandwidth(i, j), 0);
      }
    }
  }
  env.system->adapt_now(AdaptationAlgorithm::kGreedy);
  const std::string out = log_sink.str();
  EXPECT_NE(out.find("adaptation complete"), std::string::npos);
}

TEST(VirtuosoTest, DisableAutoAdaptationStopsTriggers) {
  SystemConfig config;
  config.vttif.reaction_cooldown = seconds(1.0);
  ChallengeEnv env(config);
  vm::VirtualMachine& v0 = env.system->create_vm("vm-0", env.tb.domain1_hosts[0], 4ull << 20);
  vm::VirtualMachine& v1 = env.system->create_vm("vm-1", env.tb.domain1_hosts[1], 4ull << 20);
  env.system->enable_auto_adaptation(AdaptationAlgorithm::kGreedy, seconds(1.0));
  env.system->disable_auto_adaptation();
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = 10e6;
  vm::apps::MatrixTrafficApp app(env.sim, {&v0, &v1}, demands, millis(100));
  app.start();
  env.sim.run_until(seconds(15.0));
  EXPECT_EQ(env.system->auto_adaptations(), 0u);
}

TEST(VirtuosoTest, InstallReservationsBacksOverlayLinks) {
  SystemConfig config;
  config.annealing.iterations = 200;
  ChallengeEnv env(config);
  env.system->create_vm("vm-0", env.tb.domain1_hosts[0], 4ull << 20);
  env.system->create_vm("vm-1", env.tb.domain1_hosts[1], 4ull << 20);

  // Feed ground truth so adaptation has a capacity view.
  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = env.tb.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i != j) {
        env.system->network_view().update_bandwidth(hosts[i], hosts[j],
                                                    truth.graph.bandwidth(i, j), 0);
      }
    }
  }
  // Manufacture a demand-bearing outcome: VTTIF has no traffic yet, so
  // drive apply + reserve with an explicit configuration.
  AdaptationOutcome outcome;
  outcome.hosts = env.system->overlay().daemon_hosts();
  outcome.demands = {vadapt::Demand{0, 1, 5e6}};
  outcome.configuration.mapping = {0, 1};
  outcome.configuration.paths = {{0, 1}};
  const vadapt::CapacityGraph graph = env.system->capacity_graph();
  env.system->apply_configuration(graph, outcome.demands, outcome.configuration);
  env.sim.run_until(seconds(10.0));  // links establish, VMs settle

  const std::size_t granted = env.system->install_reservations(outcome, 0.2);
  EXPECT_EQ(granted, 1u);
  EXPECT_EQ(env.system->active_reservations(), 1u);

  // Re-installation releases the old set first (no leak/duplication).
  EXPECT_EQ(env.system->install_reservations(outcome, 0.2), 1u);
  EXPECT_EQ(env.system->active_reservations(), 1u);

  env.system->release_reservations();
  EXPECT_EQ(env.system->active_reservations(), 0u);
}

TEST(VirtuosoTest, AdaptTwiceIsStable) {
  SystemConfig config;
  config.annealing.iterations = 500;
  ChallengeEnv env(config);
  env.system->create_vm("vm-0", env.tb.domain1_hosts[0], 4ull << 20);
  env.system->create_vm("vm-1", env.tb.domain1_hosts[1], 4ull << 20);
  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  auto& view = env.system->network_view();
  const auto hosts = env.tb.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i != j) view.update_bandwidth(hosts[i], hosts[j], truth.graph.bandwidth(i, j), 0);
    }
  }
  const AdaptationOutcome first = env.system->adapt_now(AdaptationAlgorithm::kGreedy);
  env.sim.run_until(seconds(30.0));
  const AdaptationOutcome second = env.system->adapt_now(AdaptationAlgorithm::kGreedy);
  // With unchanged inputs, the second pass keeps the VMs where they are.
  EXPECT_EQ(second.migrations, 0u);
  (void)first;
}

TEST(VirtuosoTest, AdaptationEmitsTelemetry) {
  SystemConfig config;
  config.annealing.iterations = 500;
  config.multistart.chains = 2;
  ChallengeEnv env(config);
  vm::VirtualMachine& v0 = env.system->create_vm("vm-0", env.tb.domain1_hosts[0], 4ull << 20);
  vm::VirtualMachine& v1 = env.system->create_vm("vm-1", env.tb.domain2_hosts[0], 4ull << 20);
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = 5e6;
  vm::apps::MatrixTrafficApp app(env.sim, {&v0, &v1}, demands, millis(100));
  app.start();
  env.sim.run_until(seconds(8.0));
  app.stop();

  env.system->adapt_now(AdaptationAlgorithm::kMultiStartAnnealing);
  env.sim.run_until(seconds(20.0));

  ASSERT_NE(env.system->metrics(), nullptr);
  const obs::MetricsSnapshot snap = env.system->metrics()->snapshot();
  auto count_of = [&snap](std::string_view name) {
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->count : 0u;
  };
  // The optimizer ran and said so.
  EXPECT_GT(count_of("vadapt.sa.runs"), 0u);
  EXPECT_GT(count_of("vadapt.sa.iterations"), 0u);
  EXPECT_GT(count_of("vadapt.multistart.runs"), 0u);
  EXPECT_GT(count_of("virtuoso.adaptations"), 0u);
  // The surrounding loop left its own footprints.
  EXPECT_GT(count_of("vnet.frames.forwarded"), 0u);
  EXPECT_GT(count_of("vttif.updates.received"), 0u);
  EXPECT_GT(count_of("transport.udp.datagrams"), 0u);
  // Snapshot timestamps come from the virtual clock.
  EXPECT_EQ(snap.taken_at, env.sim.now());
  // The adaptation span landed in the trace.
  ASSERT_NE(env.system->tracer(), nullptr);
  bool saw_adapt_span = false;
  for (const obs::TraceEvent& ev : env.system->tracer()->events()) {
    if (ev.name == "virtuoso.adapt") saw_adapt_span = true;
  }
  EXPECT_TRUE(saw_adapt_span);
}

TEST(VirtuosoTest, TelemetryDisabledLeavesNoRegistry) {
  SystemConfig config;
  config.telemetry = false;
  ChallengeEnv env(config);
  EXPECT_EQ(env.system->metrics(), nullptr);
  EXPECT_EQ(env.system->tracer(), nullptr);
  EXPECT_FALSE(env.system->scope().enabled());
  // The system still works end to end with telemetry off.
  vm::VirtualMachine& a = env.system->create_vm("vm-a", env.tb.domain1_hosts[0]);
  vm::VirtualMachine& b = env.system->create_vm("vm-b", env.tb.domain1_hosts[1]);
  std::uint64_t got = 0;
  b.set_on_message([&](vnet::MacAddress, std::uint64_t bytes, const std::any&) { got += bytes; });
  a.send_message(b.mac(), 10'000);
  env.sim.run_until(seconds(2.0));
  EXPECT_EQ(got, 10'000u);
}

// --- the federated measurement plane (DESIGN.md §5i) -------------------------

// End-to-end over the tiered plane: daemons report into per-region control
// planes, regional proxies export vw.fedsum.v1 summaries over the root
// control plane (crossing the simulated network), and the root view is fed
// exclusively by those summaries — while heartbeats on the regional tier
// keep the Proxy's liveness belief intact and adaptation still runs.
TEST(VirtuosoFederationTest, TieredPlaneFeedsRootViewThroughSummaries) {
  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  SystemConfig config;
  config.federation.enabled = true;
  config.federation.regions = 2;
  config.federation.export_period = millis(500);
  config.federation.summary_max_pairs = 8;
  config.control_heartbeat_period = seconds(1.0);
  config.daemon_timeout = seconds(5.0);
  config.view_staleness_horizon = seconds(10.0);
  config.default_bandwidth_bps = 10e6;
  VirtuosoSystem sys(sim, *tb.network, config);

  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    sys.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  sys.bootstrap(vnet::LinkProtocol::kTcp);

  ASSERT_TRUE(sys.federation_enabled());
  ASSERT_NE(sys.region_map(), nullptr);
  EXPECT_EQ(sys.region_map()->region_count(), 2u);
  ASSERT_NE(sys.regional_proxy(0), nullptr);
  ASSERT_NE(sys.regional_proxy(1), nullptr);
  ASSERT_NE(sys.regional_control(0), nullptr);
  ASSERT_NE(sys.federation_root(), nullptr);
  ASSERT_NE(sys.measurement_scheduler(), nullptr);

  // TCP overlay traffic gives Wren something to measure on the daemons.
  vm::VirtualMachine& a = sys.create_vm("vm-a", tb.domain2_hosts[1], 8ull << 20);
  vm::VirtualMachine& b = sys.create_vm("vm-b", tb.domain2_hosts[2], 8ull << 20);
  vm::apps::DemandMatrix demands;
  demands[{0, 1}] = 30e6;
  demands[{1, 0}] = 30e6;
  vm::apps::MatrixTrafficApp app(sim, {&a, &b}, demands, millis(100));
  app.start();
  sim.run_until(seconds(15.0));
  app.stop();

  // Summaries crossed the root control plane as real traffic.
  wren::FederationRoot& root = *sys.federation_root();
  EXPECT_GT(root.summaries_applied(), 0u);
  EXPECT_GT(sys.control_plane().delivered_bytes("FederationSummary"), 0u);
  EXPECT_EQ(root.seq_gaps(), 0u);  // no outage: every summary arrived in order

  // The regional tier measured, and the exports populated the root view.
  const std::size_t regional_pairs = sys.regional_proxy(0)->view().entries().size() +
                                     sys.regional_proxy(1)->view().entries().size();
  EXPECT_GT(regional_pairs, 0u);
  EXPECT_FALSE(sys.network_view().entries().empty());
  // Cross-tier TTL contract: root timestamps are regional measurement
  // times, never later than "now".
  for (const auto& [pair, m] : sys.network_view().entries()) {
    EXPECT_LE(m.updated_at, sim.now());
  }

  // Liveness rides the regional tier: nobody was falsely declared dead.
  for (net::NodeId h : tb.hosts()) EXPECT_TRUE(sys.daemon_alive(h));
  EXPECT_EQ(sys.daemons_declared_dead(), 0u);

  // Telemetry: the federation tier registered and moved its instruments.
  ASSERT_NE(sys.metrics(), nullptr);
  EXPECT_GT(sys.metrics()->counter("wren.federation.summaries").value(), 0u);
  EXPECT_GT(sys.metrics()->counter("wren.federation.region.summaries").value(), 0u);

  // Adaptation still works end to end on the federated view.
  const AdaptationOutcome outcome = sys.adapt_now(AdaptationAlgorithm::kGreedy);
  EXPECT_EQ(outcome.hosts.size(), tb.hosts().size());
  sim.run_until(seconds(60.0));  // let migrations complete
  for (const auto& vm : sys.vms()) EXPECT_TRUE(vm->attached());
}

}  // namespace
}  // namespace vw::virtuoso
