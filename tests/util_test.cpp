// Unit tests for the util substrate: time conversion, deterministic RNG
// streams, streaming statistics, trend detection and CSV output.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/small_fn.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
#include "util/trend.hpp"

namespace vw {
namespace {

// --- time --------------------------------------------------------------------

TEST(TimeTest, SecondsRoundTrip) {
  EXPECT_EQ(seconds(1.0), kNsPerSec);
  EXPECT_EQ(seconds(0.5), kNsPerSec / 2);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3.25)), 3.25);
}

TEST(TimeTest, MillisMicros) {
  EXPECT_EQ(millis(1), 1'000'000);
  EXPECT_EQ(micros(1), 1'000);
  EXPECT_EQ(millis(1), micros(1000));
}

TEST(TimeTest, TransmissionTime) {
  // 1250 bytes at 10 Mbps = 1 ms.
  EXPECT_EQ(transmission_time(1250, 10e6), millis(1));
  // 1500 bytes at 100 Mbps = 120 us.
  EXPECT_EQ(transmission_time(1500, 100e6), micros(120));
}

TEST(TimeTest, SecondsRounding) {
  EXPECT_EQ(seconds(1e-9), 1);
  EXPECT_EQ(seconds(1.4e-9), 1);
  EXPECT_EQ(seconds(1.6e-9), 2);
}

// --- rng ---------------------------------------------------------------------

TEST(RngTest, StreamsAreDeterministic) {
  RngService svc(12345);
  Rng a = svc.stream("tcp");
  Rng b = svc.stream("tcp");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(RngTest, DifferentStreamsDiffer) {
  RngService svc(12345);
  Rng a = svc.stream("tcp");
  Rng b = svc.stream("udp");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, DifferentRootSeedsDiffer) {
  EXPECT_NE(RngService(1).seed_for("x"), RngService(2).seed_for("x"));
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// --- stats ---------------------------------------------------------------------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyExtremesAreNaN) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
  s.reset();
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStatsTest, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, Reset) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(EwmaTest, FirstSampleSetsValue) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.add(10.0);
  EXPECT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.3);
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-6);
}

TEST(EwmaTest, WeightsNewSamples) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(SlidingWindowTest, EvictsOldest) {
  SlidingWindow w(3);
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.add(v);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 4.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
}

TEST(SlidingWindowTest, MedianOddEven) {
  SlidingWindow w(10);
  for (double v : {5.0, 1.0, 3.0}) w.add(v);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
  w.add(7.0);
  EXPECT_DOUBLE_EQ(w.median(), 4.0);  // interpolated between 3 and 5
}

TEST(SlidingWindowTest, QuantileEndpoints) {
  SlidingWindow w(10);
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.add(v);
  EXPECT_DOUBLE_EQ(w.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.quantile(1.0), 4.0);
}

TEST(SlidingWindowTest, EmptyThrows) {
  SlidingWindow w(4);
  EXPECT_THROW(w.median(), std::logic_error);
  EXPECT_THROW(w.min(), std::logic_error);
}

TEST(MedianOfTest, HandlesEmptyAndValues) {
  EXPECT_FALSE(median_of({}).has_value());
  EXPECT_DOUBLE_EQ(*median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(*median_of({1.0, 9.0}), 5.0);
  EXPECT_DOUBLE_EQ(*median_of({9.0, 1.0, 5.0}), 5.0);
}

// --- trend ---------------------------------------------------------------------

TEST(TrendTest, PctOnMonotoneSeries) {
  const std::vector<double> up{1, 2, 3, 4, 5};
  const std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(pct_metric(up), 1.0);
  EXPECT_DOUBLE_EQ(pct_metric(down), 0.0);
}

TEST(TrendTest, PdtOnMonotoneSeries) {
  const std::vector<double> up{1, 2, 3, 4, 5};
  const std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(pdt_metric(up), 1.0);
  EXPECT_DOUBLE_EQ(pdt_metric(down), -1.0);
}

TEST(TrendTest, FlatSeriesNotIncreasing) {
  const std::vector<double> flat{2, 2, 2, 2, 2};
  EXPECT_EQ(detect_trend(flat), Trend::kNotIncreasing);
}

TEST(TrendTest, ShortSeriesUndecided) {
  const std::vector<double> two{1, 2};
  EXPECT_EQ(detect_trend(two), Trend::kUndecided);
}

TEST(TrendTest, IncreasingDetected) {
  const std::vector<double> up{1.0, 1.1, 1.3, 1.2, 1.5, 1.7, 1.9};
  EXPECT_EQ(detect_trend(up), Trend::kIncreasing);
}

TEST(TrendTest, NoiseNotIncreasing) {
  Rng rng(3);
  std::vector<double> noise;
  for (int i = 0; i < 50; ++i) noise.push_back(rng.uniform(0.9, 1.1));
  // Unbiased noise should not read as congestion (PCT ~ 0.5, PDT ~ 0).
  EXPECT_EQ(detect_trend(noise), Trend::kNotIncreasing);
}

TEST(TrendTest, RequireBothVetoesSawtooth) {
  // Sawtooth: mostly-increasing pairs (high PCT) but no net trend (PDT ~ 0).
  std::vector<double> sawtooth;
  for (int k = 0; k < 8; ++k) {
    for (int i = 0; i < 4; ++i) sawtooth.push_back(1.0 + 0.1 * i);
  }
  TrendParams or_rule;
  TrendParams and_rule;
  and_rule.require_both = true;
  EXPECT_EQ(detect_trend(sawtooth, or_rule), Trend::kIncreasing);      // PCT fooled
  EXPECT_EQ(detect_trend(sawtooth, and_rule), Trend::kNotIncreasing);  // PDT vetoes
  // A genuine ramp passes both rules.
  const std::vector<double> ramp{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(detect_trend(ramp, and_rule), Trend::kIncreasing);
}

TEST(TrendTest, SlopeRatioSeparatesRampFromSawtooth) {
  std::vector<double> sawtooth;
  for (int k = 0; k < 8; ++k) {
    for (int i = 0; i < 4; ++i) sawtooth.push_back(1.0 + 0.1 * i);
  }
  EXPECT_LT(slope_ratio(sawtooth), 1.0);

  Rng rng(9);
  std::vector<double> noisy_ramp;
  for (int i = 0; i < 32; ++i) {
    noisy_ramp.push_back(static_cast<double>(i) * 0.5 + rng.uniform(-1.0, 1.0));
  }
  EXPECT_GT(slope_ratio(noisy_ramp), 3.0);
}

TEST(TrendTest, SlopeRatioEdgeCases) {
  EXPECT_DOUBLE_EQ(slope_ratio(std::vector<double>{1.0, 2.0}), 0.0);  // too short
  const std::vector<double> flat{2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(slope_ratio(flat), 0.0);
  const std::vector<double> exact{1, 2, 3, 4};  // perfect fit: clamped huge
  EXPECT_GT(slope_ratio(exact), 1e6);
  const std::vector<double> down{4, 3, 2, 1};
  EXPECT_LE(slope_ratio(down), 0.0);
}

// Parameterized sweep: linear ramps with varying noise amplitude must be
// detected as increasing as long as the ramp dominates the noise.
class TrendRampTest : public ::testing::TestWithParam<double> {};

TEST_P(TrendRampTest, RampDetectedUnderNoise) {
  const double noise_amp = GetParam();
  Rng rng(17);
  std::vector<double> series;
  for (int i = 0; i < 30; ++i) {
    series.push_back(static_cast<double>(i) + rng.uniform(-noise_amp, noise_amp));
  }
  EXPECT_EQ(detect_trend(series), Trend::kIncreasing) << "noise amplitude " << noise_amp;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, TrendRampTest, ::testing::Values(0.0, 0.5, 2.0, 5.0));

// --- csv ---------------------------------------------------------------------

TEST(CsvTest, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"t", "x"});
  csv.row({1.0, 2.5});
  csv.row({2.0, 3.5});
  EXPECT_EQ(os.str(), "t,x\n1,2.5\n2,3.5\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, CellCountMismatchThrows) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
  EXPECT_THROW(csv.text_row({"x", "y", "z"}), std::invalid_argument);
}

TEST(CsvTest, TextRow) {
  std::ostringstream os;
  CsvWriter csv(os, {"name", "value"});
  csv.text_row({"alpha,beta", "1"});
  EXPECT_EQ(os.str(), "name,value\n\"alpha,beta\",1\n");
}

// --- log ---------------------------------------------------------------------

TEST(LogTest, RespectsLevel) {
  std::ostringstream os;
  Logger log(&os, LogLevel::kWarn);
  log.info("comp", "hidden");
  log.warn("comp", "shown");
  EXPECT_EQ(os.str().find("hidden"), std::string::npos);
  EXPECT_NE(os.str().find("shown"), std::string::npos);
}

TEST(LogTest, DisabledLoggerDropsEverything) {
  Logger log;
  log.error("comp", "nothing happens");  // must not crash
  EXPECT_FALSE(log.enabled(LogLevel::kError));
}

TEST(LogTest, TimestampsFromClock) {
  std::ostringstream os;
  Logger log(&os, LogLevel::kInfo, [] { return seconds(1.5); });
  log.info("comp", "msg");
  EXPECT_NE(os.str().find("[1.500000s]"), std::string::npos);
}

// --- SmallFn (the event engine's SBO callback) -------------------------------

TEST(SmallFnTest, SmallCaptureStaysInline) {
  int x = 41;
  SmallFn<int()> f = [&x] { return x + 1; };
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(), 42);
}

TEST(SmallFnTest, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > the 48-byte default
  big[7] = 7;
  SmallFn<std::uint64_t()> f = [big] { return big[7]; };
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(), 7u);
}

TEST(SmallFnTest, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(5);
  SmallFn<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 5);
  SmallFn<int()> g = std::move(f);
  EXPECT_EQ(g(), 5);
  EXPECT_TRUE(f == nullptr);  // NOLINT(bugprone-use-after-move): documented
}

TEST(SmallFnTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(0);
  EXPECT_EQ(token.use_count(), 1);
  {
    SmallFn<void()> f = [token] {};
    EXPECT_EQ(token.use_count(), 2);
    SmallFn<void()> g = std::move(f);
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
    g = nullptr;
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFnTest, HeapPayloadSurvivesMove) {
  std::array<std::uint64_t, 16> big{};
  big[0] = 99;
  SmallFn<std::uint64_t()> f = [big] { return big[0]; };
  SmallFn<std::uint64_t()> g;
  g = std::move(f);
  EXPECT_FALSE(g.is_inline());
  EXPECT_EQ(g(), 99u);
}

TEST(SmallFnTest, ReassignmentReplacesCallable) {
  SmallFn<int(int)> f = [](int v) { return v + 1; };
  EXPECT_EQ(f(1), 2);
  f = [](int v) { return v * 10; };
  EXPECT_EQ(f(3), 30);
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(LogTest, LogcatConcatenates) {
  EXPECT_EQ(logcat("a=", 1, " b=", 2.5), "a=1 b=2.5");
}

}  // namespace
}  // namespace vw
