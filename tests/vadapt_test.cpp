// Tests for VADAPT: the problem formalization (residual capacities, CEF),
// the adapted widest-path Dijkstra (property-tested against brute force),
// the greedy heuristic, simulated annealing and exhaustive search — plus
// the paper's challenge scenario, which has a known optimal placement.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "topo/testbed.hpp"
#include "util/rng.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/enumerate.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/problem.hpp"
#include "vadapt/reservations.hpp"
#include "vadapt/widest_path.hpp"

namespace vw::vadapt {
namespace {

CapacityGraph small_graph() {
  // 0 --100-- 1 --50-- 2 ; 0 --10-- 2 (all symmetric, Mbps).
  CapacityGraph g({0, 1, 2});
  g.set_symmetric_bandwidth(0, 1, 100e6);
  g.set_symmetric_bandwidth(1, 2, 50e6);
  g.set_symmetric_bandwidth(0, 2, 10e6);
  g.set_symmetric_latency(0, 1, 0.001);
  g.set_symmetric_latency(1, 2, 0.001);
  g.set_symmetric_latency(0, 2, 0.010);
  return g;
}

// --- problem / evaluation ------------------------------------------------------

TEST(ProblemTest, ValidMappingChecks) {
  EXPECT_TRUE(valid_mapping({0, 2, 1}, 3));
  EXPECT_FALSE(valid_mapping({0, 0}, 3));   // not injective
  EXPECT_FALSE(valid_mapping({0, 5}, 3));   // out of range
  EXPECT_TRUE(valid_mapping({}, 3));
}

TEST(ProblemTest, ValidPathChecks) {
  Configuration conf;
  conf.mapping = {0, 2};
  const Demand d{0, 1, 1e6};
  EXPECT_TRUE(valid_path({0, 1, 2}, conf, d, 3));
  EXPECT_TRUE(valid_path({0, 2}, conf, d, 3));
  EXPECT_FALSE(valid_path({0, 1}, conf, d, 3));     // wrong endpoint
  EXPECT_FALSE(valid_path({0, 1, 1, 2}, conf, d, 3));  // repeated vertex
  EXPECT_FALSE(valid_path({}, conf, d, 3));
}

TEST(ProblemTest, ResidualCapacitySubtraction) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 30e6}};
  Configuration conf;
  conf.mapping = {0, 2};              // VM0 on host0, VM1 on host2
  conf.paths = {{0, 1, 2}};           // via host1
  const auto residual = residual_capacities(g, demands, conf);
  EXPECT_DOUBLE_EQ(residual[0][1], 70e6);
  EXPECT_DOUBLE_EQ(residual[1][2], 20e6);
  EXPECT_DOUBLE_EQ(residual[1][0], 100e6);  // reverse untouched
  EXPECT_DOUBLE_EQ(residual[0][2], 10e6);   // direct edge untouched
}

TEST(ProblemTest, EvaluateBottleneckSum) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 30e6}};
  Configuration conf;
  conf.mapping = {0, 2};
  conf.paths = {{0, 1, 2}};
  const Evaluation ev = evaluate(g, demands, conf);
  // Residuals along the path: 70 and 20 -> bottleneck 20 Mbps.
  EXPECT_DOUBLE_EQ(ev.cost, 20e6);
  EXPECT_TRUE(ev.feasible);
}

TEST(ProblemTest, InfeasibleWhenDemandExceedsCapacity) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 60e6}};
  Configuration conf;
  conf.mapping = {0, 2};
  conf.paths = {{0, 1, 2}};
  const Evaluation ev = evaluate(g, demands, conf);
  EXPECT_FALSE(ev.feasible);
  EXPECT_LT(ev.min_residual_bps, 0);
}

TEST(ProblemTest, LatencyObjectiveRewardsShortPaths) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 1e6}};
  Configuration direct, detour;
  direct.mapping = detour.mapping = {0, 2};
  direct.paths = {{0, 2}};       // 10ms
  detour.paths = {{0, 1, 2}};    // 2ms total
  Objective obj;
  obj.kind = ObjectiveKind::kResidualBandwidthLatency;
  obj.latency_weight = 1e6;
  const double direct_latency_term = 1e6 / 0.010;
  const double detour_latency_term = 1e6 / 0.002;
  const Evaluation ev_direct = evaluate(g, demands, direct, obj);
  const Evaluation ev_detour = evaluate(g, demands, detour, obj);
  EXPECT_NEAR(ev_direct.cost, 9e6 + direct_latency_term, 1);
  EXPECT_NEAR(ev_detour.cost, 49e6 + detour_latency_term, 1);
}

TEST(ProblemTest, SharedEdgeAccumulatesLoad) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 30e6}, {2, 1, 30e6}};
  Configuration conf;
  conf.mapping = {0, 2, 1};  // VM0@h0, VM1@h2, VM2@h1
  conf.paths = {{0, 1, 2}, {1, 2}};
  const auto residual = residual_capacities(g, demands, conf);
  EXPECT_DOUBLE_EQ(residual[1][2], 50e6 - 60e6);  // both demands cross 1->2
}

// --- widest path ------------------------------------------------------------------

TEST(WidestPathTest, PrefersHighCapacityDetour) {
  const CapacityGraph g = small_graph();
  const auto path = widest_path_between(g.bandwidth_matrix(), 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (Path{0, 1, 2}));  // 50 Mbps via 1 beats 10 Mbps direct
  EXPECT_DOUBLE_EQ(widest_path_width(g.bandwidth_matrix(), 0, 2), 50e6);
}

TEST(WidestPathTest, SourceToSelf) {
  const CapacityGraph g = small_graph();
  const auto path = widest_path_between(g.bandwidth_matrix(), 1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, Path{1});
}

TEST(WidestPathTest, UnreachableReturnsNullopt) {
  std::vector<std::vector<double>> cap(3, std::vector<double>(3, 0.0));
  cap[0][1] = 5.0;
  EXPECT_FALSE(widest_path_between(cap, 0, 2).has_value());
  EXPECT_DOUBLE_EQ(widest_path_width(cap, 0, 2), 0.0);
}

TEST(WidestPathTest, NegativeResidualsActAsAbsentEdges) {
  auto g = small_graph();
  g.set_symmetric_bandwidth(0, 1, -5e6);  // exhausted by earlier routing
  const auto path = widest_path_between(g.bandwidth_matrix(), 0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (Path{0, 2, 1}));  // forced around
}

// Property test: widest path width must match brute-force enumeration of all
// simple paths on random graphs.
class WidestPathPropertyTest : public ::testing::TestWithParam<int> {};

double brute_force_width(const std::vector<std::vector<double>>& cap, HostIndex src,
                         HostIndex dst) {
  const std::size_t n = cap.size();
  std::vector<HostIndex> perm;
  std::vector<bool> used(n, false);
  double best = 0;
  std::function<void(HostIndex, double)> dfs = [&](HostIndex at, double width) {
    if (at == dst) {
      best = std::max(best, width);
      return;
    }
    for (HostIndex v = 0; v < n; ++v) {
      if (used[v] || cap[at][v] <= 0) continue;
      used[v] = true;
      dfs(v, std::min(width, cap[at][v]));
      used[v] = false;
    }
  };
  used[src] = true;
  dfs(src, std::numeric_limits<double>::infinity());
  return best;
}

TEST_P(WidestPathPropertyTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 6;
  std::vector<std::vector<double>> cap(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.chance(0.6)) cap[i][j] = rng.uniform(1.0, 100.0);
    }
  }
  for (HostIndex src = 0; src < n; ++src) {
    const WidestPathTree tree = widest_paths(cap, src);
    for (HostIndex dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      const double expect = brute_force_width(cap, src, dst);
      const double got = tree.parent[dst] ? tree.width[dst] : 0.0;
      EXPECT_NEAR(got, expect, 1e-9) << "src=" << src << " dst=" << dst << " seed=" << GetParam();
      // The extracted path's actual width must equal the claimed width.
      if (auto path = tree.path_to(dst); path && path->size() >= 2) {
        double path_width = std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k + 1 < path->size(); ++k) {
          path_width = std::min(path_width, cap[(*path)[k]][(*path)[k + 1]]);
        }
        EXPECT_NEAR(path_width, got, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, WidestPathPropertyTest, ::testing::Range(1, 9));

// --- greedy heuristic ------------------------------------------------------------

TEST(GreedyTest, ProducesValidConfiguration) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 5e6}, {1, 0, 5e6}};
  const GreedyResult result = greedy_heuristic(g, demands, 2);
  EXPECT_TRUE(valid_mapping(result.configuration.mapping, 3));
  ASSERT_EQ(result.configuration.paths.size(), demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d) {
    EXPECT_TRUE(valid_path(result.configuration.paths[d], result.configuration, demands[d], 3));
  }
  EXPECT_TRUE(result.evaluation.feasible);
}

TEST(GreedyTest, HeaviestPairGetsWidestHostPair) {
  const CapacityGraph g = small_graph();
  // Single heavy demand: the two VMs must land on the 0-1 pair (100 Mbps).
  const std::vector<Demand> demands{{0, 1, 5e6}};
  const auto mapping = greedy_mapping(g, demands, 2);
  const bool on_wide_pair = (mapping[0] == 0 && mapping[1] == 1) ||
                            (mapping[0] == 1 && mapping[1] == 0);
  EXPECT_TRUE(on_wide_pair) << mapping[0] << "," << mapping[1];
}

TEST(GreedyTest, PathsAvoidSaturatedEdges) {
  // Two demands between the same mapped hosts: the second should detour
  // when the first consumes the direct edge.
  CapacityGraph g({0, 1, 2});
  g.set_symmetric_bandwidth(0, 1, 10e6);
  g.set_symmetric_bandwidth(1, 2, 100e6);
  g.set_symmetric_bandwidth(0, 2, 100e6);
  const std::vector<Demand> demands{{0, 1, 9e6}, {0, 1, 9e6}};
  const std::vector<HostIndex> mapping{0, 1};
  const auto paths = greedy_paths(g, demands, mapping);
  // One of them must take the 0-2-1 detour.
  const bool detoured = (paths[0] == Path{0, 2, 1}) || (paths[1] == Path{0, 2, 1});
  EXPECT_TRUE(detoured);
}

TEST(GreedyTest, MoreVmsThanHostsThrows) {
  const CapacityGraph g = small_graph();
  EXPECT_THROW(greedy_mapping(g, {}, 4), std::invalid_argument);
}

TEST(GreedyTest, VmsWithoutTrafficStillMapped) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 1e6}};
  const auto mapping = greedy_mapping(g, demands, 3);  // VM2 has no demands
  EXPECT_TRUE(valid_mapping(mapping, 3));
  EXPECT_EQ(mapping.size(), 3u);
}

// --- simulated annealing -----------------------------------------------------------

TEST(AnnealingTest, RandomConfigurationIsValid) {
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 1e6}};
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Configuration conf = random_configuration(g, demands, 2, rng);
    EXPECT_TRUE(valid_mapping(conf.mapping, 3));
    EXPECT_TRUE(valid_path(conf.paths[0], conf, demands[0], 3));
  }
}

TEST(AnnealingTest, StatesRemainValidThroughPerturbation) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  AnnealingParams params;
  params.iterations = 500;
  const AnnealingResult result = simulated_annealing(sc.graph, sc.demands, sc.n_vms,
                                                     Objective{}, params, Rng(7));
  EXPECT_TRUE(valid_mapping(result.best.mapping, sc.graph.size()));
  for (std::size_t d = 0; d < sc.demands.size(); ++d) {
    EXPECT_TRUE(valid_path(result.best.paths[d], result.best, sc.demands[d], sc.graph.size()));
  }
}

TEST(AnnealingTest, BestIsMonotoneOverTrace) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  AnnealingParams params;
  params.iterations = 1000;
  const AnnealingResult result = simulated_annealing(sc.graph, sc.demands, sc.n_vms,
                                                     Objective{}, params, Rng(11));
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].best_cost, result.trace[i - 1].best_cost);
  }
  EXPECT_GE(result.best_evaluation.cost, result.trace.front().current_cost);
}

TEST(AnnealingTest, SeededWithGreedyNeverWorseThanSeed) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms);
  AnnealingParams params;
  params.iterations = 2000;
  const AnnealingResult sa = simulated_annealing(sc.graph, sc.demands, sc.n_vms, Objective{},
                                                 params, Rng(13), gh.configuration);
  EXPECT_GE(sa.best_evaluation.cost, gh.evaluation.cost);
}

TEST(AnnealingTest, TraceStrideReducesPoints) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  AnnealingParams params;
  params.iterations = 1000;
  params.trace_stride = 100;
  const AnnealingResult result = simulated_annealing(sc.graph, sc.demands, sc.n_vms,
                                                     Objective{}, params, Rng(3));
  EXPECT_EQ(result.trace.size(), 10u);
}

// --- exhaustive search ---------------------------------------------------------

TEST(ExhaustiveTest, MappingCount) {
  EXPECT_EQ(mapping_count(4, 4), 24u);
  EXPECT_EQ(mapping_count(6, 4), 360u);
  EXPECT_EQ(mapping_count(3, 4), 0u);
}

TEST(ExhaustiveTest, FindsKnownOptimum) {
  // Two VMs with one heavy demand on the small graph: the optimum maps them
  // to the 100 Mbps pair.
  const CapacityGraph g = small_graph();
  const std::vector<Demand> demands{{0, 1, 5e6}};
  const ExhaustiveResult result = exhaustive_search(g, demands, 2);
  EXPECT_EQ(result.mappings_examined, 6u);
  const auto& m = result.best.mapping;
  const bool on_wide_pair = (m[0] == 0 && m[1] == 1) || (m[0] == 1 && m[1] == 0);
  EXPECT_TRUE(on_wide_pair);
  EXPECT_DOUBLE_EQ(result.best_evaluation.cost, 95e6);
}

TEST(ExhaustiveTest, SpaceGuardThrows) {
  CapacityGraph g(std::vector<net::NodeId>(12, 0), 1.0, 0.001);
  EXPECT_THROW(exhaustive_search(g, {}, 12, Objective{}, 1000), std::invalid_argument);
}

// --- reservation planning (configuration element 4) -----------------------------

TEST(ReservationPlanTest, AggregatesSharedEdges) {
  const std::vector<Demand> demands{{0, 1, 10e6}, {2, 1, 20e6}};
  Configuration conf;
  conf.mapping = {0, 2, 1};
  conf.paths = {{0, 1, 2}, {1, 2}};  // both cross edge 1->2
  const ReservationPlan plan = plan_reservations(demands, conf, /*headroom=*/0.0);
  EXPECT_DOUBLE_EQ(plan.rate_for(0, 1), 10e6);
  EXPECT_DOUBLE_EQ(plan.rate_for(1, 2), 30e6);
  EXPECT_DOUBLE_EQ(plan.rate_for(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(plan.total_rate(), 40e6);
}

TEST(ReservationPlanTest, HeadroomScales) {
  const std::vector<Demand> demands{{0, 1, 10e6}};
  Configuration conf;
  conf.mapping = {0, 1};
  conf.paths = {{0, 1}};
  const ReservationPlan plan = plan_reservations(demands, conf, 0.5);
  EXPECT_DOUBLE_EQ(plan.rate_for(0, 1), 15e6);
}

TEST(ReservationPlanTest, CappedVariantRespectsCapacity) {
  const CapacityGraph g = small_graph();  // 0-2 direct edge is only 10 Mbps
  const std::vector<Demand> demands{{0, 1, 50e6}};
  Configuration conf;
  conf.mapping = {0, 2};
  conf.paths = {{0, 2}};
  const ReservationPlan plan = plan_reservations(g, demands, conf, 0.25);
  EXPECT_DOUBLE_EQ(plan.rate_for(0, 2), 10e6);
}

TEST(ReservationPlanTest, MismatchedPathsThrow) {
  Configuration conf;
  conf.mapping = {0, 1};
  EXPECT_THROW(plan_reservations({{0, 1, 1e6}}, conf), std::invalid_argument);
  conf.paths = {{0, 1}};
  EXPECT_THROW(plan_reservations({{0, 1, 1e6}}, conf, -0.1), std::invalid_argument);
}

// --- the challenge scenario (paper Figure 9) -----------------------------------------

TEST(ChallengeTest, OptimalPlacesHeavyVmsOnFastCluster) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const ExhaustiveResult opt = exhaustive_search(sc.graph, sc.demands, sc.n_vms);
  // VMs 0-2 (heavy all-to-all) must be on domain 2 (hosts 3,4,5).
  for (std::size_t vm = 0; vm < 3; ++vm) {
    EXPECT_GE(opt.best.mapping[vm], 3u) << "heavy VM " << vm << " not on the fast cluster";
  }
  // VM 3 (light) ends up on domain 1.
  EXPECT_LT(opt.best.mapping[3], 3u);
}

TEST(ChallengeTest, GreedyFindsOptimalMapping) {
  // The paper reports GH finds the optimal mapping for this scenario.
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms);
  for (std::size_t vm = 0; vm < 3; ++vm) {
    EXPECT_GE(gh.configuration.mapping[vm], 3u);
  }
  EXPECT_LT(gh.configuration.mapping[3], 3u);
  const ExhaustiveResult opt = exhaustive_search(sc.graph, sc.demands, sc.n_vms);
  EXPECT_NEAR(gh.evaluation.cost, opt.best_evaluation.cost,
              0.05 * std::abs(opt.best_evaluation.cost));
}

TEST(ChallengeTest, AnnealingWithGreedyReachesOptimum) {
  const topo::ChallengeScenario sc = topo::make_challenge_scenario();
  const GreedyResult gh = greedy_heuristic(sc.graph, sc.demands, sc.n_vms);
  const ExhaustiveResult opt = exhaustive_search(sc.graph, sc.demands, sc.n_vms);
  AnnealingParams params;
  params.iterations = 3000;
  const AnnealingResult sa = simulated_annealing(sc.graph, sc.demands, sc.n_vms, Objective{},
                                                 params, Rng(21), gh.configuration);
  EXPECT_GE(sa.best_evaluation.cost, 0.99 * opt.best_evaluation.cost);
}

}  // namespace
}  // namespace vw::vadapt
