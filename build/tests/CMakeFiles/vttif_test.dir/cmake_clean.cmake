file(REMOVE_RECURSE
  "CMakeFiles/vttif_test.dir/vttif_test.cpp.o"
  "CMakeFiles/vttif_test.dir/vttif_test.cpp.o.d"
  "vttif_test"
  "vttif_test.pdb"
  "vttif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vttif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
