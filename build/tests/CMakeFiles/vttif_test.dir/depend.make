# Empty dependencies file for vttif_test.
# This may be replaced when dependencies are built.
