# Empty dependencies file for vsched_test.
# This may be replaced when dependencies are built.
