file(REMOVE_RECURSE
  "CMakeFiles/vsched_test.dir/vsched_test.cpp.o"
  "CMakeFiles/vsched_test.dir/vsched_test.cpp.o.d"
  "vsched_test"
  "vsched_test.pdb"
  "vsched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
