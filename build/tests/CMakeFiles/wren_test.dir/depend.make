# Empty dependencies file for wren_test.
# This may be replaced when dependencies are built.
