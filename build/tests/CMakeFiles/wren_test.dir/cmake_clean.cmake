file(REMOVE_RECURSE
  "CMakeFiles/wren_test.dir/wren_test.cpp.o"
  "CMakeFiles/wren_test.dir/wren_test.cpp.o.d"
  "wren_test"
  "wren_test.pdb"
  "wren_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wren_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
