file(REMOVE_RECURSE
  "CMakeFiles/delack_test.dir/delack_test.cpp.o"
  "CMakeFiles/delack_test.dir/delack_test.cpp.o.d"
  "delack_test"
  "delack_test.pdb"
  "delack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
