# Empty dependencies file for delack_test.
# This may be replaced when dependencies are built.
