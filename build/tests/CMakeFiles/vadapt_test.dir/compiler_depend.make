# Empty compiler generated dependencies file for vadapt_test.
# This may be replaced when dependencies are built.
