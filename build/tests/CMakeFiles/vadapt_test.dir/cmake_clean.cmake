file(REMOVE_RECURSE
  "CMakeFiles/vadapt_test.dir/vadapt_test.cpp.o"
  "CMakeFiles/vadapt_test.dir/vadapt_test.cpp.o.d"
  "vadapt_test"
  "vadapt_test.pdb"
  "vadapt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadapt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
