# Empty dependencies file for wren_offline_test.
# This may be replaced when dependencies are built.
