# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wren_offline_test.
