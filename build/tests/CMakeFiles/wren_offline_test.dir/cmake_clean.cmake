file(REMOVE_RECURSE
  "CMakeFiles/wren_offline_test.dir/wren_offline_test.cpp.o"
  "CMakeFiles/wren_offline_test.dir/wren_offline_test.cpp.o.d"
  "wren_offline_test"
  "wren_offline_test.pdb"
  "wren_offline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wren_offline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
