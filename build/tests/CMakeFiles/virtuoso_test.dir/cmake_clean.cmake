file(REMOVE_RECURSE
  "CMakeFiles/virtuoso_test.dir/virtuoso_test.cpp.o"
  "CMakeFiles/virtuoso_test.dir/virtuoso_test.cpp.o.d"
  "virtuoso_test"
  "virtuoso_test.pdb"
  "virtuoso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtuoso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
