# Empty compiler generated dependencies file for virtuoso_test.
# This may be replaced when dependencies are built.
