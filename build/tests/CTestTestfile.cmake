# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/soap_test[1]_include.cmake")
include("/root/repo/build/tests/wren_test[1]_include.cmake")
include("/root/repo/build/tests/vnet_test[1]_include.cmake")
include("/root/repo/build/tests/vttif_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/vadapt_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/virtuoso_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/vsched_test[1]_include.cmake")
include("/root/repo/build/tests/delack_test[1]_include.cmake")
include("/root/repo/build/tests/wren_offline_test[1]_include.cmake")
