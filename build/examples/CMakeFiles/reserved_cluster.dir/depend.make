# Empty dependencies file for reserved_cluster.
# This may be replaced when dependencies are built.
