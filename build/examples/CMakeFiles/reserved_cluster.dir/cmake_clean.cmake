file(REMOVE_RECURSE
  "CMakeFiles/reserved_cluster.dir/reserved_cluster.cpp.o"
  "CMakeFiles/reserved_cluster.dir/reserved_cluster.cpp.o.d"
  "reserved_cluster"
  "reserved_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reserved_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
