# Empty dependencies file for wan_monitoring.
# This may be replaced when dependencies are built.
