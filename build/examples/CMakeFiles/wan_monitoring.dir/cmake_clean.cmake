file(REMOVE_RECURSE
  "CMakeFiles/wan_monitoring.dir/wan_monitoring.cpp.o"
  "CMakeFiles/wan_monitoring.dir/wan_monitoring.cpp.o.d"
  "wan_monitoring"
  "wan_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
