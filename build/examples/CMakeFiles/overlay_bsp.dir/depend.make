# Empty dependencies file for overlay_bsp.
# This may be replaced when dependencies are built.
