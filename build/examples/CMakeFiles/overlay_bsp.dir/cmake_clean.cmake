file(REMOVE_RECURSE
  "CMakeFiles/overlay_bsp.dir/overlay_bsp.cpp.o"
  "CMakeFiles/overlay_bsp.dir/overlay_bsp.cpp.o.d"
  "overlay_bsp"
  "overlay_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
