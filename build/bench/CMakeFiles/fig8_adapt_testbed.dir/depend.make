# Empty dependencies file for fig8_adapt_testbed.
# This may be replaced when dependencies are built.
