file(REMOVE_RECURSE
  "CMakeFiles/fig8_adapt_testbed.dir/fig8_adapt_testbed.cpp.o"
  "CMakeFiles/fig8_adapt_testbed.dir/fig8_adapt_testbed.cpp.o.d"
  "fig8_adapt_testbed"
  "fig8_adapt_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_adapt_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
