# Empty dependencies file for fig11_brite_scale.
# This may be replaced when dependencies are built.
