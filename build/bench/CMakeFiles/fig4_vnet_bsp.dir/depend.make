# Empty dependencies file for fig4_vnet_bsp.
# This may be replaced when dependencies are built.
