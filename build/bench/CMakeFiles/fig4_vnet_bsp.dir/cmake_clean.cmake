file(REMOVE_RECURSE
  "CMakeFiles/fig4_vnet_bsp.dir/fig4_vnet_bsp.cpp.o"
  "CMakeFiles/fig4_vnet_bsp.dir/fig4_vnet_bsp.cpp.o.d"
  "fig4_vnet_bsp"
  "fig4_vnet_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_vnet_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
