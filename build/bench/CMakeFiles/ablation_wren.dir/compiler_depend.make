# Empty compiler generated dependencies file for ablation_wren.
# This may be replaced when dependencies are built.
