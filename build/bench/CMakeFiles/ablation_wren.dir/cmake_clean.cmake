file(REMOVE_RECURSE
  "CMakeFiles/ablation_wren.dir/ablation_wren.cpp.o"
  "CMakeFiles/ablation_wren.dir/ablation_wren.cpp.o.d"
  "ablation_wren"
  "ablation_wren.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wren.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
