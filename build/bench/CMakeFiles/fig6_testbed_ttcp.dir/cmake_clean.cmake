file(REMOVE_RECURSE
  "CMakeFiles/fig6_testbed_ttcp.dir/fig6_testbed_ttcp.cpp.o"
  "CMakeFiles/fig6_testbed_ttcp.dir/fig6_testbed_ttcp.cpp.o.d"
  "fig6_testbed_ttcp"
  "fig6_testbed_ttcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_testbed_ttcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
