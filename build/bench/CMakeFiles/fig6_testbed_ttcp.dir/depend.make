# Empty dependencies file for fig6_testbed_ttcp.
# This may be replaced when dependencies are built.
