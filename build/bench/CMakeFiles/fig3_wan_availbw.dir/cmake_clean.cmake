file(REMOVE_RECURSE
  "CMakeFiles/fig3_wan_availbw.dir/fig3_wan_availbw.cpp.o"
  "CMakeFiles/fig3_wan_availbw.dir/fig3_wan_availbw.cpp.o.d"
  "fig3_wan_availbw"
  "fig3_wan_availbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_wan_availbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
