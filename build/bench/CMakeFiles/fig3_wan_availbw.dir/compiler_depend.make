# Empty compiler generated dependencies file for fig3_wan_availbw.
# This may be replaced when dependencies are built.
