# Empty dependencies file for active_vs_passive.
# This may be replaced when dependencies are built.
