file(REMOVE_RECURSE
  "CMakeFiles/active_vs_passive.dir/active_vs_passive.cpp.o"
  "CMakeFiles/active_vs_passive.dir/active_vs_passive.cpp.o.d"
  "active_vs_passive"
  "active_vs_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_vs_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
