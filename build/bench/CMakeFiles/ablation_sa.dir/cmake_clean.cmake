file(REMOVE_RECURSE
  "CMakeFiles/ablation_sa.dir/ablation_sa.cpp.o"
  "CMakeFiles/ablation_sa.dir/ablation_sa.cpp.o.d"
  "ablation_sa"
  "ablation_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
