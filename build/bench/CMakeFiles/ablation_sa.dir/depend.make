# Empty dependencies file for ablation_sa.
# This may be replaced when dependencies are built.
