
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_lan_availbw.cpp" "bench/CMakeFiles/fig2_lan_availbw.dir/fig2_lan_availbw.cpp.o" "gcc" "bench/CMakeFiles/fig2_lan_availbw.dir/fig2_lan_availbw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virtuoso/CMakeFiles/vw_virtuoso.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/vw_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/vadapt/CMakeFiles/vw_vadapt.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/vw_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/vttif/CMakeFiles/vw_vttif.dir/DependInfo.cmake"
  "/root/repo/build/src/vnet/CMakeFiles/vw_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/wren/CMakeFiles/vw_wren.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/vw_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vw_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
