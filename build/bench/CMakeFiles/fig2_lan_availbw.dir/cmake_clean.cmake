file(REMOVE_RECURSE
  "CMakeFiles/fig2_lan_availbw.dir/fig2_lan_availbw.cpp.o"
  "CMakeFiles/fig2_lan_availbw.dir/fig2_lan_availbw.cpp.o.d"
  "fig2_lan_availbw"
  "fig2_lan_availbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lan_availbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
