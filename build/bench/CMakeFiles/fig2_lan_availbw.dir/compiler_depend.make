# Empty compiler generated dependencies file for fig2_lan_availbw.
# This may be replaced when dependencies are built.
