# Empty compiler generated dependencies file for fig7_vttif_topology.
# This may be replaced when dependencies are built.
