file(REMOVE_RECURSE
  "CMakeFiles/fig7_vttif_topology.dir/fig7_vttif_topology.cpp.o"
  "CMakeFiles/fig7_vttif_topology.dir/fig7_vttif_topology.cpp.o.d"
  "fig7_vttif_topology"
  "fig7_vttif_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vttif_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
