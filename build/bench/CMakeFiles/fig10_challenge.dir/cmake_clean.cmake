file(REMOVE_RECURSE
  "CMakeFiles/fig10_challenge.dir/fig10_challenge.cpp.o"
  "CMakeFiles/fig10_challenge.dir/fig10_challenge.cpp.o.d"
  "fig10_challenge"
  "fig10_challenge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
