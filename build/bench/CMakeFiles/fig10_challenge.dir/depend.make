# Empty dependencies file for fig10_challenge.
# This may be replaced when dependencies are built.
