# Empty dependencies file for vw_vnet.
# This may be replaced when dependencies are built.
