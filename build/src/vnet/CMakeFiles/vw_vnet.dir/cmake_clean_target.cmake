file(REMOVE_RECURSE
  "libvw_vnet.a"
)
