file(REMOVE_RECURSE
  "CMakeFiles/vw_vnet.dir/control.cpp.o"
  "CMakeFiles/vw_vnet.dir/control.cpp.o.d"
  "CMakeFiles/vw_vnet.dir/daemon.cpp.o"
  "CMakeFiles/vw_vnet.dir/daemon.cpp.o.d"
  "CMakeFiles/vw_vnet.dir/links.cpp.o"
  "CMakeFiles/vw_vnet.dir/links.cpp.o.d"
  "CMakeFiles/vw_vnet.dir/overlay.cpp.o"
  "CMakeFiles/vw_vnet.dir/overlay.cpp.o.d"
  "libvw_vnet.a"
  "libvw_vnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_vnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
