file(REMOVE_RECURSE
  "libvw_vadapt.a"
)
