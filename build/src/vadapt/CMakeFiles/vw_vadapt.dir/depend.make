# Empty dependencies file for vw_vadapt.
# This may be replaced when dependencies are built.
