
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vadapt/annealing.cpp" "src/vadapt/CMakeFiles/vw_vadapt.dir/annealing.cpp.o" "gcc" "src/vadapt/CMakeFiles/vw_vadapt.dir/annealing.cpp.o.d"
  "/root/repo/src/vadapt/enumerate.cpp" "src/vadapt/CMakeFiles/vw_vadapt.dir/enumerate.cpp.o" "gcc" "src/vadapt/CMakeFiles/vw_vadapt.dir/enumerate.cpp.o.d"
  "/root/repo/src/vadapt/greedy.cpp" "src/vadapt/CMakeFiles/vw_vadapt.dir/greedy.cpp.o" "gcc" "src/vadapt/CMakeFiles/vw_vadapt.dir/greedy.cpp.o.d"
  "/root/repo/src/vadapt/problem.cpp" "src/vadapt/CMakeFiles/vw_vadapt.dir/problem.cpp.o" "gcc" "src/vadapt/CMakeFiles/vw_vadapt.dir/problem.cpp.o.d"
  "/root/repo/src/vadapt/reservations.cpp" "src/vadapt/CMakeFiles/vw_vadapt.dir/reservations.cpp.o" "gcc" "src/vadapt/CMakeFiles/vw_vadapt.dir/reservations.cpp.o.d"
  "/root/repo/src/vadapt/widest_path.cpp" "src/vadapt/CMakeFiles/vw_vadapt.dir/widest_path.cpp.o" "gcc" "src/vadapt/CMakeFiles/vw_vadapt.dir/widest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
