file(REMOVE_RECURSE
  "CMakeFiles/vw_vadapt.dir/annealing.cpp.o"
  "CMakeFiles/vw_vadapt.dir/annealing.cpp.o.d"
  "CMakeFiles/vw_vadapt.dir/enumerate.cpp.o"
  "CMakeFiles/vw_vadapt.dir/enumerate.cpp.o.d"
  "CMakeFiles/vw_vadapt.dir/greedy.cpp.o"
  "CMakeFiles/vw_vadapt.dir/greedy.cpp.o.d"
  "CMakeFiles/vw_vadapt.dir/problem.cpp.o"
  "CMakeFiles/vw_vadapt.dir/problem.cpp.o.d"
  "CMakeFiles/vw_vadapt.dir/reservations.cpp.o"
  "CMakeFiles/vw_vadapt.dir/reservations.cpp.o.d"
  "CMakeFiles/vw_vadapt.dir/widest_path.cpp.o"
  "CMakeFiles/vw_vadapt.dir/widest_path.cpp.o.d"
  "libvw_vadapt.a"
  "libvw_vadapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_vadapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
