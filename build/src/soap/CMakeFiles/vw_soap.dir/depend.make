# Empty dependencies file for vw_soap.
# This may be replaced when dependencies are built.
