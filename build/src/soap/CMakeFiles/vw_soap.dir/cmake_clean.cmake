file(REMOVE_RECURSE
  "CMakeFiles/vw_soap.dir/rpc.cpp.o"
  "CMakeFiles/vw_soap.dir/rpc.cpp.o.d"
  "CMakeFiles/vw_soap.dir/xml.cpp.o"
  "CMakeFiles/vw_soap.dir/xml.cpp.o.d"
  "libvw_soap.a"
  "libvw_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
