
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soap/rpc.cpp" "src/soap/CMakeFiles/vw_soap.dir/rpc.cpp.o" "gcc" "src/soap/CMakeFiles/vw_soap.dir/rpc.cpp.o.d"
  "/root/repo/src/soap/xml.cpp" "src/soap/CMakeFiles/vw_soap.dir/xml.cpp.o" "gcc" "src/soap/CMakeFiles/vw_soap.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
