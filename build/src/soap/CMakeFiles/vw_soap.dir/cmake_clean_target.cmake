file(REMOVE_RECURSE
  "libvw_soap.a"
)
