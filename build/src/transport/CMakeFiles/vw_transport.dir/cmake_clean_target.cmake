file(REMOVE_RECURSE
  "libvw_transport.a"
)
