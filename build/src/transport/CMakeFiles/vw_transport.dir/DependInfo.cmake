
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/meter.cpp" "src/transport/CMakeFiles/vw_transport.dir/meter.cpp.o" "gcc" "src/transport/CMakeFiles/vw_transport.dir/meter.cpp.o.d"
  "/root/repo/src/transport/sources.cpp" "src/transport/CMakeFiles/vw_transport.dir/sources.cpp.o" "gcc" "src/transport/CMakeFiles/vw_transport.dir/sources.cpp.o.d"
  "/root/repo/src/transport/stack.cpp" "src/transport/CMakeFiles/vw_transport.dir/stack.cpp.o" "gcc" "src/transport/CMakeFiles/vw_transport.dir/stack.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/vw_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/vw_transport.dir/tcp.cpp.o.d"
  "/root/repo/src/transport/udp.cpp" "src/transport/CMakeFiles/vw_transport.dir/udp.cpp.o" "gcc" "src/transport/CMakeFiles/vw_transport.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
