file(REMOVE_RECURSE
  "CMakeFiles/vw_transport.dir/meter.cpp.o"
  "CMakeFiles/vw_transport.dir/meter.cpp.o.d"
  "CMakeFiles/vw_transport.dir/sources.cpp.o"
  "CMakeFiles/vw_transport.dir/sources.cpp.o.d"
  "CMakeFiles/vw_transport.dir/stack.cpp.o"
  "CMakeFiles/vw_transport.dir/stack.cpp.o.d"
  "CMakeFiles/vw_transport.dir/tcp.cpp.o"
  "CMakeFiles/vw_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/vw_transport.dir/udp.cpp.o"
  "CMakeFiles/vw_transport.dir/udp.cpp.o.d"
  "libvw_transport.a"
  "libvw_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
