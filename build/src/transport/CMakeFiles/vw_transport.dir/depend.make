# Empty dependencies file for vw_transport.
# This may be replaced when dependencies are built.
