file(REMOVE_RECURSE
  "CMakeFiles/vw_virtuoso.dir/system.cpp.o"
  "CMakeFiles/vw_virtuoso.dir/system.cpp.o.d"
  "libvw_virtuoso.a"
  "libvw_virtuoso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_virtuoso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
