file(REMOVE_RECURSE
  "libvw_virtuoso.a"
)
