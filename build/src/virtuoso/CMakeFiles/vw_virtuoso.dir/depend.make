# Empty dependencies file for vw_virtuoso.
# This may be replaced when dependencies are built.
