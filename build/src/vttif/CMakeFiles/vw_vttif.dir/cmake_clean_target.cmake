file(REMOVE_RECURSE
  "libvw_vttif.a"
)
