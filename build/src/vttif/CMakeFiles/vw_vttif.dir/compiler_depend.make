# Empty compiler generated dependencies file for vw_vttif.
# This may be replaced when dependencies are built.
