file(REMOVE_RECURSE
  "CMakeFiles/vw_vttif.dir/classify.cpp.o"
  "CMakeFiles/vw_vttif.dir/classify.cpp.o.d"
  "CMakeFiles/vw_vttif.dir/global.cpp.o"
  "CMakeFiles/vw_vttif.dir/global.cpp.o.d"
  "CMakeFiles/vw_vttif.dir/local.cpp.o"
  "CMakeFiles/vw_vttif.dir/local.cpp.o.d"
  "CMakeFiles/vw_vttif.dir/matrix.cpp.o"
  "CMakeFiles/vw_vttif.dir/matrix.cpp.o.d"
  "libvw_vttif.a"
  "libvw_vttif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_vttif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
