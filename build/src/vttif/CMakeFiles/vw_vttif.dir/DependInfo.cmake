
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vttif/classify.cpp" "src/vttif/CMakeFiles/vw_vttif.dir/classify.cpp.o" "gcc" "src/vttif/CMakeFiles/vw_vttif.dir/classify.cpp.o.d"
  "/root/repo/src/vttif/global.cpp" "src/vttif/CMakeFiles/vw_vttif.dir/global.cpp.o" "gcc" "src/vttif/CMakeFiles/vw_vttif.dir/global.cpp.o.d"
  "/root/repo/src/vttif/local.cpp" "src/vttif/CMakeFiles/vw_vttif.dir/local.cpp.o" "gcc" "src/vttif/CMakeFiles/vw_vttif.dir/local.cpp.o.d"
  "/root/repo/src/vttif/matrix.cpp" "src/vttif/CMakeFiles/vw_vttif.dir/matrix.cpp.o" "gcc" "src/vttif/CMakeFiles/vw_vttif.dir/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vnet/CMakeFiles/vw_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/vw_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vw_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vw_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
