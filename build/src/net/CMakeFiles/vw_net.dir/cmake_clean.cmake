file(REMOVE_RECURSE
  "CMakeFiles/vw_net.dir/link.cpp.o"
  "CMakeFiles/vw_net.dir/link.cpp.o.d"
  "CMakeFiles/vw_net.dir/network.cpp.o"
  "CMakeFiles/vw_net.dir/network.cpp.o.d"
  "CMakeFiles/vw_net.dir/probe.cpp.o"
  "CMakeFiles/vw_net.dir/probe.cpp.o.d"
  "CMakeFiles/vw_net.dir/reservation.cpp.o"
  "CMakeFiles/vw_net.dir/reservation.cpp.o.d"
  "libvw_net.a"
  "libvw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
