# Empty compiler generated dependencies file for vw_net.
# This may be replaced when dependencies are built.
