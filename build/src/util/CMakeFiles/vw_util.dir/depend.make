# Empty dependencies file for vw_util.
# This may be replaced when dependencies are built.
