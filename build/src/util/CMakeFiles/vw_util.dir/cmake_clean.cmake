file(REMOVE_RECURSE
  "CMakeFiles/vw_util.dir/csv.cpp.o"
  "CMakeFiles/vw_util.dir/csv.cpp.o.d"
  "CMakeFiles/vw_util.dir/log.cpp.o"
  "CMakeFiles/vw_util.dir/log.cpp.o.d"
  "CMakeFiles/vw_util.dir/rng.cpp.o"
  "CMakeFiles/vw_util.dir/rng.cpp.o.d"
  "CMakeFiles/vw_util.dir/stats.cpp.o"
  "CMakeFiles/vw_util.dir/stats.cpp.o.d"
  "CMakeFiles/vw_util.dir/trend.cpp.o"
  "CMakeFiles/vw_util.dir/trend.cpp.o.d"
  "libvw_util.a"
  "libvw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
