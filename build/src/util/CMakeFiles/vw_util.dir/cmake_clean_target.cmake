file(REMOVE_RECURSE
  "libvw_util.a"
)
