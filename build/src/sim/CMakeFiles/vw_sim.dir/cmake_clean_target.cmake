file(REMOVE_RECURSE
  "libvw_sim.a"
)
