file(REMOVE_RECURSE
  "CMakeFiles/vw_sim.dir/simulator.cpp.o"
  "CMakeFiles/vw_sim.dir/simulator.cpp.o.d"
  "libvw_sim.a"
  "libvw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
