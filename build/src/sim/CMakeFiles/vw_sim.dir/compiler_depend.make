# Empty compiler generated dependencies file for vw_sim.
# This may be replaced when dependencies are built.
