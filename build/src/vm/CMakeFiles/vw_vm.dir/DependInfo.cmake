
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/apps.cpp" "src/vm/CMakeFiles/vw_vm.dir/apps.cpp.o" "gcc" "src/vm/CMakeFiles/vw_vm.dir/apps.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/vw_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/vw_vm.dir/machine.cpp.o.d"
  "/root/repo/src/vm/migration.cpp" "src/vm/CMakeFiles/vw_vm.dir/migration.cpp.o" "gcc" "src/vm/CMakeFiles/vw_vm.dir/migration.cpp.o.d"
  "/root/repo/src/vm/vsched.cpp" "src/vm/CMakeFiles/vw_vm.dir/vsched.cpp.o" "gcc" "src/vm/CMakeFiles/vw_vm.dir/vsched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vnet/CMakeFiles/vw_vnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/vw_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/vw_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vw_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
