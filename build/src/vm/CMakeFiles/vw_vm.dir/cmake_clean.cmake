file(REMOVE_RECURSE
  "CMakeFiles/vw_vm.dir/apps.cpp.o"
  "CMakeFiles/vw_vm.dir/apps.cpp.o.d"
  "CMakeFiles/vw_vm.dir/machine.cpp.o"
  "CMakeFiles/vw_vm.dir/machine.cpp.o.d"
  "CMakeFiles/vw_vm.dir/migration.cpp.o"
  "CMakeFiles/vw_vm.dir/migration.cpp.o.d"
  "CMakeFiles/vw_vm.dir/vsched.cpp.o"
  "CMakeFiles/vw_vm.dir/vsched.cpp.o.d"
  "libvw_vm.a"
  "libvw_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
