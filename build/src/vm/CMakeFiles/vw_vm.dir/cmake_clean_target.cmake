file(REMOVE_RECURSE
  "libvw_vm.a"
)
