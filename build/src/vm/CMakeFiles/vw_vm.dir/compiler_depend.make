# Empty compiler generated dependencies file for vw_vm.
# This may be replaced when dependencies are built.
