file(REMOVE_RECURSE
  "libvw_topo.a"
)
