# Empty compiler generated dependencies file for vw_topo.
# This may be replaced when dependencies are built.
