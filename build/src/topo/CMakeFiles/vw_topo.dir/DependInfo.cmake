
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/brite.cpp" "src/topo/CMakeFiles/vw_topo.dir/brite.cpp.o" "gcc" "src/topo/CMakeFiles/vw_topo.dir/brite.cpp.o.d"
  "/root/repo/src/topo/testbed.cpp" "src/topo/CMakeFiles/vw_topo.dir/testbed.cpp.o" "gcc" "src/topo/CMakeFiles/vw_topo.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vadapt/CMakeFiles/vw_vadapt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
