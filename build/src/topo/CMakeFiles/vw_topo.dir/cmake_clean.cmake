file(REMOVE_RECURSE
  "CMakeFiles/vw_topo.dir/brite.cpp.o"
  "CMakeFiles/vw_topo.dir/brite.cpp.o.d"
  "CMakeFiles/vw_topo.dir/testbed.cpp.o"
  "CMakeFiles/vw_topo.dir/testbed.cpp.o.d"
  "libvw_topo.a"
  "libvw_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
