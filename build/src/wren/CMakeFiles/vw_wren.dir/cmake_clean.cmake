file(REMOVE_RECURSE
  "CMakeFiles/vw_wren.dir/active.cpp.o"
  "CMakeFiles/vw_wren.dir/active.cpp.o.d"
  "CMakeFiles/vw_wren.dir/analyzer.cpp.o"
  "CMakeFiles/vw_wren.dir/analyzer.cpp.o.d"
  "CMakeFiles/vw_wren.dir/offline.cpp.o"
  "CMakeFiles/vw_wren.dir/offline.cpp.o.d"
  "CMakeFiles/vw_wren.dir/service.cpp.o"
  "CMakeFiles/vw_wren.dir/service.cpp.o.d"
  "CMakeFiles/vw_wren.dir/sic.cpp.o"
  "CMakeFiles/vw_wren.dir/sic.cpp.o.d"
  "CMakeFiles/vw_wren.dir/trace.cpp.o"
  "CMakeFiles/vw_wren.dir/trace.cpp.o.d"
  "CMakeFiles/vw_wren.dir/train.cpp.o"
  "CMakeFiles/vw_wren.dir/train.cpp.o.d"
  "CMakeFiles/vw_wren.dir/view.cpp.o"
  "CMakeFiles/vw_wren.dir/view.cpp.o.d"
  "libvw_wren.a"
  "libvw_wren.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vw_wren.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
