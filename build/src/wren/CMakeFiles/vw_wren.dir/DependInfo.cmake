
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wren/active.cpp" "src/wren/CMakeFiles/vw_wren.dir/active.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/active.cpp.o.d"
  "/root/repo/src/wren/analyzer.cpp" "src/wren/CMakeFiles/vw_wren.dir/analyzer.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/analyzer.cpp.o.d"
  "/root/repo/src/wren/offline.cpp" "src/wren/CMakeFiles/vw_wren.dir/offline.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/offline.cpp.o.d"
  "/root/repo/src/wren/service.cpp" "src/wren/CMakeFiles/vw_wren.dir/service.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/service.cpp.o.d"
  "/root/repo/src/wren/sic.cpp" "src/wren/CMakeFiles/vw_wren.dir/sic.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/sic.cpp.o.d"
  "/root/repo/src/wren/trace.cpp" "src/wren/CMakeFiles/vw_wren.dir/trace.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/trace.cpp.o.d"
  "/root/repo/src/wren/train.cpp" "src/wren/CMakeFiles/vw_wren.dir/train.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/train.cpp.o.d"
  "/root/repo/src/wren/view.cpp" "src/wren/CMakeFiles/vw_wren.dir/view.cpp.o" "gcc" "src/wren/CMakeFiles/vw_wren.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/vw_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/vw_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
