# Empty compiler generated dependencies file for vw_wren.
# This may be replaced when dependencies are built.
