file(REMOVE_RECURSE
  "libvw_wren.a"
)
