// Adaptive cluster: the paper's full loop on the challenge scenario.
//
// Four VMs start badly placed across two clusters (a 100 Mbps domain and a
// 1000 Mbps domain joined by a 10 Mbps link). The heavy all-to-all trio is
// split across the thin inter-domain link. Virtuoso:
//   1. carries the VM traffic over the VNET star,
//   2. infers the application topology with VTTIF,
//   3. measures the physical paths with Wren (fed here from ground truth
//      for the UDP overlay; see fig4 for the Wren-over-TCP pipeline),
//   4. runs VADAPT (greedy heuristic + multi-start simulated annealing),
//   5. migrates the VMs and re-routes the overlay,
// and the application's delivered throughput improves.
//
//   $ ./examples/adaptive_cluster [options]
//
// Telemetry options (the system-wide metrics registry + event tracer):
//   --metrics-json FILE    export the final metrics snapshot as JSON
//   --metrics-csv FILE     export the final metrics snapshot as CSV
//   --trace FILE           export Chrome trace_event JSON (about:tracing)
//   --events-jsonl FILE    export the trace events as JSONL
//   --no-telemetry         disable the observability subsystem entirely
//   --capture DIR          persist per-host vw.trace.v1 packet-trace shards

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/export.hpp"
#include "soap/telemetry.hpp"
#include "topo/testbed.hpp"
#include "virtuoso/system.hpp"
#include "vm/apps.hpp"

using namespace vw;

namespace {

struct Options {
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace;
  std::string events_jsonl;
  std::string capture_dir;
  bool telemetry = true;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires a file argument\n";
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      opt.metrics_json = need_value(i++);
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0) {
      opt.metrics_csv = need_value(i++);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = need_value(i++);
    } else if (std::strcmp(argv[i], "--events-jsonl") == 0) {
      opt.events_jsonl = need_value(i++);
    } else if (std::strcmp(argv[i], "--capture") == 0) {
      opt.capture_dir = need_value(i++);
    } else if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      opt.telemetry = false;
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      std::exit(2);
    }
  }
  return opt;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(1);
  }
  out << content;
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  virtuoso::SystemConfig config;
  config.annealing.iterations = 3000;
  config.multistart.chains = 4;  // chain 0 seeded with GH, 3 random restarts
  config.telemetry = opt.telemetry;
  config.capture_dir = opt.capture_dir;  // binary trace shards, one per host
  virtuoso::VirtuosoSystem system(sim, *tb.network, config);

  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    system.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  system.bootstrap(vnet::LinkProtocol::kUdp);

  // Bad initial placement: the heavy trio (VMs 0-2) straddles the domains.
  const std::uint64_t mem = 8ull << 20;  // small images keep migrations quick
  vm::VirtualMachine& v0 = system.create_vm("vm-0", tb.domain1_hosts[0], mem);
  vm::VirtualMachine& v1 = system.create_vm("vm-1", tb.domain1_hosts[1], mem);
  vm::VirtualMachine& v2 = system.create_vm("vm-2", tb.domain2_hosts[0], mem);
  vm::VirtualMachine& v3 = system.create_vm("vm-3", tb.domain2_hosts[1], mem);

  vm::apps::DemandMatrix demands;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) demands[{i, j}] = 8e6;  // heavy all-to-all trio
    }
  }
  demands[{0, 3}] = demands[{3, 0}] = 0.5e6;  // light chatter to VM 3
  vm::apps::MatrixTrafficApp app(sim, {&v0, &v1, &v2, &v3}, demands, millis(100));
  app.start();

  auto delivered = [&] {
    return v0.bytes_received() + v1.bytes_received() + v2.bytes_received() +
           v3.bytes_received();
  };

  // Phase 1: observe the badly placed application.
  sim.run_until(seconds(20.0));
  const std::uint64_t before_bytes = delivered();
  const double before_mbps = static_cast<double>(before_bytes) * 8.0 / 20.0 / 1e6;
  std::cout << "before adaptation: " << before_mbps << " Mb/s delivered\n";
  std::cout << "VTTIF sees " << system.current_demands().size() << " VM flows\n";

  // Feed the Proxy's network view (Wren's role; ground truth here).
  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = tb.hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      system.network_view().update_bandwidth(hosts[i], hosts[j], truth.graph.bandwidth(i, j),
                                             sim.now());
      system.network_view().update_latency(hosts[i], hosts[j], truth.graph.latency(i, j),
                                           sim.now());
    }
  }

  // Phase 2: adapt (multi-start SA, chain 0 seeded with the greedy
  // heuristic) and let the migrations play out.
  const virtuoso::AdaptationOutcome outcome =
      system.adapt_now(virtuoso::AdaptationAlgorithm::kMultiStartAnnealing);
  std::cout << "adaptation: CEF=" << outcome.evaluation.cost / 1e6 << " Mb/s, "
            << outcome.migrations << " migrations issued\n";
  sim.run_until(seconds(45.0));  // migrations complete; traffic resumes

  // Phase 3: measure the adapted placement over a fresh window.
  const std::uint64_t mid_bytes = delivered();
  sim.run_until(seconds(65.0));
  const double after_mbps = static_cast<double>(delivered() - mid_bytes) * 8.0 / 20.0 / 1e6;

  std::cout << "after adaptation:  " << after_mbps << " Mb/s delivered\n";
  for (auto [name, machine] :
       {std::pair{"vm-0", &v0}, {"vm-1", &v1}, {"vm-2", &v2}, {"vm-3", &v3}}) {
    std::cout << "  " << name << " on " << tb.network->node(machine->host()).name << "\n";
  }
  std::cout << "speedup: " << after_mbps / before_mbps << "x\n";

  // Telemetry report: query the registry through the SOAP endpoint (the
  // same path an external monitoring client would use) and print the
  // adaptation-relevant counters, then export whatever was requested.
  if (opt.telemetry) {
    const soap::TelemetryClient client(system.registry(),
                                       virtuoso::VirtuosoSystem::kTelemetryEndpoint);
    std::cout << "\n";
    obs::write_text_table(std::cout, client.query_metrics("vadapt"));
    obs::write_text_table(std::cout, client.query_metrics("virtuoso"));

    const obs::MetricsSnapshot full = system.metrics()->snapshot();
    if (!opt.metrics_json.empty()) write_file(opt.metrics_json, obs::metrics_json(full));
    if (!opt.metrics_csv.empty()) {
      std::ofstream out(opt.metrics_csv);
      obs::write_csv(out, full);
      std::cout << "wrote " << opt.metrics_csv << "\n";
    }
    if (!opt.trace.empty()) {
      write_file(opt.trace, obs::chrome_trace_json(system.tracer()->events()));
    }
    if (!opt.events_jsonl.empty()) {
      write_file(opt.events_jsonl, obs::events_jsonl(system.tracer()->events()));
    }
  }
  system.finish_capture();
  if (wren::CaptureSession* capture = system.capture()) {
    std::cout << "capture: " << capture->writers().size() << " shard(s) in " << capture->dir()
              << ", " << capture->records_captured() << " records, "
              << capture->records_dropped() << " dropped\n";
  }
  return 0;
}
