// Overlay BSP: a parallel application in VMs, its topology inferred below
// the OS.
//
// A 6-VM BSP grid application (2x3 neighbor exchange) runs over the VNET
// star on a two-cluster testbed. Nothing inside the VMs is instrumented:
// VTTIF watches the Ethernet frames each VNET daemon captures from its
// local VMs and recovers the application's communication topology, which
// is printed next to the true neighbor structure.
//
//   $ ./examples/overlay_bsp

#include <iomanip>
#include <iostream>

#include "topo/testbed.hpp"
#include "virtuoso/system.hpp"
#include "vm/apps.hpp"
#include "vttif/classify.hpp"

using namespace vw;

int main() {
  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  virtuoso::VirtuosoSystem system(sim, *tb.network, virtuoso::SystemConfig{});
  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    system.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  // TCP overlay links: BSP's barrier semantics need reliable delivery (a
  // UDP star would drop synchronized 100 KB bursts at the proxy downlink
  // and deadlock the supersteps).
  system.bootstrap(vnet::LinkProtocol::kTcp);

  // One VM per host; the BSP app exchanges 100 KB with each grid neighbor
  // every superstep, then "computes" for 20 ms.
  std::vector<vm::VirtualMachine*> vms;
  const auto hosts = tb.hosts();
  for (std::size_t i = 0; i < 6; ++i) {
    vms.push_back(&system.create_vm("vm-" + std::to_string(i), hosts[i]));
  }
  const auto neighbors = vm::apps::BspNeighborApp::grid_neighbors(2, 3);
  vm::apps::BspNeighborApp app(sim, vms, neighbors, 100'000, millis(20));
  // Let the star's TCP connections establish before the application starts
  // (VNET runs before the user's VMs boot; frames sent into a half-built
  // star would be dropped, and BSP barriers never recover from loss).
  sim.schedule_at(seconds(0.5), [&app] { app.start(); });

  sim.run_until(seconds(30.0));
  app.stop();

  std::cout << "BSP ran " << app.supersteps_completed() << " supersteps, "
            << app.messages_sent() << " messages\n\n";

  const vttif::Topology topo = system.global_vttif().current_topology();
  std::cout << "VTTIF-inferred topology (" << topo.edges.size() << " edges):\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const vttif::TopologyEdge& e : topo.edges) {
    const std::size_t src = static_cast<std::size_t>(e.src - 1);
    const std::size_t dst = static_cast<std::size_t>(e.dst - 1);
    const auto& nbrs = neighbors[src];
    const bool is_true_edge = std::find(nbrs.begin(), nbrs.end(), dst) != nbrs.end();
    std::cout << "  vm-" << src << " -> vm-" << dst << "  " << std::setw(6)
              << e.rate_bps / 1e6 << " Mb/s  (normalized " << e.normalized << ")"
              << (is_true_edge ? "" : "  [NOT a real neighbor!]") << "\n";
  }

  const vttif::Classification cls = vttif::classify_topology(topo);
  std::cout << "\npattern catalog says: " << vttif::to_string(cls.kind);
  if (cls.kind == vttif::PatternKind::kMesh2D) std::cout << " (" << cls.parameter << " rows)";
  std::cout << "\n";

  // Completeness check: every true grid edge should have been recovered.
  std::size_t missing = 0;
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    for (std::size_t j : neighbors[i]) {
      const bool found = std::any_of(topo.edges.begin(), topo.edges.end(),
                                     [&](const vttif::TopologyEdge& e) {
                                       return e.src == i + 1 && e.dst == j + 1;
                                     });
      if (!found) ++missing;
    }
  }
  std::cout << "\ntrue grid edges missing from the inference: " << missing << "\n";
  return 0;
}
