// Chaos cluster: the challenge scenario under scripted failures.
//
// The adaptive loop of examples/adaptive_cluster runs while a FaultPlan
// injects an outage on the 10 Mbps inter-domain link — the exact path the
// first adaptation migrates VMs across. The failure model has to carry the
// run:
//   * in-flight migrations see their path die, fail, and roll back to the
//     source host (no VM is ever left detached),
//   * control connections from the far cluster stall, are torn down, and
//     reconnect with exponential backoff once the link returns,
//   * the Proxy stops hearing from the far cluster's daemons, declares them
//     dead, and plans around the survivors; they resurrect on reconnect,
//   * measurements of the dead path age out of the Wren view instead of
//     steering the planner forever,
//   * each failed migration triggers a re-plan (rate-limited by the
//     adaptation cooldown) until a configuration sticks.
//
// The run is bit-for-bit deterministic for a given --seed. Exit status is
// nonzero when any resilience invariant is violated, so CI can use this as
// a smoke test.
//
//   $ ./examples/chaos_cluster [--seed N] [--metrics-json FILE]
//     [--metrics-csv FILE] [--trace FILE] [--events-jsonl FILE]
//     [--no-telemetry] [--capture DIR]
//
// --capture DIR persists every daemon host's packet-header trace as a
// vw.trace.v1 binary shard under DIR (one file per host, written by a
// dedicated writer thread behind a lock-free ring), turning each chaos run
// into a reusable measurement corpus for the vwcap-* tools and offline
// replay. Capture only observes — the run signature is bit-identical with
// and without it.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "net/fault.hpp"
#include "obs/export.hpp"
#include "soap/telemetry.hpp"
#include "topo/testbed.hpp"
#include "virtuoso/system.hpp"
#include "vm/apps.hpp"

using namespace vw;

namespace {

struct Options {
  std::uint64_t seed = 42;
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace;
  std::string events_jsonl;
  std::string capture_dir;
  bool telemetry = true;
};

Options parse_options(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires an argument\n";
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::stoull(need_value(i++));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      opt.metrics_json = need_value(i++);
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0) {
      opt.metrics_csv = need_value(i++);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = need_value(i++);
    } else if (std::strcmp(argv[i], "--events-jsonl") == 0) {
      opt.events_jsonl = need_value(i++);
    } else if (std::strcmp(argv[i], "--capture") == 0) {
      opt.capture_dir = need_value(i++);
    } else if (std::strcmp(argv[i], "--no-telemetry") == 0) {
      opt.telemetry = false;
    } else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      std::exit(2);
    }
  }
  return opt;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    std::exit(1);
  }
  out << content;
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  sim::Simulator sim;
  topo::ChallengeNetwork tb = topo::make_challenge_network(sim);

  Logger logger(&std::cout, LogLevel::kWarn, [&sim] { return sim.now(); });

  virtuoso::SystemConfig config;
  config.seed = opt.seed;
  config.telemetry = opt.telemetry;
  config.logger = &logger;
  // The failure model, all enabled:
  config.view_staleness_horizon = seconds(10.0);
  config.control_heartbeat_period = seconds(1.0);
  config.daemon_timeout = seconds(5.0);
  config.control.send_timeout = seconds(4.0);
  config.control.backoff_initial = millis(250);
  config.capture_dir = opt.capture_dir;
  virtuoso::VirtuosoSystem system(sim, *tb.network, config);

  bool first = true;
  for (net::NodeId h : tb.hosts()) {
    system.add_daemon(h, tb.network->node(h).name, first);
    first = false;
  }
  system.bootstrap(vnet::LinkProtocol::kUdp);

  // Bad initial placement: the heavy trio (VMs 0-2) straddles the domains,
  // so the first adaptation must migrate across the inter-domain link.
  const std::uint64_t mem = 8ull << 20;
  vm::VirtualMachine& v0 = system.create_vm("vm-0", tb.domain1_hosts[0], mem);
  vm::VirtualMachine& v1 = system.create_vm("vm-1", tb.domain1_hosts[1], mem);
  vm::VirtualMachine& v2 = system.create_vm("vm-2", tb.domain2_hosts[0], mem);
  vm::VirtualMachine& v3 = system.create_vm("vm-3", tb.domain2_hosts[1], mem);
  const std::vector<vm::VirtualMachine*> vms = {&v0, &v1, &v2, &v3};

  vm::apps::DemandMatrix demands;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) demands[{i, j}] = 8e6;
    }
  }
  demands[{0, 3}] = demands[{3, 0}] = 0.5e6;
  vm::apps::MatrixTrafficApp app(sim, vms, demands, millis(100));
  app.start();

  // A measurement oracle standing in for Wren-over-UDP: refresh the Proxy's
  // view every 2 s, but only for pairs whose physical path is actually up —
  // during the outage the cross-domain entries go stale and expire.
  const topo::ChallengeScenario truth = topo::make_challenge_scenario();
  const auto hosts = tb.hosts();
  sim::PeriodicTask oracle(sim, seconds(2.0), [&] {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      for (std::size_t j = 0; j < hosts.size(); ++j) {
        if (i == j || !tb.network->path_up(hosts[i], hosts[j])) continue;
        system.network_view().update_bandwidth(hosts[i], hosts[j],
                                               truth.graph.bandwidth(i, j), sim.now());
        system.network_view().update_latency(hosts[i], hosts[j], truth.graph.latency(i, j),
                                             sim.now());
      }
    }
  });

  system.enable_auto_adaptation(virtuoso::AdaptationAlgorithm::kGreedy, seconds(10.0));

  // The chaos script: the first adaptation (t~2 s) sends three migrations
  // across the inter-domain link (~10 s each); cut that link mid-flight and
  // restore it 18 s later.
  net::FaultPlan faults(sim, *tb.network, &logger);
  faults.link_outage(seconds(5.0), seconds(23.0), tb.switch1, tb.switch2);

  sim.run_until(seconds(100.0));
  app.stop();
  system.finish_capture();
  if (wren::CaptureSession* capture = system.capture()) {
    std::cout << "capture: " << capture->writers().size() << " shard(s) in " << capture->dir()
              << ", " << capture->records_captured() << " records, "
              << capture->records_dropped() << " dropped\n";
  }

  // --- report ---------------------------------------------------------------
  const vnet::ControlPlane& control = system.control_plane();
  const vm::MigrationEngine& migration = system.migration();
  std::cout << "auto adaptations:    " << system.auto_adaptations() << "\n"
            << "failure re-plans:    " << system.failure_replans() << "\n"
            << "daemons died:        " << system.daemons_declared_dead() << "\n"
            << "migrations started:  " << migration.migrations_started() << "\n"
            << "migrations failed:   " << migration.migrations_failed() << "\n"
            << "control disconnects: " << control.disconnects() << "\n"
            << "control reconnects:  " << control.reconnects() << "\n"
            << "control resends:     " << control.messages_resent() << "\n";

  // One-line run signature: equal seeds must reproduce it bit-for-bit.
  std::cout << "signature: seed=" << opt.seed;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    std::cout << " vm-" << i << "="
              << (vms[i]->attached() ? tb.network->node(vms[i]->host()).name : "DETACHED");
  }
  std::cout << " adapt=" << system.auto_adaptations() << " replans="
            << system.failure_replans() << " failed=" << migration.migrations_failed()
            << " reconnects=" << control.reconnects() << "\n";

  if (opt.telemetry) {
    const obs::MetricsSnapshot full = system.metrics()->snapshot();
    if (!opt.metrics_json.empty()) write_file(opt.metrics_json, obs::metrics_json(full));
    if (!opt.metrics_csv.empty()) {
      std::ofstream out(opt.metrics_csv);
      obs::write_csv(out, full);
      std::cout << "wrote " << opt.metrics_csv << "\n";
    }
    if (!opt.trace.empty()) {
      write_file(opt.trace, obs::chrome_trace_json(system.tracer()->events()));
    }
    if (!opt.events_jsonl.empty()) {
      write_file(opt.events_jsonl, obs::events_jsonl(system.tracer()->events()));
    }
  }

  // --- resilience invariants (CI smoke) -------------------------------------
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "CHAOS FAIL: " << what << "\n";
      ++failures;
    }
  };
  for (std::size_t i = 0; i < vms.size(); ++i) {
    check(vms[i]->attached(), "a VM was left detached");
  }
  check(migration.migrations_failed() > 0, "no migration failed during the outage");
  check(control.disconnects() > 0, "no control connection was torn down");
  check(control.reconnects() > 0, "no control connection reconnected");
  check(system.daemons_declared_dead() > 0, "no daemon was declared dead");
  check(system.failure_replans() > 0, "no re-plan followed the failed migrations");
  for (net::NodeId h : hosts) {
    check(system.daemon_alive(h), "a daemon stayed dead after the link returned");
  }
  if (failures == 0) std::cout << "chaos scenario: all resilience invariants hold\n";
  return failures == 0 ? 0 : 1;
}
