// Offline analysis: record now, analyze later.
//
// Wren's original deployment mode (the paper's online analysis extends it):
// the kernel trace is filtered for useful observations and shipped to a
// repository; analysis replays it offline. This example records a
// monitored transfer into a portable trace archive, writes it to disk,
// reads it back, and reproduces the online estimate from the file alone.
//
// It also runs the binary-capture differential: the same run is captured a
// second time through the vw.trace.v1 datapath (tap -> lock-free ring ->
// writer thread -> shard file, lossless kBlock mode), the shard is read
// back, and the replayed SIC estimates must be bit-identical to the text
// archive's. Exit status is nonzero when any estimate differs, so CI can
// use this as the capture/replay correctness gate.
//
//   $ ./examples/offline_analysis [archive-path [binary-shard-path]]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "wren/analyzer.hpp"
#include "wren/offline.hpp"
#include "wren/trace_writer.hpp"

using namespace vw;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/wren-trace.txt";
  const std::string binary_path = argc > 2 ? argv[2] : "/tmp/wren-trace.vwtrace";

  // --- capture phase -----------------------------------------------------
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId sender = net.add_host("sender");
  const net::NodeId receiver = net.add_host("receiver");
  const net::NodeId cross = net.add_host("cross");
  const net::NodeId sw = net.add_router("switch");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 100e6;
  cfg.prop_delay = micros(50);
  net.add_link(sender, sw, cfg);
  net.add_link(cross, sw, cfg);
  net.add_link(sw, receiver, cfg);
  net.compute_routes();
  transport::TransportStack stack(net);

  wren::TraceFacility trace(net, sender, 1 << 20);
  wren::OnlineAnalyzer online(net, sender);  // for comparison

  // Second capture path, same tap source: the binary datapath in lossless
  // mode (the differential below demands a complete shard).
  wren::TraceWriterParams wp;
  wp.overflow = wren::TraceWriterParams::Overflow::kBlock;
  wren::TraceWriter writer(net, sender, binary_path, wp);

  transport::CbrUdpSource cbr(stack, cross, receiver, 7000, 35e6, 1000);
  cbr.start();
  std::vector<transport::MessagePhase> phases{
      {.count = 100, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(stack, sender, receiver, 9000, phases);
  app.start();
  sim.run_until(seconds(10.0));

  const auto records = wren::filter_useful(trace.collect());
  {
    std::ofstream out(path);
    wren::write_trace(out, records);
  }
  std::cout << "captured " << records.size() << " useful records -> " << path << "\n";

  // --- offline phase (could run anywhere, any time later) ----------------
  std::ifstream in(path);
  const auto replayed = wren::read_trace(in);
  const wren::OfflineResult result = wren::analyze_offline(replayed);

  std::cout << "offline analysis: " << result.flows_analyzed << " flow(s), "
            << result.observations.size() << " observations\n";
  for (const auto& [flow, bps] : result.estimates_bps) {
    std::cout << "  flow to host " << flow.dst << ": " << bps / 1e6
              << " Mb/s available (truth: 65 Mb/s)\n";
  }
  if (auto live = online.available_bandwidth_bps(receiver)) {
    std::cout << "online analyzer said:   " << *live / 1e6 << " Mb/s\n";
  }

  // --- binary differential ------------------------------------------------
  // The vw.trace.v1 shard captured by the writer thread must replay to the
  // exact same estimates as the text archive: same records in, same SIC
  // math, bit-identical doubles out.
  writer.finish();
  const wren::BinaryTrace shard = wren::read_trace_binary_file(binary_path);
  std::cout << "binary shard: " << shard.records.size() << " records ("
            << writer.records_dropped() << " dropped) -> " << binary_path << "\n";
  const wren::OfflineResult from_binary =
      wren::analyze_offline(wren::filter_useful(shard.records));

  int failures = 0;
  if (writer.records_dropped() != 0) {
    std::cerr << "DIFFERENTIAL FAIL: lossless capture dropped records\n";
    ++failures;
  }
  if (from_binary.observations.size() != result.observations.size()) {
    std::cerr << "DIFFERENTIAL FAIL: " << from_binary.observations.size()
              << " observations from binary vs " << result.observations.size()
              << " from text\n";
    ++failures;
  }
  if (from_binary.estimates_bps.size() != result.estimates_bps.size()) {
    std::cerr << "DIFFERENTIAL FAIL: flow count mismatch\n";
    ++failures;
  }
  for (const auto& [flow, bps] : result.estimates_bps) {
    const auto it =
        std::find_if(from_binary.estimates_bps.begin(), from_binary.estimates_bps.end(),
                     [&flow](const auto& e) { return e.first == flow; });
    if (it == from_binary.estimates_bps.end()) {
      std::cerr << "DIFFERENTIAL FAIL: flow to host " << flow.dst
                << " missing from binary replay\n";
      ++failures;
    } else if (it->second != bps) {  // bit-identical, not approximately equal
      std::fprintf(stderr, "DIFFERENTIAL FAIL: flow to host %u: %.17g vs %.17g\n",
                   unsigned(flow.dst), it->second, bps);
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "binary replay differential: estimates bit-identical\n";
  }
  return failures == 0 ? 0 : 1;
}
