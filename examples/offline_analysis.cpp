// Offline analysis: record now, analyze later.
//
// Wren's original deployment mode (the paper's online analysis extends it):
// the kernel trace is filtered for useful observations and shipped to a
// repository; analysis replays it offline. This example records a
// monitored transfer into a portable trace archive, writes it to disk,
// reads it back, and reproduces the online estimate from the file alone.
//
//   $ ./examples/offline_analysis [archive-path]

#include <fstream>
#include <iostream>
#include <sstream>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "wren/analyzer.hpp"
#include "wren/offline.hpp"

using namespace vw;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/wren-trace.txt";

  // --- capture phase -----------------------------------------------------
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId sender = net.add_host("sender");
  const net::NodeId receiver = net.add_host("receiver");
  const net::NodeId cross = net.add_host("cross");
  const net::NodeId sw = net.add_router("switch");
  net::LinkConfig cfg;
  cfg.bits_per_sec = 100e6;
  cfg.prop_delay = micros(50);
  net.add_link(sender, sw, cfg);
  net.add_link(cross, sw, cfg);
  net.add_link(sw, receiver, cfg);
  net.compute_routes();
  transport::TransportStack stack(net);

  wren::TraceFacility trace(net, sender, 1 << 20);
  wren::OnlineAnalyzer online(net, sender);  // for comparison

  transport::CbrUdpSource cbr(stack, cross, receiver, 7000, 35e6, 1000);
  cbr.start();
  std::vector<transport::MessagePhase> phases{
      {.count = 100, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(stack, sender, receiver, 9000, phases);
  app.start();
  sim.run_until(seconds(10.0));

  const auto records = wren::filter_useful(trace.collect());
  {
    std::ofstream out(path);
    wren::write_trace(out, records);
  }
  std::cout << "captured " << records.size() << " useful records -> " << path << "\n";

  // --- offline phase (could run anywhere, any time later) ----------------
  std::ifstream in(path);
  const auto replayed = wren::read_trace(in);
  const wren::OfflineResult result = wren::analyze_offline(replayed);

  std::cout << "offline analysis: " << result.flows_analyzed << " flow(s), "
            << result.observations.size() << " observations\n";
  for (const auto& [flow, bps] : result.estimates_bps) {
    std::cout << "  flow to host " << flow.dst << ": " << bps / 1e6
              << " Mb/s available (truth: 65 Mb/s)\n";
  }
  if (auto live = online.available_bandwidth_bps(receiver)) {
    std::cout << "online analyzer said:   " << *live / 1e6 << " Mb/s\n";
  }
  return 0;
}
