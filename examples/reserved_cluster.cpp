// Reserved cluster: the paper's fourth adaptation lever — "reserve
// resources, when possible, to improve performance".
//
// A latency-sensitive VM pair shares a 10 Mbps wide-area link with an
// aggressive bulk transfer. The example shows:
//   1. without a reservation, the application rides a bufferbloated queue
//      (srtt inflated ~8x, dozens of loss-recovery episodes);
//   2. a 4 Mb/s path reservation (token-bucket policed priority queueing)
//      restores clean latency and zero retransmissions at the same rate;
//   3. VSched's EDF admission control guarantees an interactive VM its CPU
//      slice next to a batch VM, with best effort soaking the leftover.
//
//   $ ./examples/reserved_cluster

#include <iomanip>
#include <iostream>

#include "net/network.hpp"
#include "net/reservation.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "vm/vsched.hpp"

using namespace vw;

namespace {

/// One run of the shared-WAN scenario; returns (app rate, app message delay
/// p50-ish proxy via srtt, retransmissions).
struct RunResult {
  double app_mbps = 0;
  double app_srtt_ms = 0;
  std::uint64_t retransmissions = 0;
};

RunResult run_scenario(bool with_reservation) {
  sim::Simulator sim;
  net::Network net(sim);
  const net::NodeId site_a = net.add_host("site-a");
  const net::NodeId site_b = net.add_host("site-b");
  const net::NodeId bulk_src = net.add_host("bulk-src");
  const net::NodeId r1 = net.add_router("r1");
  const net::NodeId r2 = net.add_router("r2");
  net::LinkConfig lan;
  lan.bits_per_sec = 100e6;
  lan.prop_delay = micros(100);
  net::LinkConfig wan;
  wan.bits_per_sec = 10e6;
  wan.prop_delay = millis(10);
  net.add_link(site_a, r1, lan);
  net.add_link(bulk_src, r1, lan);
  net.add_link(r1, r2, wan);
  net.add_link(site_b, r2, lan);
  net.compute_routes();

  transport::TransportStack stack(net);
  net::ReservationManager reservations(net);

  // The latency-sensitive application: 3 Mb/s of steady messages a -> b.
  std::vector<transport::MessagePhase> phases{
      {.count = 2000, .message_bytes = 15'000, .spacing = millis(40), .pause_after = 0}};
  transport::MessageSource app(stack, site_a, site_b, 9000, phases);
  app.start();

  if (with_reservation) {
    // The app's TCP flow key: first ephemeral port on site-a is 49152.
    const net::FlowKey app_flow{site_a, site_b, 49152, 9000, net::Protocol::kTcp};
    reservations.reserve_path(app_flow, 4e6);
  }

  // The aggressor: a bulk ttcp filling the shared WAN link.
  transport::BulkTcpSource bulk(stack, bulk_src, site_b, 9100);
  bulk.start();

  sim.run_until(seconds(30.0));
  RunResult r;
  r.app_mbps = app.sink().meter().average_bps(seconds(5.0), seconds(30.0)) / 1e6;
  r.app_srtt_ms = to_seconds(app.connection().srtt()) * 1e3;
  r.retransmissions = app.connection().retransmissions();
  return r;
}

}  // namespace

int main() {
  const RunResult unprotected = run_scenario(false);
  const RunResult protected_run = run_scenario(true);

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "application (3 Mb/s offered) sharing a 10 Mb/s WAN with a bulk transfer:\n";
  std::cout << "  without reservation: " << unprotected.app_mbps << " Mb/s, srtt "
            << unprotected.app_srtt_ms << " ms, " << unprotected.retransmissions
            << " retransmissions\n";
  std::cout << "  with 4 Mb/s reservation: " << protected_run.app_mbps << " Mb/s, srtt "
            << protected_run.app_srtt_ms << " ms, " << protected_run.retransmissions
            << " retransmissions\n\n";

  // CPU side: VSched guarantees the interactive VM 20% in 5 ms periods
  // while a batch VM soaks up 70% in 1 s periods.
  sim::Simulator sim;
  vm::VSched vsched(sim);
  const auto interactive = vsched.admit("interactive-vm", {millis(5), millis(1)});
  const auto batch = vsched.admit("batch-vm", {seconds(1.0), millis(700)});
  const auto spare = vsched.add_best_effort("spare-vm");
  sim.run_until(seconds(5.0));
  vsched.admit("probe", {millis(10), millis(20)});  // forces final accounting (rejected)

  std::cout << "VSched on the host CPU over 5 s:\n";
  if (interactive) {
    const auto s = vsched.stats(*interactive);
    std::cout << "  interactive-vm (1ms/5ms): " << to_seconds(s.cpu_received)
              << " s CPU, " << s.deadlines_missed << " missed deadlines\n";
  }
  if (batch) {
    const auto s = vsched.stats(*batch);
    std::cout << "  batch-vm (700ms/1s):      " << to_seconds(s.cpu_received)
              << " s CPU, " << s.deadlines_missed << " missed deadlines\n";
  }
  std::cout << "  spare-vm (best effort):   " << to_seconds(vsched.stats(spare).cpu_received)
            << " s CPU (leftover)\n";
  return 0;
}
