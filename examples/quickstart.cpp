// Quickstart: free network measurement in ~60 lines.
//
// Build a small simulated network, run an ordinary bursty TCP application,
// and let Wren passively derive the available bandwidth and latency of the
// path from that application's own traffic — no probes injected.
//
//   $ ./examples/quickstart

#include <iostream>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "wren/analyzer.hpp"

using namespace vw;

int main() {
  // 1. A physical network: two hosts and a cross-traffic source behind one
  //    100 Mbps switch.
  sim::Simulator sim;
  net::Network network(sim);
  const net::NodeId alice = network.add_host("alice");
  const net::NodeId bob = network.add_host("bob");
  const net::NodeId cross = network.add_host("cross");
  const net::NodeId sw = network.add_router("switch");
  net::LinkConfig link;
  link.bits_per_sec = 100e6;
  link.prop_delay = micros(50);
  network.add_link(alice, sw, link);
  network.add_link(bob, sw, link);
  network.add_link(cross, sw, link);
  network.compute_routes();

  transport::TransportStack stack(network);

  // 2. Background load: 40 Mbps of CBR cross traffic toward bob, so the
  //    true available bandwidth on alice -> bob is about 60 Mbps.
  transport::CbrUdpSource cbr(stack, cross, bob, 7000, 40e6);
  cbr.start();

  // 3. The application Wren will observe: bursty messages from alice to bob
  //    that never saturate the path (about 16 Mbps offered load).
  std::vector<transport::MessagePhase> phases{
      {.count = 100, .message_bytes = 200'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(stack, alice, bob, 9000, phases);
  app.start();

  // 4. Wren: a kernel-level packet trace on alice plus online analysis.
  wren::OnlineAnalyzer wren(network, alice);
  wren.set_on_observation([&](net::NodeId peer, const wren::SicObservation& obs) {
    if (obs.congested) {
      std::cout << "  t=" << to_seconds(obs.time) << "s train at "
                << obs.isr_bps / 1e6 << " Mb/s toward host " << peer
                << " induced congestion (ACK rate " << obs.ack_rate_bps / 1e6 << " Mb/s)\n";
    }
  });

  // 5. Run 10 virtual seconds and ask Wren what it learned.
  sim.run_until(seconds(10.0));

  std::cout << "\nAfter 10s of passive observation:\n";
  std::cout << "  application throughput : "
            << app.sink().meter().average_bps(0, seconds(10.0)) / 1e6 << " Mb/s\n";
  if (auto bw = wren.available_bandwidth_bps(bob)) {
    std::cout << "  Wren available bw      : " << *bw / 1e6 << " Mb/s (truth: 60 Mb/s)\n";
  }
  if (auto lat = wren.latency_seconds(bob)) {
    std::cout << "  Wren latency           : " << *lat * 1e6 << " us one-way\n";
  }
  std::cout << "  trains analyzed        : " << wren.observations_total() << "\n";
  return 0;
}
