// WAN monitoring: Wren on an emulated wide-area path, queried over SOAP.
//
// A monitored application sends 70 KB messages across a 30 Mbps WAN
// bottleneck with a 50 ms emulated RTT while on/off TCP generators create
// varying congestion. A client polls Wren's SOAP interface — the same
// GetAvailableBandwidth / GetLatency / GetObservations methods VTTIF uses —
// and prints the measurement stream next to the SNMP-style ground truth.
//
//   $ ./examples/wan_monitoring

#include <iomanip>
#include <iostream>

#include "net/probe.hpp"
#include "soap/rpc.hpp"
#include "topo/testbed.hpp"
#include "transport/sources.hpp"
#include "transport/stack.hpp"
#include "wren/analyzer.hpp"
#include "wren/service.hpp"

using namespace vw;

int main() {
  sim::Simulator sim;
  topo::WanTestbed tb = topo::make_wan_testbed(sim, 30e6, millis(25), 2);
  transport::TransportStack stack(*tb.network);

  // Bursty cross traffic on the shared bottleneck.
  RngService rngs(7);
  transport::OnOffTcpSource cross1(stack, tb.cross_sources[0], tb.cross_sinks[0], 7100, 10e6,
                                   seconds(5.0), seconds(5.0), rngs.stream("c1"));
  transport::OnOffTcpSource cross2(stack, tb.cross_sources[1], tb.cross_sinks[1], 7101, 18e6,
                                   seconds(3.0), seconds(6.0), rngs.stream("c2"));
  cross1.start();
  cross2.start();

  // The monitored application.
  std::vector<transport::MessagePhase> phases{
      {.count = 600, .message_bytes = 70'000, .spacing = millis(100), .pause_after = 0}};
  transport::MessageSource app(stack, tb.sender, tb.receiver, 9000, phases);
  app.start();

  // Wren + its SOAP service, and a client that consumes it.
  wren::OnlineAnalyzer analyzer(*tb.network, tb.sender);
  soap::RpcRegistry registry;
  wren::WrenService service(registry, analyzer, "wren://sender");
  wren::WrenClient client(registry, "wren://sender");

  net::LinkProbe snmp(sim, tb.network->channel(tb.router_a, tb.router_b), seconds(5.0));

  std::cout << std::fixed << std::setprecision(1);
  std::cout << "time   wren_bw   truth    latency   new_obs\n";
  std::uint64_t cursor = 0;
  sim::PeriodicTask poller(sim, seconds(5.0), [&] {
    const auto bw = client.available_bandwidth_bps(tb.receiver);
    const auto lat = client.latency_seconds(tb.receiver);
    auto [batch, max_id] = client.observations(cursor);
    cursor = max_id;
    std::cout << std::setw(4) << to_seconds(sim.now()) << "s  ";
    if (bw) {
      std::cout << std::setw(5) << *bw / 1e6 << " Mb/s";
    } else {
      std::cout << "   (none) ";
    }
    std::cout << "  " << std::setw(5) << snmp.current_available_bps() / 1e6 << " Mb/s";
    if (lat) std::cout << "  " << std::setw(5) << *lat * 1e3 << " ms";
    std::cout << "   " << batch.size() << "\n";
  });

  sim.run_until(seconds(60.0));
  std::cout << "\ntotal observations streamed over SOAP: " << cursor << "\n";
  std::cout << "application delivered " << app.sink().bytes_received() / 1e6 << " MB\n";
  return 0;
}
