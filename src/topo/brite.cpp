#include "topo/brite.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>
#include <queue>
#include <set>
#include <stdexcept>

namespace vw::topo {

BriteTopology::BriteTopology(const BriteParams& params, Rng rng) : n_(params.nodes) {
  if (n_ < 2) throw std::invalid_argument("BriteTopology: need at least 2 nodes");
  positions_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    positions_.push_back({rng.uniform(0, params.plane_size), rng.uniform(0, params.plane_size)});
  }

  adj_.resize(n_);
  auto distance = [&](std::size_t a, std::size_t b) {
    const double dx = positions_[a].first - positions_[b].first;
    const double dy = positions_[a].second - positions_[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  const double max_dist = params.plane_size * std::numbers::sqrt2;

  auto add_edge = [&](std::size_t a, std::size_t b) {
    BriteEdge e;
    e.a = a;
    e.b = b;
    e.bandwidth_bps = rng.uniform(params.bw_min_mbps, params.bw_max_mbps) * 1e6;
    e.latency_s = std::max(distance(a, b) * params.delay_per_unit_s, 1e-6);
    adj_[a].push_back({b, edges_.size()});
    adj_[b].push_back({a, edges_.size()});
    edges_.push_back(e);
  };

  // Incremental growth: node i >= 1 connects to min(out_degree, i) existing
  // nodes, sampled without replacement with Waxman-factor weights.
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t targets = std::min(params.out_degree, i);
    std::set<std::size_t> chosen;
    while (chosen.size() < targets) {
      // Weighted sample over existing nodes not yet chosen.
      std::vector<double> weights(i, 0.0);
      double total = 0;
      for (std::size_t j = 0; j < i; ++j) {
        if (chosen.contains(j)) continue;
        weights[j] = params.alpha * std::exp(-distance(i, j) / (params.beta * max_dist));
        total += weights[j];
      }
      double u = rng.uniform(0.0, total);
      std::size_t pick = i - 1;
      for (std::size_t j = 0; j < i; ++j) {
        if (weights[j] <= 0) continue;
        u -= weights[j];
        if (u <= 0) {
          pick = j;
          break;
        }
      }
      while (chosen.contains(pick)) pick = (pick + 1) % i;  // numeric-edge fallback
      chosen.insert(pick);
    }
    for (std::size_t j : chosen) add_edge(i, j);
  }

  compute_routes();
}

void BriteTopology::compute_routes() {
  parent_.assign(n_, std::vector<std::int32_t>(n_, -1));
  dist_.assign(n_, std::vector<double>(n_, std::numeric_limits<double>::infinity()));
  for (std::size_t src = 0; src < n_; ++src) {
    auto& dist = dist_[src];
    auto& parent = parent_[src];
    dist[src] = 0;
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0, src});
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (auto [v, eidx] : adj_[u]) {
        const double nd = d + edges_[eidx].latency_s;
        if (nd < dist[v]) {
          dist[v] = nd;
          parent[v] = static_cast<std::int32_t>(u);
          pq.push({nd, v});
        }
      }
    }
  }
}

bool BriteTopology::connected() const {
  for (std::size_t v = 0; v < n_; ++v) {
    if (std::isinf(dist_[0][v])) return false;
  }
  return true;
}

std::pair<double, double> BriteTopology::path_metrics(std::size_t from, std::size_t to) const {
  if (from == to) return {std::numeric_limits<double>::infinity(), 0.0};
  if (std::isinf(dist_[from][to])) return {0.0, std::numeric_limits<double>::infinity()};
  double bottleneck = std::numeric_limits<double>::infinity();
  std::size_t at = to;
  while (at != from) {
    const auto prev = static_cast<std::size_t>(parent_[from][at]);
    // Find the edge prev-at (first match; parallel edges are equivalent here).
    double bw = 0;
    for (auto [peer, eidx] : adj_[prev]) {
      if (peer == at) {
        bw = edges_[eidx].bandwidth_bps;
        break;
      }
    }
    bottleneck = std::min(bottleneck, bw);
    at = prev;
  }
  return {bottleneck, dist_[from][to]};
}

vadapt::CapacityGraph BriteTopology::overlay_capacity_graph(std::size_t count, Rng& rng) const {
  if (count > n_) throw std::invalid_argument("overlay_capacity_graph: count > nodes");
  std::vector<std::size_t> all(n_);
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n_) - 1));
    std::swap(all[i], all[j]);
  }
  std::vector<net::NodeId> hosts;
  hosts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) hosts.push_back(static_cast<net::NodeId>(all[i]));

  vadapt::CapacityGraph graph(hosts);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      if (i == j) continue;
      const auto [bw, lat] = path_metrics(all[i], all[j]);
      graph.set_bandwidth(i, j, bw);
      graph.set_latency(i, j, lat);
    }
  }
  return graph;
}

BriteNetwork make_brite_network(sim::Simulator& sim, const BriteTopology& topo,
                                std::size_t host_count, Rng& rng,
                                const net::LinkConfig& access) {
  if (host_count > topo.node_count()) {
    throw std::invalid_argument("make_brite_network: host_count > nodes");
  }
  BriteNetwork out;
  out.network = std::make_unique<net::Network>(sim);
  net::Network& net = *out.network;

  out.routers.reserve(topo.node_count());
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    out.routers.push_back(net.add_router("brite-r" + std::to_string(i)));
  }
  for (const BriteEdge& e : topo.edges()) {
    net::LinkConfig cfg;
    cfg.bits_per_sec = e.bandwidth_bps;
    cfg.prop_delay = std::max<SimTime>(1, seconds(e.latency_s));
    net.add_link(out.routers[e.a], out.routers[e.b], cfg);
  }

  // Distinct attachment routers via the same partial Fisher-Yates used by
  // overlay_capacity_graph, so placement is a pure function of `rng`.
  std::vector<std::size_t> all(topo.node_count());
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = 0; i < host_count; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(topo.node_count()) - 1));
    std::swap(all[i], all[j]);
  }
  net::LinkConfig access_cfg = access;
  access_cfg.prop_delay = std::max<SimTime>(1, access_cfg.prop_delay);
  out.hosts.reserve(host_count);
  out.host_router.reserve(host_count);
  for (std::size_t i = 0; i < host_count; ++i) {
    const net::NodeId h = net.add_host("brite-h" + std::to_string(i));
    net.add_link(h, out.routers[all[i]], access_cfg);
    out.hosts.push_back(h);
    out.host_router.push_back(all[i]);
  }
  net.compute_routes();
  return out;
}

}  // namespace vw::topo
