#include "topo/testbed.hpp"

namespace vw::topo {

namespace {
net::LinkConfig lan_link(double bps) {
  net::LinkConfig cfg;
  cfg.bits_per_sec = bps;
  cfg.prop_delay = micros(50);
  cfg.queue_limit_bytes = 256 * 1024;
  return cfg;
}

net::LinkConfig wan_link(double bps, SimTime delay) {
  net::LinkConfig cfg;
  cfg.bits_per_sec = bps;
  cfg.prop_delay = delay;
  cfg.queue_limit_bytes = 512 * 1024;
  return cfg;
}
}  // namespace

LanTestbed make_lan_testbed(sim::Simulator& sim, double capacity_bps) {
  LanTestbed tb;
  tb.network = std::make_unique<net::Network>(sim);
  tb.sender = tb.network->add_host("sender");
  tb.receiver = tb.network->add_host("receiver");
  tb.cross_source = tb.network->add_host("cross");
  tb.switch_node = tb.network->add_router("switch");
  tb.network->add_link(tb.sender, tb.switch_node, lan_link(capacity_bps));
  tb.network->add_link(tb.cross_source, tb.switch_node, lan_link(capacity_bps));
  tb.network->add_link(tb.switch_node, tb.receiver, lan_link(capacity_bps));
  tb.network->compute_routes();
  return tb;
}

WanTestbed make_wan_testbed(sim::Simulator& sim, double bottleneck_bps,
                            SimTime monitored_one_way_extra, std::size_t cross_pairs) {
  WanTestbed tb;
  tb.network = std::make_unique<net::Network>(sim);
  tb.sender = tb.network->add_host("sender");
  tb.receiver = tb.network->add_host("receiver");
  tb.router_a = tb.network->add_router("router-a");
  tb.router_b = tb.network->add_router("router-b");
  tb.network->add_link(tb.sender, tb.router_a, lan_link(100e6));
  tb.network->add_link(tb.receiver, tb.router_b, lan_link(100e6));
  tb.network->add_link(tb.router_a, tb.router_b, wan_link(bottleneck_bps, millis(10)));
  for (std::size_t i = 0; i < cross_pairs; ++i) {
    const net::NodeId src = tb.network->add_host("cross-src-" + std::to_string(i));
    const net::NodeId dst = tb.network->add_host("cross-dst-" + std::to_string(i));
    tb.network->add_link(src, tb.router_a, lan_link(100e6));
    tb.network->add_link(dst, tb.router_b, lan_link(100e6));
    tb.cross_sources.push_back(src);
    tb.cross_sinks.push_back(dst);
  }
  tb.network->compute_routes();
  // NistNet adds latency to the monitored path only (50 ms RTT in the paper).
  tb.network->add_endpoint_delay(tb.sender, tb.receiver, monitored_one_way_extra);
  // The cross-traffic generators see emulated latencies of their own (the
  // paper used 20..100 ms): stagger them.
  for (std::size_t i = 0; i < cross_pairs; ++i) {
    tb.network->add_endpoint_delay(tb.cross_sources[i], tb.cross_sinks[i],
                                   millis(10 + 15 * static_cast<std::int64_t>(i)));
  }
  return tb;
}

NwuWmTestbed make_nwu_wm_network(sim::Simulator& sim) {
  NwuWmTestbed tb;
  tb.network = std::make_unique<net::Network>(sim);
  tb.minet1 = tb.network->add_host("minet-1.cs.northwestern.edu");
  tb.minet2 = tb.network->add_host("minet-2.cs.northwestern.edu");
  tb.lr3 = tb.network->add_host("lr3.cs.wm.edu");
  tb.lr4 = tb.network->add_host("lr4.cs.wm.edu");
  tb.nwu_switch = tb.network->add_router("nwu-switch");
  tb.wm_switch = tb.network->add_router("wm-switch");
  // NWU machines measure ~90 Mbps to each other (fast ethernet);
  // W&M machines ~75 Mbps; the shared Abilene path carries ~10 Mbps.
  tb.network->add_link(tb.minet1, tb.nwu_switch, lan_link(100e6));
  tb.network->add_link(tb.minet2, tb.nwu_switch, lan_link(100e6));
  tb.network->add_link(tb.lr3, tb.wm_switch, lan_link(80e6));
  tb.network->add_link(tb.lr4, tb.wm_switch, lan_link(80e6));
  tb.network->add_link(tb.nwu_switch, tb.wm_switch, wan_link(12e6, millis(12)));
  tb.network->compute_routes();
  return tb;
}

vadapt::CapacityGraph nwu_wm_capacity_graph() {
  // The measured TTCP matrix of Figure 6 (Mb/s), hosts in the order
  // minet-1, minet-2, lr3, lr4.
  vadapt::CapacityGraph g({0, 1, 2, 3});
  const double mbps = 1e6;
  // Intra-NWU.
  g.set_bandwidth(0, 1, 91.6 * mbps);
  g.set_bandwidth(1, 0, 89.8 * mbps);
  // Intra-W&M.
  g.set_bandwidth(2, 3, 74.2 * mbps);
  g.set_bandwidth(3, 2, 75.4 * mbps);
  // Cross-site (shared Abilene connection).
  for (auto [a, b, f, r] : {std::tuple{0, 2, 9.2, 10.1},
                            std::tuple{0, 3, 9.6, 10.0},
                            std::tuple{1, 2, 10.2, 10.4},
                            std::tuple{1, 3, 10.6, 10.8}}) {
    g.set_bandwidth(static_cast<std::size_t>(a), static_cast<std::size_t>(b), f * mbps);
    g.set_bandwidth(static_cast<std::size_t>(b), static_cast<std::size_t>(a), r * mbps);
  }
  // Latencies: sub-millisecond inside a site, ~24 ms across.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      const bool same_site = (i < 2) == (j < 2);
      g.set_latency(i, j, same_site ? 0.0002 : 0.024);
    }
  }
  return g;
}

ChallengeScenario make_challenge_scenario(double heavy_bps, double light_bps) {
  ChallengeScenario sc{vadapt::CapacityGraph({0, 1, 2, 3, 4, 5}), {}, 4};
  auto& g = sc.graph;
  const auto domain_of = [](std::size_t h) { return h < 3 ? 1 : 2; };
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (i == j) continue;
      if (domain_of(i) != domain_of(j)) {
        g.set_bandwidth(i, j, 10e6);
        g.set_latency(i, j, 0.020);
      } else if (domain_of(i) == 1) {
        g.set_bandwidth(i, j, 100e6);
        g.set_latency(i, j, 0.0002);
      } else {
        g.set_bandwidth(i, j, 1000e6);
        g.set_latency(i, j, 0.0001);
      }
    }
  }
  // VMs 0-2: heavy all-to-all; VM 3: light, attached to VM 0.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) sc.demands.push_back({i, j, heavy_bps});
    }
  }
  sc.demands.push_back({3, 0, light_bps});
  sc.demands.push_back({0, 3, light_bps});
  return sc;
}

std::vector<net::NodeId> ChallengeNetwork::hosts() const {
  std::vector<net::NodeId> all = domain1_hosts;
  all.insert(all.end(), domain2_hosts.begin(), domain2_hosts.end());
  return all;
}

ChallengeNetwork make_challenge_network(sim::Simulator& sim) {
  ChallengeNetwork tb;
  tb.network = std::make_unique<net::Network>(sim);
  tb.switch1 = tb.network->add_router("switch-domain1");
  tb.switch2 = tb.network->add_router("switch-domain2");
  for (int i = 0; i < 3; ++i) {
    const net::NodeId h = tb.network->add_host("d1-host-" + std::to_string(i));
    tb.network->add_link(h, tb.switch1, lan_link(100e6));
    tb.domain1_hosts.push_back(h);
  }
  for (int i = 0; i < 3; ++i) {
    const net::NodeId h = tb.network->add_host("d2-host-" + std::to_string(i));
    tb.network->add_link(h, tb.switch2, lan_link(1000e6));
    tb.domain2_hosts.push_back(h);
  }
  tb.network->add_link(tb.switch1, tb.switch2, wan_link(10e6, millis(10)));
  tb.network->compute_routes();
  return tb;
}

}  // namespace vw::topo
