#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "vadapt/problem.hpp"

// Builders for the paper's experimental environments:
//  * a controlled-load LAN (Figure 2),
//  * a NistNet-emulated WAN with on/off cross traffic (Figure 3),
//  * the Northwestern / William & Mary 4-host two-domain testbed
//    (Figures 4, 6, 8),
//  * the two-cluster "challenge" scenario (Figures 9 and 10).

namespace vw::topo {

/// Figure 2: sender and cross-traffic source share the switch->receiver
/// bottleneck on a 100 Mbps LAN.
struct LanTestbed {
  std::unique_ptr<net::Network> network;
  net::NodeId sender = 0;
  net::NodeId receiver = 0;
  net::NodeId cross_source = 0;
  net::NodeId switch_node = 0;
};
LanTestbed make_lan_testbed(sim::Simulator& sim, double capacity_bps = 100e6);

/// Figure 3: two sites joined by a bottleneck WAN link; NistNet-style extra
/// latency on the monitored path; cross-traffic hosts on each side.
struct WanTestbed {
  std::unique_ptr<net::Network> network;
  net::NodeId sender = 0;
  net::NodeId receiver = 0;
  std::vector<net::NodeId> cross_sources;
  std::vector<net::NodeId> cross_sinks;
  net::NodeId router_a = 0;
  net::NodeId router_b = 0;
};
WanTestbed make_wan_testbed(sim::Simulator& sim, double bottleneck_bps = 30e6,
                            SimTime monitored_one_way_extra = millis(25),
                            std::size_t cross_pairs = 3);

/// Figures 4/6/8: minet-1/2 at NWU, lr3/lr4 at W&M, a thin shared
/// wide-area path between the sites.
struct NwuWmTestbed {
  std::unique_ptr<net::Network> network;
  net::NodeId minet1 = 0;
  net::NodeId minet2 = 0;
  net::NodeId lr3 = 0;
  net::NodeId lr4 = 0;
  net::NodeId nwu_switch = 0;
  net::NodeId wm_switch = 0;

  std::vector<net::NodeId> hosts() const { return {minet1, minet2, lr3, lr4}; }
};
NwuWmTestbed make_nwu_wm_network(sim::Simulator& sim);

/// The measured capacity graph of the NWU/W&M testbed (the TTCP numbers of
/// Figure 6), used by the Figure 8 adaptation study.
vadapt::CapacityGraph nwu_wm_capacity_graph();

/// The Figure 9 challenge scenario: domain 1 is a 100 Mbps cluster
/// (hosts 0-2), domain 2 a 1000 Mbps cluster (hosts 3-5), joined by a
/// 10 Mbps inter-domain link. VMs 0-2 talk heavily all-to-all; VM 3 talks
/// lightly to VM 0. Optimal: VMs 0-2 on domain 2, VM 3 on domain 1.
struct ChallengeScenario {
  vadapt::CapacityGraph graph;
  std::vector<vadapt::Demand> demands;
  std::size_t n_vms = 4;
};
ChallengeScenario make_challenge_scenario(double heavy_bps = 20e6, double light_bps = 1e6);

/// Packet-level version of the challenge scenario (for the end-to-end
/// adaptation example): two clusters of three hosts behind switches.
struct ChallengeNetwork {
  std::unique_ptr<net::Network> network;
  std::vector<net::NodeId> domain1_hosts;  ///< 100 Mbps cluster
  std::vector<net::NodeId> domain2_hosts;  ///< 1000 Mbps cluster
  net::NodeId switch1 = 0;
  net::NodeId switch2 = 0;

  std::vector<net::NodeId> hosts() const;
};
ChallengeNetwork make_challenge_network(sim::Simulator& sim);

}  // namespace vw::topo
