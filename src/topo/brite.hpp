#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"
#include "vadapt/problem.hpp"

// BRITE-style Waxman flat-router topology generation (paper §4.4.4: a
// 256-node BRITE physical topology, Waxman flat-router model, bandwidth
// uniform in [10, 1024] units, out-degree 2).
//
// Nodes are placed uniformly on a plane and added incrementally; each new
// node attaches to `out_degree` existing nodes chosen with probability
// proportional to the Waxman factor alpha * exp(-d / (beta * L)).

namespace vw::topo {

struct BriteParams {
  std::size_t nodes = 256;
  std::size_t out_degree = 2;
  double alpha = 0.15;
  double beta = 0.2;
  double plane_size = 1000.0;
  double bw_min_mbps = 10.0;
  double bw_max_mbps = 1024.0;
  /// Per-unit-distance propagation delay (seconds); latency = dist * this.
  double delay_per_unit_s = 10e-6;
};

struct BriteEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double bandwidth_bps = 0;
  double latency_s = 0;
};

class BriteTopology {
 public:
  BriteTopology(const BriteParams& params, Rng rng);

  std::size_t node_count() const { return n_; }
  const std::vector<BriteEdge>& edges() const { return edges_; }
  const std::vector<std::pair<double, double>>& positions() const { return positions_; }

  /// True when every node can reach every other.
  bool connected() const;

  /// Routed path metrics between two nodes (shortest-latency routing, as IP
  /// would): bottleneck bandwidth and total latency. Returns {0, inf} when
  /// unreachable.
  std::pair<double, double> path_metrics(std::size_t from, std::size_t to) const;

  /// Choose `count` distinct random nodes to run VNET daemons and build the
  /// overlay capacity graph: each overlay link is the underlying routed
  /// path, with its bottleneck bandwidth and summed latency.
  vadapt::CapacityGraph overlay_capacity_graph(std::size_t count, Rng& rng) const;

 private:
  void compute_routes();

  std::size_t n_;
  std::vector<std::pair<double, double>> positions_;
  std::vector<BriteEdge> edges_;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj_;  ///< (peer, edge idx)
  // Routing tables: for each source, predecessor on shortest-latency path.
  std::vector<std::vector<std::int32_t>> parent_;
  std::vector<std::vector<double>> dist_;
};

/// A packet-level net::Network instantiated from a BRITE topology: one
/// router per BRITE node (links carry the generated bandwidth and latency),
/// plus `host_count` end hosts attached to distinct randomly chosen routers
/// over access links. Built for the sharded-engine scale-up runs: the router
/// mesh gives Network::partition a real edge-cut to optimize, and the BRITE
/// latencies (tens of microseconds and up) give it usable lookahead.
struct BriteNetwork {
  std::unique_ptr<net::Network> network;
  std::vector<net::NodeId> routers;      ///< index-aligned with BRITE nodes
  std::vector<net::NodeId> hosts;        ///< the attached end hosts
  std::vector<std::size_t> host_router;  ///< BRITE node each host attaches to
};

/// Builds the network above on `sim` and computes routes. Propagation delays
/// are clamped to >= 1 ns so any cut channel has positive lookahead. The
/// choice of host attachment points is a pure function of `rng`.
BriteNetwork make_brite_network(sim::Simulator& sim, const BriteTopology& topo,
                                std::size_t host_count, Rng& rng,
                                const net::LinkConfig& access = {1e9, micros(5), 256 * 1024});

}  // namespace vw::topo
