#include "vm/vsched.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"

namespace vw::vm {

VSched::VSched(sim::Simulator& sim, double utilization_limit)
    : sim_(sim), utilization_limit_(utilization_limit), last_account_(sim.now()) {
  VW_REQUIRE(utilization_limit > 0 && utilization_limit <= 1.0,
             "VSched: utilization limit must be in (0, 1], got ", utilization_limit);
}

VSched::~VSched() {
  if (pending_.valid()) sim_.cancel(pending_);
}

double VSched::admitted_utilization() const {
  double u = 0;
  for (const auto& [id, task] : tasks_) u += task.constraint.utilization();
  return u;
}

std::optional<VSched::TaskId> VSched::admit(std::string name, VSchedConstraint constraint) {
  if (constraint.period <= 0 || constraint.slice <= 0 || constraint.slice > constraint.period) {
    return std::nullopt;
  }
  // EDF admission control: total utilization must stay within the limit.
  if (admitted_utilization() + constraint.utilization() > utilization_limit_ + 1e-12) {
    return std::nullopt;
  }
  account_until(sim_.now());
  const TaskId id = next_id_++;
  Task task;
  task.name = std::move(name);
  task.constraint = constraint;
  task.next_deadline = sim_.now() + constraint.period;
  task.remaining = constraint.slice;
  tasks_.emplace(id, std::move(task));
  reschedule();
  return id;
}

VSched::TaskId VSched::add_best_effort(std::string name) {
  const TaskId id = next_id_++;
  best_effort_.emplace(id, std::move(name));
  return id;
}

void VSched::remove(TaskId id) {
  account_until(sim_.now());
  tasks_.erase(id);
  best_effort_.erase(id);
  reschedule();
}

VSchedTaskStats VSched::stats(TaskId id) const {
  if (auto it = tasks_.find(id); it != tasks_.end()) return it->second.stats;
  if (best_effort_.contains(id)) {
    VSchedTaskStats s;
    // Best effort splits the leftover CPU evenly.
    s.cpu_received = idle_time_ / static_cast<SimTime>(std::max<std::size_t>(
                         best_effort_.size(), 1));
    return s;
  }
  throw std::out_of_range("VSched::stats: unknown task");
}

std::optional<VSched::TaskId> VSched::pick_edf() const {
  std::optional<TaskId> best;
  SimTime best_deadline = std::numeric_limits<SimTime>::max();
  for (const auto& [id, task] : tasks_) {
    if (task.remaining <= 0) continue;
    if (task.next_deadline < best_deadline) {
      best_deadline = task.next_deadline;
      best = id;
    }
  }
  return best;
}

void VSched::account_until(SimTime now) {
  const SimTime elapsed = now - last_account_;
  if (elapsed > 0) {
    if (running_) {
      Task& task = tasks_.at(*running_);
      task.stats.cpu_received += elapsed;
      task.remaining -= elapsed;
    } else {
      idle_time_ += elapsed;
    }
  }
  last_account_ = now;

  // Period boundaries: replenish slices, count misses.
  for (auto& [id, task] : tasks_) {
    while (task.next_deadline <= now) {
      if (task.remaining > 0) {
        ++task.stats.deadlines_missed;
      } else {
        ++task.stats.periods_completed;
      }
      task.remaining = task.constraint.slice;
      task.next_deadline += task.constraint.period;
    }
  }
}

void VSched::reschedule() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = sim::EventHandle{};
  }
  running_ = pick_edf();

  // Next interesting instant: the running task exhausting its slice, or any
  // period boundary (which replenishes slices / may preempt by EDF).
  SimTime next = std::numeric_limits<SimTime>::max();
  if (running_) {
    next = std::min(next, sim_.now() + tasks_.at(*running_).remaining);
  }
  for (const auto& [id, task] : tasks_) {
    next = std::min(next, task.next_deadline);
  }
  if (next == std::numeric_limits<SimTime>::max()) return;  // nothing scheduled

  pending_ = sim_.schedule_at(next, [this] {
    pending_ = sim::EventHandle{};
    account_until(sim_.now());
    reschedule();
  });
}

}  // namespace vw::vm
