#pragma once

#include <functional>
#include <map>

#include "net/network.hpp"
#include "obs/scope.hpp"
#include "sim/simulator.hpp"
#include "vm/machine.hpp"

// VM migration: pause, transfer the memory image between hosts (modelled as
// a delay derived from the image size and the physical bottleneck bandwidth
// of the routed path, plus a fixed pause/resume overhead), then re-attach at
// the destination and update the Proxy's MAC registry.

namespace vw::vm {

struct MigrationParams {
  SimTime fixed_overhead = millis(500);      ///< pause/resume/bookkeeping cost
  double bandwidth_efficiency = 0.7;         ///< fraction of path bottleneck usable
  double fallback_bps = 100e6;               ///< used when the path is unknown
};

class MigrationEngine {
 public:
  using DoneFn = std::function<void(VirtualMachine&)>;

  MigrationEngine(sim::Simulator& sim, net::Network& network, MigrationParams params = {});

  /// Start migrating `machine` to `target_host`. The VM detaches immediately
  /// (frames to it drop while in flight) and re-attaches when the transfer
  /// completes. No-op when already there. Re-targeting a VM that is already
  /// mid-migration just updates its destination (and completion callback).
  void migrate(VirtualMachine& machine, net::NodeId target_host, DoneFn on_done = nullptr);

  bool in_flight(const VirtualMachine& machine) const {
    return inflight_.contains(&machine);
  }

  /// Predicted migration duration for planning.
  SimTime estimate_duration(const VirtualMachine& machine, net::NodeId from,
                            net::NodeId to) const;

  std::uint64_t migrations_started() const { return started_; }
  std::uint64_t migrations_completed() const { return completed_; }

  /// Attach telemetry (vm.migrations.* counters, a duration histogram and a
  /// complete trace span per migration).
  void set_obs(const obs::Scope& scope);

 private:
  struct Pending {
    net::NodeId target;
    DoneFn on_done;
    SimTime started_at = 0;  ///< for the duration histogram / trace span
  };

  sim::Simulator& sim_;
  net::Network& network_;
  MigrationParams params_;
  std::map<const VirtualMachine*, Pending> inflight_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  obs::Scope obs_;
  obs::Counter* c_started_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Histogram* h_duration_s_ = nullptr;
};

}  // namespace vw::vm
