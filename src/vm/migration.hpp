#pragma once

#include <functional>
#include <map>
#include <optional>

#include "net/network.hpp"
#include "obs/scope.hpp"
#include "sim/simulator.hpp"
#include "vm/machine.hpp"

// VM migration: pause, transfer the memory image between hosts (modelled as
// a delay derived from the image size and the physical bottleneck bandwidth
// of the routed path, plus a fixed pause/resume overhead), then re-attach at
// the destination and update the Proxy's MAC registry.
//
// Failure semantics: a migration is not a promise. While the transfer is in
// flight the engine polls the routed source->target path; if the path goes
// down, or the transfer blows through its deadline (a multiple of the
// initial estimate), the migration FAILS: the VM re-attaches at its source
// host and the completion callback fires with MigrationStatus::kFailed so
// the adaptation layer can re-plan around the dead pair. Migrations can
// also be aborted explicitly.

namespace vw::vm {

enum class MigrationStatus {
  kCompleted,   ///< VM attached at the requested target
  kSuperseded,  ///< a re-target replaced this request (VM still in flight)
  kFailed,      ///< path died or deadline blown; VM re-attached at source
  kAborted,     ///< abort() cancelled it; VM re-attached at source
};

const char* to_string(MigrationStatus status);

struct MigrationParams {
  SimTime fixed_overhead = millis(500);      ///< pause/resume/bookkeeping cost
  double bandwidth_efficiency = 0.7;         ///< fraction of path bottleneck usable
  double fallback_bps = 100e6;               ///< used when the path is unknown
  /// In-flight path liveness poll period; 0 disables path-failure checks.
  SimTime path_check_period = millis(250);
  /// Fail when elapsed time exceeds `deadline_factor` x the initial
  /// estimate; 0 disables the deadline.
  double deadline_factor = 4.0;
};

class MigrationEngine {
 public:
  using DoneFn = std::function<void(VirtualMachine&, MigrationStatus)>;

  MigrationEngine(sim::Simulator& sim, net::Network& network, MigrationParams params = {});

  /// Start migrating `machine` to `target_host`. The VM detaches immediately
  /// (frames to it drop while in flight) and re-attaches when the transfer
  /// completes. No-op when already there. Re-targeting a VM that is already
  /// mid-migration supersedes the previous request: its callback fires with
  /// kSuperseded and the remaining duration is re-estimated against the new
  /// target.
  void migrate(VirtualMachine& machine, net::NodeId target_host, DoneFn on_done = nullptr);

  /// Cancel an in-flight migration: the VM re-attaches at its source host
  /// and the callback fires with kAborted. Returns false when `machine` was
  /// not migrating.
  bool abort(VirtualMachine& machine);

  bool in_flight(const VirtualMachine& machine) const {
    return inflight_.contains(&machine);
  }

  /// Predicted migration duration for planning.
  SimTime estimate_duration(const VirtualMachine& machine, net::NodeId from,
                            net::NodeId to) const;

  std::uint64_t migrations_started() const { return started_; }
  std::uint64_t migrations_completed() const { return completed_; }
  std::uint64_t migrations_failed() const { return failed_; }
  std::uint64_t migrations_superseded() const { return superseded_; }
  std::uint64_t migrations_aborted() const { return aborted_; }

  /// Attach telemetry (vm.migrations.* counters, a duration histogram and a
  /// complete trace span per migration).
  void set_obs(const obs::Scope& scope);

 private:
  struct Pending {
    net::NodeId target;
    DoneFn on_done;
    SimTime started_at = 0;  ///< for the duration histogram / trace span
    std::optional<net::NodeId> source;  ///< absent when the VM started detached
    SimTime deadline_at = 0;            ///< 0 = no deadline
    sim::EventHandle completion;
    sim::EventHandle check;
  };

  void schedule_completion(VirtualMachine& machine, Pending& pending, SimTime in);
  void arm_path_check(VirtualMachine& machine, Pending& pending);
  void finish(VirtualMachine& machine, MigrationStatus status);

  sim::Simulator& sim_;
  net::Network& network_;
  MigrationParams params_;
  std::map<const VirtualMachine*, Pending> inflight_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t superseded_ = 0;
  std::uint64_t aborted_ = 0;
  obs::Scope obs_;
  obs::Counter* c_started_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_superseded_ = nullptr;
  obs::Counter* c_aborted_ = nullptr;
  obs::Histogram* h_duration_s_ = nullptr;
};

}  // namespace vw::vm
