#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.hpp"
#include "vnet/ethernet.hpp"
#include "vnet/overlay.hpp"

// The virtual machine model. A VM is an endpoint with a MAC address attached
// to the VNET daemon of whatever host currently runs it. Applications inside
// the VM send messages to other VMs; the VM fragments them into
// MTU-sized Ethernet frames, injects them into its daemon, and reassembles
// arriving fragments back into messages. Everything below the message API
// travels through the simulated overlay + physical network.

namespace vw::vm {

class VirtualMachine {
 public:
  /// (source MAC, message bytes, application tag)
  using MessageFn = std::function<void(vnet::MacAddress, std::uint64_t, const std::any&)>;

  VirtualMachine(sim::Simulator& sim, vnet::Overlay& overlay, vnet::MacAddress mac,
                 std::string name, std::uint64_t memory_bytes = 256ull << 20);
  ~VirtualMachine();

  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  /// Attach this VM's virtual interface to the daemon on `host`.
  void attach(net::NodeId host);
  /// Detach (VM paused / mid-migration); frames sent to it meanwhile drop.
  void detach();
  bool attached() const { return current_daemon_ != nullptr; }
  net::NodeId host() const;

  /// Send an application message to another VM; it is fragmented into
  /// Ethernet frames and routed through VNET.
  void send_message(vnet::MacAddress dst, std::uint64_t bytes, std::any tag = {});

  void set_on_message(MessageFn fn) { on_message_ = std::move(fn); }

  vnet::MacAddress mac() const { return mac_; }
  const std::string& name() const { return name_; }
  std::uint64_t memory_bytes() const { return memory_bytes_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  void handle_frame(vnet::FramePtr frame);

  struct Reassembly {
    std::uint64_t received = 0;
    std::uint64_t total = 0;
  };

  sim::Simulator& sim_;
  vnet::Overlay& overlay_;
  vnet::MacAddress mac_;
  std::string name_;
  std::uint64_t memory_bytes_;
  vnet::VnetDaemon* current_daemon_ = nullptr;
  std::uint64_t next_message_id_ = 1;
  std::map<std::pair<vnet::MacAddress, std::uint64_t>, Reassembly> reassembly_;
  MessageFn on_message_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace vw::vm
