#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/simulator.hpp"

// VSched: periodic real-time scheduling of VMs (paper reference [8],
// Lin & Dinda, SC'05) — the CPU-side counterpart of Virtuoso's network
// adaptation, listed in the paper as opportunity (4): "reserve resources,
// when possible, to improve performance".
//
// Each VM is admitted with a (period, slice) constraint: it must receive
// `slice` of CPU within every `period`. Admission control enforces the EDF
// utilization bound (sum of slice/period <= utilization limit); admitted
// VMs are scheduled preemptively by earliest deadline first. VMs can also
// register as best-effort: they share whatever CPU the real-time set leaves
// over. The scheduler runs on virtual time and reports per-VM received CPU
// and missed deadlines.

namespace vw::vm {

struct VSchedConstraint {
  SimTime period = 0;
  SimTime slice = 0;

  double utilization() const {
    return period > 0 ? static_cast<double>(slice) / static_cast<double>(period) : 0.0;
  }
};

struct VSchedTaskStats {
  SimTime cpu_received = 0;
  std::uint64_t periods_completed = 0;
  std::uint64_t deadlines_missed = 0;
};

class VSched {
 public:
  using TaskId = std::uint64_t;

  /// `utilization_limit` caps admitted real-time load (1.0 = the EDF bound
  /// for a dedicated core; lower values keep headroom for best effort).
  explicit VSched(sim::Simulator& sim, double utilization_limit = 1.0);
  ~VSched();

  VSched(const VSched&) = delete;
  VSched& operator=(const VSched&) = delete;

  /// Admit a real-time VM; nullopt when the constraint would violate the
  /// utilization limit (or is malformed). Scheduling starts immediately.
  std::optional<TaskId> admit(std::string name, VSchedConstraint constraint);

  /// Register a best-effort VM (always admitted; gets leftover CPU).
  TaskId add_best_effort(std::string name);

  /// Remove a VM from the schedule.
  void remove(TaskId id);

  /// Total admitted real-time utilization.
  double admitted_utilization() const;

  /// Stats for one task (throws for unknown ids). Best-effort tasks report
  /// their share of leftover CPU and no deadline accounting.
  VSchedTaskStats stats(TaskId id) const;

  /// The real-time task currently holding the CPU; nullopt when the CPU is
  /// idle or serving best effort.
  std::optional<TaskId> running() const { return running_; }

  std::size_t task_count() const { return tasks_.size() + best_effort_.size(); }

 private:
  struct Task {
    std::string name;
    VSchedConstraint constraint;
    SimTime next_deadline = 0;       ///< end of the current period
    SimTime remaining = 0;           ///< slice left to serve this period
    VSchedTaskStats stats;
  };

  void reschedule();
  void account_until(SimTime now);
  std::optional<TaskId> pick_edf() const;

  sim::Simulator& sim_;
  double utilization_limit_;
  std::map<TaskId, Task> tasks_;
  std::map<TaskId, std::string> best_effort_;
  TaskId next_id_ = 1;
  std::optional<TaskId> running_;
  SimTime last_account_ = 0;
  SimTime idle_time_ = 0;  ///< CPU time left to best effort so far
  sim::EventHandle pending_;
};

}  // namespace vw::vm
