#include "vm/migration.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.hpp"

namespace vw::vm {

const char* to_string(MigrationStatus status) {
  switch (status) {
    case MigrationStatus::kCompleted: return "completed";
    case MigrationStatus::kSuperseded: return "superseded";
    case MigrationStatus::kFailed: return "failed";
    case MigrationStatus::kAborted: return "aborted";
  }
  return "?";
}

MigrationEngine::MigrationEngine(sim::Simulator& sim, net::Network& network,
                                 MigrationParams params)
    : sim_(sim), network_(network), params_(params) {}

void MigrationEngine::set_obs(const obs::Scope& scope) {
  obs_ = scope;
  c_started_ = scope.counter("vm.migrations.started");
  c_completed_ = scope.counter("vm.migrations.completed");
  c_failed_ = scope.counter("vm.migrations.failed");
  c_superseded_ = scope.counter("vm.migrations.superseded");
  c_aborted_ = scope.counter("vm.migrations.aborted");
  h_duration_s_ = scope.histogram("vm.migration.duration_s");
}

SimTime MigrationEngine::estimate_duration(const VirtualMachine& machine, net::NodeId from,
                                           net::NodeId to) const {
  double bps = network_.path_bottleneck_bps(from, to);
  if (bps <= 0 || !std::isfinite(bps)) bps = params_.fallback_bps;
  bps *= params_.bandwidth_efficiency;
  return params_.fixed_overhead +
         seconds(static_cast<double>(machine.memory_bytes()) * 8.0 / bps);
}

void MigrationEngine::schedule_completion(VirtualMachine& machine, Pending& pending,
                                          SimTime in) {
  sim_.cancel(pending.completion);
  pending.completion = sim_.schedule_in(in, [this, &machine] {
    auto it = inflight_.find(&machine);
    if (it == inflight_.end()) return;
    Pending& p = it->second;
    // A transfer cannot land over a dead path, however long it queued.
    if (p.source.has_value() && !network_.path_up(*p.source, p.target)) {
      finish(machine, MigrationStatus::kFailed);
    } else {
      finish(machine, MigrationStatus::kCompleted);
    }
  });
}

void MigrationEngine::arm_path_check(VirtualMachine& machine, Pending& pending) {
  if (params_.path_check_period <= 0) return;
  pending.check = sim_.schedule_in(params_.path_check_period, [this, &machine] {
    auto it = inflight_.find(&machine);
    if (it == inflight_.end()) return;
    Pending& p = it->second;
    const bool path_dead = p.source.has_value() && !network_.path_up(*p.source, p.target);
    const bool deadline_blown = p.deadline_at > 0 && sim_.now() > p.deadline_at;
    if (path_dead || deadline_blown) {
      finish(machine, MigrationStatus::kFailed);
      return;
    }
    arm_path_check(machine, p);
  });
}

void MigrationEngine::migrate(VirtualMachine& machine, net::NodeId target_host, DoneFn on_done) {
  if (auto it = inflight_.find(&machine); it != inflight_.end()) {
    // Already mid-migration: the new request supersedes the old one. Tell
    // the old requester (its completion will never come) and re-estimate
    // the remaining transfer against the new destination.
    Pending& pending = it->second;
    DoneFn old_done = std::move(pending.on_done);
    pending.on_done = std::move(on_done);
    pending.target = target_host;
    ++superseded_;
    obs::add(c_superseded_);
    const SimTime elapsed = sim_.now() - pending.started_at;
    SimTime remaining = params_.fixed_overhead;
    if (pending.source.has_value()) {
      const SimTime new_total = estimate_duration(machine, *pending.source, target_host);
      remaining = std::max<SimTime>(0, new_total - elapsed);
      if (params_.deadline_factor > 0) {
        pending.deadline_at =
            pending.started_at +
            static_cast<SimTime>(params_.deadline_factor * static_cast<double>(new_total));
      }
    }
    schedule_completion(machine, pending, remaining);
    if (old_done) old_done(machine, MigrationStatus::kSuperseded);
    return;
  }
  if (machine.attached() && machine.host() == target_host) {
    if (on_done) on_done(machine, MigrationStatus::kCompleted);
    return;
  }
  Pending pending;
  pending.target = target_host;
  pending.on_done = std::move(on_done);
  pending.started_at = sim_.now();
  SimTime duration = params_.fixed_overhead;
  if (machine.attached()) {
    pending.source = machine.host();
    duration = estimate_duration(machine, machine.host(), target_host);
    if (params_.deadline_factor > 0) {
      pending.deadline_at =
          pending.started_at +
          static_cast<SimTime>(params_.deadline_factor * static_cast<double>(duration));
    }
    machine.detach();
  }
  ++started_;
  obs::add(c_started_);
  Pending& stored = inflight_.emplace(&machine, std::move(pending)).first->second;
  schedule_completion(machine, stored, duration);
  if (stored.source.has_value()) arm_path_check(machine, stored);
}

bool MigrationEngine::abort(VirtualMachine& machine) {
  if (!inflight_.contains(&machine)) return false;
  finish(machine, MigrationStatus::kAborted);
  return true;
}

void MigrationEngine::finish(VirtualMachine& machine, MigrationStatus status) {
  auto node = inflight_.extract(&machine);
  VW_ASSERT(!node.empty(), "MigrationEngine::finish: machine not in flight");
  Pending pending = std::move(node.mapped());
  sim_.cancel(pending.completion);
  sim_.cancel(pending.check);
  const SimTime finished_at = sim_.now();
  switch (status) {
    case MigrationStatus::kCompleted:
      machine.attach(pending.target);
      ++completed_;
      obs::add(c_completed_);
      obs::record(h_duration_s_, to_seconds(finished_at - pending.started_at));
      if (obs_.tracer != nullptr) {
        obs_.tracer->complete("vm.migration", "vm", pending.started_at, finished_at,
                              {{"target_host", std::to_string(pending.target)}});
      }
      break;
    case MigrationStatus::kFailed:
      // Roll back: the image never fully left the source, so the VM resumes
      // there. No migration may leave a VM detached.
      VW_ASSERT(pending.source.has_value(),
                "MigrationEngine: failure without a source to roll back to");
      machine.attach(*pending.source);
      ++failed_;
      obs::add(c_failed_);
      obs_.instant("vm.migration.failed", "vm",
                   {{"source_host", std::to_string(*pending.source)},
                    {"target_host", std::to_string(pending.target)}});
      break;
    case MigrationStatus::kAborted:
      machine.attach(pending.source.has_value() ? *pending.source : pending.target);
      ++aborted_;
      obs::add(c_aborted_);
      break;
    case MigrationStatus::kSuperseded:
      VW_UNREACHABLE("supersession is handled in migrate(), not finish()");
  }
  if (pending.on_done) pending.on_done(machine, status);
}

}  // namespace vw::vm
