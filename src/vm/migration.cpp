#include "vm/migration.hpp"

#include <cmath>
#include <string>

namespace vw::vm {

MigrationEngine::MigrationEngine(sim::Simulator& sim, net::Network& network,
                                 MigrationParams params)
    : sim_(sim), network_(network), params_(params) {}

void MigrationEngine::set_obs(const obs::Scope& scope) {
  obs_ = scope;
  c_started_ = scope.counter("vm.migrations.started");
  c_completed_ = scope.counter("vm.migrations.completed");
  h_duration_s_ = scope.histogram("vm.migration.duration_s");
}

SimTime MigrationEngine::estimate_duration(const VirtualMachine& machine, net::NodeId from,
                                           net::NodeId to) const {
  double bps = network_.path_bottleneck_bps(from, to);
  if (bps <= 0 || !std::isfinite(bps)) bps = params_.fallback_bps;
  bps *= params_.bandwidth_efficiency;
  return params_.fixed_overhead +
         seconds(static_cast<double>(machine.memory_bytes()) * 8.0 / bps);
}

void MigrationEngine::migrate(VirtualMachine& machine, net::NodeId target_host, DoneFn on_done) {
  if (auto it = inflight_.find(&machine); it != inflight_.end()) {
    // Already mid-migration: re-target; the in-flight completion event will
    // attach at the latest destination.
    it->second = Pending{target_host, std::move(on_done), it->second.started_at};
    return;
  }
  if (machine.attached() && machine.host() == target_host) {
    if (on_done) on_done(machine);
    return;
  }
  SimTime duration = params_.fixed_overhead;
  if (machine.attached()) {
    duration = estimate_duration(machine, machine.host(), target_host);
    machine.detach();
  }
  ++started_;
  obs::add(c_started_);
  inflight_[&machine] = Pending{target_host, std::move(on_done), sim_.now()};
  sim_.schedule_in(duration, [this, &machine] {
    auto node = inflight_.extract(&machine);
    Pending pending = std::move(node.mapped());
    machine.attach(pending.target);
    ++completed_;
    obs::add(c_completed_);
    const SimTime finished_at = sim_.now();
    obs::record(h_duration_s_, to_seconds(finished_at - pending.started_at));
    if (obs_.tracer != nullptr) {
      obs_.tracer->complete("vm.migration", "vm", pending.started_at, finished_at,
                            {{"target_host", std::to_string(pending.target)}});
    }
    if (pending.on_done) pending.on_done(machine);
  });
}

}  // namespace vw::vm
