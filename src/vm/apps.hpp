#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/simulator.hpp"
#include "vm/machine.hpp"

// Application workloads running inside the VMs. These generate the traffic
// the paper's experiments monitor and adapt to: all-to-all and ring patterns
// (adaptation studies), BSP neighbor exchange (Figure 4), and a NAS
// MultiGrid-like pattern (Figure 7's inferred topology).

namespace vw::vm::apps {

/// Demand matrix in bits/sec between VM indices.
using DemandMatrix = std::map<std::pair<std::size_t, std::size_t>, double>;

/// Uniform all-to-all demands among n VMs.
DemandMatrix all_to_all(std::size_t n, double rate_bps);

/// Ring: VM i sends to VM (i+1) mod n.
DemandMatrix ring(std::size_t n, double rate_bps);

/// A NAS-MultiGrid-like 4-VM pattern: strong nearest-neighbor exchange with
/// weaker second- and third-neighbor components from the coarser grid levels
/// (the asymmetric topology of the paper's Figure 7).
DemandMatrix multigrid4(double base_rate_bps);

/// Sends messages between VMs so each pair's average rate matches the
/// demand matrix; message size = rate * interval.
class MatrixTrafficApp {
 public:
  MatrixTrafficApp(sim::Simulator& sim, std::vector<VirtualMachine*> vms, DemandMatrix demands,
                   SimTime message_interval = millis(100));
  ~MatrixTrafficApp();

  MatrixTrafficApp(const MatrixTrafficApp&) = delete;
  MatrixTrafficApp& operator=(const MatrixTrafficApp&) = delete;

  void start();
  void stop();
  const DemandMatrix& demands() const { return demands_; }
  void set_demands(DemandMatrix demands) { demands_ = std::move(demands); }
  std::uint64_t messages_sent() const { return sent_; }

 private:
  void tick();

  sim::Simulator& sim_;
  std::vector<VirtualMachine*> vms_;
  DemandMatrix demands_;
  SimTime interval_;
  sim::EventHandle pending_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
};

/// Bulk-synchronous neighbor exchange: each superstep every VM sends one
/// message to each neighbor, waits for all neighbors' messages, "computes"
/// for a fixed time, then starts the next superstep.
class BspNeighborApp {
 public:
  BspNeighborApp(sim::Simulator& sim, std::vector<VirtualMachine*> vms,
                 std::vector<std::vector<std::size_t>> neighbors, std::uint64_t message_bytes,
                 SimTime compute_time);

  BspNeighborApp(const BspNeighborApp&) = delete;
  BspNeighborApp& operator=(const BspNeighborApp&) = delete;

  void start();
  void stop() { running_ = false; }
  std::uint64_t supersteps_completed() const { return min_step_completed_; }
  std::uint64_t messages_sent() const { return sent_; }

  /// Ring neighbor lists (bidirectional) for n VMs.
  static std::vector<std::vector<std::size_t>> ring_neighbors(std::size_t n);
  /// 2D grid (rows x cols) 4-neighborhood lists.
  static std::vector<std::vector<std::size_t>> grid_neighbors(std::size_t rows, std::size_t cols);

 private:
  struct PerVm {
    std::uint64_t step = 0;                          ///< current superstep
    std::map<std::uint64_t, std::size_t> received;   ///< step -> messages seen
    bool computing = false;
  };

  void begin_step(std::size_t vm_idx);
  void on_message(std::size_t vm_idx, std::uint64_t step);
  void maybe_advance(std::size_t vm_idx);

  sim::Simulator& sim_;
  std::vector<VirtualMachine*> vms_;
  std::vector<std::vector<std::size_t>> neighbors_;
  std::uint64_t message_bytes_;
  SimTime compute_time_;
  std::vector<PerVm> state_;
  std::map<vnet::MacAddress, std::size_t> index_by_mac_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t min_step_completed_ = 0;
};

}  // namespace vw::vm::apps
