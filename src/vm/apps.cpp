#include "vm/apps.hpp"

#include <algorithm>
#include <stdexcept>

namespace vw::vm::apps {

DemandMatrix all_to_all(std::size_t n, double rate_bps) {
  DemandMatrix m;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) m[{i, j}] = rate_bps;
    }
  }
  return m;
}

DemandMatrix ring(std::size_t n, double rate_bps) {
  DemandMatrix m;
  for (std::size_t i = 0; i < n; ++i) m[{i, (i + 1) % n}] = rate_bps;
  return m;
}

DemandMatrix multigrid4(double base_rate_bps) {
  // The fine-grid exchange dominates (nearest neighbors in the processor
  // chain); each coarsening level halves the traffic and reaches further,
  // yielding the asymmetric nearly-complete 4-VM topology of Figure 7.
  DemandMatrix m;
  const double fine = base_rate_bps;
  const double mid = base_rate_bps / 2;
  const double coarse = base_rate_bps / 4;
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    m[{i, i + 1}] = fine;
    m[{i + 1, i}] = 0.9 * fine;  // slight asymmetry: restriction vs prolongation
  }
  m[{0, 2}] = mid;
  m[{2, 0}] = 0.9 * mid;
  m[{1, 3}] = mid;
  m[{3, 1}] = 0.9 * mid;
  m[{0, 3}] = coarse;
  m[{3, 0}] = 0.9 * coarse;
  return m;
}

MatrixTrafficApp::MatrixTrafficApp(sim::Simulator& sim, std::vector<VirtualMachine*> vms,
                                   DemandMatrix demands, SimTime message_interval)
    : sim_(sim), vms_(std::move(vms)), demands_(std::move(demands)), interval_(message_interval) {
  for (const auto& [pair, rate] : demands_) {
    if (pair.first >= vms_.size() || pair.second >= vms_.size()) {
      throw std::out_of_range("MatrixTrafficApp: demand references missing VM");
    }
  }
}

MatrixTrafficApp::~MatrixTrafficApp() { stop(); }

void MatrixTrafficApp::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void MatrixTrafficApp::stop() {
  running_ = false;
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = sim::EventHandle{};
  }
}

void MatrixTrafficApp::tick() {
  if (!running_) return;
  const double interval_s = to_seconds(interval_);
  for (const auto& [pair, rate] : demands_) {
    const auto bytes = static_cast<std::uint64_t>(rate * interval_s / 8.0);
    if (bytes == 0) continue;
    vms_[pair.first]->send_message(vms_[pair.second]->mac(), bytes);
    ++sent_;
  }
  pending_ = sim_.schedule_in(interval_, [this] { tick(); });
}

// --- BspNeighborApp ---------------------------------------------------------

BspNeighborApp::BspNeighborApp(sim::Simulator& sim, std::vector<VirtualMachine*> vms,
                               std::vector<std::vector<std::size_t>> neighbors,
                               std::uint64_t message_bytes, SimTime compute_time)
    : sim_(sim),
      vms_(std::move(vms)),
      neighbors_(std::move(neighbors)),
      message_bytes_(message_bytes),
      compute_time_(compute_time),
      state_(vms_.size()) {
  if (neighbors_.size() != vms_.size()) {
    throw std::invalid_argument("BspNeighborApp: neighbor list size mismatch");
  }
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    index_by_mac_[vms_[i]->mac()] = i;
    vms_[i]->set_on_message([this, i](vnet::MacAddress, std::uint64_t, const std::any& tag) {
      if (const auto* step = std::any_cast<std::uint64_t>(&tag)) on_message(i, *step);
    });
  }
}

std::vector<std::vector<std::size_t>> BspNeighborApp::ring_neighbors(std::size_t n) {
  std::vector<std::vector<std::size_t>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].push_back((i + 1) % n);
    if (n > 2) out[i].push_back((i + n - 1) % n);
  }
  return out;
}

std::vector<std::vector<std::size_t>> BspNeighborApp::grid_neighbors(std::size_t rows,
                                                                     std::size_t cols) {
  std::vector<std::vector<std::size_t>> out(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t i = r * cols + c;
      if (r > 0) out[i].push_back(i - cols);
      if (r + 1 < rows) out[i].push_back(i + cols);
      if (c > 0) out[i].push_back(i - 1);
      if (c + 1 < cols) out[i].push_back(i + 1);
    }
  }
  return out;
}

void BspNeighborApp::start() {
  running_ = true;
  for (std::size_t i = 0; i < vms_.size(); ++i) begin_step(i);
}

void BspNeighborApp::begin_step(std::size_t vm_idx) {
  if (!running_) return;
  PerVm& st = state_[vm_idx];
  st.computing = false;
  for (std::size_t nb : neighbors_[vm_idx]) {
    vms_[vm_idx]->send_message(vms_[nb]->mac(), message_bytes_, std::any(st.step));
    ++sent_;
  }
  maybe_advance(vm_idx);  // degenerate case: no neighbors
}

void BspNeighborApp::on_message(std::size_t vm_idx, std::uint64_t step) {
  PerVm& st = state_[vm_idx];
  ++st.received[step];
  maybe_advance(vm_idx);
}

void BspNeighborApp::maybe_advance(std::size_t vm_idx) {
  if (!running_) return;
  PerVm& st = state_[vm_idx];
  if (st.computing) return;
  const std::size_t needed = neighbors_[vm_idx].size();
  auto it = st.received.find(st.step);
  const std::size_t have = (it == st.received.end()) ? 0 : it->second;
  if (have < needed) return;

  // Superstep complete: "compute", then start the next one.
  st.received.erase(st.step);
  ++st.step;
  st.computing = true;

  std::uint64_t global_min = state_[0].step;
  for (const PerVm& s : state_) global_min = std::min(global_min, s.step);
  min_step_completed_ = global_min;

  sim_.schedule_in(compute_time_, [this, vm_idx] { begin_step(vm_idx); });
}

}  // namespace vw::vm::apps
