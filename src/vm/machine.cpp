#include "vm/machine.hpp"

#include "util/check.hpp"

namespace vw::vm {

VirtualMachine::VirtualMachine(sim::Simulator& sim, vnet::Overlay& overlay, vnet::MacAddress mac,
                               std::string name, std::uint64_t memory_bytes)
    : sim_(sim), overlay_(overlay), mac_(mac), name_(std::move(name)),
      memory_bytes_(memory_bytes) {}

VirtualMachine::~VirtualMachine() {
  if (attached()) detach();
}

void VirtualMachine::attach(net::NodeId host) {
  VW_REQUIRE(!attached(), "VM '", name_, "' already attached");
  vnet::VnetDaemon& daemon = overlay_.daemon_on(host);
  daemon.attach_vm(mac_, [this](vnet::FramePtr f) { handle_frame(std::move(f)); });
  overlay_.register_vm(mac_, daemon);
  current_daemon_ = &daemon;
}

void VirtualMachine::detach() {
  if (!attached()) return;
  current_daemon_->detach_vm(mac_);
  overlay_.unregister_vm(mac_);
  current_daemon_ = nullptr;
}

net::NodeId VirtualMachine::host() const {
  VW_REQUIRE(attached(), "VM '", name_, "' not attached");
  return current_daemon_->host();
}

void VirtualMachine::send_message(vnet::MacAddress dst, std::uint64_t bytes, std::any tag) {
  if (!attached()) return;  // paused VMs silently drop (like a stopped guest)
  if (bytes == 0) return;
  const std::uint64_t message_id = next_message_id_++;
  std::uint64_t offset = 0;
  while (offset < bytes) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(vnet::kEthernetMtu, bytes - offset));
    vnet::EthernetFrame frame;
    frame.src_mac = mac_;
    frame.dst_mac = dst;
    frame.payload_bytes = chunk;
    frame.fragment.message_id = message_id;
    frame.fragment.offset = offset;
    frame.fragment.message_bytes = bytes;
    if (offset + chunk >= bytes) frame.fragment.tag = tag;  // tag rides the last fragment
    current_daemon_->inject_from_vm(frame);
    offset += chunk;
  }
  ++messages_sent_;
}

void VirtualMachine::handle_frame(vnet::FramePtr frame) {
  bytes_received_ += frame->payload_bytes;
  const auto key = std::make_pair(frame->src_mac, frame->fragment.message_id);
  Reassembly& r = reassembly_[key];
  r.total = frame->fragment.message_bytes;
  r.received += frame->payload_bytes;
  if (r.received >= r.total) {
    ++messages_received_;
    const std::uint64_t bytes = r.total;
    reassembly_.erase(key);
    if (on_message_) on_message_(frame->src_mac, bytes, frame->fragment.tag);
  }
}

}  // namespace vw::vm
