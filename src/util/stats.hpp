#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

// Streaming statistics used by Wren's online analysis and the reporting
// harnesses: running moments, exponentially weighted moving averages, and
// sliding-window order statistics.

namespace vw {

/// Welford running moments: numerically stable count/mean/variance/min/max.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Extremes are NaN until the first sample arrives — a reading of 0.0
  /// from an empty accumulator would be indistinguishable from a real
  /// observation of zero, so exporters must treat NaN as "no data".
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::quiet_NaN();
  double max_ = std::numeric_limits<double>::quiet_NaN();
  double sum_ = 0.0;
};

/// Exponentially weighted moving average with weight `alpha` on new samples.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  bool has_value() const { return has_value_; }
  /// Current average; 0 before the first sample.
  double value() const { return value_; }
  void reset() { has_value_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Fixed-capacity sliding window supporting order statistics; O(n log n) per
/// query, which is fine for Wren's short observation windows.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {}

  void add(double x);
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  std::size_t capacity() const { return capacity_; }

  double mean() const;
  /// Order statistic: q in [0,1]; q=0.5 is the median (linear interpolation).
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const;
  double max() const;
  void clear() { values_.clear(); }

  const std::deque<double>& values() const { return values_; }

 private:
  std::size_t capacity_;
  std::deque<double> values_;
};

/// Median of a copy of `v`; nullopt when empty.
std::optional<double> median_of(std::vector<double> v);

}  // namespace vw
