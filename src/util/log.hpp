#pragma once

#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/time.hpp"

// Lightweight leveled logger. Components log through a Logger reference that
// the owning system wires to the simulator clock, so log lines carry virtual
// timestamps without the components depending on the simulator.
//
// Thread safety: log() formats each line off to the side and appends it to
// the sink as a single write under an internal mutex, so concurrent callers
// (e.g. MultiStartAnnealer worker chains sharing one logger) never interleave
// characters or race on the stream state.

namespace vw {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// `clock` supplies the current virtual time for timestamps (may be null).
  Logger(std::ostream* sink, LogLevel level, std::function<SimTime()> clock = nullptr)
      : sink_(sink), level_(level), clock_(std::move(clock)) {}

  /// A disabled logger (drops everything).
  Logger() : Logger(nullptr, LogLevel::kOff) {}

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return sink_ != nullptr && level >= level_; }

  void log(LogLevel level, std::string_view component, std::string_view message)
      VW_EXCLUDES(mu_);

  void trace(std::string_view c, std::string_view m) { log(LogLevel::kTrace, c, m); }
  void debug(std::string_view c, std::string_view m) { log(LogLevel::kDebug, c, m); }
  void info(std::string_view c, std::string_view m) { log(LogLevel::kInfo, c, m); }
  void warn(std::string_view c, std::string_view m) { log(LogLevel::kWarn, c, m); }
  void error(std::string_view c, std::string_view m) { log(LogLevel::kError, c, m); }

 private:
  /// The pointer itself is wired once at construction and read lock-free by
  /// enabled(); the pointed-to stream is only written under mu_.
  std::ostream* sink_ VW_PT_GUARDED_BY(mu_);
  LogLevel level_;
  std::function<SimTime()> clock_;
  Mutex mu_;  ///< serializes sink writes across threads
};

/// Convenience formatter: strcat-style message building for log call sites.
template <typename... Args>
std::string logcat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace vw
