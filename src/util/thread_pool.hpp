#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

// A small fixed-size worker pool for CPU-bound fan-out (multi-start
// annealing chains, parallel sweeps). Tasks are opaque closures; the pool
// provides no result plumbing — callers write into pre-sized slots so the
// outcome is independent of scheduling order. Tasks must not throw (capture
// exceptions into the result slot instead; an escaping exception terminates
// the process, as with any detached std::thread).
//
// Lock discipline (checked by -Wthread-safety on Clang): queue_, active_ and
// stop_ are only touched under mu_; tasks themselves run with no lock held,
// so a task may safely submit() more work.

namespace vw {

class ThreadPool {
 public:
  /// Spin up `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_task_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; runs on some worker in FIFO dequeue order.
  void submit(std::function<void()> task) VW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_task_.notify_one();
  }

  /// Block until the queue is drained and every running task has finished.
  void wait_idle() VW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!(queue_.empty() && active_ == 0)) cv_idle_.wait(mu_);
  }

  /// Run `fn(0) .. fn(count-1)` across the workers and block until every
  /// one has finished. This is the batch-reuse entry point: callers keep one
  /// persistent pool alive across batches (multi-start annealing rounds,
  /// sharded-simulator epochs) instead of paying thread spawn/join per
  /// batch. The barrier is whole-pool idleness, so a batch must not be
  /// interleaved with unrelated submit() traffic whose completion the
  /// caller does not want to wait for. `fn` is shared by the workers and
  /// must be safe to invoke concurrently with distinct indices.
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& fn)
      VW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      for (std::size_t i = 0; i < count; ++i) {
        queue_.push_back([&fn, i] { fn(i); });
      }
    }
    cv_task_.notify_all();
    wait_idle();
  }

  std::size_t thread_count() const { return workers_.size(); }

  static std::size_t default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

 private:
  void worker_loop() VW_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stop_ && queue_.empty()) cv_task_.wait(mu_);
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      task();
      {
        MutexLock lock(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
      }
    }
  }

  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ VW_GUARDED_BY(mu_);
  std::size_t active_ VW_GUARDED_BY(mu_) = 0;
  bool stop_ VW_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace vw
