#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// A small fixed-size worker pool for CPU-bound fan-out (multi-start
// annealing chains, parallel sweeps). Tasks are opaque closures; the pool
// provides no result plumbing — callers write into pre-sized slots so the
// outcome is independent of scheduling order. Tasks must not throw (capture
// exceptions into the result slot instead; an escaping exception terminates
// the process, as with any detached std::thread).

namespace vw {

class ThreadPool {
 public:
  /// Spin up `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_task_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; runs on some worker in FIFO dequeue order.
  void submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    cv_task_.notify_one();
  }

  /// Block until the queue is drained and every running task has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

  std::size_t thread_count() const { return workers_.size(); }

  static std::size_t default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vw
