#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

// Runtime contracts for the Wren/Virtuoso stack.
//
// Measurement systems live or die on the validity of their invariants: a
// silently negative residual capacity or a non-monotonic event queue corrupts
// every number downstream. These macros make violations fail loudly at the
// exact line, in every build type:
//
//   VW_REQUIRE(cond, ...)     precondition on the caller (always on)
//   VW_ENSURE(cond, ...)      postcondition we promise to callers (always on)
//   VW_ASSERT(cond, ...)      internal invariant (always on, cheap tier)
//   VW_AUDIT(cond, ...)       expensive invariant (whole-container scans);
//                             compiled out with -DVW_ENABLE_AUDIT=0 and
//                             runtime-gated by contracts::set_audit_enabled()
//   VW_UNREACHABLE(...)       marks code that must never execute
//
// Trailing arguments after the condition are streamed into the failure
// message (logcat-style), and are only evaluated when the contract fires:
//
//   VW_REQUIRE(at >= now_, "time went backwards: at=", at, " now=", now_);
//
// On violation the installed failure handler receives a ContractViolation.
// The default handler throws ContractError (derived from
// std::invalid_argument, so existing EXPECT_THROW(..., std::invalid_argument)
// and EXPECT_THROW(..., std::logic_error) expectations hold). Tests can
// install their own handler — via ScopedContractHandler — to count
// violations, re-throw a sentinel, or abort for death tests. A handler that
// returns normally suppresses the violation and execution continues (only
// sensible in tests); VW_UNREACHABLE aborts regardless.

namespace vw::contracts {

enum class Kind : std::uint8_t {
  kRequire,
  kEnsure,
  kAssert,
  kAudit,
  kUnreachable,
};

/// Human-readable macro name for a contract kind ("VW_REQUIRE", ...).
std::string_view kind_name(Kind kind);

/// Everything a failure handler learns about a violated contract.
struct ContractViolation {
  Kind kind = Kind::kAssert;
  std::string_view condition;  ///< stringified condition text
  std::string_view file;
  int line = 0;
  std::string message;  ///< formatted trailing arguments ("" when none)
};

/// Thrown by the default failure handler.
class ContractError : public std::invalid_argument {
 public:
  ContractError(const ContractViolation& violation, const std::string& what);

  Kind kind() const { return kind_; }
  std::string_view file() const { return file_; }
  int line() const { return line_; }

 private:
  Kind kind_;
  std::string_view file_;  ///< points at the __FILE__ literal (static storage)
  int line_;
};

using FailureHandler = void (*)(const ContractViolation&);

/// Throws ContractError with a "file:line: VW_X(cond) failed: msg" message.
[[noreturn]] void default_failure_handler(const ContractViolation& violation);

/// Install a failure handler; returns the previous one. Never null — passing
/// nullptr restores the default handler.
FailureHandler set_failure_handler(FailureHandler handler);
FailureHandler failure_handler();

/// RAII handler swap for tests.
class ScopedContractHandler {
 public:
  explicit ScopedContractHandler(FailureHandler handler)
      : previous_(set_failure_handler(handler)) {}
  ~ScopedContractHandler() { set_failure_handler(previous_); }
  ScopedContractHandler(const ScopedContractHandler&) = delete;
  ScopedContractHandler& operator=(const ScopedContractHandler&) = delete;

 private:
  FailureHandler previous_;
};

/// Runtime gate for the VW_AUDIT tier (default on). Audit conditions are not
/// evaluated while disabled, so O(n) scans cost nothing on hot paths.
void set_audit_enabled(bool enabled);
bool audit_enabled();

/// Invoke the failure handler for a violated contract. Returns only if the
/// handler returned (a test handler tolerating the violation).
void fail(Kind kind, std::string_view condition, std::string_view file, int line,
          std::string message);

/// VW_UNREACHABLE backstop: runs the handler, then aborts if it returns.
[[noreturn]] void fail_unreachable(std::string_view file, int line, std::string message);

/// Build the failure message from the macro's trailing arguments.
inline std::string format_message() { return {}; }

template <typename... Args>
std::string format_message(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

}  // namespace vw::contracts

#define VW_CONTRACT_CHECK_(kind, cond, ...)                                      \
  do {                                                                           \
    if (!(cond)) [[unlikely]] {                                                  \
      ::vw::contracts::fail((kind), #cond, __FILE__, __LINE__,                   \
                            ::vw::contracts::format_message(__VA_ARGS__));       \
    }                                                                            \
  } while (false)

#define VW_REQUIRE(cond, ...) \
  VW_CONTRACT_CHECK_(::vw::contracts::Kind::kRequire, cond __VA_OPT__(, ) __VA_ARGS__)
#define VW_ENSURE(cond, ...) \
  VW_CONTRACT_CHECK_(::vw::contracts::Kind::kEnsure, cond __VA_OPT__(, ) __VA_ARGS__)
#define VW_ASSERT(cond, ...) \
  VW_CONTRACT_CHECK_(::vw::contracts::Kind::kAssert, cond __VA_OPT__(, ) __VA_ARGS__)

#define VW_UNREACHABLE(...)                                 \
  ::vw::contracts::fail_unreachable(__FILE__, __LINE__,     \
                                    ::vw::contracts::format_message(__VA_ARGS__))

// Expensive tier: compiled out entirely with -DVW_ENABLE_AUDIT=0, otherwise
// runtime-gated so the condition is only evaluated while auditing is on.
#ifndef VW_ENABLE_AUDIT
#define VW_ENABLE_AUDIT 1
#endif

#if VW_ENABLE_AUDIT
#define VW_AUDIT(cond, ...)                                                 \
  do {                                                                      \
    if (::vw::contracts::audit_enabled()) {                                 \
      VW_CONTRACT_CHECK_(::vw::contracts::Kind::kAudit,                     \
                         cond __VA_OPT__(, ) __VA_ARGS__);                  \
    }                                                                       \
  } while (false)
#else
#define VW_AUDIT(cond, ...) \
  do {                      \
  } while (false)
#endif
