#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

// Minimal CSV emitter for the experiment harnesses. Every figure-reproduction
// binary prints its series as CSV so the rows can be diffed/plotted directly.

namespace vw {

class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  /// Writes one data row; the cell count must match the header.
  void row(std::initializer_list<double> cells);
  void row(const std::vector<double>& cells);

  /// Writes one row of already-formatted cells (for mixed text/number rows).
  void text_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t n_columns_;
  std::size_t rows_ = 0;
};

/// Escape a cell per RFC 4180 (quote when it contains comma/quote/newline).
std::string csv_escape(std::string_view cell);

}  // namespace vw
