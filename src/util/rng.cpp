#include "util/rng.hpp"

namespace vw {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t RngService::seed_for(std::string_view stream_name) const {
  std::uint64_t h = fnv1a(kFnvOffset, stream_name);
  // Mix the root seed in with splitmix64-style finalization for avalanche.
  h ^= root_seed_ + 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h = h ^ (h >> 31);
  return h;
}

}  // namespace vw
