#pragma once

// Clang thread-safety-analysis attribute macros.
//
// These expand to Clang's `__attribute__((...))` capability annotations when
// compiling with Clang and to nothing elsewhere, so GCC builds are unchanged
// while the clang CI job compiles with `-Wthread-safety -Werror` and proves
// lock discipline statically: every VW_GUARDED_BY field access must happen
// with its capability held, every VW_REQUIRES function must be called with
// the lock, and VW_EXCLUDES functions must be entered without it.
//
// libstdc++'s std::mutex is not annotated as a capability, so the analysis
// cannot track std::lock_guard acquisitions on it. Mutex-protected
// structures therefore use the annotated vw::Mutex / vw::MutexLock wrappers
// from util/mutex.hpp instead of std::mutex / std::lock_guard.

#if defined(__clang__)
#define VW_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define VW_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (a lock); `x` names it in diagnostics.
#define VW_CAPABILITY(x) VW_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define VW_SCOPED_CAPABILITY VW_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be accessed while holding capability `x`.
#define VW_GUARDED_BY(x) VW_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded).
#define VW_PT_GUARDED_BY(x) VW_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities to already be held by the caller.
#define VW_REQUIRES(...) \
  VW_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define VW_ACQUIRE(...) \
  VW_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (which must be held on entry).
#define VW_RELEASE(...) \
  VW_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts acquisition; the first argument is the success return
/// value, optionally followed by the capabilities (fully variadic so
/// `VW_TRY_ACQUIRE(true)` does not leave a trailing comma in the attribute).
#define VW_TRY_ACQUIRE(...) \
  VW_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy guard).
#define VW_EXCLUDES(...) VW_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define VW_RETURN_CAPABILITY(x) VW_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Every use needs a
/// comment explaining why the discipline cannot be expressed statically.
#define VW_NO_THREAD_SAFETY_ANALYSIS \
  VW_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
