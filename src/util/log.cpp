#include "util/log.hpp"

#include <iomanip>

namespace vw {

namespace {
constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  // Format the full line first so the sink sees exactly one write per call;
  // interleaving from concurrent loggers is then impossible by construction.
  std::ostringstream line;
  if (clock_) {
    line << '[' << std::fixed << std::setprecision(6) << to_seconds(clock_()) << "s] ";
  }
  line << level_name(level) << ' ' << component << ": " << message << '\n';
  const std::string text = line.str();
  {
    MutexLock lock(mu_);
    sink_->write(text.data(), static_cast<std::streamsize>(text.size()));
  }
}

}  // namespace vw
