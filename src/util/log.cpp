#include "util/log.hpp"

#include <iomanip>

namespace vw {

namespace {
constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  if (!enabled(level)) return;
  if (clock_) {
    *sink_ << '[' << std::fixed << std::setprecision(6) << to_seconds(clock_()) << "s] ";
  }
  *sink_ << level_name(level) << ' ' << component << ": " << message << '\n';
}

}  // namespace vw
