#include "util/csv.hpp"

#include <stdexcept>

namespace vw {

std::string csv_escape(std::string_view cell) {
  const bool needs_quote = cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), n_columns_(columns.size()) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> cells) {
  row(std::vector<double>(cells));
}

void CsvWriter::row(const std::vector<double>& cells) {
  if (cells.size() != n_columns_) throw std::invalid_argument("CsvWriter: cell count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::text_row(const std::vector<std::string>& cells) {
  if (cells.size() != n_columns_) throw std::invalid_argument("CsvWriter: cell count mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace vw
