#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

// Small-buffer-optimized move-only callable, the event-engine replacement
// for std::function on the packet datapath.
//
// Why not std::function: libstdc++'s inline buffer is two words, so the
// capture lists the datapath actually schedules (a `this` pointer plus a
// Packet, ~96 bytes) heap-allocate on every hop, and the copyability
// requirement forbids move-only captures. SmallFn stores any callable whose
// size fits `InlineBytes` directly in the object (no allocation, ever, on
// the steady-state path) and falls back to the heap only for oversized
// captures. It is move-only, so move-only captures work and no accidental
// deep copies can sneak into the hot path.

namespace vw {

template <class Signature, std::size_t InlineBytes = 48>
class SmallFn;  // undefined; only the R(Args...) specialization exists

template <class R, class... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  SmallFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Invoke the stored callable. Precondition: *this != nullptr (checked by
  /// callers at scheduling time; the call site itself stays branch-light).
  R operator()(Args... args) { return invoke_(storage_, std::forward<Args>(args)...); }

  explicit operator bool() const { return invoke_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) { return f.invoke_ == nullptr; }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) { return f.invoke_ != nullptr; }

  /// True when the stored callable lives in the inline buffer (diagnostics
  /// and tests; an empty SmallFn reports true).
  bool is_inline() const { return manage_ == nullptr || !heap_allocated_; }

 private:
  struct alignas(std::max_align_t) Storage {
    std::byte bytes[InlineBytes];
  };
  using InvokeFn = R (*)(Storage&, Args&&...);
  // dst == nullptr: destroy src payload. Otherwise: move src payload into
  // dst and destroy the src payload.
  using ManageFn = void (*)(Storage& src, Storage* dst);

  template <class F>
  static constexpr bool fits_inline = sizeof(F) <= InlineBytes &&
                                      alignof(F) <= alignof(Storage) &&
                                      std::is_nothrow_move_constructible_v<F>;

  template <class F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_.bytes)) Fn(std::forward<F>(f));
      invoke_ = [](Storage& s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s.bytes)))(std::forward<Args>(args)...);
      };
      manage_ = [](Storage& src, Storage* dst) {
        Fn* p = std::launder(reinterpret_cast<Fn*>(src.bytes));
        if (dst != nullptr) ::new (static_cast<void*>(dst->bytes)) Fn(std::move(*p));
        p->~Fn();
      };
      heap_allocated_ = false;
    } else {
      ptr_slot(storage_) = new Fn(std::forward<F>(f));
      invoke_ = [](Storage& s, Args&&... args) -> R {
        return (*static_cast<Fn*>(ptr_slot(s)))(std::forward<Args>(args)...);
      };
      manage_ = [](Storage& src, Storage* dst) {
        if (dst != nullptr) {
          ptr_slot(*dst) = ptr_slot(src);
        } else {
          delete static_cast<Fn*>(ptr_slot(src));
        }
      };
      heap_allocated_ = true;
    }
  }

  static void*& ptr_slot(Storage& s) { return *reinterpret_cast<void**>(s.bytes); }

  void move_from(SmallFn& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(other.storage_, &storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_allocated_ = other.heap_allocated_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() {
    if (invoke_ == nullptr) return;
    manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  static_assert(InlineBytes >= sizeof(void*), "inline buffer must hold the heap fallback pointer");

  Storage storage_;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
  bool heap_allocated_ = false;
};

}  // namespace vw
