#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.hpp"

// Annotated mutex primitives for Clang thread-safety analysis.
//
// vw::Mutex wraps std::mutex and carries the `capability("mutex")` attribute
// that libstdc++'s std::mutex lacks, so `-Wthread-safety` can prove that
// every VW_GUARDED_BY field is only touched under its lock. vw::MutexLock is
// the RAII guard (scoped capability); vw::CondVar pairs with vw::Mutex via
// std::condition_variable_any.
//
// All mutex-protected structures in the tree (Logger, ThreadPool,
// MetricsRegistry, EventTracer) hold locks for O(small) critical sections
// and never nest them, so there is no lock ordering to encode — EXCLUDES
// annotations on the public entry points are enough to prove non-reentrancy.

namespace vw {

class VW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VW_ACQUIRE() { mu_.lock(); }
  void unlock() VW_RELEASE() { mu_.unlock(); }
  bool try_lock() VW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over vw::Mutex (the annotated equivalent of std::lock_guard).
class VW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VW_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with vw::Mutex. wait() requires the mutex held
/// (condition_variable_any releases and reacquires it internally, which the
/// analysis treats as opaque — the capability is held again on return, so
/// the annotation is exact).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Single wakeup; callers loop on their guarded predicate themselves so
  /// the analysis sees the predicate reads happen under the lock (a lambda
  /// predicate would be analyzed as a lock-free function and rejected).
  void wait(Mutex& mu) VW_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed single wakeup (bounded idle sleep for real I/O threads such as
  /// the trace writer). Returns after a notification or once `micros`
  /// microseconds of wall time elapsed — callers re-check their guarded
  /// predicate either way. This is a wall-clock *duration*, not a clock
  /// read: virtual-time determinism is unaffected because no simulated
  /// decision may depend on it (vwlint R1 still bans clock reads).
  void wait_for_us(Mutex& mu, std::int64_t micros) VW_REQUIRES(mu) {
    cv_.wait_for(mu, std::chrono::microseconds(micros));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace vw
