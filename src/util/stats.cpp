#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vw {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ewma::add(double x) {
  if (!has_value_) {
    value_ = x;
    has_value_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void SlidingWindow::add(double x) {
  values_.push_back(x);
  while (values_.size() > capacity_) values_.pop_front();
}

double SlidingWindow::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double SlidingWindow::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("SlidingWindow::quantile on empty window");
  std::vector<double> sorted(values_.begin(), values_.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SlidingWindow::min() const {
  if (values_.empty()) throw std::logic_error("SlidingWindow::min on empty window");
  return *std::min_element(values_.begin(), values_.end());
}

double SlidingWindow::max() const {
  if (values_.empty()) throw std::logic_error("SlidingWindow::max on empty window");
  return *std::max_element(values_.begin(), values_.end());
}

std::optional<double> median_of(std::vector<double> v) {
  if (v.empty()) return std::nullopt;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace vw
