#include "util/check.hpp"

#include <atomic>
#include <cstdlib>

namespace vw::contracts {

namespace {

std::atomic<FailureHandler> g_handler{&default_failure_handler};
std::atomic<bool> g_audit_enabled{true};

std::string describe(const ContractViolation& violation) {
  std::string out;
  out.reserve(128);
  out.append(violation.file);
  out.push_back(':');
  out.append(std::to_string(violation.line));
  out.append(": ");
  out.append(kind_name(violation.kind));
  if (violation.kind == Kind::kUnreachable) {
    out.append(" reached");
  } else {
    out.push_back('(');
    out.append(violation.condition);
    out.append(") failed");
  }
  if (!violation.message.empty()) {
    out.append(": ");
    out.append(violation.message);
  }
  return out;
}

}  // namespace

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kRequire:
      return "VW_REQUIRE";
    case Kind::kEnsure:
      return "VW_ENSURE";
    case Kind::kAssert:
      return "VW_ASSERT";
    case Kind::kAudit:
      return "VW_AUDIT";
    case Kind::kUnreachable:
      return "VW_UNREACHABLE";
  }
  return "VW_CONTRACT";
}

ContractError::ContractError(const ContractViolation& violation, const std::string& what)
    : std::invalid_argument(what),
      kind_(violation.kind),
      file_(violation.file),
      line_(violation.line) {}

void default_failure_handler(const ContractViolation& violation) {
  throw ContractError(violation, describe(violation));
}

FailureHandler set_failure_handler(FailureHandler handler) {
  if (handler == nullptr) handler = &default_failure_handler;
  return g_handler.exchange(handler);
}

FailureHandler failure_handler() { return g_handler.load(); }

void set_audit_enabled(bool enabled) { g_audit_enabled.store(enabled); }

bool audit_enabled() { return g_audit_enabled.load(); }

void fail(Kind kind, std::string_view condition, std::string_view file, int line,
          std::string message) {
  const ContractViolation violation{kind, condition, file, line, std::move(message)};
  g_handler.load()(violation);
}

void fail_unreachable(std::string_view file, int line, std::string message) {
  fail(Kind::kUnreachable, "false", file, line, std::move(message));
  // The handler tolerated an unreachable path; there is nothing sane to
  // resume, so die rather than execute what the author proved impossible.
  std::abort();
}

}  // namespace vw::contracts
