#pragma once

#include <cstddef>
#include <span>

// Increasing-trend detection on one-way-delay / RTT series.
//
// Wren's self-induced-congestion decision asks: do the ACK round-trip times
// of a packet train show an increasing trend (queues building at the
// bottleneck)? We use the two classical tests from the pathload literature:
// the Pairwise Comparison Test (PCT) and the Pairwise Difference Test (PDT).

namespace vw {

/// Pairwise Comparison Test statistic: fraction of consecutive pairs that
/// strictly increase. Random noise gives ~0.5; a strong increasing trend
/// gives values near 1. Returns 0.5 for series shorter than 2.
double pct_metric(std::span<const double> series);

/// Pairwise Difference Test statistic: (last - first) / sum |diffs|,
/// in [-1, 1]. Strong increase gives values near 1. Returns 0 for series
/// shorter than 2 or with zero total variation.
double pdt_metric(std::span<const double> series);

/// Parameters for the combined trend decision.
struct TrendParams {
  double pct_threshold = 0.6;   ///< PCT above this indicates increase
  double pdt_threshold = 0.4;   ///< PDT above this indicates increase
  std::size_t min_samples = 3;  ///< below this, no decision is made
  /// When set, BOTH metrics must cross their thresholds (the conservative
  /// conjunctive rule): sawtooth delay patterns — slow rises with sharp
  /// resets, typical of bursty cross traffic — push PCT high with zero net
  /// trend, and PDT vetoes them.
  bool require_both = false;
};

enum class Trend { kIncreasing, kNotIncreasing, kUndecided };

/// Least-squares trend strength: the fitted net increase over the series
/// (slope x span) divided by the residual standard deviation. Sawtooth or
/// white noise gives ~0; genuine queue growth gives large positive values.
/// Returns 0 for series shorter than 3 or with zero residual variance but
/// nonzero slope sign handled as +/-inf clamp (1e9).
double slope_ratio(std::span<const double> series);

/// Combined decision: increasing when either metric crosses its threshold
/// (the pathload "grey region" rule collapsed to a binary decision —
/// SIC only needs congested / not congested).
Trend detect_trend(std::span<const double> series, const TrendParams& params = {});

}  // namespace vw
