#pragma once

#include <cstdint>

// Virtual-time primitives shared by every subsystem.
//
// All simulation clocks are integer nanoseconds (SimTime). Integer time keeps
// event ordering exact and runs bit-identical across platforms, which the
// reproduction harnesses rely on.

namespace vw {

using SimTime = std::int64_t;  ///< nanoseconds of virtual time

inline constexpr SimTime kNsPerUs = 1'000;
inline constexpr SimTime kNsPerMs = 1'000'000;
inline constexpr SimTime kNsPerSec = 1'000'000'000;

/// Convert floating-point seconds to SimTime (rounded to nearest ns).
constexpr SimTime seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kNsPerSec) + (s >= 0 ? 0.5 : -0.5));
}

/// Convert integral milliseconds to SimTime.
constexpr SimTime millis(std::int64_t ms) { return ms * kNsPerMs; }

/// Convert integral microseconds to SimTime.
constexpr SimTime micros(std::int64_t us) { return us * kNsPerUs; }

/// Convert SimTime back to floating-point seconds (for reporting only).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

/// Time needed to serialize `bytes` onto a link of `bits_per_sec` capacity.
constexpr SimTime transmission_time(std::int64_t bytes, double bits_per_sec) {
  return seconds(static_cast<double>(bytes) * 8.0 / bits_per_sec);
}

}  // namespace vw
