#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

// Bounded lock-free ring for the capture datapath (trace producer on the
// simulation thread, writer thread doing file I/O on the other side).
//
// The design is a sequence-stamped bounded queue (Vyukov): every cell
// carries an atomic generation stamp, so a consumer claims a cell by CAS on
// the dequeue cursor and the producer can only reuse the cell after the
// consumer has re-stamped it. Why not a plain head/tail SPSC ring? Because
// the capture path wants *drop-oldest* overflow: when the writer thread
// falls behind, the producer discards the oldest buffered record (the
// kernel-trace semantics TraceFacility already has) rather than the newest.
// That makes the producer a second, occasional consumer — the per-cell
// stamps keep that safe and TSan-clean, where a classic two-index SPSC ring
// would race.
//
// Memory model:
//   * try_push is single-producer only: the enqueue cursor is written with
//     a plain store; the cell stamp release-publishes the value.
//   * try_pop may be called from both the consumer thread and the producer
//     (drop-oldest); contenders claim cells by CAS on the dequeue cursor
//     and acquire-load the stamp before touching the value.
//   * size_approx() is a racy estimate, good for gauges only.
//
// T must be nothrow-move-assignable; cells are default-constructed once at
// construction time (the single allocation this ring ever makes).

namespace vw {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].stamp.store(i, std::memory_order_relaxed);
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer-only. Returns false when the ring is full (the caller decides
  /// whether to drop the new value, pop-and-discard the oldest, or wait).
  bool try_push(T&& value) {
    const std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t stamp = cell.stamp.load(std::memory_order_acquire);
    if (stamp != pos) return false;  // cell not yet recycled: full
    cell.value = std::move(value);
    cell.stamp.store(pos + 1, std::memory_order_release);
    enqueue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Safe from the consumer thread and, concurrently, from the producer
  /// implementing drop-oldest. Returns false when the ring is empty.
  bool try_pop(T& out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t stamp = cell.stamp.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(stamp) - static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          out = std::move(cell.value);
          // Recycle: the producer may write this cell again once it has
          // lapped the ring.
          cell.stamp.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
        // Lost the race to another consumer; `pos` was reloaded by the CAS.
      } else if (diff < 0) {
        return false;  // cell not yet published: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);  // stale cursor
      }
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Racy occupancy estimate (for gauges; never use for control flow).
  std::size_t size_approx() const {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> stamp;
    T value;
  };

  // A fixed 64 rather than std::hardware_destructive_interference_size:
  // the constant is ABI-stable and GCC warns (-Winterference-size) that the
  // std value is not.
  static constexpr std::size_t kCacheLine = 64;

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  // Cursors on separate cache lines: the producer hammers enqueue_pos_, the
  // consumer dequeue_pos_; sharing a line would false-share every operation.
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace vw
