#include "util/trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/check.hpp"

namespace vw {

double pct_metric(std::span<const double> series) {
  if (series.size() < 2) return 0.5;
  std::size_t increases = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i] > series[i - 1]) ++increases;
  }
  return static_cast<double>(increases) / static_cast<double>(series.size() - 1);
}

double pdt_metric(std::span<const double> series) {
  if (series.size() < 2) return 0.0;
  double total_variation = 0.0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    total_variation += std::abs(series[i] - series[i - 1]);
  }
  if (total_variation == 0.0) return 0.0;
  return (series.back() - series.front()) / total_variation;
}

double slope_ratio(std::span<const double> series) {
  const std::size_t n = series.size();
  if (n < 3) return 0.0;
  // Least squares of y against x = 0..n-1.
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_xx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    sum_x += x;
    sum_y += series[i];
    sum_xy += x * series[i];
    sum_xx += x * x;
  }
  const double denom = static_cast<double>(n) * sum_xx - sum_x * sum_x;
  if (denom == 0) return 0.0;
  const double slope = (static_cast<double>(n) * sum_xy - sum_x * sum_y) / denom;
  const double intercept = (sum_y - slope * sum_x) / static_cast<double>(n);
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = series[i] - (intercept + slope * static_cast<double>(i));
    ss_res += r * r;
  }
  const double resid_sd = std::sqrt(ss_res / static_cast<double>(n));
  const double net_increase = slope * static_cast<double>(n - 1);
  if (resid_sd == 0) return net_increase > 0 ? 1e9 : 0.0;
  return net_increase / resid_sd;
}

Trend detect_trend(std::span<const double> series, const TrendParams& params) {
  VW_REQUIRE(params.pct_threshold >= 0.0 && params.pct_threshold <= 1.0,
             "detect_trend: pct_threshold outside [0,1]: ", params.pct_threshold);
  VW_REQUIRE(params.pdt_threshold >= -1.0 && params.pdt_threshold <= 1.0,
             "detect_trend: pdt_threshold outside [-1,1]: ", params.pdt_threshold);
  // PCT/PDT are meaningless over NaN/inf samples (comparisons go false and
  // variation sums poison): reject polluted series at the boundary.
  VW_AUDIT(std::all_of(series.begin(), series.end(),
                       [](double v) { return std::isfinite(v); }),
           "detect_trend: non-finite sample in series");
  if (series.size() < params.min_samples) return Trend::kUndecided;
  const bool pct_up = pct_metric(series) >= params.pct_threshold;
  const bool pdt_up = pdt_metric(series) >= params.pdt_threshold;
  const bool increasing = params.require_both ? (pct_up && pdt_up) : (pct_up || pdt_up);
  return increasing ? Trend::kIncreasing : Trend::kNotIncreasing;
}

}  // namespace vw
