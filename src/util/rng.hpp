#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

// Deterministic randomness service.
//
// Every stochastic component draws from a named stream derived from a single
// root seed, so (a) whole-system runs are reproducible from one seed, and
// (b) adding a new consumer does not perturb the draws of existing ones.

namespace vw {

/// A single random stream (thin wrapper over mt19937_64 with the
/// distributions the simulator actually needs).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal variate.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives child seeds/streams from a root seed and a stream name, using
/// FNV-1a hashing so stream identity is stable across runs and platforms.
class RngService {
 public:
  explicit RngService(std::uint64_t root_seed) : root_seed_(root_seed) {}

  /// Seed for the named stream (pure function of root seed + name).
  std::uint64_t seed_for(std::string_view stream_name) const;

  /// A fresh Rng for the named stream.
  Rng stream(std::string_view stream_name) const { return Rng(seed_for(stream_name)); }

  std::uint64_t root_seed() const { return root_seed_; }

 private:
  std::uint64_t root_seed_;
};

}  // namespace vw
