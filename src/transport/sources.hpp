#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "transport/meter.hpp"
#include "transport/stack.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"
#include "util/rng.hpp"

// Workload generators reproducing the paper's traffic:
//  * CbrUdpSource — iperf-style constant-bit-rate UDP (Figure 2 cross traffic)
//  * OnOffTcpSource — bursty on/off TCP (Figure 3 cross traffic)
//  * MessageSource — the monitored application: scripted message sizes with
//    fixed or random inter-message spacing (Figures 2 and 3)
//  * TcpSink — accepting endpoint that meters delivered bytes
//  * BulkTcpSource — ttcp/iperf-style bulk TCP transfer (Figure 6 table)

namespace vw::transport {

/// Listens on (host, port), accepts any number of connections, meters bytes.
class TcpSink {
 public:
  TcpSink(TransportStack& stack, net::NodeId host, std::uint16_t port);
  ~TcpSink();

  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  const RateMeter& meter() const { return meter_; }
  std::uint64_t messages_received() const { return messages_; }
  std::uint64_t bytes_received() const { return meter_.total_bytes(); }
  net::NodeId host() const { return host_; }
  std::uint16_t port() const { return port_; }

 private:
  TransportStack& stack_;
  net::NodeId host_;
  std::uint16_t port_;
  RateMeter meter_;
  std::uint64_t messages_ = 0;
  std::unordered_map<TcpConnection*, std::uint64_t> last_delivered_;
  std::vector<TcpConnection*> accepted_;
};

/// iperf-style UDP constant bit rate generator. Departures carry a small
/// uniform jitter (default +/-10% of the interval, mean preserved), like a
/// real userspace sender subject to OS scheduling — perfectly periodic
/// packets are a measurement-hostile artifact no real generator produces.
class CbrUdpSource {
 public:
  CbrUdpSource(TransportStack& stack, net::NodeId src, net::NodeId dst, std::uint16_t dst_port,
               double rate_bps, std::uint32_t datagram_bytes = 1000,
               double jitter_fraction = 0.1, Rng rng = Rng(0x9e3779b9));
  ~CbrUdpSource();

  void start();
  void stop();
  /// Change the rate (0 pauses); takes effect at the next datagram.
  void set_rate_bps(double rate_bps);
  double rate_bps() const { return rate_bps_; }
  std::uint64_t datagrams_sent() const { return sent_; }

 private:
  void tick();
  SimTime interval() const;

  TransportStack& stack_;
  sim::Simulator& sim_;
  net::NodeId dst_;
  std::uint16_t dst_port_;
  double rate_bps_;
  std::uint32_t datagram_bytes_;
  double jitter_fraction_;
  Rng rng_;
  std::shared_ptr<UdpSocket> socket_;
  std::shared_ptr<UdpSocket> sink_;
  sim::EventHandle pending_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
};

/// On/off TCP generator: exponential ON and OFF periods; during ON, writes
/// chunks paced at `peak_rate_bps` into a TCP connection.
class OnOffTcpSource {
 public:
  OnOffTcpSource(TransportStack& stack, net::NodeId src, net::NodeId dst, std::uint16_t dst_port,
                 double peak_rate_bps, SimTime mean_on, SimTime mean_off, Rng rng);

  void start();
  void stop();
  std::uint64_t bytes_written() const { return written_; }
  const TcpSink& sink() const { return *sink_; }

 private:
  void enter_on();
  void enter_off();
  void write_chunk();

  TransportStack& stack_;
  sim::Simulator& sim_;
  double peak_rate_bps_;
  SimTime mean_on_;
  SimTime mean_off_;
  Rng rng_;
  std::unique_ptr<TcpSink> sink_;
  TcpConnection* conn_ = nullptr;
  sim::EventHandle pending_;
  bool running_ = false;
  bool in_on_ = false;
  SimTime on_ends_ = 0;
  std::uint64_t written_ = 0;
  static constexpr std::uint32_t kChunkBytes = 16 * 1024;
};

/// One phase of the monitored application's scripted behaviour.
struct MessagePhase {
  std::uint32_t count = 0;          ///< messages in this phase
  std::uint64_t message_bytes = 0;  ///< size of each message
  SimTime spacing = 0;              ///< inter-message spacing (fixed)
  SimTime pause_after = 0;          ///< idle time after the phase
  bool random_spacing = false;      ///< spacing ~ U(0, 2*spacing) when set
};

/// The application Wren monitors: sends scripted messages over one TCP
/// connection; the receiving side is metered by an internal TcpSink.
class MessageSource {
 public:
  MessageSource(TransportStack& stack, net::NodeId src, net::NodeId dst, std::uint16_t dst_port,
                std::vector<MessagePhase> phases, std::uint32_t repeat = 1,
                Rng rng = Rng(0));

  void start();
  bool finished() const { return finished_; }
  const TcpSink& sink() const { return *sink_; }
  TcpConnection& connection() { return *conn_; }
  std::uint64_t messages_sent() const { return sent_; }

 private:
  void send_next();

  TransportStack& stack_;
  sim::Simulator& sim_;
  std::vector<MessagePhase> phases_;
  std::uint32_t repeat_;
  Rng rng_;
  std::unique_ptr<TcpSink> sink_;
  TcpConnection* conn_ = nullptr;
  std::uint32_t phase_idx_ = 0;
  std::uint32_t in_phase_ = 0;
  std::uint32_t rep_ = 0;
  std::uint64_t sent_ = 0;
  bool finished_ = false;
};

/// ttcp-style bulk transfer: keeps `window_bytes` of unsent data buffered
/// until stopped; measures achieved throughput at the sink.
class BulkTcpSource {
 public:
  BulkTcpSource(TransportStack& stack, net::NodeId src, net::NodeId dst, std::uint16_t dst_port);

  void start();
  void stop();
  /// Delivered throughput over [t0, t1].
  double throughput_bps(SimTime t0, SimTime t1) const { return sink_->meter().average_bps(t0, t1); }
  const TcpSink& sink() const { return *sink_; }

 private:
  void top_up();

  TransportStack& stack_;
  sim::Simulator& sim_;
  std::unique_ptr<TcpSink> sink_;
  TcpConnection* conn_ = nullptr;
  bool running_ = false;
  static constexpr std::uint64_t kWriteChunk = 256 * 1024;
};

}  // namespace vw::transport
