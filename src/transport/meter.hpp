#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

// Records (time, byte-count) deltas and reports throughput series — used by
// every harness to plot "application throughput" the way the paper does.

namespace vw::transport {

struct RatePoint {
  SimTime time;   ///< end of the bucket
  double bps;     ///< average rate within the bucket
};

class RateMeter {
 public:
  /// Record `bytes` transferred at virtual time `t` (monotone non-decreasing).
  void add(SimTime t, std::uint64_t bytes);

  std::uint64_t total_bytes() const { return total_; }

  /// Average rate over [t0, t1].
  double average_bps(SimTime t0, SimTime t1) const;

  /// Bucketed throughput series from time 0 to the last event, bucket width
  /// `bucket` ns. Empty buckets yield 0.
  std::vector<RatePoint> series(SimTime bucket) const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t bytes;
  };
  std::vector<Event> events_;
  std::uint64_t total_ = 0;
};

}  // namespace vw::transport
