#include "transport/stack.hpp"

#include <stdexcept>

#include "transport/tcp.hpp"
#include "transport/udp.hpp"
#include "util/check.hpp"

namespace vw::transport {

TransportStack::TransportStack(net::Network& network) : network_(network) {
  host_hooked_.resize(network_.node_count(), false);
}

TransportStack::~TransportStack() = default;

void TransportStack::set_obs(const obs::Scope& scope) {
  c_tcp_connections_ = scope.counter("transport.tcp.connections");
  c_tcp_segments_ = scope.counter("transport.tcp.segments.sent");
  c_tcp_retransmits_ = scope.counter("transport.tcp.retransmits");
  c_udp_datagrams_ = scope.counter("transport.udp.datagrams");
}

void TransportStack::ensure_host_hooked(net::NodeId host) {
  if (host >= host_hooked_.size()) host_hooked_.resize(host + 1, false);
  if (host_hooked_[host]) return;
  network_.set_host_stack(host, [this](net::Packet&& pkt) { dispatch(std::move(pkt)); });
  host_hooked_[host] = true;
}

std::uint16_t TransportStack::ephemeral_port(net::NodeId host) {
  auto [it, inserted] = next_ephemeral_.try_emplace(host, 49152);
  if (it->second == 0) throw std::runtime_error("ephemeral port space exhausted");
  return it->second++;
}

void TransportStack::dispatch(net::Packet&& pkt) {
  switch (pkt.flow.proto) {
    case net::Protocol::kTcp: handle_tcp(std::move(pkt)); break;
    case net::Protocol::kUdp: handle_udp(std::move(pkt)); break;
    default: VW_UNREACHABLE("dispatch: unknown protocol ", static_cast<int>(pkt.flow.proto));
  }
}

void TransportStack::handle_udp(net::Packet&& pkt) {
  auto it = udp_socks_.find({pkt.flow.dst, pkt.flow.dst_port});
  if (it == udp_socks_.end()) return;  // no listener: drop
  it->second->handle_packet(std::move(pkt));
}

void TransportStack::handle_tcp(net::Packet&& pkt) {
  // The endpoint that should receive this packet sends on the reversed flow.
  const net::FlowKey key = pkt.flow.reversed();
  if (auto it = tcp_conns_.find(key); it != tcp_conns_.end()) {
    it->second->handle_packet(std::move(pkt));
    return;
  }
  // No endpoint: a SYN may create a server-side connection via a listener.
  if (pkt.syn && !pkt.is_ack) {
    auto lit = tcp_listeners_.find({pkt.flow.dst, pkt.flow.dst_port});
    if (lit == tcp_listeners_.end()) return;
    auto conn = std::unique_ptr<TcpConnection>(
        new TcpConnection(*this, key, /*is_client=*/false, tcp_params_));
    TcpConnection* server = conn.get();
    owned_connections_.push_back(std::move(conn));
    register_tcp(key, server);
    // Wire the two endpoints for out-of-band message boundaries.
    if (auto pit = tcp_conns_.find(pkt.flow); pit != tcp_conns_.end()) {
      server->peer_attached(pit->second);
      pit->second->peer_attached(server);
    }
    lit->second(*server);
    server->handle_packet(std::move(pkt));
  }
}

void TransportStack::tcp_listen(net::NodeId host, std::uint16_t port, AcceptFn on_accept) {
  ensure_host_hooked(host);
  const bool fresh = tcp_listeners_.try_emplace({host, port}, std::move(on_accept)).second;
  VW_REQUIRE(fresh, "tcp_listen: port ", port, " already listening on host ", host);
}

void TransportStack::tcp_unlisten(net::NodeId host, std::uint16_t port) {
  tcp_listeners_.erase({host, port});
}

TcpConnection& TransportStack::tcp_connect(net::NodeId src_host, net::NodeId dst_host,
                                           std::uint16_t dst_port) {
  ensure_host_hooked(src_host);
  ensure_host_hooked(dst_host);
  const net::FlowKey key{src_host, dst_host, ephemeral_port(src_host), dst_port,
                         net::Protocol::kTcp};
  // Ephemeral allocation makes the flow key unique; a collision would let two
  // connections silently swallow each other's segments.
  VW_ASSERT(!tcp_conns_.contains(key), "tcp_connect: flow key already registered");
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, key, /*is_client=*/true, tcp_params_));
  TcpConnection* client = conn.get();
  owned_connections_.push_back(std::move(conn));
  register_tcp(key, client);
  obs::add(c_tcp_connections_);
  client->send_syn(/*ack=*/false);
  return *client;
}

void TransportStack::tcp_close(TcpConnection& endpoint) {
  TcpConnection* peer = endpoint.peer_;
  endpoint.close();
  unregister_tcp(endpoint.flow());
  if (peer != nullptr) {
    peer->close();
    unregister_tcp(peer->flow());
    peer->peer_attached(nullptr);
  }
  endpoint.peer_attached(nullptr);
  std::erase_if(owned_connections_, [&](const auto& c) {
    return c.get() == &endpoint || c.get() == peer;
  });
}

void TransportStack::register_tcp(const net::FlowKey& key, TcpConnection* conn) {
  tcp_conns_[key] = conn;
}

void TransportStack::unregister_tcp(const net::FlowKey& key) { tcp_conns_.erase(key); }

std::shared_ptr<UdpSocket> TransportStack::udp_bind(net::NodeId host, std::uint16_t port) {
  ensure_host_hooked(host);
  VW_REQUIRE(!udp_socks_.contains({host, port}), "udp_bind: port ", port,
             " in use on host ", host);
  auto sock = std::shared_ptr<UdpSocket>(new UdpSocket(*this, host, port));
  udp_socks_[{host, port}] = sock.get();
  return sock;
}

void TransportStack::unregister_udp(net::NodeId host, std::uint16_t port) {
  udp_socks_.erase({host, port});
}

}  // namespace vw::transport
