#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "transport/stack.hpp"
#include "util/time.hpp"

// TCP Reno endpoint.
//
// The model implements the mechanisms that matter for this paper:
//  * window-clocked bursts (slow start, congestion avoidance) — the natural
//    packet trains Wren mines for available-bandwidth estimates;
//  * per-segment cumulative ACKs — the return feedback whose RTT trend
//    reveals self-induced congestion;
//  * loss recovery (triple-dupack fast retransmit + RTO) so cross-traffic
//    and queue overflows shape throughput realistically.
//
// Message boundaries: send() queues a message; the receiving endpoint fires
// on_message when the in-order byte stream passes the boundary. Boundaries
// travel out-of-band between the two endpoint objects (they stand in for
// bytes that would be inside the stream).

namespace vw::transport {

class TcpConnection {
 public:
  enum class State { kSynSent, kSynReceived, kEstablished, kClosed };

  /// A message queued by the sending application.
  struct Message {
    std::uint64_t end_offset;  ///< stream offset one past the last byte
    std::uint64_t bytes;
    std::any tag;
  };

  using EstablishedFn = std::function<void()>;
  using MessageFn = std::function<void(std::uint64_t bytes, const std::any& tag)>;
  using DeliveredFn = std::function<void(std::uint64_t total_bytes)>;

  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- application interface -------------------------------------------
  /// Queue `bytes` for transmission as one message.
  void send(std::uint64_t bytes, std::any tag = {});

  void set_on_established(EstablishedFn fn) { on_established_ = std::move(fn); }
  /// Fires on THIS endpoint when a message from the peer is fully delivered.
  void set_on_message(MessageFn fn) { on_message_ = std::move(fn); }
  /// Fires whenever in-order delivered byte count advances.
  void set_on_delivered(DeliveredFn fn) { on_delivered_ = std::move(fn); }

  /// Stop all activity on this endpoint (timers cancelled, packets ignored).
  void close();

  // --- introspection ------------------------------------------------------
  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  const net::FlowKey& flow() const { return flow_; }  ///< outgoing data direction
  net::NodeId local_host() const { return flow_.src; }
  net::NodeId remote_host() const { return flow_.dst; }

  double cwnd() const { return cwnd_; }
  std::uint64_t ssthresh() const { return ssthresh_; }
  SimTime srtt() const { return srtt_; }
  std::uint64_t bytes_acked() const { return snd_una_; }
  std::uint64_t bytes_buffered() const { return buffered_end_; }
  /// In-order bytes this endpoint has received from the peer.
  std::uint64_t bytes_received() const { return rcv_nxt_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t bytes_sent_mark() const { return snd_nxt_; }
  std::uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  bool in_fast_recovery() const { return in_fast_recovery_; }
  std::uint32_t duplicate_acks() const { return dup_acks_; }
  SimTime current_rto() const { return rto_; }
  const TcpParams& params() const { return params_; }

 private:
  friend class TransportStack;

  TcpConnection(TransportStack& stack, net::FlowKey flow, bool is_client, TcpParams params);

  // Packet-level entry point (called by the stack).
  void handle_packet(net::Packet&& pkt);

  void handle_syn(const net::Packet& pkt);
  void handle_synack(const net::Packet& pkt);
  void handle_ack(const net::Packet& pkt);
  void handle_data(const net::Packet& pkt);

  void become_established();
  void try_send();
  void send_segment(std::uint64_t seq, std::uint32_t len, bool retransmit);
  void send_pure_ack();
  void send_syn(bool ack);

  void on_new_ack(std::uint64_t ack);
  void on_dup_ack();
  void enter_fast_recovery();
  void on_rto();
  void arm_rto();
  void disarm_rto();
  void sample_rtt(SimTime rtt);

  void peer_attached(TcpConnection* peer) { peer_ = peer; }
  /// Pops and returns queued messages fully contained below `delivered`.
  std::deque<Message> take_messages_below(std::uint64_t delivered);
  void deliver_ready_messages();

  TransportStack& stack_;
  sim::Simulator& sim_;
  net::FlowKey flow_;
  TcpParams params_;
  State state_;
  TcpConnection* peer_ = nullptr;

  // Sender state.
  std::deque<Message> outgoing_messages_;
  std::uint64_t buffered_end_ = 0;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  double cwnd_ = 0;
  std::uint64_t ssthresh_ = 0;
  std::uint32_t dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint64_t recover_ = 0;
  std::uint64_t retransmissions_ = 0;

  // RTT estimation (Jacobson/Karn).
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  SimTime rto_;
  bool rtt_sample_pending_ = false;
  std::uint64_t rtt_seq_ = 0;
  SimTime rtt_sent_at_ = 0;
  sim::EventHandle rto_timer_;
  std::uint32_t syn_retries_ = 0;

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> out_of_order_;  ///< seq -> end
  std::uint32_t unacked_segments_ = 0;
  sim::EventHandle delack_timer_;

  EstablishedFn on_established_;
  MessageFn on_message_;
  DeliveredFn on_delivered_;
};

}  // namespace vw::transport
