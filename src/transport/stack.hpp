#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "obs/scope.hpp"
#include "sim/simulator.hpp"

// Per-network transport demultiplexer. Owns the host protocol stacks: every
// delivered packet is dispatched to the TCP connection or UDP socket bound
// to its flow/port. Sockets and connections register themselves here.

namespace vw::transport {

class TcpConnection;
class UdpSocket;

inline constexpr std::uint32_t kMss = 1460;         ///< TCP max segment payload
inline constexpr std::uint32_t kHeaderBytes = 40;   ///< IP + TCP/UDP header model

struct TcpParams {
  std::uint32_t mss = kMss;
  std::uint64_t initial_cwnd_segments = 2;
  std::uint64_t receive_window = 256 * 1024;  ///< bytes (2006-era scaled window)
  SimTime min_rto = millis(200);
  SimTime max_rto = seconds(60.0);
  SimTime initial_rto = seconds(1.0);
  /// RFC 1122 delayed ACKs: acknowledge every second full segment or after
  /// the timeout, whichever first; out-of-order data is ACKed immediately.
  /// Off by default (per-segment ACKs give Wren the densest feedback; the
  /// delayed-ACK ablation measures the accuracy cost).
  bool delayed_ack = false;
  SimTime delayed_ack_timeout = millis(40);
};

class TransportStack {
 public:
  explicit TransportStack(net::Network& network);
  ~TransportStack();

  TransportStack(const TransportStack&) = delete;
  TransportStack& operator=(const TransportStack&) = delete;

  net::Network& network() { return network_; }
  sim::Simulator& simulator() { return network_.simulator(); }

  /// Parameters applied to subsequently created TCP connections (both the
  /// client endpoint of tcp_connect and server endpoints from listeners).
  void set_default_tcp_params(const TcpParams& params) { tcp_params_ = params; }
  const TcpParams& default_tcp_params() const { return tcp_params_; }

  /// Allocates an ephemeral port on `host` (49152+, never reused).
  std::uint16_t ephemeral_port(net::NodeId host);

  // --- TCP --------------------------------------------------------------
  using AcceptFn = std::function<void(TcpConnection&)>;

  /// Start listening for TCP connections on (host, port).
  void tcp_listen(net::NodeId host, std::uint16_t port, AcceptFn on_accept);
  void tcp_unlisten(net::NodeId host, std::uint16_t port);

  /// Open a TCP connection; returns the client endpoint. The connection
  /// completes the three-way handshake asynchronously; queued data flows
  /// once established.
  TcpConnection& tcp_connect(net::NodeId src_host, net::NodeId dst_host, std::uint16_t dst_port);

  /// Destroy a connection pair (both endpoints).
  void tcp_close(TcpConnection& endpoint);

  // --- UDP ----------------------------------------------------------------
  /// Bind a UDP socket; destroyed via its own destructor.
  std::shared_ptr<UdpSocket> udp_bind(net::NodeId host, std::uint16_t port);

  /// Attach telemetry (transport.tcp.* / transport.udp.* counters, bumped
  /// by every connection and socket on this stack).
  void set_obs(const obs::Scope& scope);

 private:
  friend class TcpConnection;
  friend class UdpSocket;

  void ensure_host_hooked(net::NodeId host);
  void dispatch(net::Packet&& pkt);
  void handle_tcp(net::Packet&& pkt);
  void handle_udp(net::Packet&& pkt);

  void register_tcp(const net::FlowKey& key, TcpConnection* conn);
  void unregister_tcp(const net::FlowKey& key);
  void unregister_udp(net::NodeId host, std::uint16_t port);

  net::Network& network_;
  std::unordered_map<net::FlowKey, TcpConnection*, net::FlowKeyHash> tcp_conns_;
  std::map<std::pair<net::NodeId, std::uint16_t>, AcceptFn> tcp_listeners_;
  std::map<std::pair<net::NodeId, std::uint16_t>, UdpSocket*> udp_socks_;
  std::map<net::NodeId, std::uint16_t> next_ephemeral_;
  std::vector<std::unique_ptr<TcpConnection>> owned_connections_;
  std::vector<bool> host_hooked_;
  TcpParams tcp_params_;
  obs::Counter* c_tcp_connections_ = nullptr;
  obs::Counter* c_tcp_segments_ = nullptr;
  obs::Counter* c_tcp_retransmits_ = nullptr;
  obs::Counter* c_udp_datagrams_ = nullptr;
};

}  // namespace vw::transport
