#include "transport/meter.hpp"

#include "util/check.hpp"

namespace vw::transport {

void RateMeter::add(SimTime t, std::uint64_t bytes) {
  VW_REQUIRE(events_.empty() || t >= events_.back().time,
             "RateMeter::add: time went backwards (", t, " < ", events_.back().time, ")");
  events_.push_back(Event{t, bytes});
  total_ += bytes;
}

double RateMeter::average_bps(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return 0.0;
  std::uint64_t bytes = 0;
  for (const auto& e : events_) {
    if (e.time >= t0 && e.time <= t1) bytes += e.bytes;
  }
  return static_cast<double>(bytes) * 8.0 / to_seconds(t1 - t0);
}

std::vector<RatePoint> RateMeter::series(SimTime bucket) const {
  VW_REQUIRE(bucket > 0, "RateMeter::series: bucket must be positive, got ", bucket);
  std::vector<RatePoint> out;
  if (events_.empty()) return out;
  const SimTime end = events_.back().time;
  const auto n_buckets = static_cast<std::size_t>(end / bucket) + 1;
  std::vector<std::uint64_t> bytes(n_buckets, 0);
  for (const auto& e : events_) {
    bytes[static_cast<std::size_t>(e.time / bucket)] += e.bytes;
  }
  out.reserve(n_buckets);
  for (std::size_t i = 0; i < n_buckets; ++i) {
    out.push_back(RatePoint{static_cast<SimTime>(i + 1) * bucket,
                            static_cast<double>(bytes[i]) * 8.0 / to_seconds(bucket)});
  }
  return out;
}

}  // namespace vw::transport
