#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "transport/stack.hpp"

// Connectionless datagram socket. A datagram travels as a single packet of
// its full size (the links serialize by byte count, so oversized datagrams
// behave like jumbo frames — VNET UDP encapsulation relies on this).

namespace vw::transport {

class UdpSocket {
 public:
  /// Receives the delivered packet by rvalue: the socket is the end of the
  /// datapath, so the handler may move `user_data` out instead of bumping
  /// refcounts. Handlers taking `const net::Packet&` still bind.
  using ReceiveFn = std::function<void(net::Packet&&)>;

  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Send a datagram of `payload_bytes` to (dst, dst_port); `data` rides
  /// along opaquely and is handed to the receiver's callback.
  void send_to(net::NodeId dst, std::uint16_t dst_port, std::uint32_t payload_bytes,
               std::shared_ptr<std::any> data = nullptr);

  void set_on_receive(ReceiveFn fn) { on_receive_ = std::move(fn); }

  net::NodeId host() const { return host_; }
  std::uint16_t port() const { return port_; }
  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }

 private:
  friend class TransportStack;

  UdpSocket(TransportStack& stack, net::NodeId host, std::uint16_t port);
  void handle_packet(net::Packet&& pkt);

  TransportStack& stack_;
  net::NodeId host_;
  std::uint16_t port_;
  std::uint64_t next_datagram_id_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  ReceiveFn on_receive_;
};

}  // namespace vw::transport
