#include "transport/tcp.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace vw::transport {

TcpConnection::TcpConnection(TransportStack& stack, net::FlowKey flow, bool is_client,
                             TcpParams params)
    : stack_(stack),
      sim_(stack.simulator()),
      flow_(flow),
      params_(params),
      state_(is_client ? State::kSynSent : State::kSynReceived) {
  cwnd_ = static_cast<double>(params_.initial_cwnd_segments * params_.mss);
  ssthresh_ = params_.receive_window;
  rto_ = params_.initial_rto;
}

TcpConnection::~TcpConnection() {
  disarm_rto();
  if (delack_timer_.valid()) sim_.cancel(delack_timer_);
}

void TcpConnection::close() {
  state_ = State::kClosed;
  disarm_rto();
  if (delack_timer_.valid()) {
    sim_.cancel(delack_timer_);
    delack_timer_ = sim::EventHandle{};
  }
}

void TcpConnection::send(std::uint64_t bytes, std::any tag) {
  if (bytes == 0) return;
  buffered_end_ += bytes;
  outgoing_messages_.push_back(Message{buffered_end_, bytes, std::move(tag)});
  if (state_ == State::kEstablished) try_send();
}

// --- handshake -------------------------------------------------------------

void TcpConnection::send_syn(bool ack) {
  net::Packet pkt;
  pkt.flow = flow_;
  pkt.syn = true;
  pkt.is_ack = ack;
  pkt.header_bytes = kHeaderBytes;
  stack_.network().send(std::move(pkt));
  // SYN retransmission backstop.
  disarm_rto();
  rto_timer_ = sim_.schedule_in(rto_, [this] {
    if (state_ == State::kSynSent || state_ == State::kSynReceived) {
      if (++syn_retries_ > 6) {
        close();
        return;
      }
      rto_ = std::min(rto_ * 2, params_.max_rto);
      send_syn(state_ == State::kSynReceived);
    }
  });
}

void TcpConnection::handle_syn(const net::Packet&) {
  // Server side: answer with SYN-ACK (state kSynReceived set at creation).
  if (state_ == State::kSynReceived) send_syn(/*ack=*/true);
}

void TcpConnection::handle_synack(const net::Packet&) {
  if (state_ != State::kSynSent) return;
  become_established();
  send_pure_ack();
}

void TcpConnection::become_established() {
  state_ = State::kEstablished;
  disarm_rto();
  rto_ = params_.initial_rto;
  if (on_established_) on_established_();
  try_send();
}

// --- packet dispatch ---------------------------------------------------------

void TcpConnection::handle_packet(net::Packet&& pkt) {
  if (state_ == State::kClosed) return;
  if (pkt.syn && !pkt.is_ack) {
    handle_syn(pkt);
    return;
  }
  if (pkt.syn && pkt.is_ack) {
    handle_synack(pkt);
    return;
  }
  if (state_ == State::kSynReceived) {
    // First ACK completes the server side of the handshake.
    become_established();
  }
  if (pkt.payload_bytes > 0) {
    handle_data(pkt);
  } else if (pkt.is_ack) {
    handle_ack(pkt);
  }
}

// --- receiver ---------------------------------------------------------------

void TcpConnection::handle_data(const net::Packet& pkt) {
  const std::uint64_t seg_start = pkt.seq;
  const std::uint64_t seg_end = pkt.seq + pkt.payload_bytes;
  bool in_order = false;
  if (seg_end > rcv_nxt_) {
    in_order = seg_start <= rcv_nxt_;
    if (seg_start <= rcv_nxt_) {
      rcv_nxt_ = seg_end;
      // Absorb contiguous out-of-order segments.
      for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
        if (it->first <= rcv_nxt_) {
          rcv_nxt_ = std::max(rcv_nxt_, it->second);
          it = out_of_order_.erase(it);
        } else {
          break;
        }
      }
      deliver_ready_messages();
      if (on_delivered_) on_delivered_(rcv_nxt_);
    } else {
      // Out of order: remember the interval (coalesce overlaps lazily).
      auto [it, inserted] = out_of_order_.try_emplace(seg_start, seg_end);
      if (!inserted) it->second = std::max(it->second, seg_end);
    }
  }
  if (!params_.delayed_ack || !in_order || !out_of_order_.empty()) {
    // Immediate ACK: delayed ACKs disabled, or the segment was out of
    // order / filled a hole (duplicate-ACK feedback must not be delayed).
    send_pure_ack();
    return;
  }
  if (++unacked_segments_ >= 2) {
    send_pure_ack();
    return;
  }
  if (!delack_timer_.valid()) {
    delack_timer_ = sim_.schedule_in(params_.delayed_ack_timeout, [this] {
      delack_timer_ = sim::EventHandle{};
      if (unacked_segments_ > 0) send_pure_ack();
    });
  }
}

void TcpConnection::deliver_ready_messages() {
  if (!peer_) return;
  for (auto& msg : peer_->take_messages_below(rcv_nxt_)) {
    if (on_message_) on_message_(msg.bytes, msg.tag);
  }
}

std::deque<TcpConnection::Message> TcpConnection::take_messages_below(std::uint64_t delivered) {
  std::deque<Message> ready;
  while (!outgoing_messages_.empty() && outgoing_messages_.front().end_offset <= delivered) {
    ready.push_back(std::move(outgoing_messages_.front()));
    outgoing_messages_.pop_front();
  }
  return ready;
}

void TcpConnection::send_pure_ack() {
  unacked_segments_ = 0;
  if (delack_timer_.valid()) {
    sim_.cancel(delack_timer_);
    delack_timer_ = sim::EventHandle{};
  }
  net::Packet pkt;
  pkt.flow = flow_;
  pkt.is_ack = true;
  pkt.ack = rcv_nxt_;
  pkt.header_bytes = kHeaderBytes;
  stack_.network().send(std::move(pkt));
}

// --- sender ------------------------------------------------------------------

void TcpConnection::try_send() {
  if (state_ != State::kEstablished) return;
  // Sequence-space sanity: una <= nxt <= buffered_end, else the in-flight
  // arithmetic below underflows into a ~2^64-byte "window".
  VW_ASSERT(snd_una_ <= snd_nxt_ && snd_nxt_ <= buffered_end_,
            "TcpConnection: sequence bookkeeping broken (una=", snd_una_, " nxt=", snd_nxt_,
            " end=", buffered_end_, ")");
  VW_ASSERT(cwnd_ >= 1.0, "TcpConnection: congestion window collapsed to ", cwnd_);
  const std::uint64_t window = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(cwnd_), params_.receive_window);
  while (snd_nxt_ < buffered_end_) {
    const std::uint64_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= window) break;
    const std::uint32_t len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({params_.mss, buffered_end_ - snd_nxt_, window - in_flight}));
    if (len == 0) break;
    send_segment(snd_nxt_, len, /*retransmit=*/false);
    snd_nxt_ += len;
  }
}

void TcpConnection::send_segment(std::uint64_t seq, std::uint32_t len, bool retransmit) {
  net::Packet pkt;
  pkt.flow = flow_;
  pkt.seq = seq;
  pkt.payload_bytes = len;
  pkt.header_bytes = kHeaderBytes;
  obs::add(stack_.c_tcp_segments_);
  if (retransmit) {
    ++retransmissions_;
    obs::add(stack_.c_tcp_retransmits_);
  } else if (!rtt_sample_pending_) {
    // Karn: only time segments transmitted exactly once.
    rtt_sample_pending_ = true;
    rtt_seq_ = seq + len;
    rtt_sent_at_ = sim_.now();
  }
  stack_.network().send(std::move(pkt));
  if (!rto_timer_.valid() || retransmit) arm_rto();
  else if (snd_una_ == seq) arm_rto();
}

void TcpConnection::handle_ack(const net::Packet& pkt) {
  if (pkt.ack > snd_una_) {
    on_new_ack(pkt.ack);
  } else if (pkt.ack == snd_una_ && snd_nxt_ > snd_una_) {
    on_dup_ack();
  }
}

void TcpConnection::on_new_ack(std::uint64_t ack) {
  VW_ASSERT(ack > snd_una_, "TcpConnection::on_new_ack: stale ACK ", ack, " <= ", snd_una_);
  VW_ASSERT(ack <= buffered_end_, "TcpConnection::on_new_ack: ACK ", ack,
            " beyond sent data end ", buffered_end_);
  // RTT sample (Karn's rule: ignore if the timed segment was retransmitted —
  // a retransmit clears rtt_sample_pending_ implicitly by resetting below).
  if (rtt_sample_pending_ && ack >= rtt_seq_) {
    sample_rtt(sim_.now() - rtt_sent_at_);
    rtt_sample_pending_ = false;
  }

  const std::uint64_t mss = params_.mss;
  if (in_fast_recovery_) {
    if (ack >= recover_) {
      // Full ACK: leave fast recovery with the halved window.
      in_fast_recovery_ = false;
      cwnd_ = static_cast<double>(ssthresh_);
      dup_acks_ = 0;
    } else {
      // Partial ACK (NewReno): retransmit the next hole and stay in
      // recovery. The partial-ACK chain is self-clocking (each retransmit
      // produces the next partial ACK), so we deliberately do NOT inflate
      // the window with new data — inflation sprays segments into an
      // already overflowing drop-tail queue and devolves into RTO backoff.
      snd_una_ = ack;
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(mss, buffered_end_ - snd_una_));
      send_segment(snd_una_, len, /*retransmit=*/true);
      arm_rto();
      return;
    }
  } else {
    dup_acks_ = 0;
    if (cwnd_ < static_cast<double>(ssthresh_)) {
      cwnd_ += static_cast<double>(mss);  // slow start
    } else {
      cwnd_ += static_cast<double>(mss) * static_cast<double>(mss) / cwnd_;  // AIMD
    }
  }

  snd_una_ = ack;
  // A late pre-RTO ACK can overtake the go-back-N rewound snd_nxt_.
  if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
  // Forward progress clears any RTO exponential backoff (RFC 6298 style).
  if (srtt_ > 0) rto_ = std::clamp(srtt_ + 4 * rttvar_, params_.min_rto, params_.max_rto);
  if (snd_una_ >= snd_nxt_) {
    disarm_rto();
  } else {
    arm_rto();
  }
  try_send();
}

void TcpConnection::on_dup_ack() {
  ++dup_acks_;
  if (!in_fast_recovery_ && dup_acks_ == 3) enter_fast_recovery();
}

void TcpConnection::enter_fast_recovery() {
  const std::uint64_t mss = params_.mss;
  const std::uint64_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<std::uint64_t>(flight / 2, 2 * mss);
  in_fast_recovery_ = true;
  recover_ = snd_nxt_;
  rtt_sample_pending_ = false;
  const std::uint32_t len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(mss, buffered_end_ - snd_una_));
  send_segment(snd_una_, len, /*retransmit=*/true);
  cwnd_ = static_cast<double>(ssthresh_);
}

void TcpConnection::on_rto() {
  if (state_ != State::kEstablished || snd_una_ >= snd_nxt_) return;
  const std::uint64_t mss = params_.mss;
  const std::uint64_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max<std::uint64_t>(flight / 2, 2 * mss);
  cwnd_ = static_cast<double>(mss);
  dup_acks_ = 0;
  in_fast_recovery_ = false;
  rtt_sample_pending_ = false;
  snd_nxt_ = snd_una_;  // go-back-N
  rto_ = std::min(rto_ * 2, params_.max_rto);
  const std::uint32_t len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(mss, buffered_end_ - snd_una_));
  send_segment(snd_una_, len, /*retransmit=*/true);
  snd_nxt_ = snd_una_ + len;
}

void TcpConnection::arm_rto() {
  disarm_rto();
  rto_timer_ = sim_.schedule_in(rto_, [this] { on_rto(); });
}

void TcpConnection::disarm_rto() {
  if (rto_timer_.valid()) {
    sim_.cancel(rto_timer_);
    rto_timer_ = sim::EventHandle{};
  }
}

void TcpConnection::sample_rtt(SimTime rtt) {
  if (srtt_ == 0) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    const SimTime err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, params_.min_rto, params_.max_rto);
}

}  // namespace vw::transport
