#include "transport/sources.hpp"

#include <stdexcept>

namespace vw::transport {

// --- TcpSink -----------------------------------------------------------------

TcpSink::TcpSink(TransportStack& stack, net::NodeId host, std::uint16_t port)
    : stack_(stack), host_(host), port_(port) {
  stack_.tcp_listen(host, port, [this](TcpConnection& conn) {
    accepted_.push_back(&conn);
    conn.set_on_message([this](std::uint64_t, const std::any&) { ++messages_; });
    conn.set_on_delivered([this, &conn](std::uint64_t total) {
      // Meter the per-connection delta; connections are independent streams.
      std::uint64_t& last = last_delivered_[&conn];
      const std::uint64_t delta = total - last;
      last = total;
      meter_.add(stack_.simulator().now(), delta);
    });
  });
}

TcpSink::~TcpSink() { stack_.tcp_unlisten(host_, port_); }

// --- CbrUdpSource ---------------------------------------------------------

CbrUdpSource::CbrUdpSource(TransportStack& stack, net::NodeId src, net::NodeId dst,
                           std::uint16_t dst_port, double rate_bps, std::uint32_t datagram_bytes,
                           double jitter_fraction, Rng rng)
    : stack_(stack),
      sim_(stack.simulator()),
      dst_(dst),
      dst_port_(dst_port),
      rate_bps_(rate_bps),
      datagram_bytes_(datagram_bytes),
      jitter_fraction_(jitter_fraction),
      rng_(rng) {
  socket_ = stack_.udp_bind(src, stack_.ephemeral_port(src));
  sink_ = stack_.udp_bind(dst, dst_port);
}

CbrUdpSource::~CbrUdpSource() { stop(); }

SimTime CbrUdpSource::interval() const {
  return seconds(static_cast<double>(datagram_bytes_) * 8.0 / rate_bps_);
}

void CbrUdpSource::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void CbrUdpSource::stop() {
  running_ = false;
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = sim::EventHandle{};
  }
}

void CbrUdpSource::set_rate_bps(double rate_bps) {
  rate_bps_ = rate_bps;
  if (running_ && rate_bps_ > 0 && !pending_.valid()) tick();
}

void CbrUdpSource::tick() {
  pending_ = sim::EventHandle{};
  if (!running_) return;
  if (rate_bps_ <= 0) return;  // paused; set_rate_bps restarts
  socket_->send_to(dst_, dst_port_, datagram_bytes_);
  ++sent_;
  SimTime next = interval();
  if (jitter_fraction_ > 0) {
    next = seconds(to_seconds(next) *
                   rng_.uniform(1.0 - jitter_fraction_, 1.0 + jitter_fraction_));
  }
  pending_ = sim_.schedule_in(next, [this] { tick(); });
}

// --- OnOffTcpSource ---------------------------------------------------------

OnOffTcpSource::OnOffTcpSource(TransportStack& stack, net::NodeId src, net::NodeId dst,
                               std::uint16_t dst_port, double peak_rate_bps, SimTime mean_on,
                               SimTime mean_off, Rng rng)
    : stack_(stack),
      sim_(stack.simulator()),
      peak_rate_bps_(peak_rate_bps),
      mean_on_(mean_on),
      mean_off_(mean_off),
      rng_(rng) {
  sink_ = std::make_unique<TcpSink>(stack, dst, dst_port);
  conn_ = &stack_.tcp_connect(src, dst, dst_port);
}

void OnOffTcpSource::start() {
  if (running_) return;
  running_ = true;
  enter_off();
}

void OnOffTcpSource::stop() {
  running_ = false;
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = sim::EventHandle{};
  }
}

void OnOffTcpSource::enter_off() {
  if (!running_) return;
  in_on_ = false;
  const SimTime off = seconds(rng_.exponential(to_seconds(mean_off_)));
  pending_ = sim_.schedule_in(off, [this] { enter_on(); });
}

void OnOffTcpSource::enter_on() {
  if (!running_) return;
  in_on_ = true;
  const SimTime on = seconds(rng_.exponential(to_seconds(mean_on_)));
  on_ends_ = sim_.now() + on;
  write_chunk();
}

void OnOffTcpSource::write_chunk() {
  if (!running_ || !in_on_) return;
  if (sim_.now() >= on_ends_) {
    enter_off();
    return;
  }
  conn_->send(kChunkBytes);
  written_ += kChunkBytes;
  const SimTime pace = seconds(static_cast<double>(kChunkBytes) * 8.0 / peak_rate_bps_);
  pending_ = sim_.schedule_in(pace, [this] { write_chunk(); });
}

// --- MessageSource -----------------------------------------------------------

MessageSource::MessageSource(TransportStack& stack, net::NodeId src, net::NodeId dst,
                             std::uint16_t dst_port, std::vector<MessagePhase> phases,
                             std::uint32_t repeat, Rng rng)
    : stack_(stack),
      sim_(stack.simulator()),
      phases_(std::move(phases)),
      repeat_(repeat),
      rng_(rng) {
  if (phases_.empty()) throw std::invalid_argument("MessageSource: no phases");
  sink_ = std::make_unique<TcpSink>(stack, dst, dst_port);
  conn_ = &stack_.tcp_connect(src, dst, dst_port);
}

void MessageSource::start() {
  if (conn_->established()) {
    send_next();
  } else {
    conn_->set_on_established([this] { send_next(); });
  }
}

void MessageSource::send_next() {
  if (phase_idx_ >= phases_.size()) {
    ++rep_;
    phase_idx_ = 0;
    in_phase_ = 0;
    if (rep_ >= repeat_) {
      finished_ = true;
      return;
    }
  }
  const MessagePhase& phase = phases_[phase_idx_];
  conn_->send(phase.message_bytes);
  ++sent_;
  ++in_phase_;

  SimTime delay;
  if (in_phase_ >= phase.count) {
    delay = phase.pause_after;
    ++phase_idx_;
    in_phase_ = 0;
  } else if (phase.random_spacing) {
    delay = seconds(rng_.uniform(0.0, 2.0 * to_seconds(phase.spacing)));
  } else {
    delay = phase.spacing;
  }
  sim_.schedule_in(delay, [this] { send_next(); });
}

// --- BulkTcpSource ----------------------------------------------------------

BulkTcpSource::BulkTcpSource(TransportStack& stack, net::NodeId src, net::NodeId dst,
                             std::uint16_t dst_port)
    : stack_(stack), sim_(stack.simulator()) {
  sink_ = std::make_unique<TcpSink>(stack, dst, dst_port);
  conn_ = &stack_.tcp_connect(src, dst, dst_port);
}

void BulkTcpSource::start() {
  if (running_) return;
  running_ = true;
  top_up();
}

void BulkTcpSource::stop() { running_ = false; }

void BulkTcpSource::top_up() {
  if (!running_) return;
  // Keep the send buffer ahead of the acknowledged stream so the connection
  // is never application-limited.
  while (conn_->bytes_buffered() < conn_->bytes_acked() + 4 * kWriteChunk) {
    conn_->send(kWriteChunk);
  }
  sim_.schedule_in(millis(10), [this] { top_up(); });
}

}  // namespace vw::transport
