#include "transport/udp.hpp"

#include <utility>

namespace vw::transport {

UdpSocket::UdpSocket(TransportStack& stack, net::NodeId host, std::uint16_t port)
    : stack_(stack), host_(host), port_(port) {}

UdpSocket::~UdpSocket() { stack_.unregister_udp(host_, port_); }

void UdpSocket::send_to(net::NodeId dst, std::uint16_t dst_port, std::uint32_t payload_bytes,
                        std::shared_ptr<std::any> data) {
  net::Packet pkt;
  pkt.flow = net::FlowKey{host_, dst, port_, dst_port, net::Protocol::kUdp};
  pkt.payload_bytes = payload_bytes;
  pkt.header_bytes = 28;  // IP + UDP
  pkt.seq = next_datagram_id_++;
  pkt.user_data = std::move(data);
  ++sent_;
  obs::add(stack_.c_udp_datagrams_);
  stack_.network().send(std::move(pkt));
}

void UdpSocket::handle_packet(net::Packet&& pkt) {
  ++received_;
  if (on_receive_) on_receive_(std::move(pkt));
}

}  // namespace vw::transport
