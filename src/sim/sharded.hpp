#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/scope.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

// Sharded discrete-event engine: N independent sim::Simulator instances
// advance in parallel under conservative synchronization (see DESIGN.md
// §5g). The protocol is the barrier-stepped (synchronous-window) form of
// Chandy–Misra–Bryant null messages:
//
//  * every cross-shard interaction is a *mailbox message* — a callback to
//    inject into the destination shard at an absolute time `at`. The engine
//    guarantees a message posted while executing an event at time t has
//    at >= t + lookahead, where lookahead is the minimum cross-shard
//    propagation delay declared by the workload (VW_ASSERTed on every post);
//  * execution proceeds in epochs. At each barrier the shards exchange
//    earliest-output-time announcements (their next pending event time —
//    the null-message content of CMB, reduced synchronously), pending
//    mailboxes are drained, and every shard may then safely run all events
//    in [window_start, min_next_event + lookahead) in parallel: no message
//    that could land inside that window can still be generated. Shards with
//    slack run ahead to the window edge without waiting on per-link
//    acknowledgements, and idle stretches are skipped in one hop because
//    the window is derived from the *next event*, not a fixed step;
//  * the cross-shard merge is deterministic by construction: messages are
//    injected at the epoch boundary in (time, source shard, mailbox seq)
//    order, and mailbox seq is the source shard's deterministic program
//    order. Event order inside a shard is therefore a pure function of the
//    workload — never of thread arrival order — which is what makes a
//    sharded run bit-identical across thread counts and reproducible
//    against the single-shard oracle (tests/sharded_sim_test.cpp).
//
// Mailbox memory model: each (source, destination) pair owns one SPSC
// mailbox. The producer is the source shard's worker, which appends only
// while its epoch task runs; the consumer is the destination shard's
// worker, which drains only during the next drain phase. The two phases are
// separated by the thread-pool barrier (mutex + condvar in
// ThreadPool::run_batch), whose release/acquire ordering publishes the
// appends — so the mailboxes themselves need no atomics, and TSan agrees.
//
// Global events (schedule_global) are the stop-the-world escape hatch for
// actions that touch state owned by several shards (fault injection taking
// a cross-shard link down). They run on the coordinator thread at an epoch
// boundary, after every shard has finished all events strictly before their
// timestamp and before any shard executes an event at it.

namespace vw::sim {

class ShardedSimulator {
 public:
  /// Cumulative synchronization statistics (monotone across run_until calls).
  struct Stats {
    std::uint64_t epochs = 0;         ///< parallel execution windows run
    std::uint64_t null_messages = 0;  ///< EOT announcements exchanged at barriers
    std::uint64_t handoffs = 0;       ///< cross-shard mailbox messages delivered
    std::uint64_t global_events = 0;  ///< stop-the-world events executed
  };

  /// `shards` independent engines. `pool` (borrowed, may outlive many
  /// ShardedSimulators — the persistent-pool pattern) supplies the workers;
  /// nullptr runs every shard on the calling thread, which is the
  /// single-threaded oracle mode: identical event order, no concurrency.
  explicit ShardedSimulator(std::size_t shards, ThreadPool* pool = nullptr);

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  Simulator& shard(std::size_t s) { return shards_[s]; }
  const Simulator& shard(std::size_t s) const { return shards_[s]; }

  /// Minimum cross-shard message delay the workload guarantees. Every
  /// post() made while executing events in a window ending at E must
  /// satisfy at >= E; lookahead is what makes the windows non-empty.
  /// Defaults to kNoLookahead (no cross-shard traffic at all).
  void set_lookahead(SimTime lookahead);
  SimTime lookahead() const { return lookahead_; }
  static constexpr SimTime kNoLookahead = Simulator::kNoEventTime / 2;

  /// Cross-shard handoff: run `cb` on shard `to` at absolute time `at`.
  /// Must be called from shard `from`'s executing event (its worker
  /// thread). `from == to` degenerates to a plain local schedule_at.
  /// Injection order at the destination is (at, from, per-mailbox seq).
  void post(std::size_t from, std::size_t to, SimTime at, Simulator::Callback cb);

  /// Stop-the-world event at absolute time `at`: runs on the coordinator
  /// thread with every shard quiescent at `at` (events before `at` done,
  /// events at `at` not started). Same-time globals run in FIFO order.
  /// Only callable between run_until calls or from inside a global event.
  void schedule_global(SimTime at, Simulator::Callback cb);

  /// Advance every shard to exactly `until` (events at `until` execute,
  /// like Simulator::run_until); successive calls compose.
  void run_until(SimTime until);

  /// Completed horizon: every shard's clock equals this between runs.
  SimTime now() const { return horizon_; }

  /// Sum of events executed across shards.
  std::uint64_t events_executed() const;

  const Stats& stats() const { return stats_; }

  /// Cold path: wire metrics (sim.shards, sim.epochs, sim.null_messages,
  /// sim.mailbox.handoffs, sim.shard.events histogram). Counters are
  /// flushed from the coordinator after each run_until, never from inside
  /// the parallel phases, so instrumentation cannot perturb event order.
  void set_obs(obs::Scope scope);

 private:
  struct Msg {
    SimTime at = 0;
    std::uint64_t seq = 0;   ///< per-mailbox FIFO order (producer program order)
    std::uint32_t src = 0;   ///< source shard (merge tie-break after time)
    Simulator::Callback cb;
  };
  struct Mailbox {
    std::vector<Msg> msgs;     ///< appended by producer, swapped out by consumer
    std::uint64_t next_seq = 0;
  };
  struct GlobalEvent {
    SimTime at = 0;
    std::uint64_t seq = 0;
    Simulator::Callback cb;
  };

  Mailbox& mailbox(std::size_t from, std::size_t to) {
    return mailboxes_[from * shards_.size() + to];
  }
  void drain_into(std::size_t s);
  void flush_obs();

  std::vector<Simulator> shards_;
  ThreadPool* pool_;  ///< borrowed; nullptr = serial oracle mode
  std::vector<Mailbox> mailboxes_;  ///< [from * n + to]
  std::vector<GlobalEvent> globals_;  ///< min-heap by (at, seq)
  std::uint64_t next_global_seq_ = 0;
  SimTime lookahead_ = kNoLookahead;
  SimTime horizon_ = 0;
  /// Exclusive end of the window currently executing (or last executed).
  /// Written by the coordinator only while the workers are idle; the pool
  /// barrier publishes it to the workers that assert against it in post().
  SimTime window_end_ = 0;
  // Per-shard scratch, indexed by shard: written by that shard's worker
  // during a phase, reduced by the coordinator after the barrier.
  std::vector<SimTime> next_time_;
  std::vector<std::uint64_t> injected_by_shard_;
  std::vector<std::vector<Msg>> drain_scratch_;  ///< reused merge buffers

  Stats stats_;
  // Cached instruments (cold set_obs pattern) + last-flushed snapshots.
  obs::Scope obs_;
  obs::Counter* obs_epochs_ = nullptr;
  obs::Counter* obs_null_messages_ = nullptr;
  obs::Counter* obs_handoffs_ = nullptr;
  obs::Counter* obs_global_events_ = nullptr;
  obs::Gauge* obs_shards_ = nullptr;
  obs::Histogram* obs_shard_events_ = nullptr;
  Stats flushed_;
  std::vector<std::uint64_t> flushed_events_;
};

}  // namespace vw::sim
