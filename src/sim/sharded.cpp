#include "sim/sharded.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "util/check.hpp"

namespace vw::sim {

namespace {

/// Saturating add so `min_next_event + lookahead` never wraps when a shard
/// reports kNoEventTime (INT64_MAX) or the lookahead is kNoLookahead.
SimTime sat_add(SimTime a, SimTime b) {
  return a > Simulator::kNoEventTime - b ? Simulator::kNoEventTime : a + b;
}

}  // namespace

ShardedSimulator::ShardedSimulator(std::size_t shards, ThreadPool* pool)
    : shards_(shards),
      pool_(pool),
      mailboxes_(shards * shards),
      next_time_(shards, 0),
      injected_by_shard_(shards, 0),
      drain_scratch_(shards),
      flushed_events_(shards, 0) {
  VW_REQUIRE(shards >= 1, "ShardedSimulator needs at least one shard");
}

void ShardedSimulator::set_lookahead(SimTime lookahead) {
  VW_REQUIRE(lookahead >= 1,
             "conservative windows need strictly positive lookahead, got ", lookahead);
  lookahead_ = std::min(lookahead, kNoLookahead);
}

void ShardedSimulator::post(std::size_t from, std::size_t to, SimTime at,
                            Simulator::Callback cb) {
  VW_REQUIRE(from < shards_.size() && to < shards_.size(),
             "post() shard out of range: from=", from, " to=", to);
  if (from == to) {
    shards_[from].schedule_at(at, std::move(cb));
    return;
  }
  // The lookahead contract: a message generated inside the current window
  // must land at or after its exclusive end, else the destination may have
  // already run past `at`. window_end_ is stable for the whole parallel
  // phase (coordinator-written, barrier-published), so this check is exact.
  VW_ASSERT(at >= window_end_, "cross-shard post violates lookahead: at=", at,
            " window_end=", window_end_);
  Mailbox& box = mailbox(from, to);
  box.msgs.push_back(Msg{at, box.next_seq++, static_cast<std::uint32_t>(from),
                         std::move(cb)});
}

void ShardedSimulator::schedule_global(SimTime at, Simulator::Callback cb) {
  VW_REQUIRE(at >= horizon_, "global event in the past: at=", at,
             " horizon=", horizon_);
  auto later = [](const GlobalEvent& a, const GlobalEvent& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  };
  globals_.push_back(GlobalEvent{at, next_global_seq_++, std::move(cb)});
  std::push_heap(globals_.begin(), globals_.end(), later);
}

void ShardedSimulator::drain_into(std::size_t s) {
  std::vector<Msg>& merged = drain_scratch_[s];
  merged.clear();
  for (std::size_t from = 0; from < shards_.size(); ++from) {
    std::vector<Msg>& box = mailbox(from, s).msgs;
    for (Msg& m : box) merged.push_back(std::move(m));
    box.clear();
  }
  if (merged.empty()) return;
  // The deterministic merge: (time, source shard, source program order).
  // Nothing here depends on which thread produced a message or when.
  std::sort(merged.begin(), merged.end(), [](const Msg& a, const Msg& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  injected_by_shard_[s] += merged.size();
  Simulator& sim = shards_[s];
  for (Msg& m : merged) sim.schedule_at(m.at, std::move(m.cb));
  merged.clear();
}

void ShardedSimulator::run_until(SimTime until) {
  VW_REQUIRE(until >= horizon_, "run_until into the past: until=", until,
             " horizon=", horizon_);
  VW_REQUIRE(until < Simulator::kNoEventTime, "until out of range");
  const std::size_t n = shards_.size();
  auto later = [](const GlobalEvent& a, const GlobalEvent& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  };
  const auto dispatch = [&](const std::function<void(std::size_t)>& fn) {
    if (pool_ == nullptr) {
      for (std::size_t s = 0; s < n; ++s) fn(s);
    } else {
      pool_->run_batch(n, fn);
    }
  };

  for (;;) {
    // Drain phase: inject pending cross-shard messages, then announce each
    // shard's earliest-output time (the synchronous null-message exchange).
    dispatch([this](std::size_t s) {
      drain_into(s);
      next_time_[s] = shards_[s].next_event_time();
    });
    stats_.null_messages += n;

    SimTime m = Simulator::kNoEventTime;
    for (SimTime t : next_time_) m = std::min(m, t);
    const SimTime tg = globals_.empty() ? Simulator::kNoEventTime : globals_.front().at;

    if (tg <= until && tg <= m) {
      // Every shard has finished all events strictly before tg (their next
      // events are at m >= tg), so the stop-the-world events at tg run now,
      // before any shard event at the same timestamp. horizon_ tracks tg so
      // now() reads correctly inside the global's callback.
      window_end_ = tg;
      horizon_ = tg;
      while (!globals_.empty() && globals_.front().at == tg) {
        std::pop_heap(globals_.begin(), globals_.end(), later);
        GlobalEvent g = std::move(globals_.back());
        globals_.pop_back();
        g.cb();
        ++stats_.global_events;
      }
      continue;  // a global may have scheduled work anywhere — re-announce
    }
    if (m > until && tg > until) break;

    // Conservative window: everything in [previous end, end) is safe because
    // any not-yet-generated message from an event at time t >= m arrives at
    // t + lookahead >= m + lookahead = end. Global events and the caller's
    // horizon clamp the window; `until + 1` makes events at `until`
    // inclusive, matching Simulator::run_until semantics.
    SimTime end = sat_add(m, lookahead_);
    end = std::min(end, tg);
    end = std::min(end, until + 1);
    window_end_ = end;
    dispatch([this, end](std::size_t s) { shards_[s].run_until(end - 1); });
    ++stats_.epochs;
    stats_.handoffs = std::accumulate(injected_by_shard_.begin(),
                                      injected_by_shard_.end(), std::uint64_t{0});
  }

  // Final clamp: no work remains at or before `until`; advance every clock
  // to exactly `until` so successive run_until calls compose.
  window_end_ = until + 1;
  dispatch([this, until](std::size_t s) { shards_[s].run_until(until); });
  horizon_ = until;
  stats_.handoffs = std::accumulate(injected_by_shard_.begin(),
                                    injected_by_shard_.end(), std::uint64_t{0});
  flush_obs();
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = 0;
  for (const Simulator& s : shards_) total += s.events_executed();
  return total;
}

void ShardedSimulator::set_obs(obs::Scope scope) {
  obs_ = scope;
  obs_epochs_ = scope.counter("sim.epochs");
  obs_null_messages_ = scope.counter("sim.null_messages");
  obs_handoffs_ = scope.counter("sim.mailbox.handoffs");
  obs_global_events_ = scope.counter("sim.global_events");
  obs_shards_ = scope.gauge("sim.shards");
  obs_shard_events_ = scope.histogram("sim.shard.events");
  obs::set(obs_shards_, static_cast<double>(shards_.size()));
}

void ShardedSimulator::flush_obs() {
  if (!obs_.enabled()) return;
  obs::add(obs_epochs_, stats_.epochs - flushed_.epochs);
  obs::add(obs_null_messages_, stats_.null_messages - flushed_.null_messages);
  obs::add(obs_handoffs_, stats_.handoffs - flushed_.handoffs);
  obs::add(obs_global_events_, stats_.global_events - flushed_.global_events);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t executed = shards_[s].events_executed();
    obs::record(obs_shard_events_,
                static_cast<double>(executed - flushed_events_[s]));
    flushed_events_[s] = executed;
  }
  flushed_ = stats_;
}

}  // namespace vw::sim
