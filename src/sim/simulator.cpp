#include "sim/simulator.hpp"

#include <utility>

#include "util/check.hpp"

namespace vw::sim {

namespace {
constexpr std::uint64_t encode_handle(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
}
constexpr std::uint32_t handle_slot(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32) - 1;
}
constexpr std::uint32_t handle_gen(std::uint64_t id) { return static_cast<std::uint32_t>(id); }
}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    return index;
  }
  VW_ASSERT(slots_.size() < kNoSlot, "Simulator: slot arena exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  slot.cb = nullptr;
  // The generation bump is what invalidates both the heap entry still
  // referencing this slot and any EventHandle the caller kept around.
  ++slot.gen;
  slot.next_free = free_head_;
  free_head_ = index;
}

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  VW_REQUIRE(at >= now_, "Simulator::schedule_at: time in the past (at=", at, " now=", now_, ")");
  VW_REQUIRE(cb != nullptr, "Simulator::schedule_at: empty callback");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.cb = std::move(cb);
  slot.live = true;
  queue_.push(QueueEntry{at, next_seq_++, index, slot.gen});
  ++live_events_;
  return EventHandle(encode_handle(index, slot.gen));
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const std::uint32_t index = handle_slot(handle.id_);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.live || slot.gen != handle_gen(handle.id_)) {
    return false;  // already executed, cancelled, or the slot was reused
  }
  release_slot(index);
  VW_ASSERT(live_events_ > 0, "Simulator::cancel: live-event count underflow");
  --live_events_;
  return true;
}

bool Simulator::drop_stale_heads() {
  // Pop cancelled entries off the heap head (without advancing time) until a
  // live event — identified by a matching slot generation — or nothing is
  // left. Shared by run_until's boundary check and pop_and_run_next.
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.gen == top.gen) return true;
    queue_.pop();
  }
  return false;
}

bool Simulator::pop_and_run_next() {
  if (!drop_stale_heads()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  // Move the callback out and free the slot *before* invoking: the callback
  // may schedule new events that reuse this very slot.
  Callback cb = std::move(slots_[entry.slot].cb);
  release_slot(entry.slot);
  // Virtual time is monotone: the heap must never yield an event behind the
  // clock — everything downstream (TCP RTT samples, Wren timestamps, VTTIF
  // slots) assumes it.
  VW_ASSERT(entry.at >= now_, "Simulator: event time regressed (at=", entry.at, " now=", now_, ")");
  VW_ASSERT(live_events_ > 0, "Simulator: executing with zero live events");
  now_ = entry.at;
  --live_events_;
  ++executed_;
  cb();
  return true;
}

void Simulator::run_until(SimTime until) {
  while (drop_stale_heads() && queue_.top().at <= until) {
    pop_and_run_next();
  }
  if (now_ < until) now_ = until;
  VW_ENSURE(now_ >= until, "Simulator::run_until: clock short of target");
}

void Simulator::run() {
  while (pop_and_run_next()) {
  }
  VW_ENSURE(live_events_ == 0, "Simulator::run: queue drained but live events remain");
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime period, Simulator::Callback cb)
    : sim_(sim), period_(period), cb_(std::move(cb)) {
  VW_REQUIRE(period_ > 0, "PeriodicTask: period must be positive, got ", period_);
  arm();
}

void PeriodicTask::arm() {
  pending_ = sim_.schedule_in(period_, [this] {
    if (!running_) return;
    cb_();
    if (running_) arm();
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace vw::sim
