#include "sim/simulator.hpp"

#include <utility>

#include "util/check.hpp"

namespace vw::sim {

EventHandle Simulator::schedule_at(SimTime at, Callback cb) {
  VW_REQUIRE(at >= now_, "Simulator::schedule_at: time in the past (at=", at, " now=", now_, ")");
  VW_REQUIRE(cb != nullptr, "Simulator::schedule_at: empty callback");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(cb)});
  pending_ids_.insert(id);
  ++live_events_;
  return EventHandle(id);
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  auto it = pending_ids_.find(handle.id_);
  if (it == pending_ids_.end()) return false;  // already executed or cancelled
  pending_ids_.erase(it);
  cancelled_.insert(handle.id_);
  VW_ASSERT(live_events_ > 0, "Simulator::cancel: live-event count underflow");
  --live_events_;
  return true;
}

bool Simulator::pop_and_run_next() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(ev.id);
    // Virtual time is monotone: the heap must never yield an event behind the
    // clock — everything downstream (TCP RTT samples, Wren timestamps, VTTIF
    // slots) assumes it.
    VW_ASSERT(ev.at >= now_, "Simulator: event time regressed (at=", ev.at, " now=", now_, ")");
    VW_ASSERT(live_events_ > 0, "Simulator: executing with zero live events");
    now_ = ev.at;
    --live_events_;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty()) {
    // Skip cancelled heads without advancing time.
    if (cancelled_.contains(queue_.top().id)) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
      continue;
    }
    if (queue_.top().at > until) break;
    pop_and_run_next();
  }
  if (now_ < until) now_ = until;
  VW_ENSURE(now_ >= until, "Simulator::run_until: clock short of target");
}

void Simulator::run() {
  while (pop_and_run_next()) {
  }
  VW_ENSURE(live_events_ == 0, "Simulator::run: queue drained but live events remain");
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime period, Simulator::Callback cb)
    : sim_(sim), period_(period), cb_(std::move(cb)) {
  VW_REQUIRE(period_ > 0, "PeriodicTask: period must be positive, got ", period_);
  arm();
}

void PeriodicTask::arm() {
  pending_ = sim_.schedule_in(period_, [this] {
    if (!running_) return;
    cb_();
    if (running_) arm();
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace vw::sim
