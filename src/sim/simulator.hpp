#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "util/small_fn.hpp"
#include "util/time.hpp"

// Discrete-event simulation engine.
//
// Properties the rest of the system depends on:
//  * events at the same virtual time fire in scheduling (FIFO) order, so the
//    whole system is deterministic;
//  * events can be cancelled in O(1) (lazily discarded on pop), which the
//    TCP retransmission timers use heavily;
//  * the engine is purely single-threaded; "processes" are callbacks.
//
// Hot-path design (see DESIGN.md §5e): callbacks are small-buffer-optimized
// (`SmallFn`, 120 inline bytes — enough for `this` + a Packet capture), so
// the steady state never heap-allocates per event. Live events are tracked
// in a generation-stamped slot arena with an intrusive free list instead of
// hash sets: the binary heap holds 24-byte POD entries referencing a slot,
// and a cancel simply bumps the slot's generation, which orphans the heap
// entry. schedule/cancel/pop are therefore O(log n) heap operations with
// zero hashing and zero allocation once the arena and heap have grown to
// the workload's high-water mark.

namespace vw::sim {

/// Opaque handle to a scheduled event, usable to cancel it. Encodes
/// (slot index, generation); a stale handle (event fired or cancelled,
/// slot possibly reused) never matches the slot's current generation, so
/// cancelling it is a safe no-op.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;  ///< (slot + 1) << 32 | generation; 0 = invalid
};

class Simulator {
 public:
  /// Inline capture capacity: a propagation-delay continuation captures
  /// `this` plus a moved Packet (~96 bytes) and must not allocate.
  using Callback = SmallFn<void(), 120>;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` `delay` ns from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a previously scheduled event. Safe to call on fired, already
  /// cancelled, or default-constructed handles (no-op). Returns whether the
  /// event was live.
  bool cancel(EventHandle handle);

  /// Run until the event queue drains or virtual time would pass `until`.
  /// Events exactly at `until` are executed. Leaves now() == min(until,
  /// last event time) so successive run_until calls compose.
  void run_until(SimTime until);

  /// Run until the event queue drains completely.
  void run();

  /// True if a live (uncancelled) event is pending.
  bool has_pending() const { return live_events_ > 0; }

  /// Sentinel returned by next_event_time() when no live event is pending.
  static constexpr SimTime kNoEventTime = std::numeric_limits<SimTime>::max();

  /// Timestamp of the earliest live event, or kNoEventTime when the queue is
  /// empty. Non-const because stale (cancelled) heap heads are discarded on
  /// the way — the shard scheduler calls this at every conservative-window
  /// barrier, so the lazy deletion must not report a cancelled head.
  SimTime next_event_time() {
    return drop_stale_heads() ? queue_.top().at : kNoEventTime;
  }

  /// Total events executed (diagnostics).
  std::uint64_t events_executed() const { return executed_; }

 private:
  /// Heap entry: plain data only; the callback stays in the slot arena so
  /// sift operations move 24 bytes instead of a type-erased callable.
  struct QueueEntry {
    SimTime at;
    std::uint64_t seq;  ///< tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t gen;  ///< must match the slot's generation to be live
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  bool drop_stale_heads();
  bool pop_and_run_next();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

/// Repeatedly invokes a callback at a fixed period until stopped.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimTime period, Simulator::Callback cb);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  SimTime period_;
  Simulator::Callback cb_;
  EventHandle pending_;
  bool running_ = true;
};

}  // namespace vw::sim
