#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

// Discrete-event simulation engine.
//
// Properties the rest of the system depends on:
//  * events at the same virtual time fire in scheduling (FIFO) order, so the
//    whole system is deterministic;
//  * events can be cancelled in O(1) (lazily discarded on pop), which the
//    TCP retransmission timers use heavily;
//  * the engine is purely single-threaded; "processes" are callbacks.

namespace vw::sim {

/// Opaque handle to a scheduled event, usable to cancel it.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` `delay` ns from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback cb) { return schedule_at(now_ + delay, cb); }

  /// Cancel a previously scheduled event. Safe to call on fired, already
  /// cancelled, or default-constructed handles (no-op). Returns whether the
  /// event was live.
  bool cancel(EventHandle handle);

  /// Run until the event queue drains or virtual time would pass `until`.
  /// Events exactly at `until` are executed. Leaves now() == min(until,
  /// last event time) so successive run_until calls compose.
  void run_until(SimTime until);

  /// Run until the event queue drains completely.
  void run();

  /// True if a live (uncancelled) event is pending.
  bool has_pending() const { return live_events_ > 0; }

  /// Total events executed (diagnostics).
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  ///< tie-break: FIFO among same-time events
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run_next();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Ids currently live in the queue (scheduled, not executed, not cancelled)
  // and ids cancelled but not yet lazily discarded from the heap.
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Repeatedly invokes a callback at a fixed period until stopped.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimTime period, Simulator::Callback cb);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  SimTime period_;
  Simulator::Callback cb_;
  EventHandle pending_;
  bool running_ = true;
};

}  // namespace vw::sim
