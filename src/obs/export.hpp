#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Exporters: the same snapshot renders as a human text table, CSV (for the
// figure-harness diffing workflow), or JSON (consumed by
// tools/check_metrics.py and the bench pipeline). Traces export as Chrome
// trace_event JSON — loadable in about:tracing / Perfetto — or JSONL.

namespace vw::obs {

/// Aligned human-readable table, one instrument per line.
void write_text_table(std::ostream& out, const MetricsSnapshot& snapshot);

/// CSV with header: name,kind,count,value,sum,mean,min,max,p50,p90,p99.
/// Cells that do not apply to an instrument kind are left empty.
void write_csv(std::ostream& out, const MetricsSnapshot& snapshot);

/// JSON document (schema "vw.metrics.v1"): {"schema", "taken_at_s",
/// "metrics": [{name, kind, ...}]}. Histogram min/max are null when empty.
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON object format: {"traceEvents": [...],
/// "displayTimeUnit": "ms"}; timestamps in microseconds of virtual time.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// One JSON object per line (id, ts_s, dur_s, phase, name, category, args).
std::string events_jsonl(const std::vector<TraceEvent>& events);

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

}  // namespace vw::obs
