#include "obs/export.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace vw::obs {

namespace {

std::string fmt(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

/// JSON number token; NaN/Inf (empty histogram extremes) render as null.
std::string json_number(double v) { return std::isfinite(v) ? fmt(v) : "null"; }

/// The histogram invariant every exporter leans on: a populated histogram
/// has finite extremes; an empty one has NaN extremes (rendered as absent).
void check_extremes(const MetricValue& m) {
  if (m.kind != InstrumentKind::kHistogram) return;
  VW_REQUIRE(m.histogram.count > 0 ||
                 (std::isnan(m.histogram.min) && std::isnan(m.histogram.max)),
             "export: empty histogram '", m.name, "' carries non-NaN extremes");
  VW_REQUIRE(m.histogram.count == 0 ||
                 (std::isfinite(m.histogram.min) && std::isfinite(m.histogram.max)),
             "export: histogram '", m.name, "' has non-finite min/max with ",
             m.histogram.count, " samples");
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_text_table(std::ostream& out, const MetricsSnapshot& snapshot) {
  std::size_t width = 4;
  for (const MetricValue& m : snapshot.metrics) width = std::max(width, m.name.size());
  out << "telemetry @ " << fmt(to_seconds(snapshot.taken_at)) << "s (" << snapshot.metrics.size()
      << " instruments)\n";
  for (const MetricValue& m : snapshot.metrics) {
    check_extremes(m);
    out << "  " << std::left << std::setw(static_cast<int>(width + 2)) << m.name << std::right
        << std::setw(9) << kind_name(m.kind) << "  ";
    switch (m.kind) {
      case InstrumentKind::kCounter:
        out << m.count;
        break;
      case InstrumentKind::kGauge:
        out << fmt(m.value);
        break;
      case InstrumentKind::kHistogram:
        out << "count=" << m.histogram.count;
        if (m.histogram.count > 0) {
          out << " mean=" << fmt(m.histogram.mean()) << " min=" << fmt(m.histogram.min)
              << " p50=" << fmt(m.histogram.quantile(0.5))
              << " p99=" << fmt(m.histogram.quantile(0.99)) << " max=" << fmt(m.histogram.max);
        }
        break;
    }
    out << '\n';
  }
}

void write_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
  CsvWriter csv(out, {"name", "kind", "count", "value", "sum", "mean", "min", "max", "p50",
                      "p90", "p99"});
  for (const MetricValue& m : snapshot.metrics) {
    check_extremes(m);
    std::vector<std::string> cells(11);
    cells[0] = m.name;
    cells[1] = std::string(kind_name(m.kind));
    switch (m.kind) {
      case InstrumentKind::kCounter:
        cells[2] = std::to_string(m.count);
        break;
      case InstrumentKind::kGauge:
        cells[3] = fmt(m.value);
        break;
      case InstrumentKind::kHistogram: {
        const Histogram::Snapshot& h = m.histogram;
        cells[2] = std::to_string(h.count);
        cells[4] = fmt(h.sum);
        if (h.count > 0) {
          cells[5] = fmt(h.mean());
          cells[6] = fmt(h.min);
          cells[7] = fmt(h.max);
          cells[8] = fmt(h.quantile(0.5));
          cells[9] = fmt(h.quantile(0.9));
          cells[10] = fmt(h.quantile(0.99));
        }
        break;
      }
    }
    csv.text_row(cells);
  }
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"schema\":\"vw.metrics.v1\",\"taken_at_s\":" << fmt(to_seconds(snapshot.taken_at))
      << ",\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : snapshot.metrics) {
    check_extremes(m);
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << json_escape(m.name) << "\",\"kind\":\"" << kind_name(m.kind)
        << '"';
    switch (m.kind) {
      case InstrumentKind::kCounter:
        out << ",\"value\":" << m.count;
        break;
      case InstrumentKind::kGauge:
        out << ",\"value\":" << json_number(m.value);
        break;
      case InstrumentKind::kHistogram: {
        const Histogram::Snapshot& h = m.histogram;
        out << ",\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
            << ",\"min\":" << json_number(h.min) << ",\"max\":" << json_number(h.max)
            << ",\"mean\":" << json_number(h.count > 0 ? h.mean()
                                                       : std::numeric_limits<double>::quiet_NaN())
            << ",\"p50\":" << json_number(h.quantile(0.5))
            << ",\"p90\":" << json_number(h.quantile(0.9))
            << ",\"p99\":" << json_number(h.quantile(0.99)) << ",\"buckets\":[";
        bool first_bucket = true;
        for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
          if (h.buckets[k] == 0) continue;
          if (!first_bucket) out << ',';
          first_bucket = false;
          out << "{\"le\":" << json_number(Histogram::bucket_upper(k))
              << ",\"count\":" << h.buckets[k] << '}';
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

namespace {

void append_event_fields(std::ostream& out, const TraceEvent& ev, bool chrome) {
  // Chrome traces use microseconds; JSONL keeps seconds for humans.
  if (chrome) {
    out << "\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\"" << json_escape(ev.category)
        << "\",\"ph\":\"" << static_cast<char>(ev.phase) << "\",\"pid\":1,\"tid\":1"
        << ",\"ts\":" << fmt(static_cast<double>(ev.ts) / 1e3);
    if (ev.phase == EventPhase::kComplete) {
      out << ",\"dur\":" << fmt(static_cast<double>(ev.dur) / 1e3);
    } else {
      out << ",\"s\":\"g\"";  // global-scope instant marker
    }
  } else {
    out << "\"id\":" << ev.id << ",\"ts_s\":" << fmt(to_seconds(ev.ts))
        << ",\"dur_s\":" << fmt(to_seconds(ev.dur)) << ",\"phase\":\""
        << static_cast<char>(ev.phase) << "\",\"name\":\"" << json_escape(ev.name)
        << "\",\"category\":\"" << json_escape(ev.category) << '"';
  }
  if (!ev.args.empty()) {
    out << ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : ev.args) {
      if (!first) out << ',';
      first = false;
      out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
    }
    out << '}';
  } else if (chrome) {
    out << ",\"args\":{}";
  }
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out << ',';
    first = false;
    out << '{';
    append_event_fields(out, ev, /*chrome=*/true);
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

std::string events_jsonl(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  for (const TraceEvent& ev : events) {
    out << '{';
    append_event_fields(out, ev, /*chrome=*/false);
    out << "}\n";
  }
  return out.str();
}

}  // namespace vw::obs
