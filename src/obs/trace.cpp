#include "obs/trace.hpp"

#include "util/check.hpp"

namespace vw::obs {

EventTracer::Span& EventTracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    start_ = other.start_;
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void EventTracer::Span::arg(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(std::move(key), std::move(value));
}

void EventTracer::Span::end() {
  if (tracer_ == nullptr) return;
  EventTracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->complete(std::move(name_), std::move(category_), start_, tracer->now(),
                   std::move(args_));
}

EventTracer::EventTracer(std::size_t capacity, ClockFn clock)
    : capacity_(capacity), clock_(std::move(clock)) {
  VW_REQUIRE(capacity_ > 0, "EventTracer: capacity must be >= 1");
}

void EventTracer::push(TraceEvent ev) {
  MutexLock lock(mu_);
  ev.id = next_id_++;
  ++recorded_;
  ring_.push_back(std::move(ev));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

void EventTracer::instant(std::string name, std::string category, Args args) {
  TraceEvent ev;
  ev.ts = now();
  ev.phase = EventPhase::kInstant;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.args = std::move(args);
  push(std::move(ev));
}

void EventTracer::complete(std::string name, std::string category, SimTime start, SimTime end,
                           Args args) {
  VW_REQUIRE(end >= start, "EventTracer::complete: span '", name, "' ends (", end,
             ") before it starts (", start, ")");
  TraceEvent ev;
  ev.ts = start;
  ev.dur = end - start;
  ev.phase = EventPhase::kComplete;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.args = std::move(args);
  push(std::move(ev));
}

EventTracer::Span EventTracer::span(std::string name, std::string category) {
  return Span(this, std::move(name), std::move(category), now());
}

std::vector<TraceEvent> EventTracer::events() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::pair<std::vector<TraceEvent>, std::uint64_t> EventTracer::events_since(
    std::uint64_t since, std::size_t max_events) const {
  MutexLock lock(mu_);
  std::pair<std::vector<TraceEvent>, std::uint64_t> out;
  out.second = ring_.empty() ? next_id_ - 1 : ring_.back().id;
  for (const TraceEvent& ev : ring_) {
    if (ev.id <= since) continue;
    if (out.first.size() >= max_events) break;
    out.first.push_back(ev);
  }
  return out;
}

std::uint64_t EventTracer::recorded() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t EventTracer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void EventTracer::clear() {
  MutexLock lock(mu_);
  ring_.clear();
}

}  // namespace vw::obs
