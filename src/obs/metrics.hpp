#pragma once

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/time.hpp"

// Metrics instruments for the Wren/Virtuoso stack.
//
// The paper's thesis is that measurement should be free and continuously
// available; this registry applies the same principle to the system's own
// behavior. Three instrument kinds:
//
//   Counter   — monotone event count (trains accepted, frames forwarded)
//   Gauge     — last-written level (topology edge count, queue depth)
//   Histogram — fixed log2-bucket distribution (train lengths, durations)
//
// Design constraints:
//   * hot-path updates are lock-free: plain relaxed atomics (counters and
//     gauges) or atomics + a CAS min/max loop (histograms); no instrument
//     operation ever takes the registry mutex;
//   * instrument addresses are stable for the registry's lifetime, so
//     subsystems resolve a pointer once (cold) and update through it (hot);
//   * names are hierarchical lowercase dotted identifiers
//     ("wren.trains.accepted", "vadapt.sa.moves.rejected") so exporters and
//     the SOAP QueryMetrics endpoint can filter by subsystem prefix;
//   * snapshots carry virtual-clock timestamps supplied by the simulator.

namespace vw::obs {

/// Monotone event counter; add() is a single relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level; set() is a single relaxed atomic store.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log2 histogram over non-negative samples.
///
/// Bucket 0 covers [0, 1); bucket k >= 1 covers [2^(k-1), 2^k). record() is
/// three relaxed atomic adds plus two CAS min/max updates — no locks, safe
/// from concurrent SA chains. Quantiles are estimated by linear
/// interpolation inside the covering bucket (clamped to the observed
/// min/max), which is tight enough for operational dashboards.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  Histogram();

  void record(double x);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;  ///< NaN when count == 0
    double max = 0;  ///< NaN when count == 0
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
    /// Estimated order statistic, q in [0, 1]; NaN when empty.
    double quantile(double q) const;
  };

  Snapshot snapshot() const;
  void reset();

  /// Inclusive-exclusive bounds of bucket k: [lower, upper).
  static double bucket_lower(std::size_t k);
  static double bucket_upper(std::size_t k);
  /// The bucket a sample lands in (negative/NaN samples clamp to bucket 0).
  static std::size_t bucket_index(double x);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> min_bits_;  ///< bit pattern of the running min
  std::atomic<std::uint64_t> max_bits_;  ///< bit pattern of the running max
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view kind_name(InstrumentKind kind);

/// One instrument's state at snapshot time. Counters fill `count`; gauges
/// fill `value`; histograms fill `histogram` (min/max are NaN when empty).
struct MetricValue {
  std::string name;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t count = 0;          ///< counter value / histogram sample count
  double value = 0;                 ///< gauge level
  Histogram::Snapshot histogram{};  ///< populated for histograms only
};

struct MetricsSnapshot {
  SimTime taken_at = 0;
  std::vector<MetricValue> metrics;  ///< sorted by name

  const MetricValue* find(std::string_view name) const;
};

/// True when `name` is a valid hierarchical instrument name:
/// dot-separated non-empty runs of [a-z0-9_].
bool valid_metric_name(std::string_view name);

/// Owns every instrument. Registration (get-or-create by name) takes a
/// mutex — callers resolve instruments once at wiring time; updates through
/// the returned references never touch the registry again.
class MetricsRegistry {
 public:
  using ClockFn = std::function<SimTime()>;

  /// `clock` supplies snapshot timestamps (virtual time); may be null.
  explicit MetricsRegistry(ClockFn clock = nullptr) : clock_(std::move(clock)) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Requires a valid name; requires that an
  /// existing instrument under this name has the same kind. The returned
  /// reference stays valid (and lock-free to update) for the registry's
  /// lifetime — only the name→entry map itself is guarded.
  Counter& counter(std::string_view name) VW_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) VW_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) VW_EXCLUDES(mu_);

  /// Consistent point-in-time copy of every instrument, sorted by name.
  /// With `prefix` non-empty, only instruments whose name equals the prefix
  /// or starts with "<prefix>." are included.
  MetricsSnapshot snapshot(std::string_view prefix = {}) const VW_EXCLUDES(mu_);

  /// Zero every instrument (names stay registered, addresses stay valid).
  void reset() VW_EXCLUDES(mu_);

  std::size_t size() const VW_EXCLUDES(mu_);

 private:
  struct Entry {
    InstrumentKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(std::string_view name, InstrumentKind kind) VW_EXCLUDES(mu_);

  ClockFn clock_;
  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_ VW_GUARDED_BY(mu_);
};

}  // namespace vw::obs
