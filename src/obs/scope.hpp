#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// The handle instrumented subsystems hold: two nullable pointers. A
// default-constructed Scope is "telemetry off" — instrument resolution
// returns nullptr and the null-tolerant helpers below compile down to a
// single branch, so disabled instrumentation costs nothing measurable on
// hot paths. Subsystems resolve instruments once in set_obs()/wiring code
// (cold) and keep the raw pointers.

namespace vw::obs {

struct Scope {
  MetricsRegistry* metrics = nullptr;
  EventTracer* tracer = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }

  /// Instrument resolution; nullptr when the scope is disabled.
  Counter* counter(std::string_view name) const {
    return metrics != nullptr ? &metrics->counter(name) : nullptr;
  }
  Gauge* gauge(std::string_view name) const {
    return metrics != nullptr ? &metrics->gauge(name) : nullptr;
  }
  Histogram* histogram(std::string_view name) const {
    return metrics != nullptr ? &metrics->histogram(name) : nullptr;
  }

  /// An inert Span when tracing is disabled.
  EventTracer::Span span(std::string name, std::string category) const {
    return tracer != nullptr ? tracer->span(std::move(name), std::move(category))
                             : EventTracer::Span();
  }
  void instant(std::string name, std::string category, EventTracer::Args args = {}) const {
    if (tracer != nullptr) tracer->instant(std::move(name), std::move(category), std::move(args));
  }
};

/// Null-tolerant instrument updates (the hot-path idiom).
inline void add(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->add(n);
}
inline void set(Gauge* g, double v) {
  if (g != nullptr) g->set(v);
}
inline void record(Histogram* h, double x) {
  if (h != nullptr) h->record(x);
}

}  // namespace vw::obs
