#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/time.hpp"

// Typed event tracing with a bounded ring buffer.
//
// Subsystems record instant events (a SIC decision, a VTTIF matrix update)
// and spans (a VADAPT optimize run, a VM migration) against the simulator's
// virtual clock. The buffer is a fixed-capacity ring: when full, the oldest
// events are overwritten and counted as dropped, so tracing can stay on in
// long runs without unbounded memory. Events carry monotone ids so the SOAP
// StreamEvents endpoint can page through the stream incrementally, and the
// whole buffer exports to Chrome trace_event JSON (load in about:tracing /
// Perfetto) or JSONL.

namespace vw::obs {

enum class EventPhase : char {
  kComplete = 'X',  ///< span with start + duration
  kInstant = 'i',   ///< point event
};

struct TraceEvent {
  std::uint64_t id = 0;  ///< monotone across the tracer's lifetime
  SimTime ts = 0;        ///< virtual start time
  SimTime dur = 0;       ///< span duration (0 for instants)
  EventPhase phase = EventPhase::kInstant;
  std::string name;
  std::string category;
  std::vector<std::pair<std::string, std::string>> args;
};

class EventTracer {
 public:
  using ClockFn = std::function<SimTime()>;
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// RAII span: records a complete event when end()'d or destroyed. A
  /// default-constructed (or disabled-scope) Span is inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    ~Span() { end(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attach a key/value pair shown in the trace viewer.
    void arg(std::string key, std::string value);
    /// Record the event now (idempotent; the destructor calls it too).
    void end();

   private:
    friend class EventTracer;
    Span(EventTracer* tracer, std::string name, std::string category, SimTime start)
        : tracer_(tracer), name_(std::move(name)), category_(std::move(category)),
          start_(start) {}

    EventTracer* tracer_ = nullptr;
    std::string name_;
    std::string category_;
    SimTime start_ = 0;
    Args args_;
  };

  explicit EventTracer(std::size_t capacity = 16384, ClockFn clock = nullptr);

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Record a point event at the current virtual time.
  void instant(std::string name, std::string category, Args args = {}) VW_EXCLUDES(mu_);

  /// Record a finished span with explicit endpoints (for asynchronous work
  /// like migrations, where no stack frame covers the whole interval).
  void complete(std::string name, std::string category, SimTime start, SimTime end,
                Args args = {}) VW_EXCLUDES(mu_);

  /// Open a span covering the caller's scope.
  Span span(std::string name, std::string category);

  /// Events currently buffered, oldest first.
  std::vector<TraceEvent> events() const VW_EXCLUDES(mu_);

  /// Events with id > `since`, capped at `max_events`; second element is the
  /// largest id in the buffer (the cursor for the next call).
  std::pair<std::vector<TraceEvent>, std::uint64_t> events_since(
      std::uint64_t since, std::size_t max_events = 1024) const VW_EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const VW_EXCLUDES(mu_);
  std::uint64_t dropped() const VW_EXCLUDES(mu_);
  void clear() VW_EXCLUDES(mu_);

  SimTime now() const { return clock_ ? clock_() : 0; }

 private:
  void push(TraceEvent ev) VW_EXCLUDES(mu_);

  std::size_t capacity_;
  ClockFn clock_;
  mutable Mutex mu_;
  std::deque<TraceEvent> ring_ VW_GUARDED_BY(mu_);
  std::uint64_t next_id_ VW_GUARDED_BY(mu_) = 1;
  std::uint64_t recorded_ VW_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ VW_GUARDED_BY(mu_) = 0;
};

}  // namespace vw::obs
