#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace vw::obs {

namespace {

constexpr std::uint64_t kNaNBits = 0x7ff8000000000000ull;

/// CAS loop folding `x` into a min/max slot stored as double bit patterns.
/// The slot starts as NaN (empty); the first sample always wins.
template <typename Better>
void fold_extreme(std::atomic<std::uint64_t>& slot, double x, Better better) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  for (;;) {
    const double curd = std::bit_cast<double>(cur);
    if (!std::isnan(curd) && !better(x, curd)) return;
    if (slot.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(x),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram() : min_bits_(kNaNBits), max_bits_(kNaNBits) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(double x) {
  if (!(x >= 1.0)) return 0;  // [0,1) plus negatives and NaN
  int exp = 0;
  std::frexp(x, &exp);  // x = m * 2^exp with m in [0.5, 1)
  // floor(log2 x) == exp - 1, so x lands in bucket exp: [2^(exp-1), 2^exp).
  return std::min(static_cast<std::size_t>(exp), kBuckets - 1);
}

double Histogram::bucket_lower(std::size_t k) {
  VW_REQUIRE(k < kBuckets, "Histogram::bucket_lower: bucket ", k, " out of range");
  return k == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(k) - 1);
}

double Histogram::bucket_upper(std::size_t k) {
  VW_REQUIRE(k < kBuckets, "Histogram::bucket_upper: bucket ", k, " out of range");
  return std::ldexp(1.0, static_cast<int>(k));
}

void Histogram::record(double x) {
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  fold_extreme(min_bits_, x, [](double a, double b) { return a < b; });
  fold_extreme(max_bits_, x, [](double a, double b) { return a > b; });
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  snap.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  for (std::size_t k = 0; k < kBuckets; ++k) {
    snap.buckets[k] = buckets_[k].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_bits_.store(kNaNBits, std::memory_order_relaxed);
  max_bits_.store(kNaNBits, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  // The endpoints are order statistics we track exactly.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the requested sample among `count` sorted observations.
  const double rank = q * static_cast<double>(count - 1);
  double before = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    const auto in_bucket = static_cast<double>(buckets[k]);
    if (in_bucket == 0) continue;
    if (rank < before + in_bucket) {
      // Linear interpolation across the covering bucket's span.
      const double frac = (rank - before + 0.5) / in_bucket;
      double lo = bucket_lower(k);
      double hi = bucket_upper(k);
      // The observed extremes bound the distribution tighter than the
      // bucket edges do.
      if (!std::isnan(min)) lo = std::max(lo, min);
      if (!std::isnan(max)) hi = std::min(hi, max);
      if (hi < lo) hi = lo;
      return lo + frac * (hi - lo);
    }
    before += in_bucket;
  }
  return max;  // numerically unreachable; satisfies the compiler
}

// --- registry ----------------------------------------------------------------

std::string_view kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

bool valid_metric_name(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name, InstrumentKind kind) {
  VW_REQUIRE(valid_metric_name(name), "MetricsRegistry: invalid instrument name '", name,
             "' (want dot-separated [a-z0-9_] runs)");
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case InstrumentKind::kCounter: entry.counter = std::make_unique<Counter>(); break;
      case InstrumentKind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
      case InstrumentKind::kHistogram: entry.histogram = std::make_unique<Histogram>(); break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  VW_REQUIRE(it->second.kind == kind, "MetricsRegistry: '", name, "' registered as ",
             kind_name(it->second.kind), ", requested as ", kind_name(kind));
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry_for(name, InstrumentKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry_for(name, InstrumentKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *entry_for(name, InstrumentKind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot(std::string_view prefix) const {
  MetricsSnapshot snap;
  snap.taken_at = clock_ ? clock_() : 0;
  MutexLock lock(mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    if (!prefix.empty()) {
      const bool exact = name == prefix;
      const bool child = name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0 &&
                         name[prefix.size()] == '.';
      if (!exact && !child) continue;
    }
    MetricValue v;
    v.name = name;
    v.kind = entry.kind;
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        v.count = entry.counter->value();
        break;
      case InstrumentKind::kGauge:
        v.value = entry.gauge->value();
        break;
      case InstrumentKind::kHistogram:
        v.histogram = entry.histogram->snapshot();
        v.count = v.histogram.count;
        break;
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;  // std::map iteration keeps this sorted by name
}

void MetricsRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case InstrumentKind::kCounter: entry.counter->reset(); break;
      case InstrumentKind::kGauge: entry.gauge->reset(); break;
      case InstrumentKind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace vw::obs
