#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/reservation.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "soap/federation.hpp"
#include "soap/rpc.hpp"
#include "soap/telemetry.hpp"
#include "transport/stack.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/greedy.hpp"
#include "vadapt/multistart.hpp"
#include "vadapt/problem.hpp"
#include "vadapt/reservations.hpp"
#include "vadapt/warm_start.hpp"
#include "vm/machine.hpp"
#include "vm/migration.hpp"
#include "vnet/control.hpp"
#include "vnet/overlay.hpp"
#include "vttif/global.hpp"
#include "vttif/local.hpp"
#include "wren/active.hpp"
#include "wren/analyzer.hpp"
#include "wren/capture.hpp"
#include "wren/federation.hpp"
#include "wren/service.hpp"
#include "wren/view.hpp"

// The integrated Virtuoso runtime (paper Figure 5): VNET daemons carry VM
// traffic over the physical network; Wren passively measures that traffic on
// every daemon host and serves results over SOAP; VTTIF infers the VM
// application topology and aggregates both views at the Proxy; VADAPT turns
// the two matrices into a new configuration (VM mapping + overlay paths)
// that the system applies through migrations and forwarding-rule updates.
//
// Reporting is real: VTTIF matrix pushes and Wren measurement reports are
// serialized to XML and shipped to the Proxy over TCP control connections
// crossing the simulated network (vnet::ControlPlane); only adaptation
// *commands* (migrate / install rules) are issued in-process at the Proxy.

namespace vw::virtuoso {

enum class AdaptationAlgorithm {
  kGreedy,              ///< GH
  kAnnealing,           ///< SA from a random start
  kAnnealingGreedy,     ///< SA+GH (+B best-so-far is always tracked)
  kMultiStartAnnealing, ///< K parallel SA chains, chain 0 seeded with GH
};

struct SystemConfig {
  wren::WrenParams wren;
  vttif::GlobalVttifParams vttif;
  SimTime vttif_local_period = seconds(1.0);
  SimTime wren_report_period = seconds(1.0);
  vadapt::Objective objective;
  vadapt::AnnealingParams annealing;
  /// kMultiStartAnnealing settings; `annealing` above and a seed derived
  /// from `seed` are filled in at adaptation time.
  vadapt::MultiStartParams multistart;
  /// Continuous warm-start adaptation (DESIGN.md §5j). When enabled, the
  /// view tracks deltas and adapt_now() patches + burst-anneals the live
  /// incumbent instead of re-solving from scratch, falling back to the cold
  /// algorithm when the incumbent is missing/stale, the problem is small
  /// (warm_start.min_vms floor), or the delta is too large. The fallback
  /// capacities are overwritten from default_bandwidth_bps at construction.
  vadapt::WarmStartParams warm_start;
  vm::MigrationParams migration;
  /// Control-plane delivery robustness (health checks, reconnect backoff,
  /// resend window).
  vnet::ControlPlaneParams control;
  /// Wren-view entries older than this are invisible to queries and to
  /// capacity_graph(); 0 = entries never go stale (pre-failure behavior).
  SimTime view_staleness_horizon = 0;
  /// Per-daemon control-plane heartbeat period — a liveness signal even when
  /// a host has no traffic or measurements to report; 0 disables heartbeats.
  SimTime control_heartbeat_period = 0;
  /// A daemon that has not reported anything (heartbeat, VTTIF update or
  /// Wren report) for this long is declared dead: it drops out of
  /// capacity_graph() and its view measurements are invalidated. 0 disables
  /// daemon-failure detection.
  SimTime daemon_timeout = 0;
  std::uint64_t seed = 42;
  /// Capacity assumed for daemon pairs Wren has not yet measured.
  double default_bandwidth_bps = 0;
  /// Optional event log (adaptations, migrations, reservations). The
  /// pointee must outlive the system; null disables logging.
  Logger* logger = nullptr;
  /// When true the system owns a MetricsRegistry + EventTracer stamped by
  /// the virtual clock, wires them into every subsystem (wren, transport,
  /// vnet, vttif, vadapt, vm, virtuoso), and exposes QueryMetrics /
  /// StreamEvents at "telemetry://proxy" after bootstrap.
  bool telemetry = true;
  /// Trace ring capacity (events); oldest events are dropped when full.
  std::size_t trace_capacity = 16384;
  /// When non-empty, every daemon host gets a wren::TraceWriter that
  /// persists its packet-header trace as a vw.trace.v1 shard under this
  /// directory (one file per host, shard tag = add order). Shards finalize
  /// on finish_capture() or destruction and feed the vwcap-* tool suite +
  /// offline replay.
  std::string capture_dir;
  /// Capture datapath tuning (ring size, batch, overflow policy).
  wren::TraceWriterParams capture;
  /// The federated measurement plane (DESIGN.md §5i). When enabled,
  /// bootstrap() splits the daemons into regions, stands up a RegionalProxy
  /// tier (daemon Wren reports + heartbeats are redirected to the region's
  /// control plane), and feeds the root view from summarized exports
  /// instead of raw per-daemon reports.
  wren::FederationConfig federation;
  /// Active-probe tuning for on-demand measurement sessions.
  wren::ActiveProbeParams probe;
};

struct AdaptationOutcome {
  vadapt::Configuration configuration;
  vadapt::Evaluation evaluation;
  std::size_t migrations = 0;
  std::vector<vadapt::Demand> demands;
  std::vector<net::NodeId> hosts;  ///< host order used by the configuration
};

class VirtuosoSystem {
 public:
  VirtuosoSystem(sim::Simulator& sim, net::Network& network, SystemConfig config = {});
  ~VirtuosoSystem();

  VirtuosoSystem(const VirtuosoSystem&) = delete;
  VirtuosoSystem& operator=(const VirtuosoSystem&) = delete;

  // --- deployment -----------------------------------------------------------
  /// Install a VNET daemon (plus Wren analyzer + SOAP service) on a host.
  vnet::VnetDaemon& add_daemon(net::NodeId host, std::string name, bool is_proxy = false);

  /// Build the star overlay and start VTTIF/Wren reporting. Call after all
  /// daemons are added.
  void bootstrap(vnet::LinkProtocol proto = vnet::LinkProtocol::kTcp);

  /// Create a VM and attach it to the daemon on `host`.
  vm::VirtualMachine& create_vm(const std::string& name, net::NodeId host,
                                std::uint64_t memory_bytes = 256ull << 20);

  // --- failure handling -------------------------------------------------------
  /// Crash the daemon process on `host`: all of its reporting (VTTIF, Wren,
  /// heartbeats) stops. With daemon_timeout configured, the Proxy declares
  /// the host dead once the reports go missing. The host's network stack
  /// keeps forwarding (the daemon died, not the machine).
  void kill_daemon(net::NodeId host);

  /// The Proxy's belief: false once `host` has missed reports for longer
  /// than daemon_timeout (and has not reported since).
  bool daemon_alive(net::NodeId host) const { return !dead_daemons_.contains(host); }

  /// Daemon hosts currently believed alive (the capacity_graph() host set).
  std::vector<net::NodeId> live_daemon_hosts() const;

  /// Migrations that failed mid-flight (path down / deadline) and rolled
  /// back to their source host.
  std::uint64_t migration_failures() const { return migration_failures_; }
  /// Re-plans triggered by a failed migration (auto-adaptation only).
  std::uint64_t failure_replans() const { return failure_replans_; }
  std::uint64_t daemons_declared_dead() const { return daemons_declared_dead_; }

  // --- component access -------------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return network_; }
  transport::TransportStack& stack() { return stack_; }
  vnet::Overlay& overlay() { return overlay_; }
  soap::RpcRegistry& registry() { return registry_; }
  wren::GlobalNetworkView& network_view() { return view_; }
  vttif::GlobalVttif& global_vttif() { return *global_vttif_; }
  wren::OnlineAnalyzer& wren_on(net::NodeId host);
  vm::MigrationEngine& migration() { return migration_; }
  /// The control plane (valid after bootstrap()).
  vnet::ControlPlane& control_plane() { return *control_; }
  const std::vector<std::unique_ptr<vm::VirtualMachine>>& vms() const { return vms_; }

  // --- telemetry ---------------------------------------------------------------
  /// The system-wide observability scope; disabled (null pointers) when
  /// SystemConfig::telemetry is false.
  obs::Scope scope() { return obs::Scope{metrics_.get(), tracer_.get()}; }
  /// Metrics registry / event tracer; null when telemetry is disabled.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  obs::EventTracer* tracer() { return tracer_.get(); }
  /// The SOAP telemetry endpoint name (registered during bootstrap()).
  static constexpr const char* kTelemetryEndpoint = "telemetry://proxy";

  // --- packet-trace capture ----------------------------------------------------
  /// The binary capture session (one vw.trace.v1 shard per daemon host);
  /// null unless SystemConfig::capture_dir is set.
  wren::CaptureSession* capture() { return capture_.get(); }
  /// Finalize all capture shards (drain rings, join writer threads, patch
  /// headers). Idempotent; also runs at destruction. No-op without capture.
  void finish_capture();

  // --- federation ---------------------------------------------------------------
  /// Whether the federated measurement plane is live (bootstrap() ran with
  /// SystemConfig::federation.enabled).
  bool federation_enabled() const { return federation_ != nullptr; }
  /// Host -> region assignment; null when federation is off.
  const wren::RegionMap* region_map() const;
  /// The root-tier summary sink; null when federation is off.
  wren::FederationRoot* federation_root();
  /// The regional proxy serving `region`; null when absent / federation off.
  wren::RegionalProxy* regional_proxy(wren::RegionId region);
  /// The control plane daemons of `region` report into; null when absent.
  vnet::ControlPlane* regional_control(wren::RegionId region);
  /// The on-demand measurement scheduler; null when federation is off.
  wren::MeasurementScheduler* measurement_scheduler();
  /// The federation SOAP endpoint (Subscribe / ExportSummary /
  /// RequestMeasurement), registered during a federated bootstrap().
  static constexpr const char* kFederationEndpoint = "federation://proxy";

  /// Run the liveness sweep and drop expired view entries NOW, so the next
  /// capacity_graph() snapshot cannot be built over adjacency that predates
  /// invalidate_host()/expire_stale(). adapt_now() calls this first — the
  /// snapshot-ordering contract tests/chaos_test.cpp pins.
  void refresh_view_before_planning();

  // --- adaptation inputs -------------------------------------------------------
  /// The capacity graph VADAPT sees: daemon hosts, bandwidth/latency from
  /// the Proxy's Wren view (unmeasured pairs fall back to the federation's
  /// region-to-region aggregates, then to default_bandwidth_bps).
  vadapt::CapacityGraph capacity_graph() const;

  /// Demands from the current VTTIF topology (VM indices, bits/sec).
  std::vector<vadapt::Demand> current_demands() const;

  // --- adaptation -------------------------------------------------------------
  /// Compute a new configuration with the chosen algorithm and apply it:
  /// migrate VMs and install overlay links + forwarding rules.
  AdaptationOutcome adapt_now(AdaptationAlgorithm algorithm);

  /// Close the loop: let VTTIF's damped change detection drive adaptation
  /// automatically ("VTTIF automatically reacts to interesting changes in
  /// traffic patterns and reports them, driving adaptation"). At most one
  /// adaptation per `cooldown`.
  void enable_auto_adaptation(AdaptationAlgorithm algorithm,
                              SimTime cooldown = seconds(30.0));
  void disable_auto_adaptation();
  std::uint64_t auto_adaptations() const { return auto_adaptations_; }

  /// Adaptations served warm (delta patch + burst) vs cold (from-scratch
  /// solve) since construction. Cold counts only when warm-start is enabled
  /// — with the knob off every adaptation is cold by definition and neither
  /// counter moves.
  std::uint64_t warm_starts() const { return warm_starts_; }
  std::uint64_t cold_starts() const { return cold_starts_; }
  /// The live warm-start optimizer; null when warm_start.enabled is false.
  vadapt::WarmStartOptimizer* warm_optimizer() { return warm_.get(); }

  /// Apply an externally computed configuration.
  std::size_t apply_configuration(const vadapt::CapacityGraph& graph,
                                  const std::vector<vadapt::Demand>& demands,
                                  const vadapt::Configuration& conf);

  /// Configuration element (4): install physical-path reservations backing
  /// the overlay links the configuration uses (releasing any previously
  /// installed set first). Returns how many edge reservations were granted.
  std::size_t install_reservations(const AdaptationOutcome& outcome, double headroom = 0.25);

  /// Release all reservations installed by install_reservations.
  void release_reservations();

  std::size_t active_reservations() const { return reservation_ids_.size(); }

 private:
  struct DaemonRuntime {
    std::unique_ptr<wren::OnlineAnalyzer> analyzer;
    std::unique_ptr<wren::WrenService> service;
    std::unique_ptr<wren::WrenClient> client;
    std::unique_ptr<vttif::LocalVttif> local_vttif;
    std::unique_ptr<sim::PeriodicTask> reporter;
    std::unique_ptr<sim::PeriodicTask> heartbeat;
  };

  /// One region of the federated plane: its proxy host, the control plane
  /// its daemons report into, the partial view, and the export task.
  struct FederationRegion {
    wren::RegionId id = wren::kInvalidRegion;
    net::NodeId proxy_host = net::kInvalidNode;
    std::unique_ptr<vnet::ControlPlane> control;
    std::unique_ptr<wren::RegionalProxy> proxy;
    std::unique_ptr<sim::PeriodicTask> exporter;
  };

  struct FederationRuntime {
    wren::RegionMap region_map;
    std::unique_ptr<wren::FederationRoot> root;
    std::unique_ptr<soap::FederationService> service;
    std::unique_ptr<wren::MeasurementScheduler> scheduler;
    std::vector<FederationRegion> regions;
  };

  void start_reporting(net::NodeId host);
  std::optional<vadapt::VmIndex> vm_index_for_mac(vnet::MacAddress mac) const;
  void note_report(net::NodeId reporter);
  void note_report_at(net::NodeId reporter, SimTime at);
  void liveness_tick();
  void on_migration_failed(net::NodeId source, net::NodeId target);
  void try_failure_replan();
  void bootstrap_federation();
  /// The control plane `host`'s Wren reports and heartbeats ride: its
  /// region's plane when federated, the root plane otherwise.
  vnet::ControlPlane& report_plane(net::NodeId host);
  wren::RegionalProxy* regional_proxy_for(net::NodeId host);
  /// Ship one full Wren report for `host` right now (window-gap healing).
  void send_wren_report(net::NodeId host);
  void export_summary(std::size_t region_index, bool force_full);
  /// A resend-window eviction lost unacknowledged state for `host`:
  /// schedule the make-up report (full summary for a regional proxy host on
  /// the root tier, full Wren report otherwise). Deferred + deduplicated so
  /// the control plane's gap callback never re-enters send().
  void schedule_full_re_report(net::NodeId host, bool regional_tier);
  /// Demand push-down + on-demand cold-pair sessions for the pairs the
  /// planner is about to optimize over.
  void prepare_federation_for_plan(const std::vector<vadapt::Demand>& demands);
  void start_probe(net::NodeId from, net::NodeId to);

  sim::Simulator& sim_;
  net::Network& network_;
  SystemConfig config_;
  RngService rng_service_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;  ///< before stack_: wired into it
  std::unique_ptr<obs::EventTracer> tracer_;
  transport::TransportStack stack_;
  vnet::Overlay overlay_;
  soap::RpcRegistry registry_;
  std::unique_ptr<vnet::ControlPlane> control_;
  net::ReservationManager reservation_manager_;
  std::vector<net::ReservationId> reservation_ids_;
  wren::GlobalNetworkView view_;
  std::unique_ptr<wren::CaptureSession> capture_;
  std::unique_ptr<vttif::GlobalVttif> global_vttif_;
  vm::MigrationEngine migration_;
  std::map<net::NodeId, DaemonRuntime> runtimes_;
  std::vector<std::unique_ptr<vm::VirtualMachine>> vms_;
  vnet::MacAddress next_mac_ = 1;
  bool bootstrapped_ = false;
  bool auto_adapt_enabled_ = false;
  AdaptationAlgorithm auto_algorithm_ = AdaptationAlgorithm::kGreedy;
  SimTime auto_cooldown_ = 0;
  SimTime last_auto_adapt_ = 0;
  std::uint64_t auto_adaptations_ = 0;
  std::map<net::NodeId, SimTime> last_report_;  ///< Proxy-side liveness evidence
  std::set<net::NodeId> dead_daemons_;
  std::unique_ptr<sim::PeriodicTask> liveness_task_;
  bool replan_pending_ = false;
  std::uint64_t migration_failures_ = 0;
  std::uint64_t failure_replans_ = 0;
  std::uint64_t daemons_declared_dead_ = 0;
  std::unique_ptr<soap::TelemetryService> telemetry_;
  std::unique_ptr<FederationRuntime> federation_;
  std::map<std::uint64_t, std::unique_ptr<wren::ActiveProber>> probes_;
  std::uint64_t next_probe_id_ = 0;
  std::uint16_t next_probe_port_ = 30000;
  std::set<net::NodeId> rereport_pending_;
  /// Lazily created on the first multi-start adaptation, then reused by
  /// every subsequent one — the control loop adapts repeatedly, and thread
  /// spawn/join per adaptation was pure overhead. Workers are parked
  /// between batches, so an idle pool costs nothing in virtual time.
  std::unique_ptr<ThreadPool> annealing_pool_;
  /// Live across adaptations when warm_start.enabled; holds the incumbent
  /// configuration + evaluator residual state between adapt_now() calls.
  std::unique_ptr<vadapt::WarmStartOptimizer> warm_;
  std::uint64_t warm_starts_ = 0;
  std::uint64_t cold_starts_ = 0;
  std::uint64_t warm_epoch_ = 0;  ///< names the per-adapt burst RNG stream
  obs::Counter* c_adaptations_ = nullptr;
  obs::Counter* c_migrations_issued_ = nullptr;
  obs::Counter* c_reservations_granted_ = nullptr;
  obs::Counter* c_reservations_denied_ = nullptr;
  obs::Counter* c_wren_reports_ = nullptr;
  obs::Counter* c_migration_failures_ = nullptr;
  obs::Counter* c_replans_ = nullptr;
  obs::Counter* c_daemons_dead_ = nullptr;
  obs::Counter* c_warm_starts_ = nullptr;
  obs::Counter* c_cold_starts_ = nullptr;
  obs::Histogram* h_warm_delta_pairs_ = nullptr;
};

}  // namespace vw::virtuoso
