#include "virtuoso/system.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "util/check.hpp"

namespace vw::virtuoso {

namespace {

// --- control-plane report encodings -----------------------------------------

std::string fmt_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, ptr);
}

std::uint64_t parse_u64(const std::string& s) { return std::stoull(s); }

soap::XmlNode encode_vttif_update(net::NodeId reporter, const vttif::TrafficMatrix& matrix) {
  soap::XmlNode msg;
  msg.name = "VttifUpdate";
  msg.attributes["reporter"] = std::to_string(reporter);
  for (const auto& [key, bits] : matrix.entries()) {
    soap::XmlNode& e = msg.add_child("entry");
    e.attributes["src"] = std::to_string(key.first);
    e.attributes["dst"] = std::to_string(key.second);
    e.attributes["bits"] = fmt_double(bits);
  }
  return msg;
}

soap::XmlNode encode_heartbeat(net::NodeId reporter) {
  soap::XmlNode msg;
  msg.name = "Heartbeat";
  msg.attributes["reporter"] = std::to_string(reporter);
  return msg;
}

soap::XmlNode encode_wren_report(net::NodeId reporter, const wren::OnlineAnalyzer& analyzer) {
  // Shared codec (wren/federation.hpp): the flat Proxy and the regional
  // tier parse the exact same document.
  std::vector<wren::PathReading> readings;
  for (net::NodeId peer : analyzer.peers()) {
    wren::PathReading r;
    r.peer = peer;
    r.bandwidth_bps = analyzer.available_bandwidth_bps(peer);
    r.latency_s = analyzer.latency_seconds(peer);
    if (r.bandwidth_bps || r.latency_s) readings.push_back(r);
  }
  return wren::encode_wren_report_xml(reporter, readings);
}

}  // namespace

VirtuosoSystem::VirtuosoSystem(sim::Simulator& sim, net::Network& network, SystemConfig config)
    : sim_(sim),
      network_(network),
      config_(config),
      rng_service_(config.seed),
      metrics_(config.telemetry
                   ? std::make_unique<obs::MetricsRegistry>([&sim] { return sim.now(); })
                   : nullptr),
      tracer_(config.telemetry
                  ? std::make_unique<obs::EventTracer>(config.trace_capacity,
                                                       [&sim] { return sim.now(); })
                  : nullptr),
      stack_(network),
      overlay_(stack_),
      reservation_manager_(network),
      global_vttif_(std::make_unique<vttif::GlobalVttif>(sim, config.vttif)),
      migration_(sim, network, config.migration) {
  // Measurements age against the virtual clock; with a horizon configured,
  // entries stop answering queries once they outlive it.
  view_.set_clock([this] { return sim_.now(); });
  view_.set_staleness_horizon(config_.view_staleness_horizon);
  if (config_.warm_start.enabled) {
    // Deltas drive the warm path; fallbacks mirror what capacity_graph()
    // assumes for unmeasured pairs so a patched incumbent and a rebuilt
    // graph agree on invalidated entries.
    view_.enable_delta_tracking();
    config_.warm_start.fallback_bandwidth_bps = config_.default_bandwidth_bps;
    config_.warm_start.fallback_latency_s = 0.001;
    warm_ = std::make_unique<vadapt::WarmStartOptimizer>(config_.warm_start);
  }
  if (!config_.capture_dir.empty()) {
    capture_ = std::make_unique<wren::CaptureSession>(network_, config_.capture_dir,
                                                      config_.capture);
  }
  if (config_.telemetry) {
    const obs::Scope s = scope();
    stack_.set_obs(s);
    overlay_.set_obs(s);
    global_vttif_->set_obs(s);
    migration_.set_obs(s);
    view_.set_obs(s);
    // Every SA / multistart run launched through this system reports into
    // the same registry.
    config_.annealing.obs = s;
    config_.multistart.annealing.obs = s;
    c_adaptations_ = s.counter("virtuoso.adaptations");
    c_migrations_issued_ = s.counter("virtuoso.migrations.issued");
    c_reservations_granted_ = s.counter("virtuoso.reservations.granted");
    c_reservations_denied_ = s.counter("virtuoso.reservations.denied");
    c_wren_reports_ = s.counter("virtuoso.reports.wren");
    c_migration_failures_ = s.counter("virtuoso.migrations.failed");
    c_replans_ = s.counter("virtuoso.replans");
    c_daemons_dead_ = s.counter("virtuoso.daemons.declared_dead");
    c_warm_starts_ = s.counter("virtuoso.adapt.warm_starts");
    c_cold_starts_ = s.counter("virtuoso.adapt.cold_starts");
    h_warm_delta_pairs_ = s.histogram("vadapt.warm.delta_pairs");
    if (warm_) warm_->params().obs = s;
    if (capture_) capture_->set_obs(s);
  }
}

VirtuosoSystem::~VirtuosoSystem() { finish_capture(); }

void VirtuosoSystem::finish_capture() {
  if (capture_) capture_->finish();
}

vnet::VnetDaemon& VirtuosoSystem::add_daemon(net::NodeId host, std::string name, bool is_proxy) {
  vnet::VnetDaemon& daemon = overlay_.create_daemon(host, name, is_proxy);
  DaemonRuntime rt;
  rt.analyzer = std::make_unique<wren::OnlineAnalyzer>(network_, host, config_.wren);
  if (config_.telemetry) rt.analyzer->set_obs(scope());
  if (capture_) capture_->add_host(host);
  rt.service = std::make_unique<wren::WrenService>(registry_, *rt.analyzer,
                                                   "wren://" + daemon.name());
  rt.client = std::make_unique<wren::WrenClient>(registry_, "wren://" + daemon.name());
  rt.local_vttif = std::make_unique<vttif::LocalVttif>(
      sim_, daemon, config_.vttif_local_period,
      [this](net::NodeId reporter, const vttif::TrafficMatrix& m) {
        // Ship the local matrix to the Proxy through the control plane
        // (the paper: "VTTIF uses VNET to periodically send the local
        // matrices to the Proxy machine"). Before bootstrap, apply locally.
        if (control_) {
          control_->send(reporter, encode_vttif_update(reporter, m));
        } else {
          global_vttif_->update_from(reporter, m);
        }
      });
  if (config_.telemetry) rt.local_vttif->set_obs(scope());
  runtimes_.emplace(host, std::move(rt));
  return daemon;
}

void VirtuosoSystem::bootstrap(vnet::LinkProtocol proto) {
  VW_REQUIRE(!bootstrapped_, "VirtuosoSystem: already bootstrapped");
  overlay_.bootstrap_star(proto);

  // Control plane: daemons ship reports to the Proxy over real TCP
  // connections; the Proxy folds them into its global views.
  control_ = std::make_unique<vnet::ControlPlane>(stack_, overlay_.proxy().host(), 9001,
                                                  config_.control);
  if (config_.telemetry) control_->set_obs(scope());
  control_->register_handler("Heartbeat", [this](const soap::XmlNode& msg) {
    note_report(static_cast<net::NodeId>(parse_u64(msg.attributes.at("reporter"))));
  });
  control_->register_handler("VttifUpdate", [this](const soap::XmlNode& msg) {
    const auto reporter = static_cast<net::NodeId>(parse_u64(msg.attributes.at("reporter")));
    note_report(reporter);
    vttif::TrafficMatrix m;
    for (const soap::XmlNode& e : msg.children) {
      if (e.name != "entry") continue;
      m.add(parse_u64(e.attributes.at("src")), parse_u64(e.attributes.at("dst")),
            std::stod(e.attributes.at("bits")));
    }
    global_vttif_->update_from(reporter, m);
  });
  control_->register_handler("WrenReport", [this](const soap::XmlNode& msg) {
    std::vector<wren::PathReading> readings;
    const net::NodeId reporter = wren::parse_wren_report_xml(msg, readings);
    note_report(reporter);
    const SimTime now = sim_.now();
    for (const wren::PathReading& r : readings) {
      if (r.bandwidth_bps) view_.update_bandwidth(reporter, r.peer, *r.bandwidth_bps, now);
      if (r.latency_s) view_.update_latency(reporter, r.peer, *r.latency_s, now);
    }
  });
  // A resend-window eviction that lost unacknowledged state is healed with a
  // full make-up report rather than silently leaving a hole.
  control_->set_on_window_gap(
      [this](net::NodeId host) { schedule_full_re_report(host, /*regional_tier=*/false); });

  if (config_.federation.enabled) bootstrap_federation();

  for (auto& [host, rt] : runtimes_) start_reporting(host);

  // Daemon-failure detection: every host starts with the benefit of the
  // doubt (stamped "seen" at bootstrap); the liveness sweep declares a host
  // dead once its reports go missing for daemon_timeout.
  if (config_.daemon_timeout > 0) {
    for (const auto& [host, rt] : runtimes_) last_report_[host] = sim_.now();
    const SimTime sweep = std::max<SimTime>(millis(100), config_.daemon_timeout / 2);
    liveness_task_ = std::make_unique<sim::PeriodicTask>(sim_, sweep,
                                                         [this] { liveness_tick(); });
  }

  // The telemetry SOAP surface rides the same in-process RPC registry as
  // the per-host Wren services.
  if (config_.telemetry) {
    telemetry_ = std::make_unique<soap::TelemetryService>(registry_, *metrics_, tracer_.get(),
                                                          kTelemetryEndpoint);
  }
  bootstrapped_ = true;
}

void VirtuosoSystem::start_reporting(net::NodeId host) {
  // "VTTIF executes nonblocking calls to Wren to collect updates on
  // available bandwidth and latency from the local host to other VNET
  // hosts", then ships them to the Proxy which maintains the global view.
  // Under federation the report stream is redirected to the host's
  // regional proxy instead (report_plane()).
  DaemonRuntime& rt = runtimes_.at(host);
  rt.reporter = std::make_unique<sim::PeriodicTask>(
      sim_, config_.wren_report_period, [this, host] { send_wren_report(host); });
  // Heartbeats prove the daemon alive even when it has nothing to report
  // (VTTIF pushes skip empty matrices, Wren reports skip peerless hosts).
  if (config_.control_heartbeat_period > 0) {
    rt.heartbeat = std::make_unique<sim::PeriodicTask>(
        sim_, config_.control_heartbeat_period,
        [this, host] { report_plane(host).send(host, encode_heartbeat(host)); });
  }
}

void VirtuosoSystem::send_wren_report(net::NodeId host) {
  auto it = runtimes_.find(host);
  if (it == runtimes_.end() || !it->second.reporter) return;  // daemon gone
  // The nonblocking SOAP calls against the local Wren service...
  if (it->second.client->peers().empty()) return;
  // ...and the report shipped upstream over the control plane.
  obs::add(c_wren_reports_);
  report_plane(host).send(host, encode_wren_report(host, *it->second.analyzer));
}

void VirtuosoSystem::note_report(net::NodeId reporter) {
  note_report_at(reporter, sim_.now());
}

void VirtuosoSystem::note_report_at(net::NodeId reporter, SimTime at) {
  // Liveness evidence may arrive out of order (e.g. HostSeen records ride a
  // delayed summary); only ever move the timestamp forward.
  SimTime& last = last_report_[reporter];
  last = std::max(last, at);
}

void VirtuosoSystem::liveness_tick() {
  const SimTime now = sim_.now();
  for (const auto& [host, rt] : runtimes_) {
    const auto it = last_report_.find(host);
    const SimTime last = it != last_report_.end() ? it->second : SimTime(0);
    const bool timed_out = now - last > config_.daemon_timeout;
    if (timed_out && !dead_daemons_.contains(host)) {
      dead_daemons_.insert(host);
      ++daemons_declared_dead_;
      obs::add(c_daemons_dead_);
      // Its measurements describe paths nobody can confirm any more.
      const std::size_t invalidated = view_.invalidate_host(host);
      if (config_.logger) {
        config_.logger->warn("virtuoso",
                             logcat("daemon on host ", host, " missed reports for ",
                                    to_seconds(now - last), " s: declared dead, ", invalidated,
                                    " view entries invalidated"));
      }
    } else if (!timed_out && dead_daemons_.contains(host)) {
      // It reported again: resurrection.
      dead_daemons_.erase(host);
      if (config_.logger) {
        config_.logger->info("virtuoso", logcat("daemon on host ", host, " reporting again"));
      }
    }
  }
}

void VirtuosoSystem::refresh_view_before_planning() {
  // Order matters: declare timed-out daemons dead (invalidating their view
  // entries) and physically drop expired measurements first, so the
  // adjacency snapshot capacity_graph() takes next reflects the sweep
  // instead of racing it.
  if (config_.daemon_timeout > 0 && bootstrapped_) liveness_tick();
  view_.expire_stale();
  if (federation_ != nullptr) {
    for (FederationRegion& reg : federation_->regions) reg.proxy->view().expire_stale();
  }
}

// --- federation --------------------------------------------------------------

const wren::RegionMap* VirtuosoSystem::region_map() const {
  return federation_ ? &federation_->region_map : nullptr;
}

wren::FederationRoot* VirtuosoSystem::federation_root() {
  return federation_ ? federation_->root.get() : nullptr;
}

wren::RegionalProxy* VirtuosoSystem::regional_proxy(wren::RegionId region) {
  if (!federation_) return nullptr;
  for (FederationRegion& reg : federation_->regions) {
    if (reg.id == region) return reg.proxy.get();
  }
  return nullptr;
}

vnet::ControlPlane* VirtuosoSystem::regional_control(wren::RegionId region) {
  if (!federation_) return nullptr;
  for (FederationRegion& reg : federation_->regions) {
    if (reg.id == region) return reg.control.get();
  }
  return nullptr;
}

wren::MeasurementScheduler* VirtuosoSystem::measurement_scheduler() {
  return federation_ ? federation_->scheduler.get() : nullptr;
}

vnet::ControlPlane& VirtuosoSystem::report_plane(net::NodeId host) {
  if (federation_ != nullptr) {
    const wren::RegionId r = federation_->region_map.region_of(host);
    for (FederationRegion& reg : federation_->regions) {
      if (reg.id == r) return *reg.control;
    }
  }
  return *control_;
}

wren::RegionalProxy* VirtuosoSystem::regional_proxy_for(net::NodeId host) {
  if (!federation_) return nullptr;
  return regional_proxy(federation_->region_map.region_of(host));
}

void VirtuosoSystem::bootstrap_federation() {
  const wren::FederationConfig& fc = config_.federation;
  const std::vector<net::NodeId> hosts = overlay_.daemon_hosts();
  VW_REQUIRE(fc.regions >= 1, "federation: need at least one region");
  VW_REQUIRE(fc.regions <= hosts.size(), "federation: ", fc.regions, " regions but only ",
             hosts.size(), " daemon hosts");

  auto fed = std::make_unique<FederationRuntime>();
  fed->region_map = wren::RegionMap::round_robin(hosts, fc.regions);
  for (net::NodeId host : hosts) {
    overlay_.daemon_on(host).set_region(fed->region_map.region_of(host));
  }

  fed->root = std::make_unique<wren::FederationRoot>(view_, fed->region_map);
  // Liveness evidence rides the summaries: a HostSeen record proves the
  // daemon was alive at its ORIGINAL timestamp (the same preserved-clock
  // contract the view entries follow).
  fed->root->set_host_seen_fn(
      [this](net::NodeId host, SimTime at) { note_report_at(host, at); });
  if (config_.telemetry) fed->root->set_obs(scope());

  fed->scheduler = std::make_unique<wren::MeasurementScheduler>(fc.scheduler);
  fed->scheduler->set_request_fn(
      [this](net::NodeId from, net::NodeId to) { start_probe(from, to); });
  if (config_.telemetry) fed->scheduler->set_obs(scope());

  // The SOAP control surface for the plane.
  fed->service = std::make_unique<soap::FederationService>(registry_, kFederationEndpoint);
  fed->service->set_export_fn([this](std::uint32_t, const std::string& hex) {
    federation_->root->apply_summary(wren::summary_from_hex(hex), sim_.now());
  });
  fed->service->set_request_fn([this](std::uint32_t from, std::uint32_t to) {
    if (!config_.federation.on_demand) return false;
    return federation_->scheduler->request_cold_pairs(view_, {{from, to}}, sim_.now()) > 0;
  });

  // Summaries arrive at the root over the regular control plane, so their
  // traffic crosses the simulated network and is measurable against the
  // per-daemon reports they replace.
  control_->register_handler("FederationSummary", [this](const soap::XmlNode& msg) {
    if (!federation_) return;
    note_report(static_cast<net::NodeId>(parse_u64(msg.attributes.at("reporter"))));
    federation_->root->apply_summary(wren::summary_from_hex(msg.child_text("summary")),
                                     sim_.now());
  });

  for (wren::RegionId r = 0; r < static_cast<wren::RegionId>(fc.regions); ++r) {
    std::vector<net::NodeId> region_hosts = fed->region_map.hosts_in(r);
    if (region_hosts.empty()) continue;
    FederationRegion reg;
    reg.id = r;
    reg.proxy_host = region_hosts.front();
    reg.control = std::make_unique<vnet::ControlPlane>(stack_, reg.proxy_host,
                                                       fc.regional_port, config_.control);
    if (config_.telemetry) reg.control->set_obs(scope());
    wren::RegionalProxyParams params;
    params.summary_max_pairs = fc.summary_max_pairs;
    params.staleness_horizon = config_.view_staleness_horizon;
    reg.proxy = std::make_unique<wren::RegionalProxy>(r, fed->region_map, params);
    reg.proxy->set_clock([this] { return sim_.now(); });
    if (config_.telemetry) reg.proxy->set_obs(scope());

    wren::RegionalProxy* proxy = reg.proxy.get();
    reg.control->register_handler("Heartbeat", [this, proxy](const soap::XmlNode& msg) {
      proxy->note_host(static_cast<net::NodeId>(parse_u64(msg.attributes.at("reporter"))),
                       sim_.now());
    });
    reg.control->register_handler("WrenReport", [this, proxy](const soap::XmlNode& msg) {
      std::vector<wren::PathReading> readings;
      const net::NodeId reporter = wren::parse_wren_report_xml(msg, readings);
      proxy->apply_report(reporter, readings, sim_.now());
    });
    reg.control->set_on_window_gap(
        [this](net::NodeId host) { schedule_full_re_report(host, /*regional_tier=*/true); });

    const std::size_t index = fed->regions.size();
    reg.exporter = std::make_unique<sim::PeriodicTask>(
        sim_, fc.export_period,
        [this, index] { export_summary(index, /*force_full=*/false); });
    fed->regions.push_back(std::move(reg));
  }

  federation_ = std::move(fed);

  // Each regional proxy announces itself through the SOAP surface.
  const soap::FederationClient client(registry_, kFederationEndpoint);
  for (const FederationRegion& reg : federation_->regions) {
    client.subscribe(reg.id, "vnet://" + std::to_string(reg.proxy_host) + ":" +
                                 std::to_string(fc.regional_port));
  }
}

void VirtuosoSystem::export_summary(std::size_t region_index, bool force_full) {
  FederationRegion& reg = federation_->regions.at(region_index);
  const wren::FederationSummary summary = reg.proxy->build_summary(sim_.now(), force_full);
  soap::XmlNode msg;
  msg.name = "FederationSummary";
  msg.attributes["reporter"] = std::to_string(reg.proxy_host);
  msg.attributes["region"] = std::to_string(reg.id);
  msg.add_text_child("summary", wren::summary_to_hex(summary));
  // Even an empty summary ships: it advances the sequence number (gap
  // detection) and doubles as the regional proxy's liveness signal.
  control_->send(reg.proxy_host, msg);
}

void VirtuosoSystem::schedule_full_re_report(net::NodeId host, bool regional_tier) {
  if (!rereport_pending_.insert(host).second) return;  // one in flight is enough
  // Deferred a beat so the gap callback never re-enters ControlPlane::send,
  // and bounded to one make-up report per health-check period per host even
  // while an outage keeps evicting.
  const SimTime delay = std::max<SimTime>(millis(1), config_.control.health_check_period);
  sim_.schedule_in(delay, [this, host, regional_tier] {
    rereport_pending_.erase(host);
    if (!regional_tier && federation_ != nullptr) {
      for (std::size_t i = 0; i < federation_->regions.size(); ++i) {
        if (federation_->regions[i].proxy_host == host) {
          // The lost message was (or may have been) a summary: re-export
          // with sampling bypassed so every held entry reaches the root.
          export_summary(i, /*force_full=*/true);
          return;
        }
      }
    }
    send_wren_report(host);
  });
}

void VirtuosoSystem::prepare_federation_for_plan(const std::vector<vadapt::Demand>& demands) {
  // Demand push-down: tell each regional proxy which of its pairs carry VM
  // traffic, so top-k sampling keeps the pairs the next plan will price.
  for (FederationRegion& reg : federation_->regions) reg.proxy->clear_demand_weights();
  std::vector<std::pair<net::NodeId, net::NodeId>> hot;
  for (const vadapt::Demand& d : demands) {
    if (d.src >= vms_.size() || d.dst >= vms_.size()) continue;
    if (!vms_[d.src]->attached() || !vms_[d.dst]->attached()) continue;
    const net::NodeId from = vms_[d.src]->host();
    const net::NodeId to = vms_[d.dst]->host();
    if (from == to) continue;
    hot.push_back({from, to});
    if (wren::RegionalProxy* proxy = regional_proxy_for(from)) {
      proxy->set_demand_weight(from, to, d.rate_bps);
    }
  }
  // SONoMA-style on-demand sessions for the hot pairs the root holds no
  // fresh measurement for.
  if (config_.federation.on_demand) {
    federation_->scheduler->request_cold_pairs(view_, hot, sim_.now());
  }
}

void VirtuosoSystem::start_probe(net::NodeId from, net::NodeId to) {
  const std::uint64_t id = next_probe_id_++;
  if (next_probe_port_ < 30000) next_probe_port_ = 30000;  // wrapped
  const std::uint16_t port = next_probe_port_++;
  auto prober =
      std::make_unique<wren::ActiveProber>(stack_, from, to, port, config_.probe);
  wren::ActiveProber* p = prober.get();
  probes_.emplace(id, std::move(prober));
  p->start([this, id, from, to](double estimate_bps) {
    const SimTime now = sim_.now();
    // The session result enters the plane exactly like a daemon report:
    // into the measuring host's regional view (so it rides future
    // summaries) and into the root view (so the pending plan sees it).
    if (wren::RegionalProxy* proxy = regional_proxy_for(from)) {
      proxy->note_host(from, now);
      proxy->view().update_bandwidth(from, to, estimate_bps, now);
    }
    view_.update_bandwidth(from, to, estimate_bps, now);
    if (federation_) federation_->scheduler->on_result(from, to);
    // The prober cannot be destroyed from inside its own completion
    // callback; erase it on the next event.
    sim_.schedule_at(now, [this, id] { probes_.erase(id); });
  });
}

void VirtuosoSystem::kill_daemon(net::NodeId host) {
  DaemonRuntime& rt = runtimes_.at(host);
  rt.reporter.reset();
  rt.heartbeat.reset();
  if (rt.local_vttif) {
    // The frame observer captures the LocalVttif being destroyed.
    overlay_.daemon_on(host).set_frame_observer(nullptr);
    rt.local_vttif.reset();
  }
  if (config_.logger) {
    config_.logger->warn("virtuoso", logcat("daemon on host ", host, " killed"));
  }
}

std::vector<net::NodeId> VirtuosoSystem::live_daemon_hosts() const {
  std::vector<net::NodeId> hosts;
  for (net::NodeId h : overlay_.daemon_hosts()) {
    if (daemon_alive(h)) hosts.push_back(h);
  }
  return hosts;
}

vm::VirtualMachine& VirtuosoSystem::create_vm(const std::string& name, net::NodeId host,
                                              std::uint64_t memory_bytes) {
  auto machine = std::make_unique<vm::VirtualMachine>(sim_, overlay_, next_mac_++, name,
                                                      memory_bytes);
  machine->attach(host);
  vms_.push_back(std::move(machine));
  return *vms_.back();
}

wren::OnlineAnalyzer& VirtuosoSystem::wren_on(net::NodeId host) {
  return *runtimes_.at(host).analyzer;
}

vadapt::CapacityGraph VirtuosoSystem::capacity_graph() const {
  // Dead daemons drop out: VADAPT must not place VMs on hosts whose daemon
  // stopped answering.
  std::vector<net::NodeId> hosts = live_daemon_hosts();
  vadapt::CapacityGraph graph(hosts, config_.default_bandwidth_bps, 0.001);
  const wren::FederationRoot* fed_root = federation_ ? federation_->root.get() : nullptr;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      if (auto bw = view_.bandwidth_bps(hosts[i], hosts[j])) {
        graph.set_bandwidth(i, j, *bw);
      } else if (fed_root != nullptr) {
        // No exact entry at the root (suppressed by top-k sampling): the
        // region-to-region aggregate is a better prior than the global
        // default capacity.
        if (auto abw = fed_root->aggregate_bandwidth(hosts[i], hosts[j])) {
          graph.set_bandwidth(i, j, *abw);
        }
      }
      if (auto lat = view_.latency_seconds(hosts[i], hosts[j])) {
        graph.set_latency(i, j, *lat);
      } else if (fed_root != nullptr) {
        if (auto alat = fed_root->aggregate_latency(hosts[i], hosts[j])) {
          graph.set_latency(i, j, *alat);
        }
      }
    }
  }
  return graph;
}

std::optional<vadapt::VmIndex> VirtuosoSystem::vm_index_for_mac(vnet::MacAddress mac) const {
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    if (vms_[i]->mac() == mac) return i;
  }
  return std::nullopt;
}

std::vector<vadapt::Demand> VirtuosoSystem::current_demands() const {
  std::vector<vadapt::Demand> demands;
  for (const vttif::TopologyEdge& e : global_vttif_->current_topology().edges) {
    const auto src = vm_index_for_mac(e.src);
    const auto dst = vm_index_for_mac(e.dst);
    if (!src || !dst) continue;
    demands.push_back(vadapt::Demand{*src, *dst, e.rate_bps});
  }
  return demands;
}

namespace {

const char* algorithm_name(AdaptationAlgorithm a) {
  switch (a) {
    case AdaptationAlgorithm::kGreedy: return "GH";
    case AdaptationAlgorithm::kAnnealing: return "SA";
    case AdaptationAlgorithm::kAnnealingGreedy: return "SA+GH";
    case AdaptationAlgorithm::kMultiStartAnnealing: return "MS-SA";
  }
  return "?";
}

}  // namespace

AdaptationOutcome VirtuosoSystem::adapt_now(AdaptationAlgorithm algorithm) {
  obs::EventTracer::Span adapt_span = scope().span("virtuoso.adapt", "virtuoso");
  adapt_span.arg("algorithm", algorithm_name(algorithm));
  obs::add(c_adaptations_);

  // Snapshot-ordering contract: sweep liveness and expire stale entries
  // BEFORE the adjacency snapshot below, so the plan can never optimize
  // over measurements a concurrent sweep was about to invalidate.
  refresh_view_before_planning();
  const std::vector<vadapt::Demand> demands = current_demands();
  if (federation_ != nullptr) prepare_federation_for_plan(demands);
  const std::size_t n_vms = vms_.size();

  // Warm-start entry point (DESIGN.md §5j): every adaptation trigger —
  // manual, auto, cooldown-deferred failure re-plan, federated — lands here,
  // so they all ride the streaming path when the incumbent still fits.
  if (warm_ != nullptr) {
    wren::ViewDelta delta = view_.drain_delta();
    if (n_vms >= config_.warm_start.min_vms &&
        warm_->compatible(live_daemon_hosts(), demands, n_vms) &&
        warm_->delta_acceptable(delta)) {
      ++warm_starts_;
      obs::add(c_warm_starts_);
      obs::record(h_warm_delta_pairs_, static_cast<double>(delta.pair_count()));
      // A fresh named stream per adaptation epoch: warm bursts never
      // perturb the RNG streams the cold algorithms draw from.
      Rng rng = rng_service_.stream("vadapt.warm.burst." + std::to_string(warm_epoch_++));
      const vadapt::WarmAdaptStats stats = warm_->adapt(delta, demands, std::move(rng));
      AdaptationOutcome outcome;
      outcome.migrations = apply_configuration(warm_->graph(), demands, warm_->incumbent());
      outcome.configuration = warm_->incumbent();
      outcome.evaluation = warm_->evaluation();
      outcome.demands = demands;
      outcome.hosts = warm_->graph().hosts();
      adapt_span.arg("warm", "1");
      adapt_span.arg("demands", std::to_string(demands.size()));
      adapt_span.arg("migrations", std::to_string(outcome.migrations));
      if (config_.logger) {
        config_.logger->info(
            "vadapt", logcat("warm adaptation: cost=", outcome.evaluation.cost / 1e6,
                             " Mb/s delta_pairs=", stats.delta_pairs, " targets=",
                             stats.target_demands, " bursts=", stats.burst_groups));
      }
      return outcome;
    }
    // Cold fallback: no/incompatible incumbent, too-small problem, or a
    // delta past the warm threshold. The delta is already drained — the
    // cold solve below re-snapshots the view from scratch.
    ++cold_starts_;
    obs::add(c_cold_starts_);
  }

  const vadapt::CapacityGraph graph = capacity_graph();

  vadapt::Configuration conf;
  vadapt::Evaluation eval;
  switch (algorithm) {
    case AdaptationAlgorithm::kGreedy: {
      auto gh = vadapt::greedy_heuristic(graph, demands, n_vms, config_.objective,
                                         scope());
      conf = std::move(gh.configuration);
      eval = gh.evaluation;
      break;
    }
    case AdaptationAlgorithm::kAnnealing: {
      Rng rng = rng_service_.stream("vadapt.sa");
      auto sa = vadapt::simulated_annealing(graph, demands, n_vms, config_.objective,
                                            config_.annealing, rng);
      conf = std::move(sa.best);
      eval = sa.best_evaluation;
      break;
    }
    case AdaptationAlgorithm::kAnnealingGreedy: {
      auto gh = vadapt::greedy_heuristic(graph, demands, n_vms, config_.objective, scope());
      Rng rng = rng_service_.stream("vadapt.sa+gh");
      auto sa = vadapt::simulated_annealing(graph, demands, n_vms, config_.objective,
                                            config_.annealing, rng,
                                            std::move(gh.configuration));
      conf = std::move(sa.best);
      eval = sa.best_evaluation;
      break;
    }
    case AdaptationAlgorithm::kMultiStartAnnealing: {
      auto gh = vadapt::greedy_heuristic(graph, demands, n_vms, config_.objective, scope());
      vadapt::MultiStartParams ms = config_.multistart;
      ms.annealing = config_.annealing;
      ms.seed = rng_service_.seed_for("vadapt.multistart");
      if (ms.pool == nullptr && ms.chains > 1) {
        if (annealing_pool_ == nullptr) {
          std::size_t threads =
              ms.threads == 0 ? ThreadPool::default_thread_count() : ms.threads;
          annealing_pool_ = std::make_unique<ThreadPool>(std::min(threads, ms.chains));
        }
        ms.pool = annealing_pool_.get();
      }
      auto result = vadapt::multi_start_annealing(graph, demands, n_vms, config_.objective, ms,
                                                  std::move(gh.configuration));
      conf = std::move(result.best.best);
      eval = result.best.best_evaluation;
      break;
    }
  }

  // The cold result seeds the next warm adaptation's incumbent.
  if (warm_ != nullptr) warm_->adopt(graph, demands, n_vms, conf, config_.objective);

  AdaptationOutcome outcome;
  outcome.migrations = apply_configuration(graph, demands, conf);
  outcome.configuration = std::move(conf);
  outcome.evaluation = eval;
  outcome.demands = demands;
  outcome.hosts = graph.hosts();
  adapt_span.arg("demands", std::to_string(demands.size()));
  adapt_span.arg("migrations", std::to_string(outcome.migrations));
  if (config_.logger) {
    config_.logger->info(
        "vadapt", logcat("adaptation complete: cost=", eval.cost / 1e6, " Mb/s feasible=",
                         eval.feasible, " demands=", demands.size(), " migrations=",
                         outcome.migrations));
  }
  return outcome;
}

void VirtuosoSystem::on_migration_failed(net::NodeId source, net::NodeId target) {
  ++migration_failures_;
  obs::add(c_migration_failures_);
  // Whatever Wren believed about this pair predates the failure; force the
  // planner to re-measure (or fall back) before trusting it again.
  view_.invalidate(source, target);
  view_.invalidate(target, source);
  if (config_.logger) {
    config_.logger->warn("virtuoso", logcat("migration ", source, "->", target,
                                            " failed: VM rolled back, pair invalidated"));
  }
  if (!auto_adapt_enabled_ || replan_pending_) return;
  // Re-plan around the dead pair, but never inside the failure callback and
  // never faster than the adaptation cooldown allows.
  replan_pending_ = true;
  const SimTime at = std::max(sim_.now(), last_auto_adapt_ + auto_cooldown_);
  sim_.schedule_at(at, [this] { try_failure_replan(); });
}

void VirtuosoSystem::try_failure_replan() {
  if (!auto_adapt_enabled_) {
    replan_pending_ = false;
    return;
  }
  if (live_daemon_hosts().size() < vms_.size()) {
    // Not enough live hosts to place every VM; wait out another cooldown
    // for daemons to resurrect rather than planning an impossible mapping.
    sim_.schedule_at(sim_.now() + auto_cooldown_, [this] { try_failure_replan(); });
    return;
  }
  replan_pending_ = false;
  last_auto_adapt_ = sim_.now();
  ++auto_adaptations_;
  ++failure_replans_;
  obs::add(c_replans_);
  adapt_now(auto_algorithm_);
}

void VirtuosoSystem::enable_auto_adaptation(AdaptationAlgorithm algorithm, SimTime cooldown) {
  auto_adapt_enabled_ = true;
  auto_algorithm_ = algorithm;
  auto_cooldown_ = cooldown;
  global_vttif_->set_on_change([this](const vttif::Topology&) {
    if (!auto_adapt_enabled_) return;
    if (live_daemon_hosts().size() < vms_.size()) return;
    const SimTime now = sim_.now();
    if (auto_adaptations_ > 0 && now - last_auto_adapt_ < auto_cooldown_) return;
    last_auto_adapt_ = now;
    ++auto_adaptations_;
    adapt_now(auto_algorithm_);
  });
}

void VirtuosoSystem::disable_auto_adaptation() {
  auto_adapt_enabled_ = false;
  global_vttif_->set_on_change(nullptr);
}

void VirtuosoSystem::release_reservations() {
  for (net::ReservationId id : reservation_ids_) reservation_manager_.release(id);
  reservation_ids_.clear();
}

std::size_t VirtuosoSystem::install_reservations(const AdaptationOutcome& outcome,
                                                 double headroom) {
  release_reservations();
  // Uncapped plan: the physical channels' admission control decides below.
  const vadapt::ReservationPlan plan =
      plan_reservations(outcome.demands, outcome.configuration, headroom);
  std::size_t granted = 0;
  for (const vadapt::EdgeReservation& edge : plan.edges) {
    const net::NodeId from_host = outcome.hosts.at(edge.from);
    const net::NodeId to_host = outcome.hosts.at(edge.to);
    if (!overlay_.has_daemon_on(from_host)) continue;
    vnet::VnetDaemon& daemon = overlay_.daemon_on(from_host);
    const auto link_id = daemon.link_to_host(to_host);
    if (!link_id) continue;
    // Find the link object to learn its wire-level flow.
    for (auto [id, link] : daemon.links()) {
      if (id != *link_id) continue;
      if (auto rid = reservation_manager_.reserve_path(link->wire_flow(), edge.rate_bps)) {
        reservation_ids_.push_back(*rid);
        ++granted;
        obs::add(c_reservations_granted_);
      } else {
        obs::add(c_reservations_denied_);
        if (config_.logger) {
          config_.logger->warn("reserve", logcat("reservation denied: ", edge.rate_bps / 1e6,
                                                 " Mb/s on overlay edge ", from_host, "->",
                                                 to_host));
        }
      }
      break;
    }
  }
  return granted;
}

std::size_t VirtuosoSystem::apply_configuration(const vadapt::CapacityGraph& graph,
                                                const std::vector<vadapt::Demand>& demands,
                                                const vadapt::Configuration& conf) {
  VW_REQUIRE(conf.mapping.size() == vms_.size(),
             "apply_configuration: mapping places ", conf.mapping.size(), " VMs, system has ",
             vms_.size());

  // Compute the migration set ("compute the differences between the current
  // mapping and the new mapping and issue migration instructions").
  std::size_t migrations = 0;
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    const net::NodeId target = graph.host(conf.mapping[v]);
    if (!vms_[v]->attached() || vms_[v]->host() != target) {
      if (config_.logger) {
        config_.logger->info("vadapt", logcat("migrating ", vms_[v]->name(), " -> host ",
                                              target));
      }
      const std::optional<net::NodeId> source =
          vms_[v]->attached() ? std::optional<net::NodeId>(vms_[v]->host()) : std::nullopt;
      migration_.migrate(*vms_[v], target,
                         [this, source, target](vm::VirtualMachine&,
                                                vm::MigrationStatus status) {
                           if (status != vm::MigrationStatus::kFailed || !source) return;
                           on_migration_failed(*source, target);
                         });
      ++migrations;
      obs::add(c_migrations_issued_);
    }
  }

  // Re-derive the overlay topology and forwarding rules from the paths.
  overlay_.reset_to_star();
  for (std::size_t d = 0; d < demands.size() && d < conf.paths.size(); ++d) {
    const vadapt::Path& p = conf.paths[d];
    std::vector<net::NodeId> host_path;
    host_path.reserve(p.size());
    for (vadapt::HostIndex h : p) host_path.push_back(graph.host(h));
    overlay_.install_path(host_path, vms_[demands[d].dst]->mac());
  }
  return migrations;
}

}  // namespace vw::virtuoso
