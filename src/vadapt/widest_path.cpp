#include "vadapt/widest_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace vw::vadapt {

std::optional<Path> WidestPathTree::path_to(HostIndex dst) const {
  if (dst == source) return Path{source};
  if (!parent[dst]) return std::nullopt;
  Path path;
  HostIndex at = dst;
  while (at != source) {
    path.push_back(at);
    at = *parent[at];
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

WidestPathTree widest_paths(const std::vector<std::vector<double>>& capacity, HostIndex source) {
  const std::size_t n = capacity.size();
  WidestPathTree tree;
  tree.source = source;
  tree.width.assign(n, -std::numeric_limits<double>::infinity());
  tree.parent.assign(n, std::nullopt);
  tree.width[source] = std::numeric_limits<double>::infinity();

  using Item = std::pair<double, HostIndex>;  // (width, vertex), max-first
  std::priority_queue<Item> pq;
  pq.push({tree.width[source], source});
  std::vector<bool> done(n, false);

  while (!pq.empty()) {
    auto [w, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    for (HostIndex v = 0; v < n; ++v) {
      if (v == u || done[v]) continue;
      const double edge = capacity[u][v];
      if (edge <= 0) continue;  // absent or exhausted edge
      const double through = std::min(w, edge);
      if (through > tree.width[v]) {
        tree.width[v] = through;
        tree.parent[v] = u;
        pq.push({through, v});
      }
    }
  }
  return tree;
}

std::optional<Path> widest_path_between(const std::vector<std::vector<double>>& capacity,
                                        HostIndex src, HostIndex dst) {
  return widest_paths(capacity, src).path_to(dst);
}

double widest_path_width(const std::vector<std::vector<double>>& capacity, HostIndex src,
                         HostIndex dst) {
  const WidestPathTree tree = widest_paths(capacity, src);
  if (src != dst && !tree.parent[dst]) return 0;
  const double w = tree.width[dst];
  return std::isfinite(w) ? w : 0;
}

}  // namespace vw::vadapt
