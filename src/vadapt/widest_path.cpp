#include "vadapt/widest_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace vw::vadapt {

std::optional<Path> WidestPathTree::path_to(HostIndex dst) const {
  VW_REQUIRE(dst < parent.size(), "WidestPathTree::path_to: vertex ", dst, " out of range");
  if (dst == source) return Path{source};
  if (!parent[dst]) return std::nullopt;
  Path path;
  HostIndex at = dst;
  while (at != source) {
    path.push_back(at);
    at = *parent[at];
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

WidestPathTree widest_paths(const std::vector<std::vector<double>>& capacity, HostIndex source) {
  const std::size_t n = capacity.size();
  VW_REQUIRE(source < n, "widest_paths: source ", source, " out of range (n=", n, ")");
  VW_AUDIT(std::all_of(capacity.begin(), capacity.end(),
                       [n](const std::vector<double>& row) { return row.size() == n; }),
           "widest_paths: capacity matrix not square");
  WidestPathTree tree;
  tree.source = source;
  tree.width.assign(n, -std::numeric_limits<double>::infinity());
  tree.parent.assign(n, std::nullopt);
  tree.width[source] = std::numeric_limits<double>::infinity();

  using Item = std::pair<double, HostIndex>;  // (width, vertex), max-first
  std::priority_queue<Item> pq;
  pq.push({tree.width[source], source});
  std::vector<bool> done(n, false);

  while (!pq.empty()) {
    auto [w, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    for (HostIndex v = 0; v < n; ++v) {
      if (v == u || done[v]) continue;
      const double edge = capacity[u][v];
      if (edge <= 0) continue;  // absent or exhausted edge
      const double through = std::min(w, edge);
      if (through > tree.width[v]) {
        tree.width[v] = through;
        tree.parent[v] = u;
        pq.push({through, v});
      }
    }
  }
  return tree;
}

std::optional<Path> widest_path_between(const std::vector<std::vector<double>>& capacity,
                                        HostIndex src, HostIndex dst) {
  return widest_paths(capacity, src).path_to(dst);
}

double widest_path_width(const std::vector<std::vector<double>>& capacity, HostIndex src,
                         HostIndex dst) {
  const WidestPathTree tree = widest_paths(capacity, src);
  VW_REQUIRE(dst < tree.width.size(), "widest_path_width: dst ", dst, " out of range");
  if (src != dst && !tree.parent[dst]) return 0;
  const double w = tree.width[dst];
  const double result = std::isfinite(w) ? w : 0;
  // Widths seed VADAPT's residual-capacity reasoning; a negative width means
  // the relaxation visited an edge with negative "capacity".
  VW_ENSURE(result >= 0, "widest_path_width: negative width ", result);
  return result;
}

}  // namespace vw::vadapt
