#include "vadapt/widest_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace vw::vadapt {

std::optional<Path> WidestPathTree::path_to(HostIndex dst) const {
  VW_REQUIRE(dst < parent.size(), "WidestPathTree::path_to: vertex ", dst, " out of range");
  if (dst == source) return Path{source};
  if (!parent[dst]) return std::nullopt;
  Path path;
  HostIndex at = dst;
  while (at != source) {
    path.push_back(at);
    at = *parent[at];
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

// --- adjacency view ----------------------------------------------------------

AdjacencyView::AdjacencyView(const std::vector<std::vector<double>>& capacity)
    : out_(capacity.size()) {
  const std::size_t n = capacity.size();
  VW_AUDIT(std::all_of(capacity.begin(), capacity.end(),
                       [n](const std::vector<double>& row) { return row.size() == n; }),
           "AdjacencyView: capacity matrix not square");
  for (HostIndex u = 0; u < n; ++u) {
    for (HostIndex v = 0; v < n; ++v) {
      if (u != v && capacity[u][v] > 0) out_[u].push_back({v, capacity[u][v]});
    }
  }
}

void AdjacencyView::update(HostIndex u, HostIndex v, double capacity) {
  VW_REQUIRE(u < out_.size() && v < out_.size(),
             "AdjacencyView::update: vertex out of range");
  auto& edges = out_[u];
  const auto it = std::lower_bound(edges.begin(), edges.end(), v,
                                   [](const CapacityEdge& e, HostIndex t) { return e.to < t; });
  const bool present = it != edges.end() && it->to == v;
  if (capacity > 0 && u != v) {
    if (present) {
      it->capacity = capacity;
    } else {
      edges.insert(it, {v, capacity});  // keeps the list sorted by target
    }
  } else if (present) {
    edges.erase(it);  // ordered erase preserves the dense-scan relaxation order
  }
}

double AdjacencyView::capacity(HostIndex u, HostIndex v) const {
  VW_REQUIRE(u < out_.size() && v < out_.size(),
             "AdjacencyView::capacity: vertex out of range");
  const auto& edges = out_[u];
  const auto it = std::lower_bound(edges.begin(), edges.end(), v,
                                   [](const CapacityEdge& e, HostIndex t) { return e.to < t; });
  return (it != edges.end() && it->to == v) ? it->capacity : 0.0;
}

// --- tree cache --------------------------------------------------------------

WidestPathCache::WidestPathCache(const AdjacencyView& view)
    : view_(&view), trees_(view.size()) {}

const WidestPathTree& WidestPathCache::tree(HostIndex source) {
  VW_REQUIRE(source < trees_.size(), "WidestPathCache::tree: source out of range");
  if (!trees_[source]) {
    trees_[source] = std::make_unique<WidestPathTree>(widest_paths(*view_, source));
    ++misses_;
  } else {
    ++hits_;
  }
  return *trees_[source];
}

void WidestPathCache::invalidate() {
  for (auto& tree : trees_) tree.reset();
}

void WidestPathCache::invalidate_source(HostIndex source) {
  VW_REQUIRE(source < trees_.size(), "WidestPathCache::invalidate_source: out of range");
  trees_[source].reset();
}

std::size_t WidestPathCache::invalidate_edge(HostIndex u, HostIndex v, double old_capacity,
                                             double new_capacity) {
  VW_REQUIRE(u < trees_.size() && v < trees_.size(),
             "WidestPathCache::invalidate_edge: vertex out of range");
  // Normalize to the view's semantics: <= 0 means "edge absent".
  const double before = old_capacity > 0 ? old_capacity : 0.0;
  const double after = new_capacity > 0 ? new_capacity : 0.0;
  if (before == after || u == v) return 0;
  const bool decrease = after < before;
  std::size_t dropped = 0;
  for (auto& tree : trees_) {
    if (!tree) continue;
    bool stale;
    if (decrease) {
      // Only trees that actually route through u -> v can change.
      stale = tree->parent[v] && *tree->parent[v] == u;
    } else {
      // The widened edge can only matter if it offers a route into v at
      // least as wide as the tree's current best (>= kills ties too, so
      // surviving trees match a fresh recompute bit-for-bit).
      const double wu = tree->width[u];
      stale = wu > -std::numeric_limits<double>::infinity() &&
              std::min(wu, after) >= tree->width[v];
    }
    if (stale) {
      tree.reset();
      ++dropped;
    }
  }
  return dropped;
}

bool WidestPathCache::is_cached(HostIndex source) const {
  VW_REQUIRE(source < trees_.size(), "WidestPathCache::is_cached: out of range");
  return trees_[source] != nullptr;
}

std::size_t WidestPathCache::cached_trees() const {
  std::size_t live = 0;
  for (const auto& tree : trees_) {
    if (tree) ++live;
  }
  return live;
}

// --- the adapted Dijkstra ----------------------------------------------------

WidestPathTree widest_paths(const AdjacencyView& view, HostIndex source) {
  const std::size_t n = view.size();
  VW_REQUIRE(source < n, "widest_paths: source ", source, " out of range (n=", n, ")");
  WidestPathTree tree;
  tree.source = source;
  tree.width.assign(n, -std::numeric_limits<double>::infinity());
  tree.parent.assign(n, std::nullopt);
  tree.width[source] = std::numeric_limits<double>::infinity();

  using Item = std::pair<double, HostIndex>;  // (width, vertex), max-first
  std::priority_queue<Item> pq;
  pq.push({tree.width[source], source});

  while (!pq.empty()) {
    auto [w, u] = pq.top();
    pq.pop();
    // Lazy deletion: a vertex is re-pushed on every width improvement; any
    // entry whose width no longer matches the best known is stale. A vertex
    // popped at its best width is settled — no later relaxation can beat it.
    if (w != tree.width[u]) continue;
    for (const CapacityEdge& e : view.out(u)) {
      const double through = std::min(w, e.capacity);
      if (through > tree.width[e.to]) {
        tree.width[e.to] = through;
        tree.parent[e.to] = u;
        pq.push({through, e.to});
      }
    }
  }
  return tree;
}

WidestPathTree widest_paths(const std::vector<std::vector<double>>& capacity, HostIndex source) {
  const std::size_t n = capacity.size();
  VW_REQUIRE(source < n, "widest_paths: source ", source, " out of range (n=", n, ")");
  return widest_paths(AdjacencyView(capacity), source);
}

std::optional<Path> widest_path_between(const std::vector<std::vector<double>>& capacity,
                                        HostIndex src, HostIndex dst) {
  return widest_paths(capacity, src).path_to(dst);
}

double widest_path_width(const std::vector<std::vector<double>>& capacity, HostIndex src,
                         HostIndex dst) {
  const WidestPathTree tree = widest_paths(capacity, src);
  VW_REQUIRE(dst < tree.width.size(), "widest_path_width: dst ", dst, " out of range");
  if (src != dst && !tree.parent[dst]) return 0;
  const double w = tree.width[dst];
  const double result = std::isfinite(w) ? w : 0;
  // Widths seed VADAPT's residual-capacity reasoning; a negative width means
  // the relaxation visited an edge with negative "capacity".
  VW_ENSURE(result >= 0, "widest_path_width: negative width ", result);
  return result;
}

}  // namespace vw::vadapt
