#pragma once

#include <map>
#include <vector>

#include "vadapt/problem.hpp"

// The fourth element of a VADAPT configuration (paper §4.1): "the choice of
// resource reservations on the network and the hosts, if available".
// Given the chosen configuration and the demand set, the planner aggregates
// the demand routed over each overlay edge into a per-edge reservation
// request (with headroom), which the runtime can then install as physical
// path reservations for the VNET links that realize those edges.

namespace vw::vadapt {

struct EdgeReservation {
  HostIndex from = 0;
  HostIndex to = 0;
  double rate_bps = 0;
};

struct ReservationPlan {
  std::vector<EdgeReservation> edges;

  double rate_for(HostIndex from, HostIndex to) const;
  double total_rate() const;
};

/// Aggregate each demand's rate over every edge of its path, scaled by
/// (1 + headroom). Uncapped: physical admission control decides later.
ReservationPlan plan_reservations(const std::vector<Demand>& demands,
                                  const Configuration& conf, double headroom = 0.25);

/// As above, but each edge is additionally capped at the graph's available
/// bandwidth (a reservation cannot exceed what the path offers).
ReservationPlan plan_reservations(const CapacityGraph& graph,
                                  const std::vector<Demand>& demands,
                                  const Configuration& conf, double headroom = 0.25);

}  // namespace vw::vadapt
