#include "vadapt/cluster.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace vw::vadapt {

namespace {

/// Live community state during agglomeration. Communities are identified by
/// their smallest original VM index; `edges` holds total inter-community
/// weight keyed by peer id (ordered, so scans are deterministic).
struct Community {
  bool alive = false;
  std::size_t size = 0;
  double degree = 0;  ///< total incident weight (2x internal + external)
  std::map<std::uint32_t, double> edges;
};

}  // namespace

ClusterAssignment cluster_vms_by_traffic(const std::vector<Demand>& demands, std::size_t n_vms,
                                         const ClusterParams& params) {
  ClusterAssignment out;
  out.cluster_of.assign(n_vms, 0);
  if (n_vms == 0) return out;

  // Undirected VM traffic graph: w{a,b} = sum of demand rates either way.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> weight;
  double total_weight = 0;  // W = sum of undirected edge weights
  for (const Demand& d : demands) {
    VW_REQUIRE(d.src < n_vms && d.dst < n_vms, "cluster_vms_by_traffic: demand endpoint ",
               d.src, "->", d.dst, " out of range (n_vms=", n_vms, ")");
    if (d.src == d.dst || d.rate_bps <= 0) continue;
    const auto a = static_cast<std::uint32_t>(std::min(d.src, d.dst));
    const auto b = static_cast<std::uint32_t>(std::max(d.src, d.dst));
    weight[{a, b}] += d.rate_bps;
    total_weight += d.rate_bps;
  }

  std::vector<Community> comm(n_vms);
  for (std::size_t v = 0; v < n_vms; ++v) {
    comm[v].alive = true;
    comm[v].size = 1;
  }
  for (const auto& [pair, w] : weight) {
    comm[pair.first].edges[pair.second] += w;
    comm[pair.second].edges[pair.first] += w;
    comm[pair.first].degree += w;
    comm[pair.second].degree += w;
  }

  // Greedy modularity agglomeration. Gain of merging communities i and j:
  //   dQ = 2 * (e_ij / (2W) - (deg_i / 2W) * (deg_j / 2W))
  // Merge the best positive-gain pair each round until none remains.
  if (total_weight > 0) {
    const double two_w = 2.0 * total_weight;
    for (;;) {
      double best_gain = 0;
      std::uint32_t best_i = 0, best_j = 0;
      bool found = false;
      for (std::uint32_t i = 0; i < n_vms; ++i) {
        if (!comm[i].alive) continue;
        for (const auto& [j, w] : comm[i].edges) {
          if (j <= i) continue;  // scan each undirected pair once, ascending
          if (params.max_cluster_size > 0 &&
              comm[i].size + comm[j].size > params.max_cluster_size) {
            continue;
          }
          const double gain =
              2.0 * (w / two_w - (comm[i].degree / two_w) * (comm[j].degree / two_w));
          if (gain > best_gain) {  // strict > keeps the smallest tied pair
            best_gain = gain;
            best_i = i;
            best_j = j;
            found = true;
          }
        }
      }
      if (!found) break;

      // Merge j into i (i < j by the scan order).
      Community& ci = comm[best_i];
      Community& cj = comm[best_j];
      ci.size += cj.size;
      ci.degree += cj.degree;
      ci.edges.erase(best_j);
      for (const auto& [k, w] : cj.edges) {
        if (k == best_i) continue;
        ci.edges[k] += w;
        comm[k].edges.erase(best_j);
        comm[k].edges[best_i] += w;
      }
      cj.alive = false;
      cj.edges.clear();
      // Record membership lazily via union-find-style parent chain.
      out.cluster_of[best_j] = best_i;
    }
  }

  // Resolve each VM's root community (path-compressed walk over the
  // "merged into" links stored in cluster_of during agglomeration).
  std::vector<std::uint32_t> root(n_vms);
  for (std::uint32_t v = 0; v < n_vms; ++v) {
    std::uint32_t r = v;
    while (!comm[r].alive) r = out.cluster_of[r];
    root[v] = r;
  }

  // Renumber roots densely, ordered by smallest member (== root id, since
  // merges always fold the larger id into the smaller).
  std::vector<std::int32_t> dense(n_vms, -1);
  for (std::uint32_t v = 0; v < n_vms; ++v) {
    const std::uint32_t r = root[v];
    if (dense[r] < 0) {
      dense[r] = static_cast<std::int32_t>(out.clusters.size());
      out.clusters.emplace_back();
    }
    out.cluster_of[v] = static_cast<std::uint32_t>(dense[r]);
    out.clusters[static_cast<std::size_t>(dense[r])].push_back(v);
  }
  VW_ENSURE(!out.clusters.empty(), "cluster_vms_by_traffic: no clusters for ", n_vms, " VMs");
  return out;
}

}  // namespace vw::vadapt
