#pragma once

#include <cstdint>
#include <vector>

#include "vadapt/problem.hpp"

// Exhaustive search over VM -> host mappings for small scenarios (the
// W&M/NWU testbed's solution space is "small enough to enumerate all
// possible configurations to find the optimal solution"). For each injective
// mapping, paths are chosen by the deterministic greedy widest-path routing;
// the optimum is the best (mapping, routed paths) pair.

namespace vw::vadapt {

struct ExhaustiveResult {
  Configuration best;
  Evaluation best_evaluation;
  std::uint64_t mappings_examined = 0;
};

/// Number of injective mappings: n_hosts P n_vms.
std::uint64_t mapping_count(std::size_t n_hosts, std::size_t n_vms);

/// Enumerate all injective mappings; throws std::invalid_argument when the
/// space exceeds `max_mappings` (guard against accidental explosion).
ExhaustiveResult exhaustive_search(const CapacityGraph& graph,
                                   const std::vector<Demand>& demands, std::size_t n_vms,
                                   const Objective& objective = {},
                                   std::uint64_t max_mappings = 1'000'000);

}  // namespace vw::vadapt
