#include "vadapt/greedy.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"
#include "vadapt/widest_path.hpp"

namespace vw::vadapt {

namespace {

/// "Extract an ordered list with a breadth-first approach, eliminating
/// duplicates": walk the weight-ordered pair list, appending each endpoint
/// the first time it appears.
template <typename Id, typename PairList>
std::vector<Id> extract_ordered(const PairList& ordered_pairs, std::size_t expected) {
  std::vector<Id> out;
  std::set<Id> seen;
  for (const auto& [a, b, weight] : ordered_pairs) {
    (void)weight;
    if (seen.insert(a).second) out.push_back(a);
    if (seen.insert(b).second) out.push_back(b);
    if (out.size() >= expected) break;
  }
  return out;
}

}  // namespace

std::vector<HostIndex> greedy_mapping(const CapacityGraph& graph,
                                      const std::vector<Demand>& demands, std::size_t n_vms) {
  const std::size_t n_hosts = graph.size();
  VW_REQUIRE(n_vms <= n_hosts, "greedy_mapping: more VMs (", n_vms, ") than hosts (", n_hosts,
             ")");

  // (1,2) VM adjacency list ordered by decreasing traffic intensity.
  std::vector<std::tuple<VmIndex, VmIndex, double>> vm_pairs;
  for (const Demand& d : demands) vm_pairs.push_back({d.src, d.dst, d.rate_bps});
  std::stable_sort(vm_pairs.begin(), vm_pairs.end(),
                   [](const auto& a, const auto& b) { return std::get<2>(a) > std::get<2>(b); });

  // (3) ordered VM list, breadth-first, duplicates eliminated.
  std::vector<VmIndex> vm_order = extract_ordered<VmIndex>(vm_pairs, n_vms);
  for (VmIndex v = 0; v < n_vms; ++v) {  // VMs with no traffic come last
    if (std::find(vm_order.begin(), vm_order.end(), v) == vm_order.end()) vm_order.push_back(v);
  }

  // (4) widest-path bottleneck between every VNET daemon pair.
  std::vector<std::tuple<HostIndex, HostIndex, double>> host_pairs;
  for (HostIndex i = 0; i < n_hosts; ++i) {
    const WidestPathTree tree = widest_paths(graph.bandwidth_matrix(), i);
    for (HostIndex j = 0; j < n_hosts; ++j) {
      if (i == j) continue;
      const double w = tree.parent[j] ? tree.width[j] : 0;
      host_pairs.push_back({i, j, w});
    }
  }
  // (5) order by decreasing bottleneck bandwidth.
  std::stable_sort(host_pairs.begin(), host_pairs.end(),
                   [](const auto& a, const auto& b) { return std::get<2>(a) > std::get<2>(b); });

  // (6) ordered host list, breadth-first, duplicates eliminated.
  std::vector<HostIndex> host_order = extract_ordered<HostIndex>(host_pairs, n_hosts);
  for (HostIndex h = 0; h < n_hosts; ++h) {
    if (std::find(host_order.begin(), host_order.end(), h) == host_order.end()) {
      host_order.push_back(h);
    }
  }

  // (7) zip the two orders.
  std::vector<HostIndex> mapping(n_vms);
  for (std::size_t k = 0; k < n_vms; ++k) mapping[vm_order[k]] = host_order[k];
  VW_AUDIT(valid_mapping(mapping, n_hosts), "greedy_mapping: produced invalid mapping");
  return mapping;
}

std::vector<Path> greedy_paths(const CapacityGraph& graph, const std::vector<Demand>& demands,
                               const std::vector<HostIndex>& mapping) {
  // (1) demands in descending order of communication intensity.
  std::vector<std::size_t> order(demands.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a].rate_bps > demands[b].rate_bps;
  });

  // (2) greedy widest-path mapping on the running residual graph.
  auto residual = graph.bandwidth_matrix();
  std::vector<Path> paths(demands.size());
  for (std::size_t idx : order) {
    const Demand& d = demands[idx];
    const HostIndex src = mapping.at(d.src);
    const HostIndex dst = mapping.at(d.dst);
    auto path = widest_path_between(residual, src, dst);
    if (!path) path = Path{src, dst};  // exhausted graph: fall back to the direct edge
    for (std::size_t i = 0; i + 1 < path->size(); ++i) {
      residual[(*path)[i]][(*path)[i + 1]] -= d.rate_bps;
    }
    paths[idx] = std::move(*path);
  }
  return paths;
}

GreedyResult greedy_heuristic(const CapacityGraph& graph, const std::vector<Demand>& demands,
                              std::size_t n_vms, const Objective& objective) {
  GreedyResult result;
  result.configuration.mapping = greedy_mapping(graph, demands, n_vms);
  result.configuration.paths = greedy_paths(graph, demands, result.configuration.mapping);
  result.evaluation = evaluate(graph, demands, result.configuration, objective);
  return result;
}

}  // namespace vw::vadapt
