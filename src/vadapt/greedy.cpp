#include "vadapt/greedy.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"
#include "vadapt/widest_path.hpp"

namespace vw::vadapt {

namespace {

/// "Extract an ordered list with a breadth-first approach, eliminating
/// duplicates": walk the weight-ordered pair list, appending each endpoint
/// the first time it appears.
template <typename Id, typename PairList>
std::vector<Id> extract_ordered(const PairList& ordered_pairs, std::size_t expected) {
  std::vector<Id> out;
  std::set<Id> seen;
  for (const auto& [a, b, weight] : ordered_pairs) {
    (void)weight;
    if (seen.insert(a).second) out.push_back(a);
    if (seen.insert(b).second) out.push_back(b);
    if (out.size() >= expected) break;
  }
  return out;
}

std::vector<HostIndex> greedy_mapping_impl(const CapacityGraph& graph,
                                           const std::vector<Demand>& demands,
                                           std::size_t n_vms, WidestPathCache& cache) {
  const std::size_t n_hosts = graph.size();
  VW_REQUIRE(n_vms <= n_hosts, "greedy_mapping: more VMs (", n_vms, ") than hosts (", n_hosts,
             ")");

  // (1,2) VM adjacency list ordered by decreasing traffic intensity.
  std::vector<std::tuple<VmIndex, VmIndex, double>> vm_pairs;
  for (const Demand& d : demands) vm_pairs.push_back({d.src, d.dst, d.rate_bps});
  std::stable_sort(vm_pairs.begin(), vm_pairs.end(),
                   [](const auto& a, const auto& b) { return std::get<2>(a) > std::get<2>(b); });

  // (3) ordered VM list, breadth-first, duplicates eliminated.
  std::vector<VmIndex> vm_order = extract_ordered<VmIndex>(vm_pairs, n_vms);
  for (VmIndex v = 0; v < n_vms; ++v) {  // VMs with no traffic come last
    if (std::find(vm_order.begin(), vm_order.end(), v) == vm_order.end()) vm_order.push_back(v);
  }

  // (4) widest-path bottleneck between every VNET daemon pair; the cached
  // trees are shared with the routing step, which queries the same
  // unmodified graph for its first demand.
  std::vector<std::tuple<HostIndex, HostIndex, double>> host_pairs;
  for (HostIndex i = 0; i < n_hosts; ++i) {
    const WidestPathTree& tree = cache.tree(i);
    for (HostIndex j = 0; j < n_hosts; ++j) {
      if (i == j) continue;
      const double w = tree.parent[j] ? tree.width[j] : 0;
      host_pairs.push_back({i, j, w});
    }
  }
  // (5) order by decreasing bottleneck bandwidth.
  std::stable_sort(host_pairs.begin(), host_pairs.end(),
                   [](const auto& a, const auto& b) { return std::get<2>(a) > std::get<2>(b); });

  // (6) ordered host list, breadth-first, duplicates eliminated.
  std::vector<HostIndex> host_order = extract_ordered<HostIndex>(host_pairs, n_hosts);
  for (HostIndex h = 0; h < n_hosts; ++h) {
    if (std::find(host_order.begin(), host_order.end(), h) == host_order.end()) {
      host_order.push_back(h);
    }
  }

  // (7) zip the two orders.
  std::vector<HostIndex> mapping(n_vms);
  for (std::size_t k = 0; k < n_vms; ++k) mapping[vm_order[k]] = host_order[k];
  VW_AUDIT(valid_mapping(mapping, n_hosts), "greedy_mapping: produced invalid mapping");
  return mapping;
}

std::vector<Path> greedy_paths_impl(const CapacityGraph& graph,
                                    const std::vector<Demand>& demands,
                                    const std::vector<HostIndex>& mapping, AdjacencyView& view,
                                    WidestPathCache& cache) {
  // (1) demands in descending order of communication intensity.
  std::vector<std::size_t> order(demands.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a].rate_bps > demands[b].rate_bps;
  });

  // (2) greedy widest-path mapping on the running residual graph. The dense
  // residual matrix keeps the exact arithmetic (entries may go negative);
  // the adjacency view mirrors it for routing, where <= 0 means "absent".
  auto residual = graph.bandwidth_matrix();
  std::vector<Path> paths(demands.size());
  for (std::size_t idx : order) {
    const Demand& d = demands[idx];
    const HostIndex src = mapping.at(d.src);
    const HostIndex dst = mapping.at(d.dst);
    auto path = cache.tree(src).path_to(dst);
    if (!path) path = Path{src, dst};  // exhausted graph: fall back to the direct edge
    if (d.rate_bps != 0 && path->size() >= 2) {
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        const HostIndex u = (*path)[i];
        const HostIndex v = (*path)[i + 1];
        const double before = residual[u][v];
        residual[u][v] -= d.rate_bps;
        view.update(u, v, residual[u][v]);
        // Scoped invalidation: only trees actually routing through u -> v
        // are stale; the rest answer later queries bit-identically to a
        // fresh recompute (decrease rule, see WidestPathCache).
        cache.invalidate_edge(u, v, before, residual[u][v]);
      }
    }
    paths[idx] = std::move(*path);
  }
  return paths;
}

}  // namespace

std::vector<HostIndex> greedy_mapping(const CapacityGraph& graph,
                                      const std::vector<Demand>& demands, std::size_t n_vms) {
  AdjacencyView view(graph.bandwidth_matrix());
  WidestPathCache cache(view);
  return greedy_mapping_impl(graph, demands, n_vms, cache);
}

std::vector<Path> greedy_paths(const CapacityGraph& graph, const std::vector<Demand>& demands,
                               const std::vector<HostIndex>& mapping) {
  AdjacencyView view(graph.bandwidth_matrix());
  WidestPathCache cache(view);
  return greedy_paths_impl(graph, demands, mapping, view, cache);
}

GreedyResult greedy_heuristic(const CapacityGraph& graph, const std::vector<Demand>& demands,
                              std::size_t n_vms, const Objective& objective,
                              const obs::Scope& scope) {
  // One view + tree cache spans both steps: the mapping step fills the cache
  // for every source, and the routing step's first widest-path query (the
  // heaviest demand, before any residual update) reuses it.
  obs::EventTracer::Span span = scope.span("vadapt.gh", "vadapt");
  AdjacencyView view(graph.bandwidth_matrix());
  WidestPathCache cache(view);
  GreedyResult result;
  result.configuration.mapping = greedy_mapping_impl(graph, demands, n_vms, cache);
  result.configuration.paths =
      greedy_paths_impl(graph, demands, result.configuration.mapping, view, cache);
  result.evaluation = evaluate(graph, demands, result.configuration, objective);
  obs::add(scope.counter("vadapt.gh.runs"));
  return result;
}

}  // namespace vw::vadapt
