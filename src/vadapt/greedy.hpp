#pragma once

#include <vector>

#include "obs/scope.hpp"
#include "vadapt/problem.hpp"

// The greedy heuristic (GH) of paper §4.2: two sequential steps —
// (1) map VMs to hosts by zipping a traffic-ordered VM list with a
//     bottleneck-bandwidth-ordered host list;
// (2) route each VM-pair demand, in decreasing intensity order, on the
//     widest path of the residual capacity graph (no backtracking).

namespace vw::vadapt {

struct GreedyResult {
  Configuration configuration;
  Evaluation evaluation;
};

/// Step 1 only: the greedy VM -> host mapping.
std::vector<HostIndex> greedy_mapping(const CapacityGraph& graph,
                                      const std::vector<Demand>& demands, std::size_t n_vms);

/// Step 2 only: greedy widest-path routing for a fixed mapping. Demands are
/// routed in descending rate order; each subtracts its rate from the
/// residual graph. When no strictly positive-width path exists the direct
/// edge is used (feasibility is reported through the evaluation).
std::vector<Path> greedy_paths(const CapacityGraph& graph, const std::vector<Demand>& demands,
                               const std::vector<HostIndex>& mapping);

/// The full heuristic; `objective` only affects the reported evaluation
/// (GH itself does not consider latency, as the paper notes). `scope`
/// attaches telemetry (vadapt.gh.runs); disabled by default.
GreedyResult greedy_heuristic(const CapacityGraph& graph, const std::vector<Demand>& demands,
                              std::size_t n_vms, const Objective& objective = {},
                              const obs::Scope& scope = {});

}  // namespace vw::vadapt
