#include "vadapt/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace vw::vadapt {

namespace {

Path direct_path(const Configuration& conf, const Demand& d) {
  return Path{conf.mapping[d.src], conf.mapping[d.dst]};
}

void reset_paths_direct(Configuration& conf, const std::vector<Demand>& demands) {
  conf.paths.clear();
  conf.paths.reserve(demands.size());
  for (const Demand& d : demands) conf.paths.push_back(direct_path(conf, d));
}

/// Insert a random vertex (not already on the path) at a random interior
/// position. No-op when every vertex is already on the path.
void perturb_insert(Path& path, std::size_t n_hosts, Rng& rng) {
  if (path.size() >= n_hosts) return;
  std::vector<bool> on_path(n_hosts, false);
  for (HostIndex h : path) on_path[h] = true;
  std::vector<HostIndex> candidates;
  for (HostIndex h = 0; h < n_hosts; ++h) {
    if (!on_path[h]) candidates.push_back(h);
  }
  if (candidates.empty()) return;
  const HostIndex v = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  // Interior positions are 1..size-1 (endpoints stay fixed).
  const auto pos = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(path.size()) - 1));
  path.insert(path.begin() + static_cast<std::ptrdiff_t>(pos), v);
}

/// Delete a random interior vertex; no-op on direct paths.
void perturb_delete(Path& path, Rng& rng) {
  if (path.size() <= 2) return;
  const auto pos = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(path.size()) - 2));
  path.erase(path.begin() + static_cast<std::ptrdiff_t>(pos));
}

/// Swap two distinct interior vertices; no-op when fewer than two.
void perturb_swap(Path& path, Rng& rng) {
  if (path.size() <= 3) return;
  const auto lo = static_cast<std::int64_t>(1);
  const auto hi = static_cast<std::int64_t>(path.size()) - 2;
  const auto x = static_cast<std::size_t>(rng.uniform_int(lo, hi));
  auto y = static_cast<std::size_t>(rng.uniform_int(lo, hi));
  if (x == y) return;
  std::swap(path[x], path[y]);
}

void perturb_mapping(Configuration& conf, std::size_t n_hosts, Rng& rng) {
  const std::size_t n_vms = conf.mapping.size();
  if (n_vms == 0) return;
  std::vector<bool> used(n_hosts, false);
  for (HostIndex h : conf.mapping) used[h] = true;
  std::vector<HostIndex> free_hosts;
  for (HostIndex h = 0; h < n_hosts; ++h) {
    if (!used[h]) free_hosts.push_back(h);
  }

  const bool can_move = !free_hosts.empty();
  const bool can_swap = n_vms >= 2;
  if (!can_move && !can_swap) return;
  const bool do_move = can_move && (!can_swap || rng.chance(0.5));
  if (do_move) {
    const auto vm = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_vms) - 1));
    const HostIndex target = free_hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(free_hosts.size()) - 1))];
    conf.mapping[vm] = target;
  } else {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_vms) - 1));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_vms) - 1));
    if (a == b) b = (b + 1) % n_vms;
    std::swap(conf.mapping[a], conf.mapping[b]);
  }
}

}  // namespace

Configuration random_configuration(const CapacityGraph& graph, const std::vector<Demand>& demands,
                                   std::size_t n_vms, Rng& rng) {
  const std::size_t n_hosts = graph.size();
  VW_REQUIRE(n_vms <= n_hosts, "random_configuration: more VMs (", n_vms, ") than hosts (",
             n_hosts, ")");
  std::vector<HostIndex> hosts(n_hosts);
  std::iota(hosts.begin(), hosts.end(), HostIndex{0});
  // Fisher-Yates prefix shuffle.
  for (std::size_t i = 0; i < n_vms; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n_hosts) - 1));
    std::swap(hosts[i], hosts[j]);
  }
  Configuration conf;
  conf.mapping.assign(hosts.begin(), hosts.begin() + static_cast<std::ptrdiff_t>(n_vms));
  reset_paths_direct(conf, demands);
  // Every VM placed, no host doubly used: the feasibility bedrock of VADAPT.
  VW_ENSURE(conf.mapping.size() == n_vms, "random_configuration: VM left unplaced");
  VW_AUDIT(valid_mapping(conf.mapping, n_hosts),
           "random_configuration: mapping not injective/in range");
  return conf;
}

AnnealingResult simulated_annealing(const CapacityGraph& graph,
                                    const std::vector<Demand>& demands, std::size_t n_vms,
                                    const Objective& objective, const AnnealingParams& params,
                                    Rng rng, std::optional<Configuration> initial) {
  const std::size_t n_hosts = graph.size();

  Configuration current =
      initial ? std::move(*initial) : random_configuration(graph, demands, n_vms, rng);
  VW_REQUIRE(current.mapping.size() == n_vms,
             "simulated_annealing: initial mapping places ", current.mapping.size(),
             " VMs, expected ", n_vms);
  VW_AUDIT(valid_mapping(current.mapping, n_hosts),
           "simulated_annealing: initial mapping not injective/in range");
  if (current.paths.size() != demands.size()) reset_paths_direct(current, demands);

  Evaluation current_eval = evaluate(graph, demands, current, objective);

  AnnealingResult result;
  result.best = current;
  result.best_evaluation = current_eval;

  double temperature = params.initial_temperature;
  if (temperature <= 0) {
    temperature = std::max(std::abs(current_eval.cost) * 0.1, 1.0);
  }

  for (std::size_t iter = 0; iter < params.iterations; ++iter) {
    // --- perturbation function -------------------------------------------
    Configuration candidate = current;
    if (rng.chance(params.mapping_perturb_prob)) {
      perturb_mapping(candidate, n_hosts, rng);
      reset_paths_direct(candidate, demands);  // new mapping invalidates paths
    } else {
      for (Path& path : candidate.paths) {
        const double u = rng.uniform(0.0, 3.0);
        if (u < 1.0) {
          perturb_insert(path, n_hosts, rng);
        } else if (u < 2.0) {
          perturb_delete(path, rng);
        } else {
          perturb_swap(path, rng);
        }
      }
    }

    // --- acceptance --------------------------------------------------------
    const Evaluation cand_eval = evaluate(graph, demands, candidate, objective);
    const double dE = cand_eval.cost - current_eval.cost;
    const bool accept = dE >= 0 || rng.chance(std::exp(dE / temperature));
    if (accept) {
      current = std::move(candidate);
      current_eval = cand_eval;
      if (current_eval.cost > result.best_evaluation.cost) {
        result.best = current;
        result.best_evaluation = current_eval;
      }
    }
    // Acceptance bookkeeping: the incumbent best can never fall behind the
    // walker, and hill-climbing moves (dE >= 0) are always taken.
    VW_ASSERT(result.best_evaluation.cost >= current_eval.cost,
              "simulated_annealing: best fell behind current");
    VW_ASSERT(!(dE >= 0) || accept, "simulated_annealing: improving move rejected");

    if (iter % params.trace_stride == 0) {
      result.trace.push_back(
          AnnealingTracePoint{iter, current_eval.cost, result.best_evaluation.cost});
    }
    temperature *= params.cooling;
  }

  result.final_state = std::move(current);
  result.final_evaluation = current_eval;
  return result;
}

}  // namespace vw::vadapt
