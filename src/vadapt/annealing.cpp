#include "vadapt/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>

#include "util/check.hpp"
#include "vadapt/incremental.hpp"
#include "vadapt/perturb.hpp"

namespace vw::vadapt {

namespace {

// The perturbation moves themselves live in vadapt/perturb.hpp, shared
// bit-for-bit with the warm-start bursts.
using detail::PerturbScratch;
using detail::direct_path;
using detail::perturb_delete;
using detail::perturb_insert;
using detail::perturb_mapping;
using detail::perturb_swap;
using detail::reset_paths_direct;

/// Reference evaluation backend with the same surface as
/// IncrementalEvaluator: every move pays a from-scratch evaluate() (the
/// pre-incremental cost structure). Because the delta evaluation is
/// bit-exact, an annealer driven by either backend makes identical
/// decisions from the same random stream.
class FullRescorer {
 public:
  FullRescorer(const CapacityGraph& graph, const std::vector<Demand>& demands,
               const Objective& objective)
      : graph_(&graph), demands_(&demands), objective_(objective) {}

  void reset(Configuration conf) {
    conf_ = std::move(conf);
    eval_ = evaluate(*graph_, *demands_, conf_, objective_);
  }

  void set_path(std::size_t d, const Path& path) {
    conf_.paths[d].assign(path.begin(), path.end());
    eval_ = evaluate(*graph_, *demands_, conf_, objective_);
  }

  const Configuration& configuration() const { return conf_; }
  const Evaluation& evaluation() const { return eval_; }

 private:
  const CapacityGraph* graph_;
  const std::vector<Demand>* demands_;
  Objective objective_;
  Configuration conf_;
  Evaluation eval_;
};

/// The annealing loop, parameterized over the evaluation backend. Both
/// backends consume the identical random sequence: the only divergence
/// point would be a differing cost, which the bit-exactness contract of
/// IncrementalEvaluator rules out.
template <typename Evaluator>
AnnealingResult anneal_loop(const CapacityGraph& graph, const std::vector<Demand>& demands,
                            const AnnealingParams& params, Rng& rng, Configuration start,
                            Evaluator& ev) {
  const std::size_t n_hosts = graph.size();
  const std::size_t n_demands = demands.size();

  ev.reset(std::move(start));
  Evaluation current_eval = ev.evaluation();

  AnnealingResult result;
  result.best = ev.configuration();
  result.best_evaluation = current_eval;

  double temperature = params.initial_temperature;
  if (temperature <= 0) {
    temperature = std::max(std::abs(current_eval.cost) * 0.1, 1.0);
  }

  PerturbScratch scratch;
  Path old_path;                  // revert buffer for single-path moves
  Path candidate_path;            // perturbed path under consideration
  Configuration previous_conf;    // revert buffer for mapping moves

  // Move statistics stay in locals: the hot loop must not touch atomics.
  std::uint64_t n_accepted = 0;
  std::uint64_t n_rejected = 0;
  std::uint64_t n_mapping_moves = 0;
  obs::EventTracer::Span run_span = params.obs.span("vadapt.sa", "vadapt");

  for (std::size_t iter = 0; iter < params.iterations; ++iter) {
    // --- perturbation function -------------------------------------------
    // One move per iteration: occasionally the VM mapping (full rescore —
    // every path is invalidated), otherwise one randomly chosen path.
    Evaluation cand_eval;
    bool mapping_move = rng.chance(params.mapping_perturb_prob);
    std::size_t moved_demand = 0;
    if (mapping_move) {
      previous_conf = ev.configuration();
      Configuration candidate = previous_conf;
      perturb_mapping(candidate, n_hosts, rng, scratch);
      reset_paths_direct(candidate, demands);  // new mapping invalidates paths
      ev.reset(std::move(candidate));
      cand_eval = ev.evaluation();
    } else if (n_demands > 0) {
      moved_demand = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_demands) - 1));
      const Path& live = ev.configuration().paths[moved_demand];
      old_path.assign(live.begin(), live.end());
      candidate_path.assign(live.begin(), live.end());
      const double u = rng.uniform(0.0, 3.0);
      if (u < 1.0) {
        perturb_insert(candidate_path, n_hosts, rng, scratch);
      } else if (u < 2.0) {
        perturb_delete(candidate_path, rng);
      } else {
        perturb_swap(candidate_path, rng);
      }
      ev.set_path(moved_demand, candidate_path);
      cand_eval = ev.evaluation();
    } else {
      cand_eval = current_eval;  // nothing to perturb
    }

    // --- acceptance --------------------------------------------------------
    const double dE = cand_eval.cost - current_eval.cost;
    const bool accept = dE >= 0 || rng.chance(std::exp(dE / temperature));
    if (mapping_move) ++n_mapping_moves;
    if (accept) {
      ++n_accepted;
    } else {
      ++n_rejected;
    }
    if (accept) {
      current_eval = cand_eval;
      if (current_eval.cost > result.best_evaluation.cost) {
        result.best = ev.configuration();
        result.best_evaluation = current_eval;
      }
    } else if (mapping_move) {
      ev.reset(std::move(previous_conf));
    } else if (n_demands > 0) {
      ev.set_path(moved_demand, old_path);  // O(path length) revert
    }
    // Acceptance bookkeeping: the incumbent best can never fall behind the
    // walker, and hill-climbing moves (dE >= 0) are always taken.
    VW_ASSERT(result.best_evaluation.cost >= current_eval.cost,
              "simulated_annealing: best fell behind current");
    VW_ASSERT(!(dE >= 0) || accept, "simulated_annealing: improving move rejected");

    if (iter % params.trace_stride == 0) {
      result.trace.push_back(
          AnnealingTracePoint{iter, current_eval.cost, result.best_evaluation.cost});
    }
    temperature *= params.cooling;
  }

  result.final_state = ev.configuration();
  result.final_evaluation = current_eval;

  if (params.obs.metrics != nullptr) {
    obs::add(params.obs.counter("vadapt.sa.runs"));
    obs::add(params.obs.counter("vadapt.sa.iterations"), params.iterations);
    obs::add(params.obs.counter("vadapt.sa.moves.accepted"), n_accepted);
    obs::add(params.obs.counter("vadapt.sa.moves.rejected"), n_rejected);
    obs::add(params.obs.counter("vadapt.sa.moves.mapping"), n_mapping_moves);
    obs::record(params.obs.histogram("vadapt.sa.best_cost"), result.best_evaluation.cost);
  }
  run_span.arg("iterations", std::to_string(params.iterations));
  run_span.arg("accepted", std::to_string(n_accepted));
  run_span.end();
  return result;
}

}  // namespace

Configuration random_configuration(const CapacityGraph& graph, const std::vector<Demand>& demands,
                                   std::size_t n_vms, Rng& rng) {
  const std::size_t n_hosts = graph.size();
  VW_REQUIRE(n_vms <= n_hosts, "random_configuration: more VMs (", n_vms, ") than hosts (",
             n_hosts, ")");
  std::vector<HostIndex> hosts(n_hosts);
  std::iota(hosts.begin(), hosts.end(), HostIndex{0});
  // Fisher-Yates prefix shuffle.
  for (std::size_t i = 0; i < n_vms; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n_hosts) - 1));
    std::swap(hosts[i], hosts[j]);
  }
  Configuration conf;
  conf.mapping.assign(hosts.begin(), hosts.begin() + static_cast<std::ptrdiff_t>(n_vms));
  conf.paths.reserve(demands.size());
  for (const Demand& d : demands) conf.paths.push_back(direct_path(conf, d));
  // Every VM placed, no host doubly used: the feasibility bedrock of VADAPT.
  VW_ENSURE(conf.mapping.size() == n_vms, "random_configuration: VM left unplaced");
  VW_AUDIT(valid_mapping(conf.mapping, n_hosts),
           "random_configuration: mapping not injective/in range");
  return conf;
}

AnnealingResult simulated_annealing(const CapacityGraph& graph,
                                    const std::vector<Demand>& demands, std::size_t n_vms,
                                    const Objective& objective, const AnnealingParams& params,
                                    Rng rng, std::optional<Configuration> initial) {
  const std::size_t n_hosts = graph.size();
  VW_REQUIRE(params.trace_stride > 0, "simulated_annealing: trace_stride must be >= 1");

  Configuration current =
      initial ? std::move(*initial) : random_configuration(graph, demands, n_vms, rng);
  VW_REQUIRE(current.mapping.size() == n_vms,
             "simulated_annealing: initial mapping places ", current.mapping.size(),
             " VMs, expected ", n_vms);
  VW_AUDIT(valid_mapping(current.mapping, n_hosts),
           "simulated_annealing: initial mapping not injective/in range");
  if (current.paths.size() != demands.size()) reset_paths_direct(current, demands);

  if (params.full_rescore) {
    FullRescorer ev(graph, demands, objective);
    return anneal_loop(graph, demands, params, rng, std::move(current), ev);
  }
  IncrementalEvaluator ev(graph, demands, objective);
  return anneal_loop(graph, demands, params, rng, std::move(current), ev);
}

}  // namespace vw::vadapt
