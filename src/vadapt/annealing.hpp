#pragma once

#include <optional>
#include <vector>

#include "obs/scope.hpp"
#include "util/rng.hpp"
#include "vadapt/problem.hpp"

// Simulated annealing (paper §4.3). State = a configuration; the
// perturbation function modifies ONE randomly chosen forwarding path per
// iteration (insert / delete / swap a vertex, probability 1/3 each) and
// occasionally perturbs the VM mapping itself (which resets the paths);
// acceptance follows the standard exp(dE/T) rule with geometric cooling.
//
// Evaluation is incremental: a single-path move applies an O(path-length)
// delta through IncrementalEvaluator instead of rebuilding the O(n²)
// residual matrix; only a mapping perturbation pays a full rescore. Setting
// AnnealingParams::full_rescore re-derives the CEF from scratch every
// iteration (the pre-incremental behavior). Both modes draw the same random
// sequence and the delta evaluation is bit-exact against `evaluate`, so the
// two produce bit-identical optimizer decisions — the differential tests
// rely on this.
//
// Variants:
//   SA      — random initial configuration
//   SA+GH   — seeded with the greedy heuristic's configuration
//   SA+GH+B — additionally reports the best configuration seen so far
// (the best-so-far is always tracked; the harness decides what to plot).

namespace vw::vadapt {

struct AnnealingParams {
  std::size_t iterations = 5000;
  double initial_temperature = 0;    ///< <=0: auto-scale from the initial cost
  double cooling = 0.999;            ///< geometric temperature decay per iteration
  double mapping_perturb_prob = 0.05;
  std::size_t trace_stride = 1;      ///< record every k-th iteration; must be >= 1
  /// Reference mode: full evaluate() every iteration instead of incremental
  /// deltas. Decisions are bit-identical to the incremental mode; used by
  /// differential tests and the BENCH_vadapt micro benches.
  bool full_rescore = false;
  /// Telemetry (vadapt.sa.* counters + a run span). Disabled by default;
  /// move statistics accumulate in locals inside the loop and flush once
  /// per run, so enabling it cannot perturb optimizer decisions or timing.
  obs::Scope obs;
};

struct AnnealingTracePoint {
  std::size_t iteration = 0;
  double current_cost = 0;  ///< objective value of the state at this iteration
  double best_cost = 0;     ///< best objective value seen so far (+B curve)
};

struct AnnealingResult {
  Configuration best;
  Evaluation best_evaluation;
  Configuration final_state;
  Evaluation final_evaluation;
  std::vector<AnnealingTracePoint> trace;
};

/// A uniformly random valid configuration (injective mapping, direct paths).
Configuration random_configuration(const CapacityGraph& graph, const std::vector<Demand>& demands,
                                   std::size_t n_vms, Rng& rng);

AnnealingResult simulated_annealing(const CapacityGraph& graph,
                                    const std::vector<Demand>& demands, std::size_t n_vms,
                                    const Objective& objective, const AnnealingParams& params,
                                    Rng rng,
                                    std::optional<Configuration> initial = std::nullopt);

}  // namespace vw::vadapt
