#include "vadapt/problem.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace vw::vadapt {

CapacityGraph::CapacityGraph(std::vector<net::NodeId> hosts, double default_bw_bps,
                             double default_latency_s)
    : hosts_(std::move(hosts)),
      bw_(hosts_.size(), std::vector<double>(hosts_.size(), default_bw_bps)),
      lat_(hosts_.size(), std::vector<double>(hosts_.size(), default_latency_s)) {
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    bw_[i][i] = 0;
    lat_[i][i] = 0;
  }
  index_.reserve(hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) index_.emplace(hosts_[i], i);
}

std::optional<HostIndex> CapacityGraph::index_of(net::NodeId host) const {
  const auto it = index_.find(host);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void CapacityGraph::set_symmetric_bandwidth(HostIndex a, HostIndex b, double bps) {
  VW_REQUIRE(a < size() && b < size(), "CapacityGraph: host index out of range");
  bw_[a][b] = bps;
  bw_[b][a] = bps;
}

void CapacityGraph::set_symmetric_latency(HostIndex a, HostIndex b, double s) {
  VW_REQUIRE(a < size() && b < size(), "CapacityGraph: host index out of range");
  lat_[a][b] = s;
  lat_[b][a] = s;
}

bool valid_mapping(const std::vector<HostIndex>& mapping, std::size_t n_hosts) {
  // Flat scratch instead of a node-allocating std::set: these run inside
  // VW_AUDIT on optimizer hot paths. thread_local keeps them allocation-free
  // after warm-up and safe under the multi-start thread pool.
  thread_local std::vector<char> used;
  used.assign(n_hosts, 0);
  for (HostIndex h : mapping) {
    if (h >= n_hosts) return false;
    if (used[h]) return false;
    used[h] = 1;
  }
  return true;
}

bool valid_path(const Path& path, const Configuration& conf, const Demand& demand,
                std::size_t n_hosts) {
  if (path.empty()) return false;
  if (demand.src >= conf.mapping.size() || demand.dst >= conf.mapping.size()) return false;
  if (path.front() != conf.mapping[demand.src]) return false;
  if (path.back() != conf.mapping[demand.dst]) return false;
  thread_local std::vector<char> seen;
  seen.assign(n_hosts, 0);
  for (HostIndex h : path) {
    if (h >= n_hosts) return false;
    if (seen[h]) return false;
    seen[h] = 1;
  }
  return true;
}

std::vector<std::vector<double>> residual_capacities(const CapacityGraph& graph,
                                                     const std::vector<Demand>& demands,
                                                     const Configuration& conf) {
  VW_REQUIRE(conf.paths.size() == demands.size(),
             "residual_capacities: path/demand count mismatch (", conf.paths.size(), " vs ",
             demands.size(), ")");
  VW_AUDIT(valid_mapping(conf.mapping, graph.size()),
           "residual_capacities: mapping not injective/in range");
  auto residual = graph.bandwidth_matrix();
  for (std::size_t d = 0; d < demands.size(); ++d) {
    const Path& p = conf.paths[d];
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      residual[p[i]][p[i + 1]] -= demands[d].rate_bps;
    }
  }
  return residual;
}

Evaluation evaluate(const CapacityGraph& graph, const std::vector<Demand>& demands,
                    const Configuration& conf, const Objective& objective) {
  VW_AUDIT([&] {
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (!valid_path(conf.paths[d], conf, demands[d], graph.size())) return false;
    }
    return true;
  }(),
           "evaluate: configuration carries an invalid forwarding path");
  const auto residual = residual_capacities(graph, demands, conf);

  Evaluation ev;
  ev.min_residual_bps = std::numeric_limits<double>::infinity();
  double cost = 0;
  for (std::size_t d = 0; d < demands.size(); ++d) {
    const Path& p = conf.paths[d];
    double bottleneck = std::numeric_limits<double>::infinity();
    double path_latency = 0;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      bottleneck = std::min(bottleneck, residual[p[i]][p[i + 1]]);
      path_latency += graph.latency(p[i], p[i + 1]);
    }
    if (p.size() < 2) bottleneck = 0;  // degenerate (should not occur: mapping injective)
    cost += bottleneck;
    if (objective.kind == ObjectiveKind::kResidualBandwidthLatency && path_latency > 0) {
      cost += objective.latency_weight / path_latency;
    }
    ev.min_residual_bps = std::min(ev.min_residual_bps, bottleneck);
  }
  ev.cost = cost;
  ev.feasible = ev.min_residual_bps >= 0;
  if (demands.empty()) {
    ev.min_residual_bps = 0;
    ev.feasible = true;
  }
  return ev;
}

}  // namespace vw::vadapt
