#include "vadapt/warm_start.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.hpp"
#include "vadapt/cluster.hpp"
#include "vadapt/perturb.hpp"

namespace vw::vadapt {

WarmStartOptimizer::WarmStartOptimizer(WarmStartParams params) : params_(params) {}

void WarmStartOptimizer::adopt(const CapacityGraph& graph, std::vector<Demand> demands,
                               std::size_t n_vms, Configuration conf,
                               const Objective& objective) {
  VW_REQUIRE(conf.mapping.size() == n_vms, "WarmStartOptimizer::adopt: mapping places ",
             conf.mapping.size(), " VMs, expected ", n_vms);
  graph_ = std::make_unique<CapacityGraph>(graph);
  eval_ = std::make_unique<IncrementalEvaluator>(*graph_, std::move(demands), objective);
  eval_->reset(std::move(conf));
  n_vms_ = n_vms;
}

void WarmStartOptimizer::invalidate() {
  eval_.reset();
  graph_.reset();
  n_vms_ = 0;
}

bool WarmStartOptimizer::compatible(const std::vector<net::NodeId>& hosts,
                                    const std::vector<Demand>& demands,
                                    std::size_t n_vms) const {
  if (!has_incumbent()) return false;
  if (n_vms != n_vms_) return false;
  if (hosts != graph_->hosts()) return false;
  const std::vector<Demand>& mine = eval_->demands();
  if (demands.size() != mine.size()) return false;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].src != mine[i].src || demands[i].dst != mine[i].dst) return false;
  }
  return true;
}

bool WarmStartOptimizer::delta_acceptable(const wren::ViewDelta& delta) const {
  if (!has_incumbent()) return false;
  const std::size_t n = graph_->size();
  const std::size_t pair_space = n > 1 ? n * (n - 1) : 1;
  return static_cast<double>(delta.pair_count()) <=
         params_.max_delta_fraction * static_cast<double>(pair_space);
}

void WarmStartOptimizer::apply_delta(const wren::ViewDelta& delta,
                                     std::vector<EdgePatch>& patches, WarmAdaptStats& stats) {
  for (const auto& [key, d] : delta.pairs()) {
    const auto u = graph_->index_of(key.first);
    const auto v = graph_->index_of(key.second);
    // Pairs touching hosts outside the incumbent's graph cannot affect it
    // (a genuinely changed host *set* fails compatible() and goes cold).
    if (!u || !v || *u == *v) continue;
    EdgePatch patch;
    patch.u = *u;
    patch.v = *v;
    patch.old_bandwidth = graph_->bandwidth(*u, *v);
    double bw = patch.old_bandwidth;
    double lat = graph_->latency(*u, *v);
    if (d.invalidated) {
      // The view lost this pair's measurement; the system would fall back
      // to its defaults when rebuilding the graph — mirror that here.
      bw = params_.fallback_bandwidth_bps;
      lat = params_.fallback_latency_s;
    }
    if (d.bandwidth_changed) bw = d.bandwidth_bps;
    if (d.latency_changed) lat = d.latency_s;
    patch.new_bandwidth = bw;
    if (bw == patch.old_bandwidth && lat == graph_->latency(*u, *v)) continue;
    graph_->set_bandwidth(*u, *v, bw);
    graph_->set_latency(*u, *v, lat);
    // Rescore exactly this edge and the demands routed over it — the
    // O(delta) heart of the warm path.
    eval_->refresh_edge(*u, *v);
    patches.push_back(patch);
    ++stats.patched_edges;
  }
}

std::vector<std::uint32_t> WarmStartOptimizer::select_targets(
    const std::vector<EdgePatch>& patches, const std::vector<std::uint32_t>& must_include) {
  std::vector<std::uint32_t> targets = must_include;
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  if (targets.size() >= params_.max_neighborhood) {
    targets.resize(params_.max_neighborhood);
    return targets;
  }

  // A widened edge can lift demands whose bottleneck sits below the edge's
  // new residual — rank those by potential gain and fill the remaining
  // neighborhood slots. One pass over the demand list (cheap next to any
  // burst; the patch list is already delta-sized).
  std::vector<EdgePatch> increased;
  for (const EdgePatch& p : patches) {
    if (p.new_bandwidth > p.old_bandwidth) increased.push_back(p);
  }
  if (!increased.empty()) {
    std::vector<std::pair<double, std::uint32_t>> candidates;  // (gain, id)
    const std::size_t n_demands = eval_->demands().size();
    for (std::uint32_t d = 0; d < n_demands; ++d) {
      if (std::binary_search(targets.begin(), targets.end(), d)) continue;
      double gain = 0;
      for (const EdgePatch& p : increased) {
        const double headroom = eval_->residual(p.u, p.v) - eval_->bottleneck(d);
        gain = std::max(gain, headroom);
      }
      if (gain > 0) candidates.push_back({gain, d});
    }
    std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;  // gain descending
      return a.second < b.second;                        // then id ascending
    });
    for (const auto& [gain, d] : candidates) {
      (void)gain;
      if (targets.size() >= params_.max_neighborhood) break;
      targets.push_back(d);
    }
    std::sort(targets.begin(), targets.end());
  }
  return targets;
}

std::size_t WarmStartOptimizer::run_burst(const std::vector<std::uint32_t>& targets,
                                          std::size_t iterations, Rng& rng) {
  if (targets.empty() || iterations == 0) return 0;
  const std::size_t n_hosts = graph_->size();

  double temperature = params_.initial_temperature;
  if (temperature <= 0) {
    temperature = std::max(std::abs(eval_->evaluation().cost) * params_.temperature_scale, 1.0);
  }

  // Sparse state tracking: `original` snapshots a path on first touch;
  // `best_diff` snapshots every touched path at the best point seen. The
  // commit below replays the best through set_path, so the whole burst is
  // O(touched paths), never O(problem).
  std::map<std::uint32_t, Path> original;
  std::map<std::uint32_t, Path> best_diff;
  const double entry_cost = eval_->evaluation().cost;  // exact at burst entry
  Evaluation best = eval_->evaluation();
  Evaluation current = best;

  detail::PerturbScratch scratch;
  Path old_path;
  Path candidate;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    const std::uint32_t t = targets[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(targets.size()) - 1))];
    const Path& live = eval_->configuration().paths[t];
    old_path.assign(live.begin(), live.end());
    candidate.assign(live.begin(), live.end());
    const double u = rng.uniform(0.0, 3.0);
    if (u < 1.0) {
      detail::perturb_insert(candidate, n_hosts, rng, scratch);
    } else if (u < 2.0) {
      detail::perturb_delete(candidate, rng);
    } else {
      detail::perturb_swap(candidate, rng);
    }
    eval_->set_path(t, candidate);
    const Evaluation cand_eval = eval_->evaluation();

    const double dE = cand_eval.cost - current.cost;
    const bool accept = dE >= 0 || rng.chance(std::exp(dE / temperature));
    if (accept) {
      original.try_emplace(t, old_path);
      current = cand_eval;
      if (current.cost > best.cost) {
        best = current;
        best_diff.clear();
        for (const auto& [d, orig] : original) {
          (void)orig;
          const Path& p = eval_->configuration().paths[d];
          best_diff.emplace(d, p);
        }
      }
    } else {
      eval_->set_path(t, old_path);  // O(path length) revert
    }
    temperature *= params_.cooling;
  }

  // Commit the best configuration seen: demands touched after the best
  // snapshot revert to their original path, the rest to their best path.
  for (const auto& [d, orig] : original) {
    const auto it = best_diff.find(d);
    const Path& desired = it != best_diff.end() ? it->second : orig;
    if (eval_->configuration().paths[d] != desired) eval_->set_path(d, desired);
  }
  // Deferred-mode cost tracking can drift from the canonical sum by float
  // rounding, so the monotone guarantee is enforced on exact numbers: resum
  // the committed state, and if the tracked "best" exactly re-summed lands
  // below the entry cost, fall back to the entry configuration — whose
  // resum reproduces entry_cost bit-for-bit (set_path reverts are exact).
  eval_->exact_refresh();
  if (eval_->evaluation().cost < entry_cost) {
    for (const auto& [d, orig] : original) {
      if (eval_->configuration().paths[d] != orig) eval_->set_path(d, orig);
    }
    eval_->exact_refresh();
  }
  VW_ENSURE(eval_->evaluation().cost >= entry_cost,
            "warm burst: committed cost below burst entry");
  return iterations;
}

WarmAdaptStats WarmStartOptimizer::adapt(const wren::ViewDelta& delta,
                                         const std::vector<Demand>& demands, Rng rng) {
  VW_REQUIRE(has_incumbent(), "WarmStartOptimizer::adapt: no incumbent adopted");
  VW_REQUIRE(demands.size() == eval_->demands().size(),
             "WarmStartOptimizer::adapt: demand count changed (", demands.size(), " vs ",
             eval_->demands().size(), ") — caller must check compatible()");
  obs::EventTracer::Span span = params_.obs.span("vadapt.warm", "vadapt");

  WarmAdaptStats stats;
  stats.delta_pairs = delta.pair_count();

  // Deferred cost for the whole adapt: patching and bursting pay O(touched)
  // per mutation instead of an O(D) resum each; the exits below restore the
  // canonical (bit-exact) evaluation.
  eval_->set_deferred_cost(true);

  // 1. Patch: apply the delta to the live graph + evaluator.
  std::vector<EdgePatch> patches;
  apply_delta(delta, patches, stats);

  std::vector<std::uint32_t> must_include;
  for (const EdgePatch& p : patches) {
    for (std::uint32_t id : eval_->edge_users(p.u, p.v)) must_include.push_back(id);
  }

  // VTTIF rate drift: patch rates in place, and pull the drifted demand
  // plus everything sharing its edges into the neighborhood.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    VW_REQUIRE(demands[i].src == eval_->demands()[i].src &&
                   demands[i].dst == eval_->demands()[i].dst,
               "WarmStartOptimizer::adapt: demand ", i,
               " endpoints changed — caller must check compatible()");
    if (demands[i].rate_bps == eval_->demands()[i].rate_bps) continue;
    eval_->set_demand_rate(i, demands[i].rate_bps);
    ++stats.rate_changes;
    must_include.push_back(static_cast<std::uint32_t>(i));
    const Path& p = eval_->configuration().paths[i];
    for (std::size_t k = 0; k + 1 < p.size(); ++k) {
      for (std::uint32_t id : eval_->edge_users(p[k], p[k + 1])) must_include.push_back(id);
    }
  }

  // Nothing actually changed: the incumbent stands bit-identical, and no
  // randomness is consumed (the empty-delta contract).
  if (patches.empty() && stats.rate_changes == 0) {
    eval_->set_deferred_cost(false);  // resum of untouched state: identical
    stats.cost_before = stats.cost_after = eval_->evaluation().cost;
    return stats;
  }

  // One canonical resum after the patch phase: the exact baseline the
  // monotone-commit guarantee is measured against.
  eval_->exact_refresh();
  stats.cost_before = eval_->evaluation().cost;

  // 2. Select the neighborhood; 3./4. burst it (decomposed when large).
  const std::vector<std::uint32_t> targets = select_targets(patches, must_include);
  stats.target_demands = targets.size();
  const auto burst_length = [this](std::size_t n_targets) {
    return std::clamp(n_targets * params_.burst_iterations_per_target,
                      params_.min_burst_iterations, params_.max_burst_iterations);
  };
  if (!targets.empty()) {
    if (n_vms_ >= params_.decomposition_min_vms &&
        targets.size() >= params_.decomposition_min_targets) {
      const ClusterAssignment communities = cluster_vms_by_traffic(
          eval_->demands(), n_vms_, ClusterParams{params_.max_cluster_size});
      // Intra-cluster groups (keyed ascending for determinism), then the
      // inter-cluster remainder as one final burst.
      std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
      std::vector<std::uint32_t> inter;
      for (std::uint32_t t : targets) {
        const Demand& d = eval_->demands()[t];
        const std::uint32_t a = communities.cluster_of[d.src];
        const std::uint32_t b = communities.cluster_of[d.dst];
        if (a == b) {
          groups[a].push_back(t);
        } else {
          inter.push_back(t);
        }
      }
      for (const auto& [c, group] : groups) {
        (void)c;
        stats.burst_iterations += run_burst(group, burst_length(group.size()), rng);
        ++stats.burst_groups;
      }
      if (!inter.empty()) {
        stats.burst_iterations += run_burst(inter, burst_length(inter.size()), rng);
        ++stats.burst_groups;
      }
    } else {
      stats.burst_iterations += run_burst(targets, burst_length(targets.size()), rng);
      stats.burst_groups = 1;
    }
  }
  eval_->set_deferred_cost(false);
  stats.cost_after = eval_->evaluation().cost;
  // Each burst commits its best-seen, which starts at the patched
  // incumbent: a warm adapt never makes the patched configuration worse.
  VW_ENSURE(stats.cost_after >= stats.cost_before,
            "warm adapt: committed cost ", stats.cost_after, " below patched incumbent ",
            stats.cost_before);

  if (params_.obs.metrics != nullptr) {
    obs::add(params_.obs.counter("vadapt.warm.adapts"));
    obs::add(params_.obs.counter("vadapt.warm.patched_edges"), stats.patched_edges);
    obs::add(params_.obs.counter("vadapt.warm.burst_iterations"), stats.burst_iterations);
    obs::record(params_.obs.histogram("vadapt.warm.targets"),
                static_cast<double>(stats.target_demands));
  }
  span.arg("delta_pairs", std::to_string(stats.delta_pairs));
  span.arg("targets", std::to_string(stats.target_demands));
  span.end();
  return stats;
}

}  // namespace vw::vadapt
