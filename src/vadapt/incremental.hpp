#pragma once

#include <cstdint>
#include <vector>

#include "vadapt/problem.hpp"

// Delta evaluation for the VADAPT CEF (paper §4.1, Eq. 1 / Eq. 3).
//
// The simulated-annealing perturbation function changes one forwarding path
// per step, yet a from-scratch `evaluate` rebuilds the full O(n²) residual
// matrix and rescores every demand. IncrementalEvaluator keeps the residual
// matrix and per-demand bottleneck/latency terms alive across iterations and
// applies O(path-length) deltas for a single-path replacement: only the
// edges of the outgoing and incoming paths — and the demands routed over
// those edges — are rescored.
//
// Bit-exactness contract: every number this class reports is bit-identical
// to what `evaluate(graph, demands, configuration())` would return. Touched
// edges are recomputed as capacity minus the rates of their users in
// ascending demand order — the exact accumulation order of
// `residual_capacities` — rather than patched by add/subtract (which would
// accumulate floating-point drift and diverge from the reference). The
// differential tests in tests/vadapt_incremental_test.cpp enforce this over
// long randomized walks.

namespace vw::vadapt {

class IncrementalEvaluator {
 public:
  /// The graph must outlive the evaluator; the demand list is copied.
  IncrementalEvaluator(const CapacityGraph& graph, std::vector<Demand> demands,
                       Objective objective = {});

  /// Adopt a configuration and fully rescore it: O(n² + Σ path length).
  /// Required after any mapping change (which invalidates every path).
  void reset(Configuration conf);

  /// Replace demand d's forwarding path and rescore only what it touched:
  /// O(|old| + |new| + Σ affected-path length). The path must be valid for
  /// the current mapping. Calling with the prior path restores the previous
  /// state exactly (the annealer's reject-revert).
  void set_path(std::size_t d, const Path& path);

  const Configuration& configuration() const { return conf_; }
  const Evaluation& evaluation() const { return eval_; }
  const std::vector<Demand>& demands() const { return demands_; }
  const Objective& objective() const { return objective_; }

  /// Residual capacity of one edge under the current configuration.
  double residual(HostIndex u, HostIndex v) const { return residual_[u * n_ + v]; }

  /// Bottleneck of demand d's current path (0 for degenerate paths).
  double bottleneck(std::size_t d) const { return bottleneck_[d]; }

  /// Demands whose current path crosses edge (u, v), ascending by id.
  const std::vector<std::uint32_t>& edge_users(HostIndex u, HostIndex v) const {
    return users_[u * n_ + v];
  }

  /// The underlying graph's capacity for edge (u, v) changed externally
  /// (warm-start delta patching): recompute the edge residual from the new
  /// capacity and rescore the demands routed over it. O(users + their path
  /// lengths + D). The graph object itself must already hold the new value.
  void refresh_edge(HostIndex u, HostIndex v);

  /// Demand d's rate changed externally (VTTIF drift): update the stored
  /// rate and rescore every edge on d's path plus the demands sharing those
  /// edges. O(path length * users + D).
  void set_demand_rate(std::size_t d, double rate_bps);

  /// Deferred-cost mode (warm-start bursts). While enabled, mutations keep
  /// evaluation().cost current by adding per-demand contribution deltas
  /// instead of the canonical O(D) resum — a set_path drops from
  /// O(paths + D) to O(paths) — but min_residual_bps/feasible go stale and
  /// the incrementally maintained cost can drift from the canonical sum by
  /// float rounding. Callers must finish an episode with exact_refresh()
  /// (or set_deferred_cost(false)) before exposing the evaluation; the cold
  /// annealer never enables this, so its per-iteration bit-exactness
  /// contract is untouched.
  void set_deferred_cost(bool on);
  bool deferred_cost() const { return deferred_; }

  /// The canonical O(D) resum (constructor/reset accumulation order):
  /// restores the bit-exactness contract after deferred-mode mutations.
  /// Keeps the current mode.
  void exact_refresh();

 private:
  void recompute_edge(HostIndex u, HostIndex v);
  void rescore_demand(std::size_t d);
  void refresh_evaluation();
  void mark_affected(std::uint32_t d);

  const CapacityGraph* graph_;
  std::vector<Demand> demands_;
  Objective objective_;
  std::size_t n_ = 0;

  Configuration conf_;
  Evaluation eval_;
  std::vector<double> residual_;  ///< flat [u * n_ + v]
  /// Demands whose path crosses edge (u,v), ascending; flat [u * n_ + v].
  std::vector<std::vector<std::uint32_t>> users_;
  std::vector<double> bottleneck_;    ///< per demand
  std::vector<double> path_latency_;  ///< per demand
  /// Per-demand cost contribution (bottleneck + latency reward), maintained
  /// by rescore_demand so deferred mode can patch eval_.cost in O(1).
  std::vector<double> contrib_;
  bool deferred_ = false;

  // Scratch for set_path: epoch-stamped dedup of affected demands.
  std::vector<std::uint32_t> affected_;
  std::vector<std::uint32_t> affected_stamp_;
  std::uint32_t stamp_ = 0;
};

}  // namespace vw::vadapt
