#pragma once

#include <cstdint>
#include <vector>

#include "vadapt/problem.hpp"

// Delta evaluation for the VADAPT CEF (paper §4.1, Eq. 1 / Eq. 3).
//
// The simulated-annealing perturbation function changes one forwarding path
// per step, yet a from-scratch `evaluate` rebuilds the full O(n²) residual
// matrix and rescores every demand. IncrementalEvaluator keeps the residual
// matrix and per-demand bottleneck/latency terms alive across iterations and
// applies O(path-length) deltas for a single-path replacement: only the
// edges of the outgoing and incoming paths — and the demands routed over
// those edges — are rescored.
//
// Bit-exactness contract: every number this class reports is bit-identical
// to what `evaluate(graph, demands, configuration())` would return. Touched
// edges are recomputed as capacity minus the rates of their users in
// ascending demand order — the exact accumulation order of
// `residual_capacities` — rather than patched by add/subtract (which would
// accumulate floating-point drift and diverge from the reference). The
// differential tests in tests/vadapt_incremental_test.cpp enforce this over
// long randomized walks.

namespace vw::vadapt {

class IncrementalEvaluator {
 public:
  /// The graph must outlive the evaluator; the demand list is copied.
  IncrementalEvaluator(const CapacityGraph& graph, std::vector<Demand> demands,
                       Objective objective = {});

  /// Adopt a configuration and fully rescore it: O(n² + Σ path length).
  /// Required after any mapping change (which invalidates every path).
  void reset(Configuration conf);

  /// Replace demand d's forwarding path and rescore only what it touched:
  /// O(|old| + |new| + Σ affected-path length). The path must be valid for
  /// the current mapping. Calling with the prior path restores the previous
  /// state exactly (the annealer's reject-revert).
  void set_path(std::size_t d, const Path& path);

  const Configuration& configuration() const { return conf_; }
  const Evaluation& evaluation() const { return eval_; }
  const std::vector<Demand>& demands() const { return demands_; }
  const Objective& objective() const { return objective_; }

  /// Residual capacity of one edge under the current configuration.
  double residual(HostIndex u, HostIndex v) const { return residual_[u * n_ + v]; }

  /// Bottleneck of demand d's current path (0 for degenerate paths).
  double bottleneck(std::size_t d) const { return bottleneck_[d]; }

 private:
  void recompute_edge(HostIndex u, HostIndex v);
  void rescore_demand(std::size_t d);
  void refresh_evaluation();
  void mark_affected(std::uint32_t d);

  const CapacityGraph* graph_;
  std::vector<Demand> demands_;
  Objective objective_;
  std::size_t n_ = 0;

  Configuration conf_;
  Evaluation eval_;
  std::vector<double> residual_;  ///< flat [u * n_ + v]
  /// Demands whose path crosses edge (u,v), ascending; flat [u * n_ + v].
  std::vector<std::vector<std::uint32_t>> users_;
  std::vector<double> bottleneck_;    ///< per demand
  std::vector<double> path_latency_;  ///< per demand

  // Scratch for set_path: epoch-stamped dedup of affected demands.
  std::vector<std::uint32_t> affected_;
  std::vector<std::uint32_t> affected_stamp_;
  std::uint32_t stamp_ = 0;
};

}  // namespace vw::vadapt
