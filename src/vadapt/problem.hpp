#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

// VADAPT's formal optimization problem (paper §4.1).
//
// Given the complete directed graph G=(H,E) of hosts running VNET daemons
// with per-edge available bandwidth (from Wren) and latency, plus the VM
// traffic 3-tuples A=(S,D,C) (from VTTIF), choose a configuration
// CONF=(M,P): an injective VM->host mapping and a forwarding path for every
// communicating VM pair, maximizing the total residual bottleneck capacity
//    Eq.1:  sum over paths p of b(p),  b(p) = min over e in p of rc_e
// subject to rc_e >= 0, where rc_e = c_e - (demand routed over e).
// The multi-constraint variant additionally rewards low path latency:
//    Eq.3:  sum over paths p of [ b(p) + c / l(p) ].
// The problem is NP-complete (reduction from edge-disjoint paths).

namespace vw::vadapt {

using HostIndex = std::size_t;
using VmIndex = std::size_t;

/// One VTTIF traffic tuple: VM src sends to VM dst at rate_bps.
struct Demand {
  VmIndex src = 0;
  VmIndex dst = 0;
  double rate_bps = 0;
};

/// Dense capacity view of the VNET host graph (complete directed graph).
class CapacityGraph {
 public:
  CapacityGraph(std::vector<net::NodeId> hosts, double default_bw_bps = 0,
                double default_latency_s = 0);

  std::size_t size() const { return hosts_.size(); }
  net::NodeId host(HostIndex i) const { return hosts_.at(i); }
  const std::vector<net::NodeId>& hosts() const { return hosts_; }
  std::optional<HostIndex> index_of(net::NodeId host) const;

  void set_bandwidth(HostIndex from, HostIndex to, double bps) { bw_[from][to] = bps; }
  void set_latency(HostIndex from, HostIndex to, double s) { lat_[from][to] = s; }
  void set_symmetric_bandwidth(HostIndex a, HostIndex b, double bps);
  void set_symmetric_latency(HostIndex a, HostIndex b, double s);

  double bandwidth(HostIndex from, HostIndex to) const { return bw_[from][to]; }
  double latency(HostIndex from, HostIndex to) const { return lat_[from][to]; }

  const std::vector<std::vector<double>>& bandwidth_matrix() const { return bw_; }

 private:
  std::vector<net::NodeId> hosts_;
  /// host id -> index, built once in the constructor (first occurrence wins,
  /// matching the linear scan it replaced).
  std::unordered_map<net::NodeId, HostIndex> index_;
  std::vector<std::vector<double>> bw_;   ///< [from][to] bits/sec
  std::vector<std::vector<double>> lat_;  ///< [from][to] seconds
};

/// A forwarding path: host-index sequence from M(src VM) to M(dst VM).
using Path = std::vector<HostIndex>;

struct Configuration {
  /// mapping[vm] = host index; injective (at most one VM per host).
  std::vector<HostIndex> mapping;
  /// One path per demand, aligned with the demand list used to evaluate.
  std::vector<Path> paths;
};

enum class ObjectiveKind {
  kResidualBandwidth,         ///< Eq. 1
  kResidualBandwidthLatency,  ///< Eq. 3
};

struct Objective {
  ObjectiveKind kind = ObjectiveKind::kResidualBandwidth;
  /// The constant c of Eq. 3 (bits/sec * seconds): each path contributes
  /// latency_weight / l(p) in addition to its residual bottleneck.
  double latency_weight = 1000.0;
};

struct Evaluation {
  double cost = 0;        ///< the CEF value (higher is better)
  bool feasible = false;  ///< all residual capacities non-negative
  double min_residual_bps = 0;
};

/// Check mapping validity: size == n_vms, all in range, injective.
bool valid_mapping(const std::vector<HostIndex>& mapping, std::size_t n_hosts);

/// Check a path: non-empty, starts/ends at the demand's mapped hosts, hops
/// within range, no repeated vertex.
bool valid_path(const Path& path, const Configuration& conf, const Demand& demand,
                std::size_t n_hosts);

/// Residual capacities after routing every demand over its path.
std::vector<std::vector<double>> residual_capacities(const CapacityGraph& graph,
                                                     const std::vector<Demand>& demands,
                                                     const Configuration& conf);

/// The cost evaluation function (CEF): Eq. 1 or Eq. 3 over the configuration.
Evaluation evaluate(const CapacityGraph& graph, const std::vector<Demand>& demands,
                    const Configuration& conf, const Objective& objective = {});

}  // namespace vw::vadapt
