#include "vadapt/incremental.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace vw::vadapt {

IncrementalEvaluator::IncrementalEvaluator(const CapacityGraph& graph,
                                           std::vector<Demand> demands, Objective objective)
    : graph_(&graph),
      demands_(std::move(demands)),
      objective_(objective),
      n_(graph.size()),
      residual_(n_ * n_, 0.0),
      users_(n_ * n_),
      bottleneck_(demands_.size(), 0.0),
      path_latency_(demands_.size(), 0.0),
      contrib_(demands_.size(), 0.0),
      affected_stamp_(demands_.size(), 0) {
  // Prime the residual matrix with the (fixed) capacity matrix once. The
  // invariant from here on: an edge with no users always holds its raw
  // bandwidth, so reset() only has to touch edges whose user lists change.
  for (HostIndex u = 0; u < n_; ++u) {
    for (HostIndex v = 0; v < n_; ++v) residual_[u * n_ + v] = graph_->bandwidth(u, v);
  }
}

void IncrementalEvaluator::reset(Configuration conf) {
  VW_REQUIRE(conf.paths.size() == demands_.size(),
             "IncrementalEvaluator::reset: path/demand count mismatch (", conf.paths.size(),
             " vs ", demands_.size(), ")");
  VW_AUDIT(valid_mapping(conf.mapping, n_),
           "IncrementalEvaluator::reset: mapping not injective/in range");
  // Detach only the edges the outgoing configuration used (an edge with no
  // users holds its raw bandwidth by invariant — see the constructor), then
  // mirror residual_capacities exactly: subtract demand rates in ascending
  // demand order (the attach loop below runs d = 0, 1, ... so the per-edge
  // user lists come out sorted and the subtraction order matches).
  for (const Path& p : conf_.paths) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      users_[p[i] * n_ + p[i + 1]].clear();
      residual_[p[i] * n_ + p[i + 1]] = graph_->bandwidth(p[i], p[i + 1]);
    }
  }
  conf_ = std::move(conf);

  for (std::size_t d = 0; d < demands_.size(); ++d) {
    const Path& p = conf_.paths[d];
    VW_AUDIT(valid_path(p, conf_, demands_[d], n_),
             "IncrementalEvaluator::reset: invalid path for demand ", d);
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      users_[p[i] * n_ + p[i + 1]].push_back(static_cast<std::uint32_t>(d));
      residual_[p[i] * n_ + p[i + 1]] -= demands_[d].rate_bps;
    }
  }
  for (std::size_t d = 0; d < demands_.size(); ++d) rescore_demand(d);
  refresh_evaluation();
}

void IncrementalEvaluator::recompute_edge(HostIndex u, HostIndex v) {
  // From-scratch, in ascending demand order: bit-identical to the reference
  // accumulation and free of add/subtract drift across moves.
  double r = graph_->bandwidth(u, v);
  for (std::uint32_t id : users_[u * n_ + v]) r -= demands_[id].rate_bps;
  residual_[u * n_ + v] = r;
}

void IncrementalEvaluator::rescore_demand(std::size_t d) {
  const Path& p = conf_.paths[d];
  double bottleneck = std::numeric_limits<double>::infinity();
  double latency = 0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    bottleneck = std::min(bottleneck, residual_[p[i] * n_ + p[i + 1]]);
    latency += graph_->latency(p[i], p[i + 1]);
  }
  if (p.size() < 2) bottleneck = 0;  // degenerate (mirrors evaluate)
  bottleneck_[d] = bottleneck;
  path_latency_[d] = latency;
  double contrib = bottleneck;
  if (objective_.kind == ObjectiveKind::kResidualBandwidthLatency && latency > 0) {
    contrib += objective_.latency_weight / latency;
  }
  if (deferred_) eval_.cost += contrib - contrib_[d];
  contrib_[d] = contrib;
}

void IncrementalEvaluator::refresh_evaluation() {
  // Deferred mode: eval_.cost is kept current by rescore_demand's O(1)
  // contribution patches; the canonical resum waits for exact_refresh().
  if (deferred_) return;
  // Same accumulation order as evaluate(): cost += bottleneck, then the
  // latency reward, demand by demand.
  eval_.min_residual_bps = std::numeric_limits<double>::infinity();
  double cost = 0;
  for (std::size_t d = 0; d < demands_.size(); ++d) {
    cost += bottleneck_[d];
    if (objective_.kind == ObjectiveKind::kResidualBandwidthLatency && path_latency_[d] > 0) {
      cost += objective_.latency_weight / path_latency_[d];
    }
    eval_.min_residual_bps = std::min(eval_.min_residual_bps, bottleneck_[d]);
  }
  eval_.cost = cost;
  eval_.feasible = eval_.min_residual_bps >= 0;
  if (demands_.empty()) {
    eval_.min_residual_bps = 0;
    eval_.feasible = true;
  }
}

void IncrementalEvaluator::set_deferred_cost(bool on) {
  if (deferred_ == on) return;
  deferred_ = on;
  // Entering: eval_.cost is exact (the invariant outside deferred mode) and
  // becomes the baseline the contribution deltas patch. Leaving: resum.
  if (!on) refresh_evaluation();
}

void IncrementalEvaluator::exact_refresh() {
  const bool was = deferred_;
  deferred_ = false;
  refresh_evaluation();
  deferred_ = was;
}

void IncrementalEvaluator::mark_affected(std::uint32_t d) {
  if (affected_stamp_[d] == stamp_) return;
  affected_stamp_[d] = stamp_;
  affected_.push_back(d);
}

void IncrementalEvaluator::set_path(std::size_t d, const Path& path) {
  VW_REQUIRE(d < demands_.size(), "IncrementalEvaluator::set_path: demand ", d,
             " out of range (", demands_.size(), ")");
  VW_AUDIT(valid_path(path, conf_, demands_[d], n_),
           "IncrementalEvaluator::set_path: invalid path for demand ", d);

  ++stamp_;
  affected_.clear();
  mark_affected(static_cast<std::uint32_t>(d));

  // Detach the old path: drop d from each edge's user list and recompute the
  // edge residual; every other demand on the edge is affected.
  Path& current = conf_.paths[d];
  for (std::size_t i = 0; i + 1 < current.size(); ++i) {
    auto& users = users_[current[i] * n_ + current[i + 1]];
    const auto it = std::lower_bound(users.begin(), users.end(), static_cast<std::uint32_t>(d));
    VW_ASSERT(it != users.end() && *it == d,
              "IncrementalEvaluator: edge-user index lost demand ", d);
    users.erase(it);
    recompute_edge(current[i], current[i + 1]);
    for (std::uint32_t id : users) mark_affected(id);
  }

  // Swap in the new path (reusing the old vector's capacity) and attach.
  current.assign(path.begin(), path.end());
  for (std::size_t i = 0; i + 1 < current.size(); ++i) {
    auto& users = users_[current[i] * n_ + current[i + 1]];
    users.insert(std::lower_bound(users.begin(), users.end(), static_cast<std::uint32_t>(d)),
                 static_cast<std::uint32_t>(d));
    recompute_edge(current[i], current[i + 1]);
    for (std::uint32_t id : users) mark_affected(id);
  }

  for (std::uint32_t id : affected_) rescore_demand(id);
  refresh_evaluation();
}

void IncrementalEvaluator::refresh_edge(HostIndex u, HostIndex v) {
  VW_REQUIRE(u < n_ && v < n_, "IncrementalEvaluator::refresh_edge: vertex out of range");
  recompute_edge(u, v);
  ++stamp_;
  affected_.clear();
  for (std::uint32_t id : users_[u * n_ + v]) mark_affected(id);
  for (std::uint32_t id : affected_) rescore_demand(id);
  refresh_evaluation();
}

void IncrementalEvaluator::set_demand_rate(std::size_t d, double rate_bps) {
  VW_REQUIRE(d < demands_.size(), "IncrementalEvaluator::set_demand_rate: demand ", d,
             " out of range (", demands_.size(), ")");
  if (demands_[d].rate_bps == rate_bps) return;
  demands_[d].rate_bps = rate_bps;
  ++stamp_;
  affected_.clear();
  mark_affected(static_cast<std::uint32_t>(d));
  const Path& p = conf_.paths[d];
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    recompute_edge(p[i], p[i + 1]);
    for (std::uint32_t id : users_[p[i] * n_ + p[i + 1]]) mark_affected(id);
  }
  for (std::uint32_t id : affected_) rescore_demand(id);
  refresh_evaluation();
}

}  // namespace vw::vadapt
