#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "obs/scope.hpp"
#include "util/rng.hpp"
#include "vadapt/incremental.hpp"
#include "vadapt/problem.hpp"
#include "wren/delta.hpp"

// Continuous warm-start VADAPT (ROADMAP item 4, DESIGN.md §5j).
//
// The from-scratch pipeline re-derives everything per adaptation: a fresh
// CapacityGraph, a fresh IncrementalEvaluator (O(n²) residual prime), and a
// full multi-start SA run over the whole problem. With failure re-plans and
// federation demand refreshes firing adaptations continuously, that batch
// cost is the system's slowest tier. WarmStartOptimizer instead keeps the
// incumbent configuration and its evaluator residual state alive across
// adaptations and consumes a wren::ViewDelta:
//
//   1. patch  — apply the delta's changed capacities/latencies to the live
//      graph and refresh exactly the touched edges (O(delta · users), not
//      O(n²)); apply VTTIF rate drift with the same edge-scoped rescore.
//   2. select — collect the demand neighborhood the delta touched: demands
//      routed over a patched edge, demands whose rate changed, and (for
//      capacity increases) the best-gain demands whose bottleneck the wider
//      edge could lift, capped at max_neighborhood.
//   3. burst  — a short path-only SA burst restricted to those demands
//      (same perturbation moves as the full annealer, no mapping moves, so
//      no VM migrations are proposed by a warm pass). Reverts are sparse:
//      only paths the burst actually changed are tracked and restored.
//   4. For large touched sets on large problems, decompose hierarchically:
//      cluster VMs by VTTIF traffic communities, burst each cluster's
//      intra-cluster demands independently, then burst the inter-cluster
//      remainder.
//
// Contracts:
//   - Empty delta + unchanged rates => adapt() returns without consuming
//     randomness and the incumbent is bit-identical to what was adopted.
//   - The burst is monotone versus the patched incumbent: the committed
//     configuration never scores below the incumbent evaluated under the
//     patched graph (the burst's best starts there).
//   - The from-scratch solver remains the differential oracle: tests
//     enforce warm cost >= (1 - tolerance) * cold cost on every scenario.

namespace vw::vadapt {

struct WarmStartParams {
  /// Master switch (SystemConfig::warm_start.enabled). Off by default: the
  /// cold path must stay byte-identical for existing golden scenarios.
  bool enabled = false;
  /// Problems smaller than this many VMs always re-solve from scratch — a
  /// full multi-start is already cheap there, and it keeps small golden
  /// scenarios (chaos suite) on the exact cold decision sequence.
  std::size_t min_vms = 16;
  /// Go cold when the delta touches more than this fraction of the host
  /// pair space — the incumbent is no longer "mostly right".
  double max_delta_fraction = 0.25;
  /// Cap on the burst's demand neighborhood.
  std::size_t max_neighborhood = 64;
  /// Burst length: clamp(targets * per_target, min, max) iterations.
  std::size_t burst_iterations_per_target = 200;
  std::size_t min_burst_iterations = 500;
  std::size_t max_burst_iterations = 20000;
  /// <= 0: auto-scale to max(|incumbent cost| * temperature_scale, 1.0).
  /// Bursts refine a near-optimal incumbent, so they start much cooler than
  /// a from-scratch anneal (which uses 0.1 of the initial cost).
  double initial_temperature = 0;
  double temperature_scale = 0.01;
  double cooling = 0.995;
  /// Hierarchical decomposition kicks in at this problem/neighborhood size.
  std::size_t decomposition_min_vms = 256;
  std::size_t decomposition_min_targets = 96;
  std::size_t max_cluster_size = 64;
  /// Capacity/latency assumed for a pair the delta invalidated (the view
  /// lost its measurement): mirrors SystemConfig::default_bandwidth_bps and
  /// the default latency the system's capacity_graph() uses.
  double fallback_bandwidth_bps = 100e6;
  double fallback_latency_s = 0.001;
  /// Telemetry (vadapt.warm.* counters/histograms); disabled by default.
  obs::Scope obs;
};

/// What one warm adapt() actually did (telemetry + test introspection).
struct WarmAdaptStats {
  std::size_t delta_pairs = 0;      ///< directed pairs in the consumed delta
  std::size_t patched_edges = 0;    ///< graph edges patched + refreshed
  std::size_t rate_changes = 0;     ///< demands whose VTTIF rate drifted
  std::size_t target_demands = 0;   ///< neighborhood size the bursts covered
  std::size_t burst_iterations = 0; ///< total SA iterations across bursts
  std::size_t burst_groups = 0;     ///< 1 = flat burst; >1 = decomposed
  double cost_before = 0;           ///< incumbent cost after patch, before burst
  double cost_after = 0;            ///< committed cost
};

class WarmStartOptimizer {
 public:
  explicit WarmStartOptimizer(WarmStartParams params = {});

  /// Adopt a freshly solved problem as the incumbent (called after every
  /// cold solve). Copies the graph and demands; O(n²) — the once-per-cold
  /// cost that subsequent warm adapts amortize away.
  void adopt(const CapacityGraph& graph, std::vector<Demand> demands, std::size_t n_vms,
             Configuration conf, const Objective& objective = {});

  /// Drop the incumbent (next adaptation must go cold).
  void invalidate();

  bool has_incumbent() const { return eval_ != nullptr; }

  /// Whether the incumbent still describes this problem: identical host
  /// list (order included), same VM count, and demand list with identical
  /// endpoints per index (rates may drift — adapt() patches those).
  bool compatible(const std::vector<net::NodeId>& hosts, const std::vector<Demand>& demands,
                  std::size_t n_vms) const;

  /// Whether the delta is small enough to warm-start over
  /// (max_delta_fraction of the directed host-pair space).
  bool delta_acceptable(const wren::ViewDelta& delta) const;

  /// Consume a view delta + the current demand list (same endpoints as the
  /// incumbent's): patch, select, burst, commit. Requires has_incumbent().
  /// An empty delta with unchanged rates returns immediately without
  /// consuming randomness, leaving the incumbent bit-identical.
  WarmAdaptStats adapt(const wren::ViewDelta& delta, const std::vector<Demand>& demands,
                       Rng rng);

  const CapacityGraph& graph() const { return *graph_; }
  const Configuration& incumbent() const { return eval_->configuration(); }
  const Evaluation& evaluation() const { return eval_->evaluation(); }
  const std::vector<Demand>& demands() const { return eval_->demands(); }
  std::size_t n_vms() const { return n_vms_; }

  WarmStartParams& params() { return params_; }
  const WarmStartParams& params() const { return params_; }

 private:
  struct EdgePatch {
    HostIndex u = 0;
    HostIndex v = 0;
    double old_bandwidth = 0;
    double new_bandwidth = 0;
  };

  /// Apply the delta to graph_ and refresh touched evaluator edges.
  void apply_delta(const wren::ViewDelta& delta, std::vector<EdgePatch>& patches,
                   WarmAdaptStats& stats);

  /// Pick the burst's demand neighborhood for the given patches.
  std::vector<std::uint32_t> select_targets(const std::vector<EdgePatch>& patches,
                                            const std::vector<std::uint32_t>& must_include);

  /// Path-only SA burst over `targets`; returns iterations executed.
  /// Commits the best configuration seen (never below the starting point).
  std::size_t run_burst(const std::vector<std::uint32_t>& targets, std::size_t iterations,
                        Rng& rng);

  WarmStartParams params_;
  std::unique_ptr<CapacityGraph> graph_;  ///< stable address for eval_
  std::unique_ptr<IncrementalEvaluator> eval_;
  std::size_t n_vms_ = 0;
};

}  // namespace vw::vadapt
