#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/thread_pool.hpp"
#include "vadapt/annealing.hpp"
#include "vadapt/problem.hpp"

// Parallel multi-start simulated annealing. K independent SA chains run
// concurrently on a thread pool; each chain draws from its own RNG stream,
// derived by splitting the caller's seed (RngService-style FNV/splitmix
// hashing over the chain index), so the outcome is a pure function of
// (problem, params) — the same best configuration is produced whether the
// chains run on one thread or sixteen. Results land in per-chain slots and
// the merge picks the highest CEF, breaking ties toward the lowest chain
// index, which keeps the reduction deterministic too.

namespace vw::vadapt {

struct MultiStartParams {
  std::size_t chains = 4;    ///< number of independent SA chains (>= 1)
  std::size_t threads = 0;   ///< worker threads; 0 = one per hardware thread
  std::uint64_t seed = 1;    ///< split into per-chain streams
  AnnealingParams annealing; ///< shared by every chain
  /// Persistent worker pool (borrowed). When set, chains run as one batch
  /// on it — callers that adapt repeatedly (VirtuosoSystem's control loop)
  /// stop paying thread spawn/join per adaptation — and `threads` is
  /// ignored. When null, a pool is constructed per call as before. The
  /// outcome is identical either way: chains write index-aligned slots.
  ThreadPool* pool = nullptr;
  /// When an initial configuration is supplied (e.g. the greedy solution),
  /// chain 0 starts from it and the remaining chains start from independent
  /// random configurations; false makes every chain start from the initial.
  bool diversify_initial = true;
};

struct ChainOutcome {
  std::uint64_t seed = 0;      ///< the chain's derived RNG seed
  Evaluation best_evaluation;  ///< best CEF the chain reached
};

struct MultiStartResult {
  AnnealingResult best;              ///< the winning chain's full result
  std::size_t best_chain = 0;        ///< index of the winning chain
  std::vector<ChainOutcome> chains;  ///< per-chain outcomes, index-aligned
};

MultiStartResult multi_start_annealing(const CapacityGraph& graph,
                                       const std::vector<Demand>& demands, std::size_t n_vms,
                                       const Objective& objective,
                                       const MultiStartParams& params,
                                       std::optional<Configuration> initial = std::nullopt);

}  // namespace vw::vadapt
