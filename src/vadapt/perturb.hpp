#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "vadapt/problem.hpp"

// The annealer's perturbation moves (paper §4.3), shared between the
// full simulated_annealing loop (annealing.cpp) and the warm-start bursts
// (warm_start.cpp). Factored out so both draw bit-identical moves from the
// same random sequence — the warm-start differential oracle depends on the
// moves themselves being byte-for-byte the code the cold path runs.

namespace vw::vadapt::detail {

inline Path direct_path(const Configuration& conf, const Demand& d) {
  return Path{conf.mapping[d.src], conf.mapping[d.dst]};
}

inline void reset_paths_direct(Configuration& conf, const std::vector<Demand>& demands) {
  conf.paths.resize(demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d) {
    conf.paths[d].assign({conf.mapping[demands[d].src], conf.mapping[demands[d].dst]});
  }
}

/// Reusable buffers so the perturb helpers allocate nothing per iteration
/// (after warm-up): a host-indexed flag array and a candidate pool.
struct PerturbScratch {
  std::vector<char> flags;
  std::vector<HostIndex> pool;
};

/// Insert a random vertex (not already on the path) at a random interior
/// position. No-op when every vertex is already on the path.
inline void perturb_insert(Path& path, std::size_t n_hosts, Rng& rng, PerturbScratch& scratch) {
  if (path.size() >= n_hosts) return;
  scratch.flags.assign(n_hosts, 0);
  for (HostIndex h : path) scratch.flags[h] = 1;
  scratch.pool.clear();
  for (HostIndex h = 0; h < n_hosts; ++h) {
    if (!scratch.flags[h]) scratch.pool.push_back(h);
  }
  if (scratch.pool.empty()) return;
  const HostIndex v = scratch.pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(scratch.pool.size()) - 1))];
  // Interior positions are 1..size-1 (endpoints stay fixed).
  const auto pos = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(path.size()) - 1));
  path.insert(path.begin() + static_cast<std::ptrdiff_t>(pos), v);
}

/// Delete a random interior vertex; no-op on direct paths.
inline void perturb_delete(Path& path, Rng& rng) {
  if (path.size() <= 2) return;
  const auto pos = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(path.size()) - 2));
  path.erase(path.begin() + static_cast<std::ptrdiff_t>(pos));
}

/// Swap two distinct interior vertices; no-op when fewer than two. A
/// coinciding second draw is offset to the next interior slot so the move
/// never silently degrades to a no-op.
inline void perturb_swap(Path& path, Rng& rng) {
  if (path.size() <= 3) return;
  const auto lo = static_cast<std::int64_t>(1);
  const auto hi = static_cast<std::int64_t>(path.size()) - 2;
  const auto x = static_cast<std::size_t>(rng.uniform_int(lo, hi));
  auto y = static_cast<std::size_t>(rng.uniform_int(lo, hi));
  if (x == y) {
    y = static_cast<std::size_t>(lo) +
        (y - static_cast<std::size_t>(lo) + 1) % static_cast<std::size_t>(hi - lo + 1);
  }
  std::swap(path[x], path[y]);
}

inline void perturb_mapping(Configuration& conf, std::size_t n_hosts, Rng& rng,
                            PerturbScratch& scratch) {
  const std::size_t n_vms = conf.mapping.size();
  if (n_vms == 0) return;
  scratch.flags.assign(n_hosts, 0);
  for (HostIndex h : conf.mapping) scratch.flags[h] = 1;
  scratch.pool.clear();
  for (HostIndex h = 0; h < n_hosts; ++h) {
    if (!scratch.flags[h]) scratch.pool.push_back(h);
  }

  const bool can_move = !scratch.pool.empty();
  const bool can_swap = n_vms >= 2;
  if (!can_move && !can_swap) return;
  const bool do_move = can_move && (!can_swap || rng.chance(0.5));
  if (do_move) {
    const auto vm = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_vms) - 1));
    const HostIndex target = scratch.pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(scratch.pool.size()) - 1))];
    conf.mapping[vm] = target;
  } else {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_vms) - 1));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n_vms) - 1));
    if (a == b) b = (b + 1) % n_vms;
    std::swap(conf.mapping[a], conf.mapping[b]);
  }
}

}  // namespace vw::vadapt::detail
