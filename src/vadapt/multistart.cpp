#include "vadapt/multistart.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vw::vadapt {

namespace {

struct ChainSlot {
  AnnealingResult result;
  std::exception_ptr error;
};

}  // namespace

MultiStartResult multi_start_annealing(const CapacityGraph& graph,
                                       const std::vector<Demand>& demands, std::size_t n_vms,
                                       const Objective& objective,
                                       const MultiStartParams& params,
                                       std::optional<Configuration> initial) {
  VW_REQUIRE(params.chains >= 1, "multi_start_annealing: need at least one chain");

  // Derive one deterministic seed per chain from the caller's root seed.
  const RngService seeds(params.seed);
  std::vector<std::uint64_t> chain_seeds(params.chains);
  for (std::size_t k = 0; k < params.chains; ++k) {
    chain_seeds[k] = seeds.seed_for("vadapt.multistart.chain." + std::to_string(k));
  }

  std::vector<ChainSlot> slots(params.chains);
  auto run_chain = [&](std::size_t k) {
    try {
      std::optional<Configuration> chain_initial;
      if (initial && (k == 0 || !params.diversify_initial)) chain_initial = *initial;
      slots[k].result = simulated_annealing(graph, demands, n_vms, objective, params.annealing,
                                            Rng(chain_seeds[k]), std::move(chain_initial));
    } catch (...) {
      slots[k].error = std::current_exception();
    }
  };

  if (params.pool != nullptr && params.chains > 1) {
    params.pool->run_batch(params.chains, run_chain);
  } else {
    std::size_t threads =
        params.threads == 0 ? ThreadPool::default_thread_count() : params.threads;
    threads = std::min(threads, params.chains);
    if (threads <= 1 || params.chains == 1) {
      for (std::size_t k = 0; k < params.chains; ++k) run_chain(k);
    } else {
      ThreadPool pool(threads);
      for (std::size_t k = 0; k < params.chains; ++k) {
        pool.submit([&run_chain, k] { run_chain(k); });
      }
      pool.wait_idle();
    }
  }

  // Propagate the first (lowest-index) chain failure deterministically.
  for (std::size_t k = 0; k < params.chains; ++k) {
    if (slots[k].error) std::rethrow_exception(slots[k].error);
  }

  // Merge best-of: highest CEF wins, ties break toward the lowest chain
  // index — the reduction is independent of completion order.
  MultiStartResult out;
  out.chains.reserve(params.chains);
  std::size_t best = 0;
  for (std::size_t k = 0; k < params.chains; ++k) {
    out.chains.push_back({chain_seeds[k], slots[k].result.best_evaluation});
    if (slots[k].result.best_evaluation.cost > slots[best].result.best_evaluation.cost) {
      best = k;
    }
  }
  out.best_chain = best;
  out.best = std::move(slots[best].result);
  VW_ENSURE(out.chains.size() == params.chains, "multi_start_annealing: chain outcome lost");

  if (params.annealing.obs.metrics != nullptr) {
    obs::add(params.annealing.obs.counter("vadapt.multistart.runs"));
    obs::add(params.annealing.obs.counter("vadapt.multistart.chains"), params.chains);
  }
  return out;
}

}  // namespace vw::vadapt
